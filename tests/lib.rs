//! Integration-test host crate. The actual tests live in `tests/`, and
//! exercise every crate of the workspace through their public APIs only.
//!
//! Shared helpers used across the integration-test files live here.

use ssync_arch::QccdTopology;
use ssync_circuit::Circuit;
use ssync_core::CompileOutcome;
use ssync_sim::ScheduledOp;

/// Checks structural invariants every compiled program must satisfy,
/// independent of which compiler produced it:
///
/// * the number of emitted two-qubit gates matches the circuit,
/// * the number of emitted single-qubit gates matches the circuit,
/// * every op references qubits and traps that exist,
/// * shuttles always connect two *different*, adjacent traps,
/// * the reported success rate is a probability.
pub fn check_program_invariants(
    circuit: &Circuit,
    topology: &QccdTopology,
    outcome: &CompileOutcome,
) {
    let counts = outcome.counts();
    assert_eq!(
        counts.two_qubit_gates,
        circuit.two_qubit_gate_count(),
        "every program two-qubit gate must be scheduled exactly once"
    );
    assert_eq!(
        counts.single_qubit_gates,
        circuit.single_qubit_gate_count(),
        "every single-qubit gate must be preserved"
    );
    let num_traps = topology.num_traps();
    for op in outcome.program().ops() {
        match *op {
            ScheduledOp::SingleQubitGate { qubit } => {
                assert!(qubit.index() < circuit.num_qubits());
            }
            ScheduledOp::TwoQubitGate { a, b, trap, chain_len, ion_distance } => {
                assert!(a != b);
                assert!(a.index() < circuit.num_qubits() && b.index() < circuit.num_qubits());
                assert!(trap.index() < num_traps);
                assert!(chain_len >= 2, "a two-qubit gate needs at least two ions in the chain");
                assert!(ion_distance >= 1 && ion_distance < chain_len.max(2));
            }
            ScheduledOp::SwapGate { a, b, trap, chain_len, .. } => {
                assert!(a != b);
                assert!(trap.index() < num_traps);
                assert!(chain_len >= 2);
            }
            ScheduledOp::IonReorder { trap, steps } => {
                assert!(trap.index() < num_traps);
                assert!(steps >= 1);
            }
            ScheduledOp::Shuttle {
                from_trap, to_trap, source_chain_len, dest_chain_len, ..
            } => {
                assert_ne!(from_trap, to_trap, "shuttles must cross traps");
                assert!(from_trap.index() < num_traps && to_trap.index() < num_traps);
                assert!(
                    topology.are_adjacent(from_trap, to_trap),
                    "shuttles only move between directly connected traps"
                );
                assert!(source_chain_len >= 1, "the shuttled ion was in the source chain");
                assert!(dest_chain_len >= 1);
                assert!(dest_chain_len <= topology.trap(to_trap).capacity());
            }
        }
    }
    let report = outcome.report();
    assert!((0.0..=1.0).contains(&report.success_rate));
    assert!(report.total_time_us >= 0.0);
    outcome.final_placement().validate().expect("final placement is consistent");
}
