//! Integration-test host crate. The actual tests live in `tests/`, and
//! exercise every crate of the workspace through their public APIs only.
//!
//! Shared helpers used across the integration-test files live here.

use ssync_arch::{QccdTopology, TrapId};
use ssync_circuit::Circuit;
use ssync_core::CompileOutcome;
use ssync_sim::ScheduledOp;

/// Checks structural invariants every compiled program must satisfy,
/// independent of which compiler produced it:
///
/// * the number of emitted two-qubit gates matches the circuit,
/// * the number of emitted single-qubit gates matches the circuit,
/// * every op references qubits and traps that exist,
/// * shuttles always connect two *different*, adjacent traps,
/// * the reported success rate is a probability.
pub fn check_program_invariants(
    circuit: &Circuit,
    topology: &QccdTopology,
    outcome: &CompileOutcome,
) {
    let counts = outcome.counts();
    assert_eq!(
        counts.two_qubit_gates,
        circuit.two_qubit_gate_count(),
        "every program two-qubit gate must be scheduled exactly once"
    );
    assert_eq!(
        counts.single_qubit_gates,
        circuit.single_qubit_gate_count(),
        "every single-qubit gate must be preserved"
    );
    let num_traps = topology.num_traps();
    for op in outcome.program().ops() {
        match *op {
            ScheduledOp::SingleQubitGate { qubit } => {
                assert!(qubit.index() < circuit.num_qubits());
            }
            ScheduledOp::TwoQubitGate { a, b, trap, chain_len, ion_distance } => {
                assert!(a != b);
                assert!(a.index() < circuit.num_qubits() && b.index() < circuit.num_qubits());
                assert!(trap.index() < num_traps);
                assert!(chain_len >= 2, "a two-qubit gate needs at least two ions in the chain");
                assert!(ion_distance >= 1 && ion_distance < chain_len.max(2));
            }
            ScheduledOp::SwapGate { a, b, trap, chain_len, .. } => {
                assert!(a != b);
                assert!(trap.index() < num_traps);
                assert!(chain_len >= 2);
            }
            ScheduledOp::IonReorder { trap, steps } => {
                assert!(trap.index() < num_traps);
                assert!(steps >= 1);
            }
            ScheduledOp::Shuttle {
                from_trap, to_trap, source_chain_len, dest_chain_len, ..
            } => {
                assert_ne!(from_trap, to_trap, "shuttles must cross traps");
                assert!(from_trap.index() < num_traps && to_trap.index() < num_traps);
                assert!(
                    topology.are_adjacent(from_trap, to_trap),
                    "shuttles only move between directly connected traps"
                );
                assert!(source_chain_len >= 1, "the shuttled ion was in the source chain");
                assert!(dest_chain_len >= 1);
                assert!(dest_chain_len <= topology.trap(to_trap).capacity());
            }
        }
    }
    let report = outcome.report();
    assert!((0.0..=1.0).contains(&report.success_rate));
    assert!(report.total_time_us >= 0.0);
    outcome.final_placement().validate().expect("final placement is consistent");
}

/// Replays a compiled program *backwards* from the final placement at trap
/// granularity and asserts every entangling operation was physically
/// possible: both operands of each two-qubit gate and each SWAP shared the
/// op's trap at execution time, and every shuttle moved a qubit that was
/// actually in its source trap. Shared by every `CompilerKind` golden run
/// (a compiler that forges a placement or emits a gate across traps fails
/// here, whatever its op counts look like).
pub fn check_placement_replay(circuit: &Circuit, outcome: &CompileOutcome) {
    let final_placement = outcome.final_placement();
    let mut trap_of: Vec<Option<TrapId>> = (0..circuit.num_qubits())
        .map(|q| final_placement.trap_of(ssync_circuit::Qubit(q as u32)))
        .collect();
    for (pos, op) in outcome.program().ops().iter().enumerate().rev() {
        match *op {
            ScheduledOp::TwoQubitGate { a, b, trap, .. }
            | ScheduledOp::SwapGate { a, b, trap, .. } => {
                assert_eq!(
                    trap_of[a.index()],
                    Some(trap),
                    "op {pos}: {a} was not in {trap} when the gate executed"
                );
                assert_eq!(
                    trap_of[b.index()],
                    Some(trap),
                    "op {pos}: {b} was not in {trap} when the gate executed"
                );
            }
            ScheduledOp::Shuttle { qubit, from_trap, to_trap, .. } => {
                assert_eq!(
                    trap_of[qubit.index()],
                    Some(to_trap),
                    "op {pos}: shuttle destination disagrees with later history"
                );
                trap_of[qubit.index()] = Some(from_trap);
            }
            ScheduledOp::SingleQubitGate { .. } | ScheduledOp::IonReorder { .. } => {}
        }
    }
    for (q, trap) in trap_of.iter().enumerate() {
        assert!(trap.is_some(), "qubit {q} has no initial trap after replay");
    }
}
