//! Determinism contract of the parallel candidate scorer.
//!
//! The scheduler's scoring crew (`CompilerConfig::scoring_threads`) must
//! be invisible in every output: compiled programs, final placements and
//! `SchedulerStats` are **bit-identical** at any thread count — to each
//! other, to the serial path, and to the straight-line Algorithm 1
//! transcription (`Scheduler::run_reference`). These tests pin that
//! contract across the checked-in workloads corpus, every `CompilerKind`,
//! random circuits/devices, and the stall-fallback path the crew also
//! shards.

use proptest::prelude::*;
use ssync_arch::{Device, QccdTopology};
use ssync_baselines::CompilerKind;
use ssync_circuit::generators::random_two_qubit_circuit;
use ssync_circuit::Circuit;
use ssync_core::{initial, CompilerConfig, Scheduler};
use std::path::PathBuf;

/// Thread counts every test sweeps: serial, the smallest crew, and a
/// crew larger than any pass is wide on the small corpus devices.
const THREADS: [usize; 3] = [1, 2, 8];

fn corpus() -> Vec<(String, Circuit)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../workloads");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("workloads/ checked in")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "qasm"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|path| {
            let name = path.file_stem().expect("file name").to_string_lossy().into_owned();
            let source = std::fs::read_to_string(&path).expect("readable corpus file");
            let out = ssync_qasm::parse_named(&source, &name)
                .unwrap_or_else(|e| panic!("{name} fails to parse: {e}"));
            (name, out.circuit)
        })
        .collect()
}

/// Runs the scheduler at every thread count (plus the reference
/// transcription) from one initial placement and asserts every run is
/// bit-identical: ops, stats and final placement.
fn assert_thread_invariant(
    label: &str,
    circuit: &Circuit,
    topo: &QccdTopology,
    base: &CompilerConfig,
) {
    let device = Device::build(topo.clone(), base.weights);
    let placement = initial::build_placement(circuit, &device, base);

    let reference = {
        let mut scheduler = Scheduler::new(&device, base);
        let (program, final_placement) =
            scheduler.run_reference(circuit, placement.clone()).expect("reference completes");
        (program, scheduler.stats(), final_placement)
    };

    for threads in THREADS {
        let config = base.with_scoring_threads(threads);
        let mut scheduler = Scheduler::new(&device, &config);
        let (program, final_placement) =
            scheduler.run(circuit, placement.clone()).expect("scheduler completes");
        assert_eq!(
            program.ops(),
            reference.0.ops(),
            "{label}: ops diverge from reference at scoring_threads={threads}"
        );
        assert_eq!(
            scheduler.stats(),
            reference.1,
            "{label}: stats diverge at scoring_threads={threads}"
        );
        assert_eq!(
            final_placement, reference.2,
            "{label}: final placement diverges at scoring_threads={threads}"
        );
        final_placement.validate().expect("final placement is consistent");
    }
}

/// Every corpus workload, compiled on a tight grid that forces routing:
/// bit-identical at 1, 2 and 8 scoring threads and to the reference.
#[test]
fn corpus_is_bit_identical_at_every_thread_count() {
    let topo = QccdTopology::grid(2, 2, 4);
    for (name, circuit) in corpus() {
        if circuit.num_qubits() + 1 > topo.total_capacity() || circuit.two_qubit_gate_count() == 0 {
            continue;
        }
        assert_thread_invariant(&name, &circuit, &topo, &CompilerConfig::default());
    }
}

/// The full compiler entry (`CompilerKind::compile_on`) is thread-count
/// invariant for every kind: S-SYNC exercises the crew, the greedy
/// baselines ignore the knob — either way the outputs match serial
/// bit-for-bit.
#[test]
fn every_compiler_kind_is_thread_count_invariant() {
    let circuit = random_two_qubit_circuit(12, 60, 7);
    let base = CompilerConfig::default();
    let device = Device::build(QccdTopology::grid(2, 2, 5), base.weights);
    for kind in CompilerKind::ALL {
        let serial =
            kind.compile_on(&device, &circuit, &base.with_scoring_threads(1)).expect("compiles");
        for threads in [2, 8] {
            let config = base.with_scoring_threads(threads);
            let got = kind.compile_on(&device, &circuit, &config).expect("compiles");
            assert_eq!(
                serial.program().ops(),
                got.program().ops(),
                "{kind:?} ops diverge at scoring_threads={threads}"
            );
            assert_eq!(
                serial.final_placement(),
                got.final_placement(),
                "{kind:?} placement diverges at scoring_threads={threads}"
            );
            assert_eq!(
                serial.report(),
                got.report(),
                "{kind:?} evaluation diverges at scoring_threads={threads}"
            );
        }
    }
}

/// `max_stall_iterations = 0` drives the scheduler into the deterministic
/// fallback router almost immediately on a tight device, so the sharded
/// frontier-gate loop (not just the candidate loop) is exercised — and
/// must match the serial and reference fallback gate choice exactly.
#[test]
fn stall_fallback_path_is_thread_count_invariant() {
    let config = CompilerConfig { max_stall_iterations: 0, ..CompilerConfig::default() };
    let topo = QccdTopology::grid(2, 2, 4);
    let mut fallback_seen = false;
    for seed in 0..6u64 {
        let circuit = random_two_qubit_circuit(12, 70, seed);
        let device = Device::build(topo.clone(), config.weights);
        let placement = initial::build_placement(&circuit, &device, &config);
        let mut scheduler = Scheduler::new(&device, &config);
        scheduler.run(&circuit, placement).expect("completes");
        fallback_seen |= scheduler.stats().fallback_routed_gates > 0;
        assert_thread_invariant(&format!("stall seed {seed}"), &circuit, &topo, &config);
    }
    assert!(fallback_seen, "no run engaged the fallback router — the test lost its teeth");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random circuits on random devices: 2- and 8-thread runs are
    /// bit-identical to serial and to the reference transcription.
    #[test]
    fn random_circuits_are_bit_identical_at_any_thread_count(
        traps in 2usize..4,
        capacity in 4usize..6,
        qubits in 6usize..12,
        gates in 10usize..60,
        seed in 0u64..1_000,
    ) {
        let topo = QccdTopology::grid(2, traps, capacity);
        prop_assume!(topo.total_capacity() > qubits + 1);
        let circuit = random_two_qubit_circuit(qubits, gates, seed);
        assert_thread_invariant(
            &format!("random seed {seed}"),
            &circuit,
            &topo,
            &CompilerConfig::default(),
        );
    }
}
