//! Property-based tests over the whole pipeline: random circuits on random
//! devices must always compile into valid programs.

use proptest::prelude::*;
use ssync_arch::{Placement, QccdTopology, SlotId};
use ssync_circuit::generators::random_two_qubit_circuit;
use ssync_circuit::{Circuit, DependencyDag, Qubit};
use ssync_core::{IdealizationMode, SSyncCompiler};
use ssync_integration::check_program_invariants;

/// Strategy over small but non-trivial QCCD devices.
fn device_strategy() -> impl Strategy<Value = QccdTopology> {
    prop_oneof![
        (2usize..5, 3usize..8).prop_map(|(traps, cap)| QccdTopology::linear(traps, cap)),
        (2usize..4, 2usize..4, 3usize..6).prop_map(|(r, c, cap)| QccdTopology::grid(r, c, cap)),
        (3usize..6, 3usize..7).prop_map(|(traps, cap)| QccdTopology::fully_connected(traps, cap)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_circuits_compile_into_valid_programs(
        device in device_strategy(),
        qubits in 4usize..14,
        gates in 1usize..60,
        seed in 0u64..1_000,
    ) {
        prop_assume!(device.total_capacity() > qubits + 1);
        let circuit = random_two_qubit_circuit(qubits, gates, seed);
        let outcome = SSyncCompiler::default().compile(&circuit, &device).unwrap();
        check_program_invariants(&circuit, &device, &outcome);
    }

    #[test]
    fn idealization_never_lowers_the_success_rate(
        qubits in 4usize..12,
        gates in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let circuit = random_two_qubit_circuit(qubits, gates, seed);
        let device = QccdTopology::grid(2, 2, 5);
        prop_assume!(device.total_capacity() > qubits + 1);
        let compiler = SSyncCompiler::default();
        let outcome = compiler.compile(&circuit, &device).unwrap();
        let tracer = compiler.tracer();
        let base = outcome.report().success_rate;
        for mode in [IdealizationMode::PerfectShuttle, IdealizationMode::PerfectSwap, IdealizationMode::Ideal] {
            prop_assert!(outcome.evaluate_with(&tracer, mode).success_rate >= base - 1e-12);
        }
    }

    #[test]
    fn dag_execution_covers_every_gate_exactly_once(
        qubits in 2usize..16,
        gates in 0usize..80,
        seed in 0u64..1_000,
    ) {
        let circuit = random_two_qubit_circuit(qubits.max(2), gates, seed);
        let mut dag = DependencyDag::from_circuit(&circuit);
        let mut executed = 0usize;
        while !dag.is_complete() {
            let id = dag.frontier()[0];
            dag.execute(id);
            executed += 1;
        }
        prop_assert_eq!(executed, circuit.two_qubit_gate_count());
    }

    #[test]
    fn placement_swaps_preserve_bijection(
        cap in 3usize..8,
        swaps in proptest::collection::vec((0usize..16, 0usize..16), 0..40),
    ) {
        let device = QccdTopology::linear(3, cap);
        let slots = device.total_capacity();
        let qubits = slots / 2;
        let mut placement = Placement::new(&device, qubits);
        for q in 0..qubits {
            placement.place(Qubit(q as u32), SlotId((q * 2) as u32));
        }
        for (a, b) in swaps {
            let a = SlotId((a % slots) as u32);
            let b = SlotId((b % slots) as u32);
            // Only exchange within/between traps when the graph would allow
            // *some* operation; the placement primitive itself is total.
            placement.swap_slots(a, b);
            prop_assert!(placement.validate().is_ok());
        }
        prop_assert_eq!(placement.num_placed(), qubits);
    }

    #[test]
    fn circuit_depth_is_bounded_by_gate_count(
        qubits in 2usize..20,
        gates in 0usize..120,
        seed in 0u64..1_000,
    ) {
        let circuit = random_two_qubit_circuit(qubits.max(2), gates, seed);
        prop_assert!(circuit.two_qubit_depth() <= circuit.two_qubit_gate_count());
        let stats = circuit.stats();
        prop_assert_eq!(stats.two_qubit_gates + stats.single_qubit_gates, stats.total_gates);
    }
}

/// Non-proptest sanity check that the property harness itself is exercised.
#[test]
fn property_file_smoke() {
    let circuit: Circuit = random_two_qubit_circuit(6, 10, 1);
    assert_eq!(circuit.two_qubit_gate_count(), 10);
}
