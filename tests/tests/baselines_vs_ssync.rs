//! Cross-compiler comparisons: S-SYNC should (in aggregate) shuttle less
//! and succeed more often than the greedy baselines — the headline claim of
//! the paper, checked here at laptop-friendly sizes.

use ssync_arch::QccdTopology;
use ssync_baselines::{DaiCompiler, MuraliCompiler};
use ssync_circuit::generators::{alt_ansatz, cuccaro_adder, qaoa_nearest_neighbor, qft};
use ssync_circuit::Circuit;
use ssync_core::SSyncCompiler;

fn suite() -> Vec<(Circuit, QccdTopology)> {
    vec![
        (qft(20), QccdTopology::grid(2, 2, 7)),
        (qft(16), QccdTopology::linear(3, 7)),
        (cuccaro_adder(10), QccdTopology::grid(2, 2, 7)),
        (qaoa_nearest_neighbor(20, 3), QccdTopology::grid(2, 3, 5)),
        (alt_ansatz(20, 3), QccdTopology::linear(4, 6)),
    ]
}

#[test]
fn ssync_shuttles_less_than_baselines_in_aggregate() {
    let ssync = SSyncCompiler::default();
    let murali = MuraliCompiler::default();
    let dai = DaiCompiler::default();
    let mut totals = [0usize; 3];
    for (circuit, device) in suite() {
        let so = ssync.compile(&circuit, &device).unwrap();
        let s = so.counts().shuttles;
        let m = murali.compile(&circuit, &device).unwrap().counts().shuttles;
        let d = dai.compile(&circuit, &device).unwrap().counts().shuttles;
        println!(
            "{:<12} on {:<6}: ssync {:>4} (swaps {:>4}, fallback {:>3}) murali {:>4} dai {:>4}",
            circuit.name(),
            device.name(),
            s,
            so.counts().swap_gates,
            so.scheduler_stats().fallback_routed_gates,
            m,
            d
        );
        totals[0] += s;
        totals[1] += m;
        totals[2] += d;
    }
    assert!(
        totals[0] < totals[1],
        "S-SYNC ({}) should shuttle less than Murali ({}) over the suite",
        totals[0],
        totals[1]
    );
    assert!(
        totals[0] < totals[2],
        "S-SYNC ({}) should shuttle less than Dai ({}) over the suite",
        totals[0],
        totals[2]
    );
}

#[test]
fn ssync_success_rate_is_competitive_in_aggregate() {
    let ssync = SSyncCompiler::default();
    let murali = MuraliCompiler::default();
    let mut log_ssync = 0.0f64;
    let mut log_murali = 0.0f64;
    for (circuit, device) in suite() {
        let s = ssync.compile(&circuit, &device).unwrap().report().success_rate;
        let m = murali.compile(&circuit, &device).unwrap().report().success_rate;
        log_ssync += s.max(1e-30).ln();
        log_murali += m.max(1e-30).ln();
    }
    assert!(
        log_ssync >= log_murali,
        "S-SYNC's geometric-mean success rate should not be below the greedy baseline"
    );
}

#[test]
fn all_compilers_agree_on_gate_counts() {
    for (circuit, device) in suite() {
        let expected = circuit.two_qubit_gate_count();
        assert_eq!(
            SSyncCompiler::default().compile(&circuit, &device).unwrap().counts().two_qubit_gates,
            expected
        );
        assert_eq!(
            MuraliCompiler::default().compile(&circuit, &device).unwrap().counts().two_qubit_gates,
            expected
        );
        assert_eq!(
            DaiCompiler::default().compile(&circuit, &device).unwrap().counts().two_qubit_gates,
            expected
        );
    }
}
