//! Golden equivalence tests for the `ssync-service` compile service.
//!
//! The contract: a result obtained through the service — whatever the
//! worker count, however the work-stealing deal lands, whether the job
//! executed, coalesced onto an in-flight twin or was served from the
//! result cache — must be **bit-identical** to calling the compiler's
//! `compile_on` directly on the same (device, circuit, config). Any
//! divergence means the service changed the algorithm, not just where it
//! runs.

use ssync_arch::QccdTopology;
use ssync_baselines::CompilerKind;
use ssync_bench::{comparison_rows, run_compiler_on, BenchScale};
use ssync_circuit::generators::{
    bernstein_vazirani, cuccaro_adder, qaoa_nearest_neighbor, qft, random_two_qubit_circuit,
};
use ssync_circuit::Circuit;
use ssync_core::{CacheBounds, CompileOutcome, CompilerConfig};
use ssync_service::{CompileRequest, CompileService, DeviceRegistry, Priority, TenantId};
use std::sync::Arc;

fn suite() -> Vec<Arc<Circuit>> {
    vec![
        Arc::new(qft(12)),
        Arc::new(bernstein_vazirani(14)),
        Arc::new(cuccaro_adder(5)),
        Arc::new(qaoa_nearest_neighbor(12, 2)),
        Arc::new(random_two_qubit_circuit(10, 50, 5)),
    ]
}

fn device_topologies() -> Vec<(&'static str, QccdTopology)> {
    vec![("grid-2x2c6", QccdTopology::grid(2, 2, 6)), ("linear-3x7", QccdTopology::linear(3, 7))]
}

fn assert_same_outcome(a: &CompileOutcome, b: &CompileOutcome, what: &str) {
    assert_eq!(a.program().ops(), b.program().ops(), "op sequences diverge: {what}");
    assert_eq!(a.final_placement(), b.final_placement(), "placements diverge: {what}");
    assert_eq!(a.scheduler_stats(), b.scheduler_stats(), "stats diverge: {what}");
    assert_eq!(
        a.report().success_rate.to_bits(),
        b.report().success_rate.to_bits(),
        "reports diverge: {what}"
    );
}

/// The golden test the tentpole hangs on: the full (device × circuit ×
/// compiler) product through the service, at worker counts 1, 2 and 8,
/// against direct sequential `compile_on` calls — all four compiler kinds.
#[test]
fn service_results_are_bit_identical_to_direct_compile_at_any_worker_count() {
    let config = CompilerConfig::default();
    let circuits = suite();

    // Direct reference results, computed once, sequentially.
    let reference_registry = DeviceRegistry::new();
    let mut reference: Vec<(String, CompileOutcome)> = Vec::new();
    for (name, topo) in device_topologies() {
        let device = reference_registry.get_or_build(name, config.weights, || topo.clone());
        for circuit in &circuits {
            for kind in CompilerKind::ALL {
                let outcome =
                    run_compiler_on(kind, device.device(), circuit, &config).expect("compiles");
                reference.push((format!("{kind:?} on {name} / {}", circuit.name()), outcome));
            }
        }
    }

    for workers in [1usize, 2, 8] {
        let service = CompileService::with_workers(workers);
        let mut handles = Vec::new();
        for (name, topo) in device_topologies() {
            let device = service.registry().get_or_build(name, config.weights, || topo.clone());
            for circuit in &circuits {
                for kind in CompilerKind::ALL {
                    handles.push(service.submit(CompileRequest::new(
                        Arc::clone(&device),
                        Arc::clone(circuit),
                        kind,
                        config,
                    )));
                }
            }
        }
        assert_eq!(handles.len(), reference.len());
        for ((what, expected), handle) in reference.iter().zip(&handles) {
            let got = handle.wait().expect("compiles");
            assert_same_outcome(&got, expected, &format!("{what} with {workers} workers"));
        }
    }
}

/// Batch submission (round-robin deal + stealing) is just as bit-identical
/// as one-by-one submission.
#[test]
fn batch_submission_matches_direct_compile() {
    let config = CompilerConfig::default();
    let circuits = suite();
    let service = CompileService::with_workers(4);
    let device = service
        .registry()
        .get_or_build("batch-dev", config.weights, || QccdTopology::grid(2, 2, 6));
    let requests: Vec<CompileRequest> = circuits
        .iter()
        .flat_map(|circuit| {
            CompilerKind::ALL.into_iter().map(|kind| {
                CompileRequest::new(Arc::clone(&device), Arc::clone(circuit), kind, config)
            })
        })
        .collect();
    let handles = service.submit_batch(requests);
    let mut i = 0;
    for circuit in &circuits {
        for kind in CompilerKind::ALL {
            let got = handles[i].wait().expect("compiles");
            let direct =
                run_compiler_on(kind, device.device(), circuit, &config).expect("compiles");
            assert_same_outcome(&got, &direct, &format!("{kind:?} / {}", circuit.name()));
            i += 1;
        }
    }
}

/// A resubmitted request is served from the result cache: same `Arc`, no
/// second compile, and a config change still forces a fresh compile.
#[test]
fn cache_serves_identical_resubmissions_and_respects_config_changes() {
    let config = CompilerConfig::default();
    let service = CompileService::with_workers(2);
    let device =
        service.registry().get_or_build_named("G-2x2", config.weights).expect("known topology");
    let circuit = Arc::new(qft(12));
    let submit = |cfg: &CompilerConfig| {
        service
            .submit(CompileRequest::new(
                Arc::clone(&device),
                Arc::clone(&circuit),
                CompilerKind::SSync,
                *cfg,
            ))
            .wait()
            .expect("compiles")
    };

    let first = submit(&config);
    let second = submit(&config);
    assert!(Arc::ptr_eq(&first, &second), "identical resubmit must be the cached Arc");
    let metrics = service.metrics();
    assert_eq!(metrics.cache.hits, 1);
    assert_eq!(metrics.jobs_executed(), 1);

    // An output-affecting config change must miss and recompile …
    let changed = submit(&config.with_decay(0.01));
    assert!(!Arc::ptr_eq(&first, &changed));
    assert_eq!(service.metrics().jobs_executed(), 2);
    // … while a parallelism-only change shares the cache entry.
    let same_output = submit(&config.with_batch_workers(5));
    assert!(Arc::ptr_eq(&first, &same_output), "batch_workers never changes output");
}

/// The priority/fairness golden test: tagging the full (device × circuit
/// × compiler) product with a mix of priorities and tenants — including a
/// reweighted tenant — reorders *when* jobs run but never changes a
/// single bit of any output. Scheduling is pure policy.
#[test]
fn priority_and_tenant_scheduling_changes_ordering_never_output() {
    let config = CompilerConfig::default();
    let circuits = suite();

    // Direct reference results, computed once, sequentially.
    let reference_registry = DeviceRegistry::new();
    let mut reference: Vec<(String, CompileOutcome)> = Vec::new();
    for (name, topo) in device_topologies() {
        let device = reference_registry.get_or_build(name, config.weights, || topo.clone());
        for circuit in &circuits {
            for kind in CompilerKind::ALL {
                let outcome =
                    run_compiler_on(kind, device.device(), circuit, &config).expect("compiles");
                reference.push((format!("{kind:?} on {name} / {}", circuit.name()), outcome));
            }
        }
    }

    // The same product through the service, every job tagged: priorities
    // cycle through High/Normal/Batch and each circuit belongs to its own
    // tenant, one of them double-weighted.
    for workers in [1usize, 4] {
        let service = CompileService::with_workers(workers);
        service.set_tenant_weight(TenantId::from_name("tenant-1"), 2.0);
        let mut requests = Vec::new();
        let mut tag = 0usize;
        for (name, topo) in device_topologies() {
            let device = service.registry().get_or_build(name, config.weights, || topo.clone());
            for (c, circuit) in circuits.iter().enumerate() {
                for kind in CompilerKind::ALL {
                    requests.push(
                        CompileRequest::new(Arc::clone(&device), Arc::clone(circuit), kind, config)
                            .with_priority(Priority::ALL[tag % 3])
                            .with_tenant(TenantId::from_name(&format!("tenant-{c}"))),
                    );
                    tag += 1;
                }
            }
        }
        let handles = service.submit_batch(requests);
        assert_eq!(handles.len(), reference.len());
        for ((what, expected), handle) in reference.iter().zip(&handles) {
            let got = handle.wait().expect("compiles");
            assert_same_outcome(&got, expected, &format!("{what}, {workers} workers, tagged"));
        }
        let metrics = service.metrics();
        let by_priority: u64 = metrics.submitted_by_priority.iter().sum();
        assert_eq!(by_priority, reference.len() as u64, "every submission was tagged");
        assert!(metrics.submitted_at(Priority::High) > 0);
        assert!(metrics.submitted_at(Priority::Batch) > 0);
    }
}

/// A bounded cache under eviction pressure still never changes results:
/// evicted entries simply recompile to the identical outcome.
#[test]
fn eviction_pressure_never_changes_results() {
    let config = CompilerConfig::default();
    let circuits = suite();
    let service =
        CompileService::builder().workers(2).cache_bounds(CacheBounds::with_max_entries(2)).build();
    let device = service
        .registry()
        .get_or_build("evict-dev", config.weights, || QccdTopology::grid(2, 2, 6));
    // Two passes over the suite: the second pass mostly misses (capacity 2
    // << suite size) and recompiles.
    for pass in 0..2 {
        for circuit in &circuits {
            let got = service
                .submit(CompileRequest::new(
                    Arc::clone(&device),
                    Arc::clone(circuit),
                    CompilerKind::SSync,
                    config,
                ))
                .wait()
                .expect("compiles");
            let direct = run_compiler_on(CompilerKind::SSync, device.device(), circuit, &config)
                .expect("compiles");
            assert_same_outcome(&got, &direct, &format!("pass {pass} / {}", circuit.name()));
        }
    }
    let stats = service.cache().stats();
    assert!(stats.evictions > 0, "the bounded cache actually evicted");
    assert!(stats.entries <= 2, "entry cap holds");
}

/// Registry fingerprints are stable across independent registries and
/// track device content, not names.
#[test]
fn registry_fingerprints_are_stable_and_content_derived() {
    let weights = CompilerConfig::default().weights;
    let a = DeviceRegistry::new().get_or_build_named("G-2x3", weights).expect("known");
    let b = DeviceRegistry::new().get_or_build_named("G-2x3", weights).expect("known");
    assert_eq!(a.fingerprint(), b.fingerprint(), "same machine, same fingerprint");

    let renamed =
        DeviceRegistry::new().get_or_build("custom-name", weights, || QccdTopology::grid(2, 3, 17));
    assert_eq!(a.fingerprint(), renamed.fingerprint(), "names do not affect fingerprints");

    let bigger =
        DeviceRegistry::new().get_or_build("G-2x3-cap18", weights, || QccdTopology::grid(2, 3, 18));
    assert_ne!(a.fingerprint(), bigger.fingerprint(), "capacity changes the fingerprint");
}

/// The rewired comparison sweep (Figs. 8–10) produces exactly the rows the
/// historical nested compile loop produced.
#[test]
fn comparison_rows_match_the_direct_nested_loop() {
    let config = CompilerConfig::default();
    let rows = comparison_rows(BenchScale::Small, &config, |_| {});
    assert!(!rows.is_empty());
    let registry = DeviceRegistry::new();
    for row in &rows {
        let device = registry.get_or_build_named(&row.topology, config.weights).expect("known");
        let app_qubits: usize =
            row.app.rsplit('_').next().expect("app label has a size").parse().expect("numeric");
        let circuit = ssync_bench::scaled_app(
            match row.app.split('_').next().expect("app label") {
                "QFT" => ssync_bench::AppKind::Qft,
                "Adder" => ssync_bench::AppKind::Adder,
                "QAOA" => ssync_bench::AppKind::Qaoa,
                "ALT" => ssync_bench::AppKind::Alt,
                "BV" => ssync_bench::AppKind::Bv,
                other => panic!("unexpected app label {other}"),
            },
            app_qubits,
        );
        let direct =
            run_compiler_on(row.compiler, device.device(), &circuit, &config).expect("compiles");
        assert_eq!(row.shuttles, direct.counts().shuttles, "{} on {}", row.app, row.topology);
        assert_eq!(row.swaps, direct.counts().swap_gates, "{} on {}", row.app, row.topology);
        assert_eq!(
            row.success_rate.to_bits(),
            direct.report().success_rate.to_bits(),
            "{} on {}",
            row.app,
            row.topology
        );
    }
}
