//! Golden corpus runs for the permutation-routing compiler.
//!
//! Every checked-in `workloads/` circuit that fits must compile under
//! `CompilerKind::PermRoute` on the tight corpus devices — the
//! `grid(2, 2, 4)` cell the determinism suite routes on and the bench
//! corpus's `tiny-G-2x2c4` — with *valid* placements: the backward
//! placement-replay checker proves every gate's qubits were co-trapped at
//! execution time. The same replay runs over every existing kind, so the
//! checker itself is pinned against four independent compilers.

use ssync_arch::{Device, QccdTopology};
use ssync_baselines::CompilerKind;
use ssync_bench::qasm_corpus::{corpus_dir, corpus_topologies, load_corpus, CorpusEntry};
use ssync_core::{CompilerConfig, SwapScheduleKind};
use ssync_integration::{check_placement_replay, check_program_invariants};

fn corpus() -> Vec<CorpusEntry> {
    load_corpus(&corpus_dir()).expect("workloads/ corpus checked in")
}

fn tight_devices() -> Vec<(String, QccdTopology)> {
    let mut devices = vec![("grid-2x2c4".to_string(), QccdTopology::grid(2, 2, 4))];
    devices.extend(
        corpus_topologies()
            .into_iter()
            .filter(|(name, _)| *name == "tiny-G-2x2c4")
            .map(|(name, topo)| (name.to_string(), topo)),
    );
    assert_eq!(devices.len(), 2, "the bench corpus must keep its tiny cell");
    devices
}

/// Every fitting corpus circuit compiles under PermRoute (both schedule
/// kinds) on both tight devices, with program invariants and the
/// placement replay green.
#[test]
fn corpus_compiles_under_perm_route_on_tight_devices() {
    let mut compiled = 0usize;
    for (device_name, topo) in tight_devices() {
        let config = CompilerConfig::default();
        let device = Device::build(topo.clone(), config.weights);
        for entry in corpus() {
            if entry.circuit.num_qubits() + 1 > topo.total_capacity() {
                continue;
            }
            for schedule in SwapScheduleKind::ALL {
                let config = config.with_perm_schedule(schedule);
                let outcome = CompilerKind::PermRoute
                    .compile_on(&device, &entry.circuit, &config)
                    .unwrap_or_else(|e| {
                        panic!("{} fails on {device_name} under {schedule:?}: {e}", entry.name)
                    });
                check_program_invariants(&entry.circuit, &topo, &outcome);
                check_placement_replay(&entry.circuit, &outcome);
                compiled += 1;
            }
        }
    }
    assert!(compiled >= 10, "corpus golden lost its teeth: only {compiled} compiles ran");
}

/// The replay checker is shared with the existing kinds: every compiler's
/// corpus output satisfies the same physical-validity contract.
#[test]
fn every_kind_passes_the_placement_replay_on_the_corpus_cell() {
    let topo = QccdTopology::grid(2, 2, 4);
    let config = CompilerConfig::default();
    let device = Device::build(topo.clone(), config.weights);
    for entry in corpus() {
        if entry.circuit.num_qubits() + 1 > topo.total_capacity() {
            continue;
        }
        for kind in CompilerKind::ALL {
            let outcome = kind
                .compile_on(&device, &entry.circuit, &config)
                .unwrap_or_else(|e| panic!("{} fails under {kind:?}: {e}", entry.name));
            check_placement_replay(&entry.circuit, &outcome);
        }
    }
}
