//! The QASM front-end's workspace-level guarantees:
//!
//! 1. **Round-trip** — `parse(export(c))` preserves `content_hash` for
//!    every generator app and for random circuits over the full gate
//!    set (property-based).
//! 2. **Golden corpus** — every checked-in `workloads/*.qasm` file
//!    parses, and compiles under **all four** `CompilerKind`s, with the
//!    compile-service output bit-identical to direct `compile_on`.

use proptest::prelude::*;
use ssync_baselines::CompilerKind;
use ssync_circuit::generators::{self, random_two_qubit_circuit};
use ssync_circuit::{Circuit, Gate, Qubit};
use ssync_core::CompilerConfig;
use ssync_qasm::{export, parse};
use ssync_service::{CompileRequest, CompileService};
use std::path::PathBuf;
use std::sync::Arc;

fn assert_round_trip(circuit: &Circuit) {
    let text = export(circuit);
    let out = parse(&text).unwrap_or_else(|e| panic!("{} fails to re-import: {e}", circuit.name()));
    assert_eq!(
        out.circuit.content_hash(),
        circuit.content_hash(),
        "{} changed through export→import",
        circuit.name()
    );
    assert_eq!(out.circuit.gates(), circuit.gates(), "{}", circuit.name());
    assert_eq!(out.circuit.num_qubits(), circuit.num_qubits(), "{}", circuit.name());
}

/// Every generator application round-trips at several sizes (the
/// acceptance criterion's deterministic half).
#[test]
fn all_generator_apps_round_trip_content_hashes() {
    let circuits = [
        generators::qft(8),
        generators::qft(16),
        generators::cuccaro_adder(4),
        generators::cuccaro_adder(8),
        generators::bernstein_vazirani(8),
        generators::bernstein_vazirani_with_secret(&[
            true, false, true, true, false, false, true, true, false, true,
        ]),
        generators::qaoa_nearest_neighbor(8, 2),
        generators::qaoa_random_graph(8, 2, 0.5, 7),
        generators::alt_ansatz(8, 2),
        generators::heisenberg_chain(6, 3),
    ];
    for circuit in &circuits {
        assert_round_trip(circuit);
    }
}

/// A circuit drawing every gate kind with adversarial angles.
fn gate_soup(qubits: usize, gates: usize, seed: u64) -> Circuit {
    let mut c = Circuit::with_name(qubits, format!("soup_{qubits}_{gates}_{seed}"));
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state
    };
    for _ in 0..gates {
        let a = Qubit((next() % qubits as u64) as u32);
        let mut b = Qubit((next() % qubits as u64) as u32);
        if b == a {
            b = Qubit((a.0 + 1) % qubits as u32);
        }
        // Angles spanning signs, magnitudes and awkward expansions.
        let angle = match next() % 6 {
            0 => f64::from_bits(0x3FF0_0000_0000_0000 | (next() >> 12)), // [1, 2)
            1 => -(next() as f64) / (u64::MAX as f64) * std::f64::consts::PI,
            2 => (next() as f64).recip(),
            3 => 1.0 / 3.0 * (next() % 100) as f64,
            4 => 0.1 + 0.2 + (next() % 10) as f64,
            _ => (next() % 1_000_000) as f64 * 1e-9,
        };
        let gate = match next() % 13 {
            0 => Gate::H(a),
            1 => Gate::X(a),
            2 => Gate::Rx(a, angle),
            3 => Gate::Ry(a, angle),
            4 => Gate::Rz(a, angle),
            5 => Gate::Cx(a, b),
            6 => Gate::Cz(a, b),
            7 => Gate::Cp(a, b, angle),
            8 => Gate::Ms(a, b),
            9 => Gate::Rzz(a, b, angle),
            10 => Gate::Rxx(a, b, angle),
            11 => Gate::Ryy(a, b, angle),
            _ => Gate::Swap(a, b),
        };
        c.push(gate);
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random circuits over the full gate set (all 13 kinds, adversarial
    /// float angles) round-trip exactly.
    #[test]
    fn random_gate_soup_round_trips(
        qubits in 2usize..24,
        gates in 0usize..120,
        seed in 0u64..1_000_000,
    ) {
        assert_round_trip(&gate_soup(qubits, gates, seed));
    }

    /// The generator used by the batch/service golden tests round-trips
    /// at every size it is drawn at.
    #[test]
    fn random_two_qubit_circuits_round_trip(
        qubits in 2usize..20,
        gates in 0usize..80,
        seed in 0u64..1_000,
    ) {
        assert_round_trip(&random_two_qubit_circuit(qubits, gates, seed));
    }
}

fn workloads_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../workloads")
}

fn corpus() -> Vec<(String, Circuit)> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(workloads_dir())
        .expect("workloads/ checked in")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "qasm"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 9, "corpus must keep its six exports + three hand-written files");
    paths
        .into_iter()
        .map(|path| {
            let name = path.file_stem().unwrap().to_str().unwrap().to_string();
            let source = std::fs::read_to_string(&path).expect("readable corpus file");
            let out = ssync_qasm::parse_named(&source, &name)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            (name, out.circuit)
        })
        .collect()
}

/// Golden: every corpus file parses, exports back out, and re-imports
/// with an unchanged hash (export is total over parsed circuits).
#[test]
fn every_corpus_file_parses_and_round_trips() {
    for (name, circuit) in corpus() {
        assert!(!circuit.is_empty(), "{name} lowered to an empty circuit");
        assert_round_trip(&circuit);
    }
}

/// Golden: every corpus file compiles under all four compiler kinds on a
/// device that forces real routing, and the compile-service output is
/// bit-identical to direct `compile_on` — the service changes *where* a
/// parsed workload compiles, never *what* it produces.
#[test]
fn corpus_compiles_under_all_kinds_service_equals_direct() {
    let config = CompilerConfig::default();
    let service = CompileService::with_workers(2);
    // Small traps (capacity 4) so even 6–10-qubit workloads shuttle.
    let registered = service
        .registry()
        .get_or_build("tiny-G-2x2c4", config.weights, || ssync_arch::QccdTopology::grid(2, 2, 4));
    let circuits: Vec<(String, Arc<Circuit>)> =
        corpus().into_iter().map(|(name, c)| (name, Arc::new(c))).collect();
    let requests = circuits.iter().flat_map(|(_, circuit)| {
        CompilerKind::ALL.into_iter().map(|kind| {
            CompileRequest::new(Arc::clone(&registered), Arc::clone(circuit), kind, config)
        })
    });
    let handles = service.submit_batch(requests);
    for ((name, circuit), chunk) in circuits.iter().zip(handles.chunks(CompilerKind::ALL.len())) {
        for (kind, handle) in CompilerKind::ALL.into_iter().zip(chunk) {
            let via_service = handle
                .wait()
                .unwrap_or_else(|e| panic!("{name} under {kind:?} fails to compile: {e}"));
            let direct = kind
                .compile_on(registered.device(), circuit, &config)
                .expect("direct compile succeeds");
            assert_eq!(
                direct.program().ops(),
                via_service.program().ops(),
                "{name} under {kind:?}: service ops diverge from compile_on"
            );
            assert_eq!(
                direct.final_placement(),
                via_service.final_placement(),
                "{name} under {kind:?}: placements diverge"
            );
            assert_eq!(
                direct.report().success_rate.to_bits(),
                via_service.report().success_rate.to_bits(),
                "{name} under {kind:?}: reports diverge"
            );
        }
    }
}
