//! The permutation-routing test battery.
//!
//! Pins the contracts future routing work must keep green:
//!
//! * **schedule validity** — every [`SwapSchedule`] implementation
//!   composes to the identity-check target for random permutations up to
//!   n = 128 (each object lands exactly at its target rank);
//! * **sub-quadratic bound** — `RecursiveSplitTwo`'s comparator count
//!   stays under the O(n^1.6) bound constant, and from n = 32 up it emits
//!   *strictly fewer* swaps than `BubbleSort`;
//! * **oracle exactness** — bubble-sort's selected-swap count equals the
//!   permutation's inversion count, the adjacent-swap optimum;
//! * **cost monotonicity** — the Eq. 2 swap/meeting cost terms grow
//!   strictly with ion distance, chain length, hops and occupancy;
//! * **compiler-level equivalence** — `CompilerKind::PermRoute` under the
//!   bubble oracle and the production schedule agree on everything except
//!   the SWAP-gate stream, and its output is bit-identical at every
//!   scoring-thread count.

use proptest::prelude::*;
use ssync_arch::{Device, QccdTopology, WeightConfig};
use ssync_baselines::CompilerKind;
use ssync_circuit::generators::random_two_qubit_circuit;
use ssync_core::{
    meeting_cost, swap_cost, BubbleSort, CompilerConfig, RecursiveSplitTwo, SwapSchedule,
    SwapScheduleKind,
};
use ssync_sim::ScheduledOp;

/// Deterministic xorshift shuffle of `0..n` — proptest supplies the seed,
/// the shuffle keeps the case reproducible from it.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for i in (1..n).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        v.swap(i, (state as usize) % (i + 1));
    }
    v
}

fn inversions(perm: &[usize]) -> usize {
    let mut count = 0;
    for i in 0..perm.len() {
        for j in i + 1..perm.len() {
            if perm[i] > perm[j] {
                count += 1;
            }
        }
    }
    count
}

/// Applies the selected swaps of `kind` to labelled objects and asserts
/// the realisation is exact: object `o` (starting at rank `o`) ends at
/// rank `targets[o]`, and the in-place permutation is fully sorted.
fn assert_composes_to_identity(kind: SwapScheduleKind, targets: &[usize]) -> usize {
    let n = targets.len();
    let mut scratch = targets.to_vec();
    let mut objects: Vec<usize> = (0..n).collect();
    let mut selected = 0usize;
    for (fired, i, j) in kind.permutation_to_swap_schedule(&mut scratch) {
        if fired {
            objects.swap(i, j);
            selected += 1;
        }
    }
    assert_eq!(scratch, (0..n).collect::<Vec<_>>(), "{kind:?}: not sorted in place");
    for (rank, &object) in objects.iter().enumerate() {
        assert_eq!(targets[object], rank, "{kind:?}: object {object} ended at rank {rank}");
    }
    selected
}

/// The O(n^1.6) bound constant the battery enforces. Batcher's network is
/// Θ(n·log²n), which sits below `2·n^1.6` for every n ≥ 2 (the worst
/// ratios are just above the power-of-two paddings).
fn sub_quadratic_bound(n: usize) -> usize {
    (2.0 * (n as f64).powf(1.6)).ceil() as usize
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every schedule implementation realises every random permutation
    /// up to n = 128 exactly.
    #[test]
    fn every_schedule_composes_to_the_identity_target(
        n in 1usize..129,
        seed in 0u64..1_000_000,
    ) {
        let targets = permutation(n, seed);
        for kind in SwapScheduleKind::ALL {
            assert_composes_to_identity(kind, &targets);
        }
    }

    /// Bubble-sort is the exact adjacent-swap oracle: its selected-swap
    /// count equals the inversion count of the realised permutation.
    #[test]
    fn bubble_sort_selects_exactly_the_inversion_count(
        n in 1usize..129,
        seed in 0u64..1_000_000,
    ) {
        let targets = permutation(n, seed);
        let selected = assert_composes_to_identity(SwapScheduleKind::BubbleSort, &targets);
        prop_assert_eq!(selected, inversions(&targets));
    }

    /// The production schedule stays under the O(n^1.6) bound constant
    /// and — the acceptance bar — emits strictly fewer swaps than the
    /// bubble oracle for every permutation with n ≥ 32.
    #[test]
    fn recursive_split_two_is_sub_quadratic_and_beats_bubble_from_32_up(
        n in 32usize..129,
        seed in 0u64..1_000_000,
    ) {
        let targets = permutation(n, seed);
        let mut bubble_scratch = targets.clone();
        let mut recursive_scratch = targets.clone();
        let bubble_emitted =
            BubbleSort::permutation_to_swap_schedule(&mut bubble_scratch).len();
        let recursive_emitted =
            RecursiveSplitTwo::permutation_to_swap_schedule(&mut recursive_scratch).len();
        prop_assert_eq!(bubble_scratch, recursive_scratch);
        prop_assert!(
            recursive_emitted <= sub_quadratic_bound(n),
            "n = {}: {} comparators exceed the 2·n^1.6 bound {}",
            n, recursive_emitted, sub_quadratic_bound(n)
        );
        prop_assert!(
            recursive_emitted < bubble_emitted,
            "n = {}: recursive-split-two emitted {} swaps, bubble {}",
            n, recursive_emitted, bubble_emitted
        );
    }

    /// The Eq. 2 cost terms are strictly monotone in every argument the
    /// planner ranks by: ion distance, chain length, hops and occupancy.
    #[test]
    fn cost_terms_are_strictly_monotone(
        chain_len in 2usize..32,
        ion_distance in 1usize..16,
        hops in 0usize..8,
        occupancy in 0usize..20,
    ) {
        let w = WeightConfig::default();
        prop_assert!(
            swap_cost(w, chain_len, ion_distance + 1) > swap_cost(w, chain_len, ion_distance)
        );
        prop_assert!(
            swap_cost(w, chain_len + 1, ion_distance) > swap_cost(w, chain_len, ion_distance)
        );
        let cap = 32;
        let base = meeting_cost(w, hops, hops, occupancy, cap);
        prop_assert!(meeting_cost(w, hops + 1, hops, occupancy, cap) > base);
        prop_assert!(meeting_cost(w, hops, hops + 1, occupancy, cap) > base);
        prop_assert!(meeting_cost(w, hops, hops, occupancy + 1, cap) > base);
        // The full-trap penalty dominates one more unit of congestion.
        prop_assert!(
            meeting_cost(w, hops, hops, cap, cap) - meeting_cost(w, hops, hops, cap - 1, cap)
                > meeting_cost(w, hops, hops, cap - 1, cap)
                    - meeting_cost(w, hops, hops, cap - 2, cap)
        );
    }

    /// Compiler-level equivalence oracle: PermRoute under the bubble
    /// oracle and the production schedule produce the same final
    /// placement, the same shuttle/gate/reorder stream, and differ only
    /// in SWAP gates — on random circuits over random tight grids.
    #[test]
    fn schedule_kinds_agree_on_everything_but_the_swap_stream(
        cols in 2usize..4,
        capacity in 4usize..6,
        qubits in 6usize..12,
        gates in 10usize..50,
        seed in 0u64..1_000,
    ) {
        let topo = QccdTopology::grid(2, cols, capacity);
        prop_assume!(topo.total_capacity() > qubits + 1);
        let circuit = random_two_qubit_circuit(qubits, gates, seed);
        let config = CompilerConfig::default();
        let device = Device::build(topo, config.weights);
        let outcomes: Vec<_> = SwapScheduleKind::ALL
            .iter()
            .map(|&kind| {
                CompilerKind::PermRoute
                    .compile_on(&device, &circuit, &config.with_perm_schedule(kind))
                    .expect("compiles")
            })
            .collect();
        let strip = |ops: &[ScheduledOp]| -> Vec<ScheduledOp> {
            ops.iter().filter(|op| !matches!(op, ScheduledOp::SwapGate { .. })).copied().collect()
        };
        prop_assert_eq!(outcomes[0].final_placement(), outcomes[1].final_placement());
        prop_assert_eq!(
            strip(outcomes[0].program().ops()),
            strip(outcomes[1].program().ops())
        );
        for outcome in &outcomes {
            ssync_integration::check_placement_replay(&circuit, outcome);
        }
    }
}

/// The schedule length is data-independent, so the strictly-fewer bar and
/// the sub-quadratic bound also hold deterministically for every n — not
/// just the sampled ones.
#[test]
fn emitted_schedule_lengths_hold_for_every_n_up_to_160() {
    for n in 2..=160usize {
        let bubble = BubbleSort::swap_sequence(n).len();
        let recursive = RecursiveSplitTwo::swap_sequence(n).len();
        assert_eq!(bubble, n * (n - 1) / 2, "bubble closed form at n = {n}");
        assert!(recursive <= sub_quadratic_bound(n), "bound at n = {n}: {recursive}");
        if n >= 32 {
            assert!(recursive < bubble, "strictly-fewer at n = {n}: {recursive} vs {bubble}");
        }
    }
}

/// PermRoute never consults the scoring crew, so its output must be
/// bit-identical at every `scoring_threads` value — the same contract the
/// scoring-determinism suite enforces for every kind, pinned here on the
/// battery's own workloads.
#[test]
fn perm_route_is_bit_identical_at_every_thread_count() {
    let circuit = random_two_qubit_circuit(12, 60, 17);
    let base = CompilerConfig::default();
    let device = Device::build(QccdTopology::grid(2, 2, 5), base.weights);
    let serial = CompilerKind::PermRoute
        .compile_on(&device, &circuit, &base.with_scoring_threads(1))
        .expect("compiles");
    for threads in [2, 8] {
        let got = CompilerKind::PermRoute
            .compile_on(&device, &circuit, &base.with_scoring_threads(threads))
            .expect("compiles");
        assert_eq!(serial.program().ops(), got.program().ops(), "threads = {threads}");
        assert_eq!(serial.final_placement(), got.final_placement(), "threads = {threads}");
        assert_eq!(serial.report(), got.report(), "threads = {threads}");
    }
}
