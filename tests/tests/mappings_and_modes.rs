//! Integration tests for the initial-mapping strategies, gate
//! implementations and idealisation modes working through the full
//! public pipeline.

use ssync_arch::QccdTopology;
use ssync_circuit::generators::{qaoa_nearest_neighbor, qft, table2_suite};
use ssync_core::{CompilerConfig, IdealizationMode, InitialMapping, SSyncCompiler};
use ssync_integration::check_program_invariants;
use ssync_sim::{ExecutionTracer, GateImplementation};

#[test]
fn every_initial_mapping_produces_valid_programs() {
    let circuit = qft(18);
    let device = QccdTopology::grid(2, 3, 5);
    for mapping in InitialMapping::ALL {
        let config = CompilerConfig::default().with_initial_mapping(mapping);
        let outcome = SSyncCompiler::new(config).compile(&circuit, &device).unwrap();
        check_program_invariants(&circuit, &device, &outcome);
    }
}

#[test]
fn gathering_reduces_shuttles_for_nearest_neighbor_workloads() {
    let circuit = qaoa_nearest_neighbor(20, 3);
    let device = QccdTopology::grid(2, 2, 8);
    let shuttle_count = |mapping| {
        let config = CompilerConfig::default().with_initial_mapping(mapping);
        SSyncCompiler::new(config).compile(&circuit, &device).unwrap().counts().shuttles
    };
    let gathering = shuttle_count(InitialMapping::Gathering);
    let even = shuttle_count(InitialMapping::EvenDivided);
    assert!(
        gathering <= even,
        "gathering ({gathering}) should not shuttle more than even-divided ({even})"
    );
}

#[test]
fn gate_implementations_change_time_but_not_the_schedule() {
    let circuit = qaoa_nearest_neighbor(16, 2);
    let device = QccdTopology::grid(2, 2, 6);
    let compiler = SSyncCompiler::default();
    let outcome = compiler.compile(&circuit, &device).unwrap();
    let times: Vec<f64> = GateImplementation::ALL
        .iter()
        .map(|&g| {
            ExecutionTracer { gate_impl: g, ..compiler.tracer() }
                .evaluate(outcome.program())
                .total_time_us
        })
        .collect();
    // All four evaluations reuse the identical operation stream, so the
    // operation counts are fixed while timings differ.
    assert!(times.iter().any(|&t| (t - times[0]).abs() > 1e-6));
    for t in times {
        assert!(t > 0.0);
    }
}

#[test]
fn short_range_workloads_prefer_am2_over_fm() {
    // The Fig. 13 observation, checked end-to-end.
    let circuit = qaoa_nearest_neighbor(24, 4);
    let device = QccdTopology::grid(2, 3, 10);
    let compiler = SSyncCompiler::default();
    let outcome = compiler.compile(&circuit, &device).unwrap();
    let success = |g| {
        ExecutionTracer { gate_impl: g, ..compiler.tracer() }
            .evaluate(outcome.program())
            .success_rate
    };
    assert!(success(GateImplementation::Am2) >= success(GateImplementation::Fm));
}

#[test]
fn optimality_modes_are_ordered() {
    let circuit = qft(18);
    let device = QccdTopology::grid(2, 2, 8);
    let compiler = SSyncCompiler::default();
    let outcome = compiler.compile(&circuit, &device).unwrap();
    let tracer = compiler.tracer();
    let rate = |m| outcome.evaluate_with(&tracer, m).success_rate;
    let base = rate(IdealizationMode::None);
    let perfect_swap = rate(IdealizationMode::PerfectSwap);
    let perfect_shuttle = rate(IdealizationMode::PerfectShuttle);
    let ideal = rate(IdealizationMode::Ideal);
    assert!(perfect_swap >= base);
    assert!(perfect_shuttle >= base);
    assert!(ideal >= perfect_swap && ideal >= perfect_shuttle);
}

#[test]
fn table2_suite_compiles_at_reduced_size() {
    // The full Table 2 workloads are exercised by the benchmark harness in
    // release mode; here we check the suite constructor plus compilation of
    // its smallest member end to end.
    let suite = table2_suite();
    assert_eq!(suite.len(), 7);
    let qft24 = &suite.iter().find(|n| n.label == "QFT_24").unwrap().circuit;
    let device = QccdTopology::named("G-2x2").unwrap();
    let outcome = SSyncCompiler::default().compile(qft24, &device).unwrap();
    check_program_invariants(qft24, &device, &outcome);
    assert!(outcome.report().success_rate > 0.0);
}
