//! Golden equivalence tests for the scheduler hot-path overhaul.
//!
//! The optimized scheduler ([`Scheduler::run`]: precomputed distance
//! matrix, per-trap candidate enumeration, cached gate scores, reusable
//! scratch buffers) must emit **bit-identical** output to the
//! straightforward transcription of Algorithm 1 ([`Scheduler::run_reference`])
//! for every fixed configuration: same op sequence, same final placement,
//! same search statistics. Any divergence means the optimization changed
//! the algorithm, not just its cost.

use ssync_arch::{Device, DistanceMatrix, QccdTopology, SlotGraph, SlotId, TrapRouter};
use ssync_circuit::generators::{
    bernstein_vazirani, cuccaro_adder, qaoa_nearest_neighbor, qft, random_two_qubit_circuit,
};
use ssync_circuit::Circuit;
use ssync_core::{initial, CompilerConfig, HeuristicScorer, InitialMapping, Scheduler};

fn topologies() -> Vec<QccdTopology> {
    vec![
        QccdTopology::linear(3, 8),
        QccdTopology::grid(2, 2, 6),
        QccdTopology::fully_connected(3, 7),
    ]
}

/// Runs both scheduler entry points from the same initial placement and
/// asserts bit-identical results.
fn assert_bit_identical(circuit: &Circuit, topo: &QccdTopology, config: &CompilerConfig) {
    let device = Device::build(topo.clone(), config.weights);
    let placement = initial::build_placement(circuit, &device, config);
    let mut scheduler = Scheduler::new(&device, config);

    let (fast_program, fast_placement) =
        scheduler.run(circuit, placement.clone()).expect("optimized scheduler completes");
    let fast_stats = scheduler.stats();

    let (ref_program, ref_placement) =
        scheduler.run_reference(circuit, placement).expect("reference scheduler completes");
    let ref_stats = scheduler.stats();

    assert_eq!(
        fast_program.ops(),
        ref_program.ops(),
        "op sequences diverge on {} for {}",
        topo.name(),
        circuit.name()
    );
    assert_eq!(fast_stats, ref_stats, "stats diverge on {}", topo.name());
    assert_eq!(fast_placement, ref_placement, "final placements diverge on {}", topo.name());
    fast_placement.validate().expect("final placement is consistent");
}

#[test]
fn qaoa_is_bit_identical_across_topologies() {
    let circuit = qaoa_nearest_neighbor(16, 2);
    for topo in topologies() {
        assert_bit_identical(&circuit, &topo, &CompilerConfig::default());
    }
}

#[test]
fn adder_is_bit_identical_across_topologies() {
    let circuit = cuccaro_adder(8); // 18 qubits
    for topo in topologies() {
        assert_bit_identical(&circuit, &topo, &CompilerConfig::default());
    }
}

#[test]
fn bv_is_bit_identical_across_topologies() {
    let circuit = bernstein_vazirani(16);
    for topo in topologies() {
        assert_bit_identical(&circuit, &topo, &CompilerConfig::default());
    }
}

#[test]
fn qft_is_bit_identical_on_a_larger_grid() {
    let circuit = qft(20);
    let topo = QccdTopology::grid(2, 3, 6);
    assert_bit_identical(&circuit, &topo, &CompilerConfig::default());
}

#[test]
fn equivalence_holds_for_every_initial_mapping() {
    let circuit = qaoa_nearest_neighbor(12, 2);
    let topo = QccdTopology::grid(2, 2, 5);
    for mapping in InitialMapping::ALL {
        let config = CompilerConfig::default().with_initial_mapping(mapping);
        assert_bit_identical(&circuit, &topo, &config);
    }
}

#[test]
fn equivalence_holds_under_non_default_weights_and_decay() {
    let circuit = cuccaro_adder(6);
    let topo = QccdTopology::linear(4, 5);
    let config = CompilerConfig::default().with_weight_ratio(100.0).with_decay(0.01);
    assert_bit_identical(&circuit, &topo, &config);
}

#[test]
fn equivalence_holds_on_random_circuits_and_tight_devices() {
    for seed in 0..8u64 {
        let circuit = random_two_qubit_circuit(12, 70, seed);
        // 16 slots for 12 qubits: shuttle- and fallback-heavy territory.
        let topo = QccdTopology::grid(2, 2, 4);
        assert_bit_identical(&circuit, &topo, &CompilerConfig::default());
    }
}

#[test]
fn distance_matrix_matches_on_the_fly_computation() {
    for topo in [
        QccdTopology::linear(4, 6),
        QccdTopology::grid(2, 3, 5),
        QccdTopology::grid(3, 3, 4),
        QccdTopology::fully_connected(5, 4),
    ] {
        let config = CompilerConfig::default();
        let graph = SlotGraph::new(topo.clone(), config.weights);
        let router = TrapRouter::new(&topo, config.weights);
        let matrix = DistanceMatrix::new(&graph, &router);
        // The scorer without a matrix computes distances on the fly.
        let scorer = HeuristicScorer::new(&graph, &router, &config);
        // Pseudo-random slot pairs (deterministic LCG), plus the diagonal.
        let n = graph.num_slots() as u64;
        let mut state = 0x1234_5678_u64;
        for _ in 0..512 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = SlotId((state >> 16) as u32 % n as u32);
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let b = SlotId((state >> 16) as u32 % n as u32);
            let expected = scorer.slot_distance(a, b);
            let got = matrix.get(a, b);
            assert_eq!(
                got.to_bits(),
                expected.to_bits(),
                "distance({a}, {b}) diverges on {}",
                topo.name()
            );
        }
        for s in 0..graph.num_slots() {
            assert_eq!(matrix.get(SlotId(s as u32), SlotId(s as u32)), 0.0);
        }
    }
}

#[test]
fn distance_matrix_agrees_with_scorer_backed_by_it() {
    let topo = QccdTopology::grid(2, 2, 5);
    let config = CompilerConfig::default();
    let graph = SlotGraph::new(topo.clone(), config.weights);
    let router = TrapRouter::new(&topo, config.weights);
    let matrix = DistanceMatrix::new(&graph, &router);
    let plain = HeuristicScorer::new(&graph, &router, &config);
    let backed = HeuristicScorer::with_distance_matrix(&graph, &router, &config, &matrix);
    for a in 0..graph.num_slots() {
        for b in 0..graph.num_slots() {
            let (sa, sb) = (SlotId(a as u32), SlotId(b as u32));
            assert_eq!(
                plain.slot_distance(sa, sb).to_bits(),
                backed.slot_distance(sa, sb).to_bits()
            );
        }
    }
}
