//! Golden equivalence tests for the shared-`Device` / batch-compilation
//! refactor.
//!
//! The contract: compiling through a prebuilt [`Device`]
//! ([`SSyncCompiler::compile_on`], the baselines' `compile_on`, batch
//! compilation at any worker count) must emit **bit-identical** programs,
//! statistics and placements to the single-shot `compile(circuit,
//! topology)` path that rebuilds the device internally. Any divergence
//! means sharing the artifact changed the algorithm, not just its cost.

use ssync_arch::{Device, QccdTopology};
use ssync_baselines::{DaiCompiler, MuraliCompiler};
use ssync_circuit::generators::{
    bernstein_vazirani, cuccaro_adder, qaoa_nearest_neighbor, qft, random_two_qubit_circuit,
};
use ssync_circuit::Circuit;
use ssync_core::{CompileError, CompileOutcome, CompilerConfig, InitialMapping, SSyncCompiler};

fn suite() -> Vec<Circuit> {
    vec![
        qft(14),
        bernstein_vazirani(16),
        cuccaro_adder(6),
        qaoa_nearest_neighbor(14, 2),
        random_two_qubit_circuit(12, 60, 5),
    ]
}

fn assert_same_outcome(a: &CompileOutcome, b: &CompileOutcome, what: &str) {
    assert_eq!(a.program().ops(), b.program().ops(), "op sequences diverge: {what}");
    assert_eq!(a.final_placement(), b.final_placement(), "placements diverge: {what}");
    assert_eq!(a.scheduler_stats(), b.scheduler_stats(), "stats diverge: {what}");
    assert_eq!(
        a.report().success_rate.to_bits(),
        b.report().success_rate.to_bits(),
        "reports diverge: {what}"
    );
}

#[test]
fn compile_on_matches_single_shot_compile() {
    let config = CompilerConfig::default();
    let compiler = SSyncCompiler::new(config);
    for topo in [QccdTopology::grid(2, 2, 6), QccdTopology::linear(3, 7)] {
        let device = Device::build(topo.clone(), config.weights);
        for circuit in suite() {
            let single = compiler.compile(&circuit, &topo).expect("compiles");
            let shared = compiler.compile_on(&device, &circuit).expect("compiles");
            assert_same_outcome(
                &single,
                &shared,
                &format!("{} on {}", circuit.name(), topo.name()),
            );
        }
    }
}

#[test]
fn compile_on_matches_for_every_initial_mapping() {
    for mapping in InitialMapping::ALL {
        let config = CompilerConfig::default().with_initial_mapping(mapping);
        let compiler = SSyncCompiler::new(config);
        let topo = QccdTopology::grid(2, 2, 5);
        let device = Device::build(topo.clone(), config.weights);
        let circuit = qaoa_nearest_neighbor(12, 2);
        let single = compiler.compile(&circuit, &topo).expect("compiles");
        let shared = compiler.compile_on(&device, &circuit).expect("compiles");
        assert_same_outcome(&single, &shared, &format!("{mapping:?}"));
    }
}

#[test]
fn baselines_compile_on_matches_single_shot_compile() {
    let config = CompilerConfig::default();
    let topo = QccdTopology::grid(2, 2, 6);
    let device = Device::build(topo.clone(), config.weights);
    let murali = MuraliCompiler::new(config);
    let dai = DaiCompiler::new(config);
    for circuit in suite() {
        let what = circuit.name();
        assert_same_outcome(
            &murali.compile(&circuit, &topo).expect("compiles"),
            &murali.compile_on(&device, &circuit).expect("compiles"),
            &format!("murali {what}"),
        );
        assert_same_outcome(
            &dai.compile(&circuit, &topo).expect("compiles"),
            &dai.compile_on(&device, &circuit).expect("compiles"),
            &format!("dai {what}"),
        );
    }
}

#[test]
fn batch_output_is_independent_of_worker_count() {
    let config = CompilerConfig::default();
    let compiler = SSyncCompiler::new(config);
    let device = Device::build(QccdTopology::grid(2, 2, 6), config.weights);
    let circuits = suite();
    let reference: Vec<CompileOutcome> =
        circuits.iter().map(|c| compiler.compile_on(&device, c).expect("compiles")).collect();
    for workers in [1usize, 2, 3, 8, 32] {
        let batch = compiler.compile_batch_with_workers(&device, &circuits, workers);
        assert_eq!(batch.len(), circuits.len(), "workers = {workers}");
        for ((circuit, expected), got) in circuits.iter().zip(&reference).zip(batch) {
            let got = got.expect("compiles");
            assert_same_outcome(
                &got,
                expected,
                &format!("{} with {workers} workers", circuit.name()),
            );
        }
    }
}

#[test]
fn batch_reports_per_circuit_errors_in_order() {
    let config = CompilerConfig::default();
    let compiler = SSyncCompiler::new(config);
    // 8 slots: qft(12) cannot fit, qft(6) can.
    let device = Device::build(QccdTopology::linear(2, 4), config.weights);
    let circuits = vec![qft(6), qft(12), qft(5)];
    let results = compiler.compile_batch_with_workers(&device, &circuits, 2);
    assert!(results[0].is_ok());
    assert!(matches!(results[1], Err(CompileError::DeviceTooSmall { qubits: 12, slots: 8 })));
    assert!(results[2].is_ok());
}

#[test]
fn batch_equals_the_pre_refactor_single_shot_path_end_to_end() {
    // The strongest form of the golden check: `compile(circuit, topology)`
    // (which internally builds a fresh device per call, like the
    // pre-refactor compiler did) versus one shared device + parallel batch.
    let config = CompilerConfig::default();
    let compiler = SSyncCompiler::new(config);
    let topo = QccdTopology::fully_connected(3, 7);
    let circuits = suite();
    let device = Device::build(topo.clone(), config.weights);
    let batch = compiler.compile_batch(&device, &circuits);
    for (circuit, got) in circuits.iter().zip(batch) {
        let single = compiler.compile(circuit, &topo).expect("compiles");
        assert_same_outcome(&got.expect("compiles"), &single, circuit.name());
    }
}
