//! End-to-end integration tests: every compiler, several topologies,
//! realistic (but laptop-sized) workloads.

use ssync_arch::QccdTopology;
use ssync_baselines::{DaiCompiler, MuraliCompiler};
use ssync_circuit::generators::{
    alt_ansatz, bernstein_vazirani, cuccaro_adder, qaoa_nearest_neighbor, qft,
};
use ssync_circuit::Circuit;
use ssync_core::{CompileError, CompilerConfig, SSyncCompiler};
use ssync_integration::check_program_invariants;

fn workloads() -> Vec<Circuit> {
    vec![
        qft(16),
        cuccaro_adder(8),
        bernstein_vazirani(17),
        qaoa_nearest_neighbor(18, 3),
        alt_ansatz(18, 3),
    ]
}

fn devices() -> Vec<QccdTopology> {
    vec![
        QccdTopology::linear(2, 12),
        QccdTopology::linear(4, 6),
        QccdTopology::grid(2, 2, 6),
        QccdTopology::grid(2, 3, 4),
        QccdTopology::fully_connected(4, 6),
    ]
}

#[test]
fn ssync_satisfies_program_invariants_everywhere() {
    let compiler = SSyncCompiler::default();
    for circuit in workloads() {
        for device in devices() {
            if device.total_capacity() <= circuit.num_qubits() {
                continue;
            }
            let outcome = compiler
                .compile(&circuit, &device)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", circuit.name(), device.name()));
            check_program_invariants(&circuit, &device, &outcome);
        }
    }
}

#[test]
fn baselines_satisfy_program_invariants_everywhere() {
    let murali = MuraliCompiler::default();
    let dai = DaiCompiler::default();
    for circuit in workloads() {
        for device in devices() {
            if device.total_capacity() <= circuit.num_qubits() + 2 {
                continue;
            }
            for outcome in [murali.compile(&circuit, &device), dai.compile(&circuit, &device)] {
                let outcome = outcome
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", circuit.name(), device.name()));
                check_program_invariants(&circuit, &device, &outcome);
            }
        }
    }
}

#[test]
fn compilation_is_deterministic() {
    let circuit = qft(14);
    let device = QccdTopology::grid(2, 2, 5);
    let compiler = SSyncCompiler::default();
    let a = compiler.compile(&circuit, &device).unwrap();
    let b = compiler.compile(&circuit, &device).unwrap();
    assert_eq!(a.program().ops(), b.program().ops());
    assert_eq!(a.report().success_rate, b.report().success_rate);
}

#[test]
fn errors_are_reported_not_panicked() {
    let circuit = qft(30);
    let tiny = QccdTopology::linear(2, 10);
    assert!(matches!(
        SSyncCompiler::default().compile(&circuit, &tiny),
        Err(CompileError::DeviceTooSmall { .. })
    ));
    assert!(matches!(
        MuraliCompiler::default().compile(&circuit, &tiny),
        Err(CompileError::DeviceTooSmall { .. })
    ));
}

#[test]
fn single_trap_device_needs_no_transport() {
    let circuit = qft(10);
    let device = QccdTopology::linear(1, 12);
    let outcome = SSyncCompiler::default().compile(&circuit, &device).unwrap();
    let counts = outcome.counts();
    assert_eq!(counts.shuttles, 0);
    assert_eq!(counts.swap_gates, 0, "full intra-trap connectivity needs no SWAPs");
    check_program_invariants(&circuit, &device, &outcome);
}

#[test]
fn custom_configs_flow_through_the_pipeline() {
    let circuit = qaoa_nearest_neighbor(16, 2);
    let device = QccdTopology::grid(2, 2, 6);
    let mut config = CompilerConfig::default();
    config.noise.thermal_scale = 0.0;
    config.noise.heating_rate_gamma = 0.0;
    let outcome = SSyncCompiler::new(config).compile(&circuit, &device).unwrap();
    // With noise disabled only the (tiny) single-qubit infidelity remains.
    assert!(outcome.report().success_rate > 0.999);
}
