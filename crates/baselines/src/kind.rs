//! The unified compiler selector: one enum naming every compiler the
//! workspace can run, with a uniform `compile_on`-style entry point.
//!
//! The bench harness, the batch fan-out and the `ssync-service` worker
//! pool all dispatch through [`CompilerKind`], so heterogeneous work-lists
//! — the full (device × circuit × compiler × config) product of the
//! paper's evaluation — flow through a single code path.

use crate::greedy::{BaselineStyle, GreedyRouter};
use ssync_arch::Device;
use ssync_circuit::{Circuit, Qubit};
use ssync_core::{
    CompileError, CompileOutcome, CompileScratch, CompilerConfig, PermRouteCompiler, SSyncCompiler,
};

/// Every compiler the workspace can run against a prepared [`Device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompilerKind {
    /// Murali et al. (ISCA 2020) greedy baseline.
    Murali,
    /// Dai et al. (TQE 2024) parallel-shuttle baseline.
    Dai,
    /// This work (S-SYNC).
    SSync,
    /// The plain greedy ablation ([`BaselineStyle::Greedy`]): no reserved
    /// routing slots, first-operand movement, DAG-order gate service.
    Greedy,
    /// Permutation-level routing (`ssync_core::PermRouteCompiler`):
    /// blocked frontier layers are realised wholesale through a
    /// sub-quadratic swap schedule with Eq. 2 cost-weighted swap
    /// selection.
    PermRoute,
}

impl CompilerKind {
    /// Every compiler, baselines first.
    pub const ALL: [CompilerKind; 5] = [
        CompilerKind::Murali,
        CompilerKind::Dai,
        CompilerKind::SSync,
        CompilerKind::Greedy,
        CompilerKind::PermRoute,
    ];

    /// The three compilers evaluated in the paper's Figs. 8–10, in the
    /// order plotted there.
    pub const PAPER: [CompilerKind; 3] =
        [CompilerKind::Murali, CompilerKind::Dai, CompilerKind::SSync];

    /// Legend label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            CompilerKind::Murali => "Murali et al.",
            CompilerKind::Dai => "Dai et al.",
            CompilerKind::SSync => "This Work",
            CompilerKind::Greedy => "Greedy",
            CompilerKind::PermRoute => "Perm-Route",
        }
    }

    /// `true` for the kinds built on the shared greedy engine, whose
    /// initial placement consumes a first-use qubit order that callers can
    /// precompute once per circuit ([`Circuit::first_use_order`]).
    pub fn uses_first_use_order(self) -> bool {
        !matches!(self, CompilerKind::SSync)
    }

    /// Compiles `circuit` against a prepared, shared `device` with this
    /// compiler under `config`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying compiler's [`CompileError`].
    ///
    /// # Panics
    ///
    /// Panics if `device` was built with different edge weights than
    /// `config`.
    pub fn compile_on(
        self,
        device: &Device,
        circuit: &Circuit,
        config: &CompilerConfig,
    ) -> Result<CompileOutcome, CompileError> {
        self.compile_on_with(device, circuit, config, None, &mut CompileScratch::default())
    }

    /// [`CompilerKind::compile_on`] with reusable worker state: `scratch`
    /// carries the S-SYNC scheduler's working memory across compiles (the
    /// greedy kinds ignore it), and `first_use` optionally supplies the
    /// precomputed first-use qubit order the greedy kinds place ions in
    /// (S-SYNC ignores it; its initial mapping is a different scheme).
    /// Output is bit-identical to `compile_on` for any combination —
    /// both arguments only recycle work.
    ///
    /// # Errors
    ///
    /// Propagates the underlying compiler's [`CompileError`].
    ///
    /// # Panics
    ///
    /// Panics if `device` was built with different edge weights than
    /// `config`, or if `first_use` is not a permutation of the circuit's
    /// qubits.
    pub fn compile_on_with(
        self,
        device: &Device,
        circuit: &Circuit,
        config: &CompilerConfig,
        first_use: Option<&[Qubit]>,
        scratch: &mut CompileScratch,
    ) -> Result<CompileOutcome, CompileError> {
        match self {
            CompilerKind::Murali => GreedyRouter::new(BaselineStyle::Murali, *config)
                .compile_on_with_order(device, circuit, first_use),
            CompilerKind::Dai => GreedyRouter::new(BaselineStyle::Dai, *config)
                .compile_on_with_order(device, circuit, first_use),
            CompilerKind::Greedy => GreedyRouter::new(BaselineStyle::Greedy, *config)
                .compile_on_with_order(device, circuit, first_use),
            CompilerKind::PermRoute => {
                PermRouteCompiler::new(*config).compile_on_with_order(device, circuit, first_use)
            }
            CompilerKind::SSync => {
                SSyncCompiler::new(*config).compile_on_with_scratch(device, circuit, scratch)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_arch::QccdTopology;
    use ssync_circuit::generators::qft;

    #[test]
    fn every_kind_compiles_through_the_uniform_entry() {
        let circuit = qft(12);
        let config = CompilerConfig::default();
        let device = Device::build(QccdTopology::grid(2, 2, 5), config.weights);
        for kind in CompilerKind::ALL {
            let outcome = kind.compile_on(&device, &circuit, &config).unwrap();
            assert_eq!(outcome.counts().two_qubit_gates, 132, "{kind:?}");
        }
    }

    #[test]
    fn prepared_entry_matches_plain_entry_bit_for_bit() {
        let circuit = qft(12);
        let config = CompilerConfig::default();
        let device = Device::build(QccdTopology::grid(2, 2, 5), config.weights);
        let order = circuit.first_use_order();
        let mut scratch = CompileScratch::default();
        for kind in CompilerKind::ALL {
            let plain = kind.compile_on(&device, &circuit, &config).unwrap();
            let first_use = kind.uses_first_use_order().then_some(order.as_slice());
            let prepared =
                kind.compile_on_with(&device, &circuit, &config, first_use, &mut scratch).unwrap();
            assert_eq!(plain.program().ops(), prepared.program().ops(), "{kind:?}");
            assert_eq!(plain.final_placement(), prepared.final_placement(), "{kind:?}");
            assert_eq!(plain.scheduler_stats(), prepared.scheduler_stats(), "{kind:?}");
        }
    }

    #[test]
    fn paper_subset_keeps_the_figure_order_and_labels() {
        assert_eq!(CompilerKind::PAPER.len(), 3);
        assert_eq!(CompilerKind::PAPER[2].label(), "This Work");
        assert_eq!(CompilerKind::ALL.len(), 5);
        assert_eq!(CompilerKind::Greedy.label(), "Greedy");
        assert_eq!(CompilerKind::PermRoute.label(), "Perm-Route");
        assert!(CompilerKind::Murali.uses_first_use_order());
        assert!(CompilerKind::PermRoute.uses_first_use_order());
        assert!(!CompilerKind::SSync.uses_first_use_order());
    }
}
