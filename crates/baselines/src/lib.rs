//! # ssync-baselines
//!
//! Re-implementations of the two prior QCCD compilers the paper compares
//! against (Figs. 8–10, 15):
//!
//! * [`MuraliCompiler`] — the greedy compiler of Murali et al.,
//!   "Architecting noisy intermediate-scale trapped ion quantum computers"
//!   (ISCA 2020, the QCCDSim toolchain): qubits are packed into traps in
//!   first-use order with **two slots reserved per trap** for routing, and
//!   each blocked gate is resolved by moving its first operand to the other
//!   operand's trap along the shortest trap path.
//! * [`DaiCompiler`] — an approximation of Dai et al., "Advanced Shuttle
//!   Strategies for Parallel QCCD Architectures" (IEEE TQE 2024): like the
//!   greedy baseline but it reserves a single slot, chooses the *cheaper*
//!   operand to move (fewer hops, closer to a chain end, emptier
//!   destination) and serves the cheapest blocked gate first, which models
//!   the paper's parallel-shuttle planning.
//!
//! Both baselines share the low-level placement mechanics of
//! [`ssync_core::mechanics`], so their SWAP gates, reorders and shuttles are
//! counted and evaluated exactly like S-SYNC's — the comparison isolates
//! the scheduling policy.
//!
//! These are faithful re-implementations of the published *algorithms*, not
//! of the original source code; absolute counts can differ from the
//! original tools while preserving the qualitative gaps the paper reports.
//!
//! ```
//! use ssync_baselines::MuraliCompiler;
//! use ssync_circuit::generators::qft;
//! use ssync_arch::QccdTopology;
//!
//! let outcome = MuraliCompiler::default()
//!     .compile(&qft(12), &QccdTopology::linear(2, 8))
//!     .unwrap();
//! assert_eq!(outcome.counts().two_qubit_gates, 132);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dai;
mod greedy;
mod kind;
mod murali;

pub use dai::DaiCompiler;
pub use greedy::{BaselineStyle, GreedyRouter};
pub use kind::CompilerKind;
pub use murali::MuraliCompiler;
