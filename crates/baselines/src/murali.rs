//! The Murali et al. (ISCA 2020) baseline compiler.

use crate::greedy::{BaselineStyle, GreedyRouter};
use ssync_arch::{Device, QccdTopology};
use ssync_circuit::Circuit;
use ssync_core::{CompileError, CompileOutcome, CompilerConfig};

/// Re-implementation of the greedy QCCDSim compiler of Murali et al.:
/// first-use sequential trap packing with two reserved routing slots per
/// trap, and blocked gates resolved by always moving the gate's first
/// operand to the second operand's trap.
///
/// ```
/// use ssync_baselines::MuraliCompiler;
/// use ssync_circuit::generators::bernstein_vazirani;
/// use ssync_arch::QccdTopology;
///
/// let outcome = MuraliCompiler::default()
///     .compile(&bernstein_vazirani(12), &QccdTopology::grid(2, 2, 5))
///     .unwrap();
/// assert_eq!(outcome.counts().two_qubit_gates, 12);
/// ```
#[derive(Debug, Clone)]
pub struct MuraliCompiler {
    router: GreedyRouter,
}

impl Default for MuraliCompiler {
    fn default() -> Self {
        Self::new(CompilerConfig::default())
    }
}

impl MuraliCompiler {
    /// Creates the baseline with an explicit evaluation configuration
    /// (weights, gate implementation and noise model are shared with
    /// S-SYNC so comparisons isolate the scheduling policy).
    pub fn new(config: CompilerConfig) -> Self {
        MuraliCompiler { router: GreedyRouter::new(BaselineStyle::Murali, config) }
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &CompilerConfig {
        self.router.config()
    }

    /// Compiles `circuit` for `topology`, building a throw-away device.
    ///
    /// # Errors
    ///
    /// See [`GreedyRouter::compile`].
    pub fn compile(
        &self,
        circuit: &Circuit,
        topology: &QccdTopology,
    ) -> Result<CompileOutcome, CompileError> {
        self.router.compile(circuit, topology)
    }

    /// Compiles `circuit` against a prepared, shared [`Device`] artifact
    /// (the entry point sweeps should use).
    ///
    /// # Errors
    ///
    /// See [`GreedyRouter::compile_on`].
    pub fn compile_on(
        &self,
        device: &Device,
        circuit: &Circuit,
    ) -> Result<CompileOutcome, CompileError> {
        self.router.compile_on(device, circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_circuit::generators::{qaoa_nearest_neighbor, qft};

    #[test]
    fn compiles_qft_on_grid() {
        let circuit = qft(16);
        let topo = QccdTopology::grid(2, 2, 8);
        let outcome = MuraliCompiler::default().compile(&circuit, &topo).unwrap();
        assert_eq!(outcome.counts().two_qubit_gates, circuit.two_qubit_gate_count());
        assert!(outcome.report().success_rate > 0.0);
        assert!(outcome.counts().shuttles > 0);
    }

    #[test]
    fn nearest_neighbor_workload_needs_shuttles_across_traps() {
        let circuit = qaoa_nearest_neighbor(20, 2);
        let topo = QccdTopology::linear(3, 9);
        let outcome = MuraliCompiler::default().compile(&circuit, &topo).unwrap();
        // Qubits span multiple traps, so at least one boundary bond forces
        // shuttling every round.
        assert!(outcome.counts().shuttles >= 2);
    }
}
