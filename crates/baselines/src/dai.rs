//! The Dai et al. (IEEE TQE 2024) baseline compiler.

use crate::greedy::{BaselineStyle, GreedyRouter};
use ssync_arch::{Device, QccdTopology};
use ssync_circuit::Circuit;
use ssync_core::{CompileError, CompileOutcome, CompilerConfig};

/// Approximation of the parallel-shuttle compiler of Dai et al.: the
/// greedy engine with one reserved slot per trap, cheapest-gate-first
/// service order and a cost-aware choice of which operand to move (hops,
/// distance to a chain end, destination occupancy).
///
/// ```
/// use ssync_baselines::DaiCompiler;
/// use ssync_circuit::generators::qft;
/// use ssync_arch::QccdTopology;
///
/// let outcome = DaiCompiler::default()
///     .compile(&qft(10), &QccdTopology::linear(2, 7))
///     .unwrap();
/// assert_eq!(outcome.counts().two_qubit_gates, 90);
/// ```
#[derive(Debug, Clone)]
pub struct DaiCompiler {
    router: GreedyRouter,
}

impl Default for DaiCompiler {
    fn default() -> Self {
        Self::new(CompilerConfig::default())
    }
}

impl DaiCompiler {
    /// Creates the baseline with an explicit evaluation configuration.
    pub fn new(config: CompilerConfig) -> Self {
        DaiCompiler { router: GreedyRouter::new(BaselineStyle::Dai, config) }
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &CompilerConfig {
        self.router.config()
    }

    /// Compiles `circuit` for `topology`, building a throw-away device.
    ///
    /// # Errors
    ///
    /// See [`GreedyRouter::compile`].
    pub fn compile(
        &self,
        circuit: &Circuit,
        topology: &QccdTopology,
    ) -> Result<CompileOutcome, CompileError> {
        self.router.compile(circuit, topology)
    }

    /// Compiles `circuit` against a prepared, shared [`Device`] artifact
    /// (the entry point sweeps should use).
    ///
    /// # Errors
    ///
    /// See [`GreedyRouter::compile_on`].
    pub fn compile_on(
        &self,
        device: &Device,
        circuit: &Circuit,
    ) -> Result<CompileOutcome, CompileError> {
        self.router.compile_on(device, circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_circuit::generators::qft;

    #[test]
    fn compiles_qft_on_linear_device() {
        let circuit = qft(14);
        let topo = QccdTopology::linear(3, 6);
        let outcome = DaiCompiler::default().compile(&circuit, &topo).unwrap();
        assert_eq!(outcome.counts().two_qubit_gates, circuit.two_qubit_gate_count());
        assert!(outcome.report().success_rate >= 0.0);
    }

    #[test]
    fn respects_gate_count_on_fully_connected_device() {
        let circuit = qft(12);
        let topo = QccdTopology::fully_connected(4, 5);
        let outcome = DaiCompiler::default().compile(&circuit, &topo).unwrap();
        assert_eq!(outcome.counts().two_qubit_gates, circuit.two_qubit_gate_count());
    }
}
