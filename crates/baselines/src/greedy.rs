//! The shared greedy routing engine behind both baseline compilers.

use ssync_arch::{Device, Placement, QccdTopology, SlotGraph, TrapRouter};
use ssync_circuit::{Circuit, DependencyDag, Gate, NodeId, Qubit};
use ssync_core::mechanics::Mechanics;
use ssync_core::{CompileError, CompileOutcome, CompilerConfig};
use ssync_sim::{CompiledProgram, ExecutionTracer, ScheduledOp};
use std::time::Instant;

/// What differentiates the baselines inside the shared greedy engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineStyle {
    /// Murali et al.: two reserved slots per trap, always move the first
    /// operand, serve blocked gates in DAG order.
    Murali,
    /// Dai et al.: one reserved slot per trap, move the cheaper operand,
    /// serve the cheapest blocked gate first.
    Dai,
    /// Plain greedy: no reserved routing slots (traps pack completely
    /// full), first operand moved, blocked gates served in DAG order. The
    /// simplest policy the engine can express — an ablation isolating the
    /// value of the reserved-slot headroom the published baselines keep.
    Greedy,
}

impl BaselineStyle {
    fn reserved_slots(self) -> usize {
        match self {
            BaselineStyle::Murali => 2,
            BaselineStyle::Dai => 1,
            BaselineStyle::Greedy => 0,
        }
    }
}

/// Greedy QCCD router: executes co-located frontier gates, and resolves
/// blocked gates by physically moving one operand to the other operand's
/// trap using the shared placement mechanics.
#[derive(Debug, Clone)]
pub struct GreedyRouter {
    style: BaselineStyle,
    config: CompilerConfig,
}

impl GreedyRouter {
    /// Creates a router with the given style and evaluation configuration.
    pub fn new(style: BaselineStyle, config: CompilerConfig) -> Self {
        GreedyRouter { style, config }
    }

    /// The evaluation configuration (weights, gate implementation, noise).
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// Compiles `circuit` for `topology`.
    ///
    /// This is a convenience wrapper that builds a throw-away [`Device`]
    /// and forwards to [`GreedyRouter::compile_on`]; sweeps should build
    /// the device once and call `compile_on` directly.
    ///
    /// # Errors
    ///
    /// See [`GreedyRouter::compile_on`].
    pub fn compile(
        &self,
        circuit: &Circuit,
        topology: &QccdTopology,
    ) -> Result<CompileOutcome, CompileError> {
        let device = Device::build(topology.clone(), self.config.weights);
        self.compile_on(&device, circuit)
    }

    /// Compiles `circuit` against a prepared, shared `device` artifact.
    /// The slot graph and trap router come from the device; nothing
    /// device-derived is rebuilt per compile.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::DeviceTooSmall`] when the device cannot hold
    /// every qubit plus a free slot, and
    /// [`CompileError::DisconnectedTopology`] for unreachable traps.
    ///
    /// # Panics
    ///
    /// Panics if `device` was built with different edge weights than this
    /// router's configuration.
    pub fn compile_on(
        &self,
        device: &Device,
        circuit: &Circuit,
    ) -> Result<CompileOutcome, CompileError> {
        self.compile_on_with_order(device, circuit, None)
    }

    /// [`GreedyRouter::compile_on`] with an optionally precomputed
    /// first-use qubit order ([`Circuit::first_use_order`]). The order
    /// depends only on the circuit — not on the device, the style, or the
    /// configuration — so sweeps compiling one circuit across many
    /// topology cells should compute it once and pass it here instead of
    /// re-sorting inside every `initial_placement`. Passing `None` (or the
    /// correct order) is behaviourally identical to `compile_on`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`GreedyRouter::compile_on`].
    ///
    /// # Panics
    ///
    /// Panics if `device` was built with different edge weights than this
    /// router's configuration, or if `order` is not a permutation of the
    /// circuit's qubits.
    pub fn compile_on_with_order(
        &self,
        device: &Device,
        circuit: &Circuit,
        order: Option<&[Qubit]>,
    ) -> Result<CompileOutcome, CompileError> {
        assert!(
            device.weights() == self.config.weights,
            "device was built with different edge weights than the baseline config"
        );
        let topology = device.topology();
        let slots = topology.total_capacity();
        if slots < circuit.num_qubits() + 1 {
            return Err(CompileError::DeviceTooSmall { qubits: circuit.num_qubits(), slots });
        }
        if !device.is_connected() {
            return Err(CompileError::DisconnectedTopology);
        }

        let start = Instant::now();
        let graph = device.graph();
        let router = device.router();
        let mechanics = Mechanics::new(graph, router);
        let mut placement = match order {
            Some(order) => {
                assert_eq!(order.len(), circuit.num_qubits(), "order must cover every qubit");
                self.initial_placement_with_order(circuit, graph, order)
            }
            None => self.initial_placement(circuit, graph),
        };
        let mut program = CompiledProgram::new(circuit.num_qubits(), topology.num_traps());
        for gate in circuit.iter() {
            if !gate.is_two_qubit() {
                program.push(ScheduledOp::SingleQubitGate { qubit: gate.qubits()[0] });
            }
        }

        let mut dag = DependencyDag::from_circuit(circuit);
        let mut rounds = 0usize;
        let budget = 10_000 + 100 * dag.len();
        let mut drain_scratch: Vec<NodeId> = Vec::new();
        let mut executed: Vec<NodeId> = Vec::new();
        while !dag.is_complete() {
            rounds += 1;
            if rounds > budget {
                return Err(CompileError::SchedulingStalled { remaining_gates: dag.remaining() });
            }
            // Execute everything already co-located.
            let placement_ref = &placement;
            dag.drain_executable_into(
                |gate| {
                    let Some((a, b)) = gate.two_qubit_pair() else { return false };
                    match (placement_ref.slot_of(a), placement_ref.slot_of(b)) {
                        (Some(sa), Some(sb)) => graph.same_trap(sa, sb),
                        _ => false,
                    }
                },
                &mut drain_scratch,
                &mut executed,
            );
            for id in &executed {
                let (a, b) = dag.gate(*id).two_qubit_pair().expect("two-qubit gate");
                mechanics.emit_two_qubit_gate(&placement, &mut program, a, b);
            }
            if dag.is_complete() {
                break;
            }
            if !executed.is_empty() {
                continue;
            }

            // Every frontier gate is blocked: pick one and route it.
            let frontier: Vec<Gate> = dag.frontier().iter().map(|&id| dag.gate(id)).collect();
            let gate = self.pick_gate(&frontier, &placement, router, graph);
            let (mover, anchor) = self.pick_mover(&gate, &placement, router, graph);
            let dest = placement.trap_of(anchor).expect("anchor placed");
            if placement.trap_free_slots(dest) == 0 {
                mechanics.make_space(&mut placement, &mut program, dest, 1, &[mover, anchor]);
            }
            let dest = placement.trap_of(anchor).expect("anchor placed");
            if !mechanics.move_qubit_to_trap(&mut placement, &mut program, mover, dest) {
                return Err(CompileError::SchedulingStalled { remaining_gates: dag.remaining() });
            }
        }

        let compile_time = start.elapsed();
        let tracer = ExecutionTracer {
            gate_impl: self.config.gate_impl,
            op_times: self.config.op_times,
            noise: self.config.noise,
        };
        let report = tracer.evaluate(&program);
        Ok(CompileOutcome::from_parts(program, report, placement, compile_time))
    }

    /// Sequential first-use packing with the style's reserved slots,
    /// computing the order locally ([`Circuit::first_use_order`]).
    fn initial_placement(&self, circuit: &Circuit, graph: &SlotGraph) -> Placement {
        self.initial_placement_with_order(circuit, graph, &circuit.first_use_order())
    }

    /// Sequential packing of a precomputed first-use order with the
    /// style's reserved slots.
    fn initial_placement_with_order(
        &self,
        circuit: &Circuit,
        graph: &SlotGraph,
        order: &[Qubit],
    ) -> Placement {
        let topology = graph.topology();
        let n = circuit.num_qubits();
        let mut placement = Placement::new(topology, n);

        // Soft capacity: reserve routing slots when the device has room.
        let reserve = self.style.reserved_slots();
        let total: usize = topology.total_capacity();
        let soft_caps: Vec<usize> = topology
            .traps()
            .iter()
            .map(|t| {
                if total >= n + reserve * topology.num_traps() {
                    t.capacity().saturating_sub(reserve)
                } else {
                    t.capacity().saturating_sub(1).max(1)
                }
            })
            .collect();

        let mut trap = 0usize;
        let mut placed_in_trap = 0usize;
        for &q in order {
            while trap < topology.num_traps()
                && (placed_in_trap >= soft_caps[trap]
                    || placed_in_trap >= topology.traps()[trap].capacity())
            {
                trap += 1;
                placed_in_trap = 0;
            }
            let t = if trap < topology.num_traps() {
                trap
            } else {
                // Soft caps exhausted: any trap with hard room.
                (0..topology.num_traps())
                    .find(|&t| {
                        placement.trap_occupancy(topology.traps()[t].id())
                            < topology.traps()[t].capacity()
                    })
                    .expect("device has room for every qubit")
            };
            let trap_ref = &topology.traps()[t];
            let slot = trap_ref
                .slots()
                .into_iter()
                .find(|&s| placement.is_space(s))
                .expect("trap below capacity has a free slot");
            placement.place(q, slot);
            if t == trap {
                placed_in_trap += 1;
            }
        }
        placement
    }

    /// Which blocked gate to serve next.
    fn pick_gate(
        &self,
        frontier: &[Gate],
        placement: &Placement,
        router: &TrapRouter,
        graph: &SlotGraph,
    ) -> Gate {
        match self.style {
            BaselineStyle::Murali | BaselineStyle::Greedy => frontier[0],
            BaselineStyle::Dai => frontier
                .iter()
                .copied()
                .min_by_key(|g| self.gate_cost(g, placement, router, graph))
                .unwrap_or(frontier[0]),
        }
    }

    /// Which operand to move.
    fn pick_mover(
        &self,
        gate: &Gate,
        placement: &Placement,
        router: &TrapRouter,
        graph: &SlotGraph,
    ) -> (Qubit, Qubit) {
        let (a, b) = gate.two_qubit_pair().expect("frontier gates are two-qubit");
        match self.style {
            BaselineStyle::Murali | BaselineStyle::Greedy => (a, b),
            BaselineStyle::Dai => {
                let cost = |mover: Qubit, anchor: Qubit| -> usize {
                    let (Some(sm), Some(ta), Some(tb)) = (
                        placement.slot_of(mover),
                        placement.trap_of(mover),
                        placement.trap_of(anchor),
                    ) else {
                        return usize::MAX;
                    };
                    let trap = graph.topology().trap(ta);
                    let hops = router.hops(ta, tb);
                    let to_edge = trap.distance_to_nearest_end(sm);
                    let dest_pressure =
                        graph.topology().trap(tb).capacity() - placement.trap_free_slots(tb);
                    hops * 100 + to_edge * 10 + dest_pressure
                };
                if cost(a, b) <= cost(b, a) {
                    (a, b)
                } else {
                    (b, a)
                }
            }
        }
    }

    fn gate_cost(
        &self,
        gate: &Gate,
        placement: &Placement,
        router: &TrapRouter,
        graph: &SlotGraph,
    ) -> usize {
        let Some((a, b)) = gate.two_qubit_pair() else { return 0 };
        match (placement.trap_of(a), placement.trap_of(b)) {
            (Some(ta), Some(tb)) => {
                let _ = graph;
                router.hops(ta, tb)
            }
            _ => usize::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_circuit::generators::{qft, random_two_qubit_circuit};

    #[test]
    fn precomputed_order_matches_internal_sort() {
        let circuit = qft(14);
        let topo = QccdTopology::grid(2, 2, 6);
        let config = CompilerConfig::default();
        let device = Device::build(topo, config.weights);
        let order = circuit.first_use_order();
        for style in [BaselineStyle::Murali, BaselineStyle::Dai, BaselineStyle::Greedy] {
            let router = GreedyRouter::new(style, config);
            let plain = router.compile_on(&device, &circuit).unwrap();
            let cached = router.compile_on_with_order(&device, &circuit, Some(&order)).unwrap();
            assert_eq!(plain.program().ops(), cached.program().ops(), "{style:?}");
            assert_eq!(plain.final_placement(), cached.final_placement(), "{style:?}");
        }
    }

    #[test]
    fn plain_greedy_packs_traps_full() {
        let circuit = qft(12);
        let topo = QccdTopology::linear(4, 8);
        let router = GreedyRouter::new(BaselineStyle::Greedy, CompilerConfig::default());
        let graph = SlotGraph::new(topo.clone(), CompilerConfig::default().weights);
        let placement = router.initial_placement(&circuit, &graph);
        // 12 qubits into capacity-8 traps with zero reserved slots: the
        // first trap fills completely.
        assert_eq!(placement.trap_occupancy(topo.traps()[0].id()), 8);
    }

    #[test]
    fn both_styles_schedule_every_gate() {
        let circuit = qft(14);
        let topo = QccdTopology::grid(2, 2, 6);
        for style in [BaselineStyle::Murali, BaselineStyle::Dai, BaselineStyle::Greedy] {
            let outcome = GreedyRouter::new(style, CompilerConfig::default())
                .compile(&circuit, &topo)
                .unwrap();
            assert_eq!(
                outcome.counts().two_qubit_gates,
                circuit.two_qubit_gate_count(),
                "{style:?}"
            );
            outcome.final_placement().validate().unwrap();
        }
    }

    #[test]
    fn murali_reserves_two_slots_per_trap() {
        let circuit = qft(12);
        let topo = QccdTopology::linear(4, 8);
        let router = GreedyRouter::new(BaselineStyle::Murali, CompilerConfig::default());
        let graph = SlotGraph::new(topo.clone(), CompilerConfig::default().weights);
        let placement = router.initial_placement(&circuit, &graph);
        for trap in topo.traps() {
            assert!(placement.trap_occupancy(trap.id()) <= trap.capacity() - 2);
        }
    }

    #[test]
    fn dai_moves_the_cheaper_operand() {
        let circuit = random_two_qubit_circuit(10, 40, 9);
        let topo = QccdTopology::linear(3, 6);
        let murali = GreedyRouter::new(BaselineStyle::Murali, CompilerConfig::default())
            .compile(&circuit, &topo)
            .unwrap();
        let dai = GreedyRouter::new(BaselineStyle::Dai, CompilerConfig::default())
            .compile(&circuit, &topo)
            .unwrap();
        // Dai's cost-aware mover choice should not need more shuttles than
        // the always-move-first policy on the same workload.
        assert!(dai.counts().shuttles <= murali.counts().shuttles + 5);
    }

    #[test]
    fn too_small_device_is_rejected() {
        let circuit = qft(12);
        let topo = QccdTopology::linear(2, 6);
        let err = GreedyRouter::new(BaselineStyle::Murali, CompilerConfig::default())
            .compile(&circuit, &topo)
            .unwrap_err();
        assert!(matches!(err, CompileError::DeviceTooSmall { .. }));
    }
}
