//! The [`Circuit`] container: an ordered list of gates over a qubit register.

use crate::error::CircuitError;
use crate::gate::{Gate, Qubit};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A quantum circuit: a fixed-width qubit register plus a time-ordered list
/// of gates.
///
/// The builder-style methods (`h`, `cx`, `ms`, ...) panic on out-of-range
/// qubits; use [`Circuit::try_push`] when the operands are not statically
/// known to be valid.
///
/// ```
/// use ssync_circuit::{Circuit, Qubit};
/// let mut c = Circuit::new(2);
/// c.h(Qubit(0));
/// c.cx(Qubit(0), Qubit(1));
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.two_qubit_gate_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
    name: String,
}

/// Aggregate statistics of a circuit, as reported in Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircuitStats {
    /// Number of qubits in the register.
    pub num_qubits: usize,
    /// Total number of gates.
    pub total_gates: usize,
    /// Number of single-qubit gates.
    pub single_qubit_gates: usize,
    /// Number of two-qubit gates (including SWAPs).
    pub two_qubit_gates: usize,
    /// Circuit depth counting only two-qubit gates.
    pub two_qubit_depth: usize,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit { num_qubits, gates: Vec::new(), name: String::new() }
    }

    /// Creates an empty circuit with a human-readable name (used in reports).
    pub fn with_name(num_qubits: usize, name: impl Into<String>) -> Self {
        Circuit { num_qubits, gates: Vec::new(), name: name.into() }
    }

    /// The circuit's name ("" if unnamed).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the circuit's name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of qubits in the register.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of gates.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` if the circuit contains no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in program order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Iterates over the gates in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Appends a gate after validating its operands.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if a qubit index is not in
    /// `0..num_qubits`, or [`CircuitError::DuplicateOperand`] if a two-qubit
    /// gate names the same qubit twice.
    pub fn try_push(&mut self, gate: Gate) -> Result<(), CircuitError> {
        for q in gate.qubits() {
            if q.index() >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q.0,
                    num_qubits: self.num_qubits,
                });
            }
        }
        if let Some((a, b)) = gate.two_qubit_pair() {
            if a == b {
                return Err(CircuitError::DuplicateOperand { qubit: a.0 });
            }
        }
        self.gates.push(gate);
        Ok(())
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate's operands are invalid (see [`Circuit::try_push`]).
    pub fn push(&mut self, gate: Gate) {
        self.try_push(gate).expect("invalid gate operands");
    }

    /// Appends a Hadamard gate.
    pub fn h(&mut self, q: Qubit) {
        self.push(Gate::H(q));
    }

    /// Appends a Pauli-X gate.
    pub fn x(&mut self, q: Qubit) {
        self.push(Gate::X(q));
    }

    /// Appends an X rotation.
    pub fn rx(&mut self, q: Qubit, theta: f64) {
        self.push(Gate::Rx(q, theta));
    }

    /// Appends a Y rotation.
    pub fn ry(&mut self, q: Qubit, theta: f64) {
        self.push(Gate::Ry(q, theta));
    }

    /// Appends a Z rotation.
    pub fn rz(&mut self, q: Qubit, theta: f64) {
        self.push(Gate::Rz(q, theta));
    }

    /// Appends a CNOT gate.
    pub fn cx(&mut self, control: Qubit, target: Qubit) {
        self.push(Gate::Cx(control, target));
    }

    /// Appends a CZ gate.
    pub fn cz(&mut self, a: Qubit, b: Qubit) {
        self.push(Gate::Cz(a, b));
    }

    /// Appends a controlled-phase gate.
    pub fn cp(&mut self, a: Qubit, b: Qubit, theta: f64) {
        self.push(Gate::Cp(a, b, theta));
    }

    /// Appends a Mølmer–Sørensen gate.
    pub fn ms(&mut self, a: Qubit, b: Qubit) {
        self.push(Gate::Ms(a, b));
    }

    /// Appends a ZZ interaction.
    pub fn rzz(&mut self, a: Qubit, b: Qubit, theta: f64) {
        self.push(Gate::Rzz(a, b, theta));
    }

    /// Appends an XX interaction.
    pub fn rxx(&mut self, a: Qubit, b: Qubit, theta: f64) {
        self.push(Gate::Rxx(a, b, theta));
    }

    /// Appends a YY interaction.
    pub fn ryy(&mut self, a: Qubit, b: Qubit, theta: f64) {
        self.push(Gate::Ryy(a, b, theta));
    }

    /// Appends a SWAP gate.
    pub fn swap(&mut self, a: Qubit, b: Qubit) {
        self.push(Gate::Swap(a, b));
    }

    /// Appends all gates of `other` (which must fit in this register).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than this circuit.
    pub fn append(&mut self, other: &Circuit) {
        assert!(
            other.num_qubits <= self.num_qubits,
            "appended circuit uses more qubits than the receiver"
        );
        self.gates.extend_from_slice(&other.gates);
    }

    /// Number of two-qubit gates (including SWAPs).
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Number of single-qubit gates.
    pub fn single_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| !g.is_two_qubit()).count()
    }

    /// Only the two-qubit gates, in program order.
    pub fn two_qubit_gates(&self) -> Vec<Gate> {
        self.gates.iter().copied().filter(Gate::is_two_qubit).collect()
    }

    /// Circuit depth counting every gate (greedy ASAP layering).
    pub fn depth(&self) -> usize {
        self.depth_filtered(|_| true)
    }

    /// Circuit depth counting only two-qubit gates.
    pub fn two_qubit_depth(&self) -> usize {
        self.depth_filtered(Gate::is_two_qubit)
    }

    fn depth_filtered(&self, keep: impl Fn(&Gate) -> bool) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut max = 0usize;
        for g in &self.gates {
            if !keep(g) {
                continue;
            }
            let qs = g.qubits();
            let l = qs.iter().map(|q| level[q.index()]).max().unwrap_or(0) + 1;
            for q in &qs {
                level[q.index()] = l;
            }
            max = max.max(l);
        }
        max
    }

    /// Aggregate circuit statistics (the figures reported in Table 2).
    pub fn stats(&self) -> CircuitStats {
        CircuitStats {
            num_qubits: self.num_qubits,
            total_gates: self.len(),
            single_qubit_gates: self.single_qubit_gate_count(),
            two_qubit_gates: self.two_qubit_gate_count(),
            two_qubit_depth: self.two_qubit_depth(),
        }
    }

    /// Keeps only the first `n` two-qubit gates (and all single-qubit gates
    /// that precede them). Used by the application-size sweeps (Fig. 12, 15).
    pub fn truncate_two_qubit_gates(&self, n: usize) -> Circuit {
        let mut out = Circuit::with_name(self.num_qubits, self.name.clone());
        let mut seen = 0usize;
        for g in &self.gates {
            if g.is_two_qubit() {
                if seen >= n {
                    break;
                }
                seen += 1;
            }
            out.gates.push(*g);
        }
        out
    }

    /// The register's qubits ordered by the index of the first gate that
    /// touches them (never-used qubits come last, by index). This is the
    /// packing order the greedy baseline compilers place ions in; it
    /// depends only on the circuit, so callers compiling one circuit
    /// against many devices should compute it once and reuse it.
    pub fn first_use_order(&self) -> Vec<Qubit> {
        let n = self.num_qubits;
        let mut first_use = vec![usize::MAX; n];
        for (i, gate) in self.gates.iter().enumerate() {
            for q in gate.qubits() {
                if first_use[q.index()] == usize::MAX {
                    first_use[q.index()] = i;
                }
            }
        }
        let mut order: Vec<Qubit> = (0..n as u32).map(Qubit).collect();
        order.sort_by_key(|q| (first_use[q.index()], q.0));
        order
    }

    /// A stable 64-bit content hash over the register width and the gate
    /// list (kinds, operands and angle bit patterns). The circuit's name is
    /// deliberately excluded: two circuits with identical structure hash
    /// identically. The hash is FNV-1a, so it is reproducible across runs,
    /// platforms and processes — suitable as a compile-result cache key.
    pub fn content_hash(&self) -> u64 {
        let mut hasher = crate::StableHasher::new();
        let mut write = |v: u64| hasher.write_u64(v);
        write(self.num_qubits as u64);
        for gate in &self.gates {
            let (tag, a, b, angle): (u64, u32, u32, f64) = match *gate {
                Gate::H(q) => (0, q.0, u32::MAX, 0.0),
                Gate::X(q) => (1, q.0, u32::MAX, 0.0),
                Gate::Rx(q, t) => (2, q.0, u32::MAX, t),
                Gate::Ry(q, t) => (3, q.0, u32::MAX, t),
                Gate::Rz(q, t) => (4, q.0, u32::MAX, t),
                Gate::Cx(x, y) => (5, x.0, y.0, 0.0),
                Gate::Cz(x, y) => (6, x.0, y.0, 0.0),
                Gate::Cp(x, y, t) => (7, x.0, y.0, t),
                Gate::Ms(x, y) => (8, x.0, y.0, 0.0),
                Gate::Rzz(x, y, t) => (9, x.0, y.0, t),
                Gate::Rxx(x, y, t) => (10, x.0, y.0, t),
                Gate::Ryy(x, y, t) => (11, x.0, y.0, t),
                Gate::Swap(x, y) => (12, x.0, y.0, 0.0),
            };
            write(tag);
            write(u64::from(a) | (u64::from(b) << 32));
            write(angle.to_bits());
        }
        hasher.finish()
    }

    /// Restricts the circuit to the first `n` qubits, dropping every gate
    /// that touches a higher-indexed qubit. Used by application-size sweeps.
    pub fn restrict_to_qubits(&self, n: usize) -> Circuit {
        let mut out = Circuit::with_name(n.min(self.num_qubits), self.name.clone());
        for g in &self.gates {
            if g.qubits().iter().all(|q| q.index() < n) {
                out.gates.push(*g);
            }
        }
        out
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// {} qubits, {} gates", self.num_qubits, self.gates.len())?;
        for g in &self.gates {
            writeln!(f, "{g};")?;
        }
        Ok(())
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;
    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

impl CircuitStats {
    /// Classifies the gate-count-weighted average interaction distance as a
    /// coarse "communication pattern" label, mirroring Table 2's wording.
    pub fn communication_label(avg_distance: f64) -> &'static str {
        if avg_distance <= 1.5 {
            "nearest-neighbor gates"
        } else if avg_distance <= 6.0 {
            "short-distance gates"
        } else {
            "long-distance gates"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_and_counts() {
        let mut c = Circuit::new(4);
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(1));
        c.ms(Qubit(2), Qubit(3));
        c.rz(Qubit(1), 0.3);
        c.swap(Qubit(1), Qubit(2));
        assert_eq!(c.len(), 5);
        assert_eq!(c.two_qubit_gate_count(), 3);
        assert_eq!(c.single_qubit_gate_count(), 2);
        assert_eq!(c.stats().two_qubit_gates, 3);
    }

    #[test]
    fn try_push_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        let err = c.try_push(Gate::Cx(Qubit(0), Qubit(5))).unwrap_err();
        assert_eq!(err, CircuitError::QubitOutOfRange { qubit: 5, num_qubits: 2 });
    }

    #[test]
    fn try_push_rejects_duplicate_operand() {
        let mut c = Circuit::new(2);
        let err = c.try_push(Gate::Cx(Qubit(1), Qubit(1))).unwrap_err();
        assert_eq!(err, CircuitError::DuplicateOperand { qubit: 1 });
    }

    #[test]
    #[should_panic(expected = "invalid gate operands")]
    fn push_panics_on_invalid() {
        let mut c = Circuit::new(1);
        c.cx(Qubit(0), Qubit(1));
    }

    #[test]
    fn depth_is_asap_layering() {
        let mut c = Circuit::new(3);
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(1), Qubit(2));
        c.cx(Qubit(0), Qubit(1));
        assert_eq!(c.two_qubit_depth(), 3);
        let mut parallel = Circuit::new(4);
        parallel.cx(Qubit(0), Qubit(1));
        parallel.cx(Qubit(2), Qubit(3));
        assert_eq!(parallel.two_qubit_depth(), 1);
    }

    #[test]
    fn truncate_keeps_first_n_two_qubit_gates() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(1), Qubit(2));
        c.cx(Qubit(0), Qubit(2));
        let t = c.truncate_two_qubit_gates(2);
        assert_eq!(t.two_qubit_gate_count(), 2);
        assert_eq!(t.single_qubit_gate_count(), 1);
    }

    #[test]
    fn restrict_drops_gates_on_high_qubits() {
        let mut c = Circuit::new(4);
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(2), Qubit(3));
        let r = c.restrict_to_qubits(2);
        assert_eq!(r.num_qubits(), 2);
        assert_eq!(r.two_qubit_gate_count(), 1);
    }

    #[test]
    fn append_and_extend() {
        let mut a = Circuit::new(3);
        a.h(Qubit(0));
        let mut b = Circuit::new(2);
        b.cx(Qubit(0), Qubit(1));
        a.append(&b);
        assert_eq!(a.len(), 2);
        a.extend([Gate::X(Qubit(2))]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn display_emits_one_gate_per_line() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(1));
        let s = c.to_string();
        assert!(s.contains("h q0;"));
        assert!(s.contains("cx q0, q1;"));
    }

    #[test]
    fn first_use_order_sorts_by_first_gate_then_index() {
        let mut c = Circuit::new(5);
        c.cx(Qubit(3), Qubit(1));
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(4));
        // Qubit 2 is never used and comes last; 3 and 1 tie on the first
        // gate and break by index.
        assert_eq!(c.first_use_order(), vec![Qubit(1), Qubit(3), Qubit(0), Qubit(4), Qubit(2)]);
    }

    #[test]
    fn content_hash_ignores_name_but_not_structure() {
        let mut a = Circuit::with_name(3, "a");
        a.cx(Qubit(0), Qubit(1));
        a.rz(Qubit(2), 0.25);
        let mut b = Circuit::with_name(3, "completely different name");
        b.cx(Qubit(0), Qubit(1));
        b.rz(Qubit(2), 0.25);
        assert_eq!(a.content_hash(), b.content_hash());

        let mut angle = b.clone();
        angle.rz(Qubit(2), 0.5);
        assert_ne!(a.content_hash(), angle.content_hash());
        let mut operands = Circuit::new(3);
        operands.cx(Qubit(1), Qubit(0));
        operands.rz(Qubit(2), 0.25);
        assert_ne!(a.content_hash(), operands.content_hash());
        assert_ne!(Circuit::new(3).content_hash(), Circuit::new(4).content_hash());
    }

    #[test]
    fn communication_label_thresholds() {
        assert_eq!(CircuitStats::communication_label(1.0), "nearest-neighbor gates");
        assert_eq!(CircuitStats::communication_label(4.0), "short-distance gates");
        assert_eq!(CircuitStats::communication_label(20.0), "long-distance gates");
    }
}
