//! Qubit-interaction graphs: how often (and how soon) pairs of program
//! qubits need to meet. Used by the initial-mapping strategies.

use crate::circuit::Circuit;
use crate::gate::Qubit;
use std::collections::HashMap;

/// A weighted interaction graph over program qubits.
///
/// The weight of the edge `(a, b)` counts the two-qubit gates between `a`
/// and `b`, optionally discounted by when the gate occurs (earlier gates
/// weigh more), which is the spatio-temporal correlation used by the STA
/// mapping of the paper.
///
/// ```
/// use ssync_circuit::{Circuit, InteractionGraph, Qubit};
/// let mut c = Circuit::new(3);
/// c.cx(Qubit(0), Qubit(1));
/// c.cx(Qubit(0), Qubit(1));
/// c.cx(Qubit(1), Qubit(2));
/// let g = InteractionGraph::from_circuit(&c);
/// assert_eq!(g.count(Qubit(0), Qubit(1)), 2);
/// assert_eq!(g.count(Qubit(0), Qubit(2)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InteractionGraph {
    num_qubits: usize,
    counts: HashMap<(Qubit, Qubit), usize>,
    weights: HashMap<(Qubit, Qubit), f64>,
}

fn ordered(a: Qubit, b: Qubit) -> (Qubit, Qubit) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl InteractionGraph {
    /// Builds the interaction graph with uniform per-gate weight 1.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        Self::with_temporal_discount(circuit, 0.0)
    }

    /// Builds the interaction graph where the `i`-th two-qubit gate (0-based)
    /// contributes weight `1 / (1 + discount * i)`. A zero discount reduces
    /// to plain counting; larger discounts emphasise early gates, which is
    /// what the STA mapping exploits.
    pub fn with_temporal_discount(circuit: &Circuit, discount: f64) -> Self {
        let mut counts = HashMap::new();
        let mut weights = HashMap::new();
        let mut i = 0usize;
        for g in circuit.iter() {
            if let Some((a, b)) = g.two_qubit_pair() {
                let key = ordered(a, b);
                *counts.entry(key).or_insert(0) += 1;
                *weights.entry(key).or_insert(0.0) += 1.0 / (1.0 + discount * i as f64);
                i += 1;
            }
        }
        InteractionGraph { num_qubits: circuit.num_qubits(), counts, weights }
    }

    /// Number of qubits in the underlying circuit register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of two-qubit gates between `a` and `b`.
    pub fn count(&self, a: Qubit, b: Qubit) -> usize {
        self.counts.get(&ordered(a, b)).copied().unwrap_or(0)
    }

    /// Temporally-discounted interaction weight between `a` and `b`.
    pub fn weight(&self, a: Qubit, b: Qubit) -> f64 {
        self.weights.get(&ordered(a, b)).copied().unwrap_or(0.0)
    }

    /// All interacting pairs with their counts, in unspecified order.
    pub fn pairs(&self) -> impl Iterator<Item = (Qubit, Qubit, usize)> + '_ {
        self.counts.iter().map(|(&(a, b), &c)| (a, b, c))
    }

    /// Total interaction count of a single qubit (its weighted degree).
    pub fn degree(&self, q: Qubit) -> usize {
        self.counts.iter().filter(|(&(a, b), _)| a == q || b == q).map(|(_, &c)| c).sum()
    }

    /// Qubits sorted by descending interaction degree (ties by index). This
    /// is a convenient seed ordering for clustering-style initial mappings.
    pub fn qubits_by_degree(&self) -> Vec<Qubit> {
        let mut qs: Vec<Qubit> = (0..self.num_qubits as u32).map(Qubit).collect();
        qs.sort_by_key(|&q| (std::cmp::Reverse(self.degree(q)), q.0));
        qs
    }

    /// The gate-count-weighted average "distance" between interacting qubit
    /// indices, a cheap proxy for the communication pattern labels of
    /// Table 2 (nearest-neighbour vs. long-distance).
    pub fn average_interaction_distance(&self) -> f64 {
        let mut total = 0.0f64;
        let mut gates = 0usize;
        for (&(a, b), &c) in &self.counts {
            total += (a.0 as f64 - b.0 as f64).abs() * c as f64;
            gates += c;
        }
        if gates == 0 {
            0.0
        } else {
            total / gates as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(4);
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(1), Qubit(0));
        c.cx(Qubit(2), Qubit(3));
        c.cx(Qubit(0), Qubit(3));
        c
    }

    #[test]
    fn counts_are_symmetric() {
        let g = InteractionGraph::from_circuit(&sample());
        assert_eq!(g.count(Qubit(0), Qubit(1)), 2);
        assert_eq!(g.count(Qubit(1), Qubit(0)), 2);
        assert_eq!(g.count(Qubit(2), Qubit(3)), 1);
    }

    #[test]
    fn degree_sums_incident_counts() {
        let g = InteractionGraph::from_circuit(&sample());
        assert_eq!(g.degree(Qubit(0)), 3);
        assert_eq!(g.degree(Qubit(2)), 1);
    }

    #[test]
    fn qubits_by_degree_is_descending() {
        let g = InteractionGraph::from_circuit(&sample());
        let order = g.qubits_by_degree();
        assert_eq!(order[0], Qubit(0));
        assert_eq!(order.len(), 4);
        let degs: Vec<usize> = order.iter().map(|&q| g.degree(q)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn temporal_discount_prefers_early_gates() {
        let mut c = Circuit::new(3);
        c.cx(Qubit(0), Qubit(1)); // gate 0
        c.cx(Qubit(1), Qubit(2)); // gate 1
        let g = InteractionGraph::with_temporal_discount(&c, 1.0);
        assert!(g.weight(Qubit(0), Qubit(1)) > g.weight(Qubit(1), Qubit(2)));
    }

    #[test]
    fn average_distance_reflects_locality() {
        let mut near = Circuit::new(8);
        for i in 0..7u32 {
            near.cx(Qubit(i), Qubit(i + 1));
        }
        let mut far = Circuit::new(8);
        for i in 0..4u32 {
            far.cx(Qubit(i), Qubit(7 - i));
        }
        let gn = InteractionGraph::from_circuit(&near);
        let gf = InteractionGraph::from_circuit(&far);
        assert!(gn.average_interaction_distance() < gf.average_interaction_distance());
    }

    #[test]
    fn empty_circuit_has_zero_distance() {
        let g = InteractionGraph::from_circuit(&Circuit::new(3));
        assert_eq!(g.average_interaction_distance(), 0.0);
        assert_eq!(g.pairs().count(), 0);
    }
}
