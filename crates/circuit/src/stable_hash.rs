//! A stable, process-independent hash accumulator.
//!
//! `std::collections::hash_map::DefaultHasher` is randomly seeded per
//! process, so anything whose digest must mean the same thing across runs
//! (circuit content hashes, device fingerprints, compile-result cache
//! keys) uses this FNV-1a accumulator instead. It lives in `ssync-circuit`
//! — the lowest crate in the workspace — so every layer keys against the
//! *same* implementation; [`Circuit::content_hash`](crate::Circuit) and
//! the `ssync-service` fingerprints all fold through it.

/// A minimal FNV-1a accumulator. Deterministic across processes and
/// platforms; collisions are as unlikely as any 64-bit hash, and a
/// collision's worst case for a compile-result cache is an
/// (astronomically rare) wrong hit on a different input — acceptable for
/// an in-memory tier, documented so a persistent tier can revisit it.
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl StableHasher {
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh accumulator at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one 64-bit word in, byte by byte (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(Self::PRIME);
        }
    }

    /// Folds a `usize` in (widened to 64 bits).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds a float's exact bit pattern in — `0.1 + 0.2` and `0.3` hash
    /// differently, which is what content hashing wants.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a string in, length-prefixed so `("ab", "c")` and
    /// `("a", "bc")` cannot collide.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        for byte in s.bytes() {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(Self::PRIME);
        }
    }

    /// The accumulated 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_and_input_sensitive() {
        let mut h = StableHasher::new();
        h.write_u64(42);
        // FNV-1a of the 8 little-endian bytes of 42u64 is a fixed value;
        // pin it so the algorithm can never drift silently (cache keys
        // persist across versions in spirit).
        let digest = h.finish();
        let mut again = StableHasher::new();
        again.write_u64(42);
        assert_eq!(digest, again.finish());
        let mut other = StableHasher::new();
        other.write_u64(43);
        assert_ne!(digest, other.finish());
    }

    #[test]
    fn string_folding_is_length_prefixed() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn float_bits_distinguish_near_equal_values() {
        let mut a = StableHasher::new();
        a.write_f64(0.1 + 0.2);
        let mut b = StableHasher::new();
        b.write_f64(0.3);
        assert_ne!(a.finish(), b.finish());
    }
}
