//! ASAP layering of a circuit (parallel "time slices" of gates).

use crate::circuit::Circuit;
use crate::gate::Gate;

/// A circuit partitioned into ASAP layers: each layer contains gates acting
/// on disjoint qubits, and every gate appears in the earliest layer allowed
/// by its dependencies.
///
/// ```
/// use ssync_circuit::{Circuit, Layers, Qubit};
/// let mut c = Circuit::new(4);
/// c.cx(Qubit(0), Qubit(1));
/// c.cx(Qubit(2), Qubit(3));
/// c.cx(Qubit(1), Qubit(2));
/// let layers = Layers::from_circuit(&c);
/// assert_eq!(layers.len(), 2);
/// assert_eq!(layers.layer(0).len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Layers {
    layers: Vec<Vec<Gate>>,
}

impl Layers {
    /// Partitions the two-qubit gates of `circuit` into ASAP layers.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        Self::from_gates(circuit.iter().copied().filter(Gate::is_two_qubit), circuit.num_qubits())
    }

    /// Partitions an arbitrary gate sequence into ASAP layers.
    pub fn from_gates(gates: impl IntoIterator<Item = Gate>, num_qubits: usize) -> Self {
        let mut level = vec![0usize; num_qubits];
        let mut layers: Vec<Vec<Gate>> = Vec::new();
        for g in gates {
            let qs = g.qubits();
            let l = qs.iter().map(|q| level[q.index()]).max().unwrap_or(0);
            if l >= layers.len() {
                layers.resize_with(l + 1, Vec::new);
            }
            layers[l].push(g);
            for q in &qs {
                level[q.index()] = l + 1;
            }
        }
        Layers { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if there are no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The gates of layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn layer(&self, i: usize) -> &[Gate] {
        &self.layers[i]
    }

    /// Iterates over the layers, earliest first.
    pub fn iter(&self) -> std::slice::Iter<'_, Vec<Gate>> {
        self.layers.iter()
    }

    /// The gates of the first `k` layers, flattened in layer order. This is
    /// the look-ahead window used by the intra-trap initial mapping score
    /// (Eq. 3 of the paper).
    pub fn first_k(&self, k: usize) -> Vec<Gate> {
        self.layers.iter().take(k).flatten().copied().collect()
    }
}

impl<'a> IntoIterator for &'a Layers {
    type Item = &'a Vec<Gate>;
    type IntoIter = std::slice::Iter<'a, Vec<Gate>>;
    fn into_iter(self) -> Self::IntoIter {
        self.layers.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Qubit;

    #[test]
    fn parallel_gates_share_a_layer() {
        let mut c = Circuit::new(4);
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(2), Qubit(3));
        let layers = Layers::from_circuit(&c);
        assert_eq!(layers.len(), 1);
        assert_eq!(layers.layer(0).len(), 2);
    }

    #[test]
    fn dependent_gates_stack_in_order() {
        let mut c = Circuit::new(3);
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(1), Qubit(2));
        let layers = Layers::from_circuit(&c);
        assert_eq!(layers.len(), 2);
    }

    #[test]
    fn first_k_flattens_in_layer_order() {
        let mut c = Circuit::new(4);
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(2), Qubit(3));
        c.cx(Qubit(1), Qubit(2));
        let layers = Layers::from_circuit(&c);
        assert_eq!(layers.first_k(1).len(), 2);
        assert_eq!(layers.first_k(2).len(), 3);
        assert_eq!(layers.first_k(10).len(), 3);
    }

    #[test]
    fn single_qubit_gates_are_ignored() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.h(Qubit(1));
        let layers = Layers::from_circuit(&c);
        assert!(layers.is_empty());
    }
}
