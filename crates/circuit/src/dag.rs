//! Dependency DAG over the two-qubit gates of a circuit.
//!
//! The QCCD scheduler only needs ordering constraints between gates that
//! share a qubit. Single-qubit gates are always executable (they never
//! require routing), so by default the DAG is built over two-qubit gates
//! only — exactly the view used by Algorithm 1 of the paper.

use crate::circuit::Circuit;
use crate::gate::Gate;
use serde::{Deserialize, Serialize};

/// Index of a node (gate) in a [`DependencyDag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

#[derive(Debug, Clone)]
struct DagNode {
    gate: Gate,
    succs: Vec<NodeId>,
    /// Number of unexecuted predecessors. A node is in the frontier when
    /// this reaches zero and the node itself has not been executed.
    pending_preds: usize,
    executed: bool,
}

/// Reusable buffers for [`DependencyDag::lookahead_ids_into`], so the
/// scheduler's per-iteration look-ahead walk allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct LookaheadScratch {
    pending: Vec<usize>,
    layer: Vec<NodeId>,
    next: Vec<NodeId>,
}

/// A dependency DAG with an executable *frontier*.
///
/// Nodes are gates; a directed edge `(g_i, g_j)` means `g_j` uses a qubit
/// last written by `g_i` and therefore must run after it. The frontier is
/// the set of nodes whose predecessors have all been executed.
///
/// ```
/// use ssync_circuit::{Circuit, DependencyDag, Qubit};
/// let mut c = Circuit::new(3);
/// c.cx(Qubit(0), Qubit(1));
/// c.cx(Qubit(1), Qubit(2));
/// let mut dag = DependencyDag::from_circuit(&c);
/// assert_eq!(dag.frontier().len(), 1);
/// let first = dag.frontier()[0];
/// dag.execute(first);
/// assert_eq!(dag.frontier().len(), 1);
/// assert!(!dag.is_complete());
/// ```
#[derive(Debug, Clone)]
pub struct DependencyDag {
    nodes: Vec<DagNode>,
    frontier: Vec<NodeId>,
    remaining: usize,
}

impl DependencyDag {
    /// Builds the DAG over the **two-qubit** gates of `circuit`.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        Self::from_gates(circuit.iter().copied().filter(Gate::is_two_qubit))
    }

    /// Builds the DAG over every gate of `circuit` (single-qubit included).
    pub fn from_circuit_all_gates(circuit: &Circuit) -> Self {
        Self::from_gates(circuit.iter().copied())
    }

    /// Builds the DAG from an explicit gate sequence.
    pub fn from_gates(gates: impl IntoIterator<Item = Gate>) -> Self {
        let gates: Vec<Gate> = gates.into_iter().collect();
        let max_qubit = gates.iter().map(|g| g.max_qubit().index() + 1).max().unwrap_or(0);
        let mut nodes: Vec<DagNode> = gates
            .iter()
            .map(|&gate| DagNode { gate, succs: Vec::new(), pending_preds: 0, executed: false })
            .collect();
        // last gate to have touched each qubit
        let mut last_use: Vec<Option<NodeId>> = vec![None; max_qubit];
        for (idx, gate) in gates.iter().enumerate() {
            let id = NodeId(idx);
            for q in gate.qubits() {
                if let Some(prev) = last_use[q.index()] {
                    // avoid duplicate edges when both qubits come from the
                    // same predecessor
                    if !nodes[prev.0].succs.contains(&id) {
                        nodes[prev.0].succs.push(id);
                        nodes[idx].pending_preds += 1;
                    }
                }
                last_use[q.index()] = Some(id);
            }
        }
        let frontier = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.pending_preds == 0)
            .map(|(i, _)| NodeId(i))
            .collect();
        let remaining = nodes.len();
        DependencyDag { nodes, frontier, remaining }
    }

    /// Total number of gates in the DAG.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the DAG was built from an empty gate list.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of gates not yet executed.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// `true` once every gate has been executed.
    pub fn is_complete(&self) -> bool {
        self.remaining == 0
    }

    /// The current frontier: gates whose dependencies have all executed.
    pub fn frontier(&self) -> &[NodeId] {
        &self.frontier
    }

    /// The gate stored at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate(&self, id: NodeId) -> Gate {
        self.nodes[id.0].gate
    }

    /// `true` if the node has already been executed.
    pub fn is_executed(&self, id: NodeId) -> bool {
        self.nodes[id.0].executed
    }

    /// Marks a frontier node as executed and advances the frontier.
    ///
    /// # Panics
    ///
    /// Panics if the node is not currently in the frontier.
    pub fn execute(&mut self, id: NodeId) {
        let pos = self
            .frontier
            .iter()
            .position(|&n| n == id)
            .expect("node must be in the frontier to be executed");
        self.frontier.swap_remove(pos);
        self.nodes[id.0].executed = true;
        self.remaining -= 1;
        let succs = self.nodes[id.0].succs.clone();
        for s in succs {
            let node = &mut self.nodes[s.0];
            node.pending_preds -= 1;
            if node.pending_preds == 0 {
                self.frontier.push(s);
            }
        }
    }

    /// Gates within the first `k` dependency layers from the current
    /// frontier (the look-ahead window used by the extended cost function
    /// and the intra-trap initial-mapping score).
    pub fn lookahead(&self, k: usize) -> Vec<Gate> {
        let mut scratch = LookaheadScratch::default();
        let mut ids = Vec::new();
        self.lookahead_ids_into(k, &mut scratch, &mut ids);
        ids.into_iter().map(|id| self.nodes[id.0].gate).collect()
    }

    /// Allocation-free variant of [`DependencyDag::lookahead`]: writes the
    /// node ids of the first `k` dependency layers into `out` (same order
    /// as `lookahead`), reusing `scratch` buffers across calls. This is the
    /// form the scheduler's hot loop uses — the look-ahead window only
    /// changes when gates retire, so callers can cache `out` between
    /// placement-only iterations.
    pub fn lookahead_ids_into(
        &self,
        k: usize,
        scratch: &mut LookaheadScratch,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        if k == 0 {
            return;
        }
        // Breadth-first walk over unexecuted nodes, layer by layer, using a
        // temporary pending-predecessor count.
        scratch.pending.clear();
        scratch
            .pending
            .extend(self.nodes.iter().map(|n| if n.executed { 0 } else { n.pending_preds }));
        scratch.layer.clear();
        scratch.layer.extend_from_slice(&self.frontier);
        for _ in 0..k {
            if scratch.layer.is_empty() {
                break;
            }
            scratch.next.clear();
            for i in 0..scratch.layer.len() {
                let id = scratch.layer[i];
                out.push(id);
                for &s in &self.nodes[id.0].succs {
                    if self.nodes[s.0].executed {
                        continue;
                    }
                    scratch.pending[s.0] = scratch.pending[s.0].saturating_sub(1);
                    if scratch.pending[s.0] == 0 {
                        scratch.next.push(s);
                    }
                }
            }
            std::mem::swap(&mut scratch.layer, &mut scratch.next);
        }
    }

    /// Executes, in order, every frontier gate accepted by `can_execute`,
    /// repeating until no frontier gate is accepted. Returns the executed
    /// node ids in execution order.
    pub fn drain_executable(&mut self, can_execute: impl FnMut(Gate) -> bool) -> Vec<NodeId> {
        let mut scratch = Vec::new();
        let mut executed = Vec::new();
        self.drain_executable_into(can_execute, &mut scratch, &mut executed);
        executed
    }

    /// Allocation-free variant of [`DependencyDag::drain_executable`]:
    /// writes the executed node ids into `out` (cleared first, same order)
    /// using `scratch` for the per-pass candidate list, so a scheduler can
    /// reuse both buffers across its iterations instead of allocating two
    /// fresh `Vec`s per round.
    pub fn drain_executable_into(
        &mut self,
        mut can_execute: impl FnMut(Gate) -> bool,
        scratch: &mut Vec<NodeId>,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        loop {
            scratch.clear();
            scratch.extend(
                self.frontier.iter().copied().filter(|&id| can_execute(self.nodes[id.0].gate)),
            );
            if scratch.is_empty() {
                break;
            }
            for &id in scratch.iter() {
                // A node can leave the frontier only via execute(), and
                // executing one candidate never removes another, so this is
                // still in the frontier.
                self.execute(id);
                out.push(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Qubit;

    fn chain3() -> Circuit {
        let mut c = Circuit::new(3);
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(1), Qubit(2));
        c.cx(Qubit(0), Qubit(2));
        c
    }

    #[test]
    fn frontier_starts_with_independent_gates() {
        let mut c = Circuit::new(4);
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(2), Qubit(3));
        let dag = DependencyDag::from_circuit(&c);
        assert_eq!(dag.frontier().len(), 2);
    }

    #[test]
    fn execute_advances_frontier_in_dependency_order() {
        let c = chain3();
        let mut dag = DependencyDag::from_circuit(&c);
        assert_eq!(dag.frontier().len(), 1);
        let n0 = dag.frontier()[0];
        assert_eq!(dag.gate(n0), Gate::Cx(Qubit(0), Qubit(1)));
        dag.execute(n0);
        let n1 = dag.frontier()[0];
        assert_eq!(dag.gate(n1), Gate::Cx(Qubit(1), Qubit(2)));
        dag.execute(n1);
        let n2 = dag.frontier()[0];
        assert_eq!(dag.gate(n2), Gate::Cx(Qubit(0), Qubit(2)));
        dag.execute(n2);
        assert!(dag.is_complete());
    }

    #[test]
    #[should_panic(expected = "must be in the frontier")]
    fn executing_non_frontier_node_panics() {
        let c = chain3();
        let mut dag = DependencyDag::from_circuit(&c);
        dag.execute(NodeId(2));
    }

    #[test]
    fn single_qubit_gates_excluded_by_default() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(1));
        assert_eq!(DependencyDag::from_circuit(&c).len(), 1);
        assert_eq!(DependencyDag::from_circuit_all_gates(&c).len(), 2);
    }

    #[test]
    fn lookahead_returns_layered_gates() {
        let c = chain3();
        let dag = DependencyDag::from_circuit(&c);
        let la1 = dag.lookahead(1);
        assert_eq!(la1.len(), 1);
        let la3 = dag.lookahead(3);
        assert_eq!(la3.len(), 3);
        assert_eq!(la3[0], Gate::Cx(Qubit(0), Qubit(1)));
    }

    #[test]
    fn drain_executable_respects_predicate() {
        let c = chain3();
        let mut dag = DependencyDag::from_circuit(&c);
        // Refuse everything: nothing executes.
        assert!(dag.drain_executable(|_| false).is_empty());
        // Accept everything: the whole chain drains in dependency order.
        let all = dag.drain_executable(|_| true);
        assert_eq!(all.len(), 3);
        assert!(dag.is_complete());
    }

    #[test]
    fn drain_executable_into_matches_allocating_variant() {
        let c = chain3();
        let mut a = DependencyDag::from_circuit(&c);
        let mut b = a.clone();
        let expected = a.drain_executable(|_| true);
        let mut scratch = Vec::new();
        let mut out = vec![NodeId(99)]; // stale content must be cleared
        b.drain_executable_into(|_| true, &mut scratch, &mut out);
        assert_eq!(out, expected);
        assert!(b.is_complete());
    }

    #[test]
    fn empty_circuit_dag() {
        let dag = DependencyDag::from_circuit(&Circuit::new(3));
        assert!(dag.is_empty());
        assert!(dag.is_complete());
        assert!(dag.frontier().is_empty());
    }

    #[test]
    fn remaining_counts_down() {
        let c = chain3();
        let mut dag = DependencyDag::from_circuit(&c);
        assert_eq!(dag.remaining(), 3);
        let id = dag.frontier()[0];
        dag.execute(id);
        assert_eq!(dag.remaining(), 2);
    }
}
