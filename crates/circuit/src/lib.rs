//! # ssync-circuit
//!
//! Quantum-circuit intermediate representation used throughout the S-SYNC
//! reproduction: gates, circuits, dependency DAGs, interaction graphs, and
//! the benchmark generators from Table 2 of the paper (QFT, Cuccaro adder,
//! Bernstein–Vazirani, QAOA, alternating layered ansatz, Heisenberg
//! Hamiltonian simulation).
//!
//! The IR is deliberately small: the QCCD compiler only cares about *which
//! qubit pairs* must meet in the same trap and in *which order*, plus enough
//! gate metadata (angles, kinds) for the timing / fidelity models in
//! `ssync-sim`.
//!
//! ## Example
//!
//! ```
//! use ssync_circuit::{Circuit, Qubit, generators};
//!
//! // Hand-built circuit.
//! let mut c = Circuit::new(3);
//! c.h(Qubit(0));
//! c.cx(Qubit(0), Qubit(1));
//! c.cx(Qubit(1), Qubit(2));
//! assert_eq!(c.two_qubit_gate_count(), 2);
//!
//! // Generated benchmark (Table 2 of the paper).
//! let qft = generators::qft(24);
//! assert_eq!(qft.num_qubits(), 24);
//! assert_eq!(qft.two_qubit_gate_count(), 552);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod dag;
mod error;
mod gate;
pub mod generators;
mod interaction;
mod layers;
mod stable_hash;

pub use circuit::{Circuit, CircuitStats};
pub use dag::{DependencyDag, LookaheadScratch, NodeId};
pub use error::CircuitError;
pub use gate::{Gate, GateKind, Qubit};
pub use interaction::InteractionGraph;
pub use layers::Layers;
pub use stable_hash::StableHasher;
