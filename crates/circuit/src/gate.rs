//! Gate and qubit primitives.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A logical (program) qubit index.
///
/// Logical qubits are what the input circuit talks about; the compiler maps
/// them onto physical slots of a QCCD device.
///
/// ```
/// use ssync_circuit::Qubit;
/// let q = Qubit(3);
/// assert_eq!(q.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Qubit(pub u32);

impl Qubit {
    /// Returns the raw index as a `usize`, convenient for indexing vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for Qubit {
    fn from(v: u32) -> Self {
        Qubit(v)
    }
}

impl From<usize> for Qubit {
    fn from(v: usize) -> Self {
        Qubit(v as u32)
    }
}

/// The broad class of a gate, used by the timing and fidelity models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Any single-qubit operation (rotation, Hadamard, Pauli, ...).
    SingleQubit,
    /// Any entangling two-qubit operation (MS, CX, CZ, CP, RZZ, ...).
    TwoQubit,
    /// A SWAP, which on trapped-ion hardware is synthesised from three
    /// entangling gates (or performed by physical ion reordering).
    Swap,
}

/// A quantum gate in the circuit IR.
///
/// Only the structure needed by a QCCD compiler is kept: which qubits are
/// touched, whether the gate entangles, and the rotation angle for gates
/// where the angle matters to downstream consumers (e.g. exporting).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Hadamard.
    H(Qubit),
    /// Pauli-X.
    X(Qubit),
    /// Rotation about X by an angle in radians.
    Rx(Qubit, f64),
    /// Rotation about Y by an angle in radians.
    Ry(Qubit, f64),
    /// Rotation about Z by an angle in radians.
    Rz(Qubit, f64),
    /// Controlled-X (CNOT): control, target.
    Cx(Qubit, Qubit),
    /// Controlled-Z.
    Cz(Qubit, Qubit),
    /// Controlled-phase with angle in radians (QFT building block).
    Cp(Qubit, Qubit, f64),
    /// Mølmer–Sørensen entangling gate (native trapped-ion two-qubit gate).
    Ms(Qubit, Qubit),
    /// ZZ interaction exp(-i θ Z⊗Z / 2) (QAOA / Trotter building block).
    Rzz(Qubit, Qubit, f64),
    /// XX interaction (Heisenberg Trotter term).
    Rxx(Qubit, Qubit, f64),
    /// YY interaction (Heisenberg Trotter term).
    Ryy(Qubit, Qubit, f64),
    /// Logical SWAP between two program qubits.
    Swap(Qubit, Qubit),
}

impl Gate {
    /// Returns the qubits this gate acts on (one or two entries).
    pub fn qubits(&self) -> Vec<Qubit> {
        match *self {
            Gate::H(q) | Gate::X(q) | Gate::Rx(q, _) | Gate::Ry(q, _) | Gate::Rz(q, _) => {
                vec![q]
            }
            Gate::Cx(a, b)
            | Gate::Cz(a, b)
            | Gate::Ms(a, b)
            | Gate::Swap(a, b)
            | Gate::Cp(a, b, _)
            | Gate::Rzz(a, b, _)
            | Gate::Rxx(a, b, _)
            | Gate::Ryy(a, b, _) => vec![a, b],
        }
    }

    /// Returns the pair of qubits if this is a two-qubit gate.
    pub fn two_qubit_pair(&self) -> Option<(Qubit, Qubit)> {
        match *self {
            Gate::Cx(a, b)
            | Gate::Cz(a, b)
            | Gate::Ms(a, b)
            | Gate::Swap(a, b)
            | Gate::Cp(a, b, _)
            | Gate::Rzz(a, b, _)
            | Gate::Rxx(a, b, _)
            | Gate::Ryy(a, b, _) => Some((a, b)),
            _ => None,
        }
    }

    /// The broad kind of the gate (single-qubit / two-qubit / swap).
    pub fn kind(&self) -> GateKind {
        match self {
            Gate::H(_) | Gate::X(_) | Gate::Rx(..) | Gate::Ry(..) | Gate::Rz(..) => {
                GateKind::SingleQubit
            }
            Gate::Swap(..) => GateKind::Swap,
            _ => GateKind::TwoQubit,
        }
    }

    /// `true` if the gate acts on two qubits (including SWAP).
    #[inline]
    pub fn is_two_qubit(&self) -> bool {
        !matches!(self.kind(), GateKind::SingleQubit)
    }

    /// Returns the highest qubit index referenced by the gate.
    pub fn max_qubit(&self) -> Qubit {
        self.qubits().into_iter().max().expect("gate touches at least one qubit")
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::H(q) => write!(f, "h {q}"),
            Gate::X(q) => write!(f, "x {q}"),
            Gate::Rx(q, a) => write!(f, "rx({a:.4}) {q}"),
            Gate::Ry(q, a) => write!(f, "ry({a:.4}) {q}"),
            Gate::Rz(q, a) => write!(f, "rz({a:.4}) {q}"),
            Gate::Cx(a, b) => write!(f, "cx {a}, {b}"),
            Gate::Cz(a, b) => write!(f, "cz {a}, {b}"),
            Gate::Cp(a, b, t) => write!(f, "cp({t:.4}) {a}, {b}"),
            Gate::Ms(a, b) => write!(f, "ms {a}, {b}"),
            Gate::Rzz(a, b, t) => write!(f, "rzz({t:.4}) {a}, {b}"),
            Gate::Rxx(a, b, t) => write!(f, "rxx({t:.4}) {a}, {b}"),
            Gate::Ryy(a, b, t) => write!(f, "ryy({t:.4}) {a}, {b}"),
            Gate::Swap(a, b) => write!(f, "swap {a}, {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_display_and_index() {
        assert_eq!(Qubit(7).to_string(), "q7");
        assert_eq!(Qubit(7).index(), 7);
        assert_eq!(Qubit::from(7usize), Qubit(7));
        assert_eq!(Qubit::from(7u32), Qubit(7));
    }

    #[test]
    fn single_qubit_gate_classification() {
        for g in [Gate::H(Qubit(0)), Gate::X(Qubit(1)), Gate::Rz(Qubit(2), 0.5)] {
            assert_eq!(g.kind(), GateKind::SingleQubit);
            assert!(!g.is_two_qubit());
            assert_eq!(g.qubits().len(), 1);
            assert!(g.two_qubit_pair().is_none());
        }
    }

    #[test]
    fn two_qubit_gate_classification() {
        let g = Gate::Cx(Qubit(0), Qubit(3));
        assert_eq!(g.kind(), GateKind::TwoQubit);
        assert!(g.is_two_qubit());
        assert_eq!(g.two_qubit_pair(), Some((Qubit(0), Qubit(3))));
        assert_eq!(g.max_qubit(), Qubit(3));
    }

    #[test]
    fn swap_is_its_own_kind() {
        let g = Gate::Swap(Qubit(1), Qubit(2));
        assert_eq!(g.kind(), GateKind::Swap);
        assert!(g.is_two_qubit());
    }

    #[test]
    fn display_round_trips_names() {
        assert_eq!(Gate::Cx(Qubit(0), Qubit(1)).to_string(), "cx q0, q1");
        assert_eq!(Gate::Ms(Qubit(5), Qubit(2)).to_string(), "ms q5, q2");
        assert!(Gate::Cp(Qubit(0), Qubit(1), 1.5).to_string().starts_with("cp(1.5"));
    }
}
