//! Error type for circuit construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate referenced a qubit index outside the circuit's register.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: u32,
        /// The number of qubits in the circuit.
        num_qubits: usize,
    },
    /// A two-qubit gate was applied to the same qubit twice.
    DuplicateOperand {
        /// The repeated qubit index.
        qubit: u32,
    },
    /// A generator was asked for a circuit that is too small to be
    /// meaningful (e.g. a 0-qubit QFT or a 1-bit adder).
    InvalidSize {
        /// Human-readable description of what was requested.
        what: &'static str,
        /// The requested size.
        requested: usize,
        /// The minimum supported size.
        minimum: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(f, "qubit q{qubit} is out of range for a {num_qubits}-qubit circuit")
            }
            CircuitError::DuplicateOperand { qubit } => {
                write!(f, "two-qubit gate applied twice to the same qubit q{qubit}")
            }
            CircuitError::InvalidSize { what, requested, minimum } => {
                write!(f, "{what} requires at least {minimum} qubits, got {requested}")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CircuitError::QubitOutOfRange { qubit: 9, num_qubits: 4 };
        assert_eq!(e.to_string(), "qubit q9 is out of range for a 4-qubit circuit");
        let e = CircuitError::DuplicateOperand { qubit: 2 };
        assert!(e.to_string().contains("q2"));
        let e = CircuitError::InvalidSize { what: "qft", requested: 0, minimum: 1 };
        assert!(e.to_string().contains("qft"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
