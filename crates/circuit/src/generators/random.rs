//! Random circuit generation (testing and property-based fuzzing).

use crate::circuit::Circuit;
use crate::gate::Qubit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random circuit of `gates` two-qubit gates over `n` qubits,
/// deterministic for a given `seed`. Used throughout the test suites to
/// fuzz the compiler with irregular interaction patterns.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn random_two_qubit_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "random circuit requires at least two qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, format!("Random_{n}_{gates}"));
    for _ in 0..gates {
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n);
        while b == a {
            b = rng.gen_range(0..n);
        }
        if rng.gen_bool(0.5) {
            c.cx(Qubit(a as u32), Qubit(b as u32));
        } else {
            c.ms(Qubit(a as u32), Qubit(b as u32));
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_circuit_has_requested_gate_count() {
        let c = random_two_qubit_circuit(10, 57, 3);
        assert_eq!(c.two_qubit_gate_count(), 57);
        assert_eq!(c.num_qubits(), 10);
    }

    #[test]
    fn random_circuit_is_deterministic_per_seed() {
        assert_eq!(random_two_qubit_circuit(8, 20, 42), random_two_qubit_circuit(8, 20, 42));
    }

    #[test]
    fn random_circuit_never_repeats_operand() {
        let c = random_two_qubit_circuit(2, 50, 11);
        for g in c.iter() {
            let (a, b) = g.two_qubit_pair().unwrap();
            assert_ne!(a, b);
        }
    }
}
