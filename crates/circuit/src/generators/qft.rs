//! Quantum Fourier Transform generator.

use crate::circuit::Circuit;
use crate::gate::Qubit;
use std::f64::consts::PI;

/// Builds an `n`-qubit Quantum Fourier Transform.
///
/// Each controlled-phase is decomposed into two CX gates plus single-qubit
/// Z rotations, so the two-qubit gate count is `2 · n(n-1)/2 = n(n-1)`,
/// matching Table 2 of the paper (552 for n = 24, 4032 for n = 64). The
/// final qubit-reversal SWAP network is omitted, as in the paper's
/// benchmark suite (it would be absorbed into the output relabeling).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// ```
/// let c = ssync_circuit::generators::qft(24);
/// assert_eq!(c.num_qubits(), 24);
/// assert_eq!(c.two_qubit_gate_count(), 552);
/// ```
pub fn qft(n: usize) -> Circuit {
    assert!(n > 0, "qft requires at least one qubit");
    let mut c = Circuit::with_name(n, format!("QFT_{n}"));
    for i in 0..n {
        c.h(Qubit(i as u32));
        for j in (i + 1)..n {
            let theta = PI / f64::from(1u32 << ((j - i).min(30) as u32));
            controlled_phase(&mut c, Qubit(j as u32), Qubit(i as u32), theta);
        }
    }
    c
}

/// Standard decomposition of a controlled-phase gate into 2 CX + 3 RZ.
fn controlled_phase(c: &mut Circuit, control: Qubit, target: Qubit, theta: f64) {
    c.rz(control, theta / 2.0);
    c.cx(control, target);
    c.rz(target, -theta / 2.0);
    c.cx(control, target);
    c.rz(target, theta / 2.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qft_24_matches_table2() {
        let c = qft(24);
        assert_eq!(c.num_qubits(), 24);
        assert_eq!(c.two_qubit_gate_count(), 552);
        assert_eq!(c.name(), "QFT_24");
    }

    #[test]
    fn qft_64_matches_table2() {
        let c = qft(64);
        assert_eq!(c.num_qubits(), 64);
        assert_eq!(c.two_qubit_gate_count(), 4032);
    }

    #[test]
    fn qft_two_qubit_count_is_n_times_n_minus_1() {
        for n in [2usize, 5, 10, 17] {
            assert_eq!(qft(n).two_qubit_gate_count(), n * (n - 1));
        }
    }

    #[test]
    fn qft_has_one_hadamard_per_qubit() {
        let c = qft(8);
        let h_count = c.iter().filter(|g| matches!(g, crate::gate::Gate::H(_))).count();
        assert_eq!(h_count, 8);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn qft_zero_panics() {
        qft(0);
    }
}
