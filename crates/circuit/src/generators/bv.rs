//! Bernstein–Vazirani generator.

use crate::circuit::Circuit;
use crate::gate::Qubit;

/// Builds a Bernstein–Vazirani circuit over `n` data qubits with the
/// all-ones secret string (worst case for communication: every data qubit
/// must interact with the single ancilla).
///
/// Uses `n + 1` qubits and exactly `n` two-qubit gates, matching `BV_64`
/// from Table 2 (65 qubits, 64 two-qubit gates).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn bernstein_vazirani(n: usize) -> Circuit {
    bernstein_vazirani_with_secret(&vec![true; n])
}

/// Builds a Bernstein–Vazirani circuit for an arbitrary secret string.
/// The ancilla is the last qubit; a CX from data qubit `i` to the ancilla
/// is emitted for every set bit of the secret.
///
/// # Panics
///
/// Panics if the secret is empty.
pub fn bernstein_vazirani_with_secret(secret: &[bool]) -> Circuit {
    assert!(!secret.is_empty(), "bernstein_vazirani requires a non-empty secret");
    let n = secret.len();
    let mut c = Circuit::with_name(n + 1, format!("BV_{n}"));
    let ancilla = Qubit(n as u32);
    // Prepare |-> on the ancilla and |+> on the data register.
    c.x(ancilla);
    c.h(ancilla);
    for i in 0..n {
        c.h(Qubit(i as u32));
    }
    // Oracle: CX from each secret-bit qubit into the ancilla.
    for (i, &bit) in secret.iter().enumerate() {
        if bit {
            c.cx(Qubit(i as u32), ancilla);
        }
    }
    // Un-compute the Hadamards on the data register.
    for i in 0..n {
        c.h(Qubit(i as u32));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bv_64_matches_table2() {
        let c = bernstein_vazirani(64);
        assert_eq!(c.num_qubits(), 65);
        assert_eq!(c.two_qubit_gate_count(), 64);
    }

    #[test]
    fn sparse_secret_reduces_two_qubit_gates() {
        let secret = [true, false, true, false, false];
        let c = bernstein_vazirani_with_secret(&secret);
        assert_eq!(c.num_qubits(), 6);
        assert_eq!(c.two_qubit_gate_count(), 2);
    }

    #[test]
    fn all_two_qubit_gates_target_the_ancilla() {
        let c = bernstein_vazirani(10);
        let ancilla = Qubit(10);
        for g in c.iter() {
            if let Some((_, b)) = g.two_qubit_pair() {
                assert_eq!(b, ancilla);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty secret")]
    fn empty_secret_panics() {
        bernstein_vazirani_with_secret(&[]);
    }
}
