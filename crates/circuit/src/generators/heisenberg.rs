//! First-order Trotterised Heisenberg-chain Hamiltonian simulation.

use crate::circuit::Circuit;
use crate::gate::Qubit;

/// Builds a first-order Trotter circuit for the 1-D Heisenberg XXX chain
/// over `n` qubits with `steps` Trotter steps.
///
/// Each step applies XX, YY and ZZ interactions on every bond `(i, i+1)`;
/// each interaction is decomposed into two CX gates plus a single-qubit
/// rotation, giving `6 (n-1)` two-qubit gates per step. With `n = 48` and
/// `steps = 48` this yields 13 536 two-qubit gates, matching
/// `Heisenberg_48` in Table 2.
///
/// # Panics
///
/// Panics if `n < 2` or `steps == 0`.
pub fn heisenberg_chain(n: usize, steps: usize) -> Circuit {
    assert!(n >= 2, "heisenberg_chain requires at least two qubits");
    assert!(steps > 0, "heisenberg_chain requires at least one step");
    let mut c = Circuit::with_name(n, format!("Heisenberg_{n}"));
    let dt = 0.05f64;
    for _ in 0..steps {
        for i in 0..n - 1 {
            let (a, b) = (Qubit(i as u32), Qubit((i + 1) as u32));
            // exp(-i dt X⊗X): basis change to Z⊗Z via Hadamards.
            c.h(a);
            c.h(b);
            zz(&mut c, a, b, dt);
            c.h(a);
            c.h(b);
            // exp(-i dt Y⊗Y): basis change via RX(±π/2).
            c.rx(a, std::f64::consts::FRAC_PI_2);
            c.rx(b, std::f64::consts::FRAC_PI_2);
            zz(&mut c, a, b, dt);
            c.rx(a, -std::f64::consts::FRAC_PI_2);
            c.rx(b, -std::f64::consts::FRAC_PI_2);
            // exp(-i dt Z⊗Z).
            zz(&mut c, a, b, dt);
        }
    }
    c
}

fn zz(c: &mut Circuit, a: Qubit, b: Qubit, theta: f64) {
    c.cx(a, b);
    c.rz(b, 2.0 * theta);
    c.cx(a, b);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heisenberg_48_matches_table2() {
        let c = heisenberg_chain(48, 48);
        assert_eq!(c.num_qubits(), 48);
        assert_eq!(c.two_qubit_gate_count(), 13_536);
    }

    #[test]
    fn heisenberg_gate_count_formula() {
        for (n, steps) in [(4usize, 2usize), (10, 3)] {
            let c = heisenberg_chain(n, steps);
            assert_eq!(c.two_qubit_gate_count(), 6 * (n - 1) * steps);
        }
    }

    #[test]
    fn heisenberg_is_nearest_neighbor() {
        let c = heisenberg_chain(8, 1);
        for g in c.iter() {
            if let Some((a, b)) = g.two_qubit_pair() {
                assert_eq!((a.0 as i64 - b.0 as i64).abs(), 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        heisenberg_chain(4, 0);
    }
}
