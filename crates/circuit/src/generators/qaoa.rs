//! QAOA generators (nearest-neighbour ring and random-graph MaxCut).

use crate::circuit::Circuit;
use crate::gate::Qubit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a QAOA ansatz on a nearest-neighbour path graph over `n` qubits
/// with `rounds` cost/mixer rounds.
///
/// Each cost edge `(i, i+1)` becomes an RZZ interaction decomposed into two
/// CX gates and one RZ, so each round contributes `2 (n-1)` two-qubit
/// gates. With `n = 64` and `rounds = 10` this yields 1260 two-qubit gates,
/// matching `QAOA_64` in Table 2.
///
/// # Panics
///
/// Panics if `n < 2` or `rounds == 0`.
pub fn qaoa_nearest_neighbor(n: usize, rounds: usize) -> Circuit {
    assert!(n >= 2, "qaoa requires at least two qubits");
    assert!(rounds > 0, "qaoa requires at least one round");
    let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    qaoa_from_edges(n, rounds, &edges, format!("QAOA_{n}"))
}

/// Builds a QAOA ansatz for MaxCut on a random `density`-dense graph over
/// `n` qubits (deterministic for a given `seed`).
///
/// # Panics
///
/// Panics if `n < 2`, `rounds == 0` or `density` is not in `(0, 1]`.
pub fn qaoa_random_graph(n: usize, rounds: usize, density: f64, seed: u64) -> Circuit {
    assert!(n >= 2, "qaoa requires at least two qubits");
    assert!(rounds > 0, "qaoa requires at least one round");
    assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen::<f64>() < density {
                edges.push((i, j));
            }
        }
    }
    if edges.is_empty() {
        // Guarantee a connected, non-trivial instance even at tiny densities.
        edges.extend((0..n - 1).map(|i| (i, i + 1)));
    }
    qaoa_from_edges(n, rounds, &edges, format!("QAOA_rand_{n}"))
}

fn qaoa_from_edges(n: usize, rounds: usize, edges: &[(usize, usize)], name: String) -> Circuit {
    let mut c = Circuit::with_name(n, name);
    for i in 0..n {
        c.h(Qubit(i as u32));
    }
    for r in 0..rounds {
        let gamma = 0.3 + 0.05 * r as f64;
        let beta = 0.7 - 0.04 * r as f64;
        for &(i, j) in edges {
            rzz_decomposed(&mut c, Qubit(i as u32), Qubit(j as u32), gamma);
        }
        for i in 0..n {
            c.rx(Qubit(i as u32), 2.0 * beta);
        }
    }
    c
}

/// RZZ(θ) decomposed into CX · RZ(θ) · CX.
fn rzz_decomposed(c: &mut Circuit, a: Qubit, b: Qubit, theta: f64) {
    c.cx(a, b);
    c.rz(b, theta);
    c.cx(a, b);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qaoa_64_matches_table2() {
        let c = qaoa_nearest_neighbor(64, 10);
        assert_eq!(c.num_qubits(), 64);
        assert_eq!(c.two_qubit_gate_count(), 1260);
    }

    #[test]
    fn qaoa_gate_count_formula() {
        for (n, rounds) in [(8usize, 3usize), (16, 5), (10, 1)] {
            let c = qaoa_nearest_neighbor(n, rounds);
            assert_eq!(c.two_qubit_gate_count(), 2 * (n - 1) * rounds);
        }
    }

    #[test]
    fn qaoa_is_nearest_neighbor() {
        let c = qaoa_nearest_neighbor(16, 2);
        for g in c.iter() {
            if let Some((a, b)) = g.two_qubit_pair() {
                assert_eq!((a.0 as i64 - b.0 as i64).abs(), 1);
            }
        }
    }

    #[test]
    fn random_graph_is_deterministic_per_seed() {
        let a = qaoa_random_graph(12, 2, 0.3, 7);
        let b = qaoa_random_graph(12, 2, 0.3, 7);
        assert_eq!(a, b);
        let c = qaoa_random_graph(12, 2, 0.3, 8);
        assert_ne!(a.two_qubit_gates(), c.two_qubit_gates());
    }

    #[test]
    fn random_graph_density_scales_gate_count() {
        let sparse = qaoa_random_graph(20, 1, 0.1, 1).two_qubit_gate_count();
        let dense = qaoa_random_graph(20, 1, 0.9, 1).two_qubit_gate_count();
        assert!(dense > sparse);
    }

    #[test]
    #[should_panic(expected = "at least two qubits")]
    fn qaoa_one_qubit_panics() {
        qaoa_nearest_neighbor(1, 1);
    }
}
