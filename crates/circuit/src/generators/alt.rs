//! Alternating layered ansatz (ALT) generator — a common QML ansatz.

use crate::circuit::Circuit;
use crate::gate::Qubit;

/// Builds an alternating layered ansatz over `n` qubits with `blocks`
/// repetitions of an (even layer, odd layer) pair of entangling brick
/// layers.
///
/// Each brick is a two-qubit block consisting of single-qubit RY rotations
/// followed by two CX gates. A full (even, odd) pair therefore contributes
/// `2 · (n - 1)` two-qubit gates, so `alt_ansatz(64, 10)` has 1260
/// two-qubit gates, matching `ALT_64` in Table 2.
///
/// # Panics
///
/// Panics if `n < 2` or `blocks == 0`.
pub fn alt_ansatz(n: usize, blocks: usize) -> Circuit {
    assert!(n >= 2, "alt_ansatz requires at least two qubits");
    assert!(blocks > 0, "alt_ansatz requires at least one block");
    let mut c = Circuit::with_name(n, format!("ALT_{n}"));
    for b in 0..blocks {
        let theta = 0.1 + 0.03 * b as f64;
        // Even brick layer: pairs (0,1), (2,3), ...
        for start in (0..n - 1).step_by(2) {
            brick(&mut c, Qubit(start as u32), Qubit((start + 1) as u32), theta);
        }
        // Odd brick layer: pairs (1,2), (3,4), ...
        for start in (1..n - 1).step_by(2) {
            brick(&mut c, Qubit(start as u32), Qubit((start + 1) as u32), theta);
        }
    }
    c
}

/// One two-qubit ansatz brick: RY rotations then a CX ladder (2 CX gates).
fn brick(c: &mut Circuit, a: Qubit, b: Qubit, theta: f64) {
    c.ry(a, theta);
    c.ry(b, theta * 1.5);
    c.cx(a, b);
    c.cx(b, a);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alt_64_matches_table2() {
        let c = alt_ansatz(64, 10);
        assert_eq!(c.num_qubits(), 64);
        assert_eq!(c.two_qubit_gate_count(), 1260);
    }

    #[test]
    fn alt_gate_count_formula() {
        for (n, blocks) in [(8usize, 2usize), (17, 3), (6, 1)] {
            let c = alt_ansatz(n, blocks);
            assert_eq!(c.two_qubit_gate_count(), 2 * (n - 1) * blocks);
        }
    }

    #[test]
    fn alt_is_nearest_neighbor() {
        let c = alt_ansatz(12, 2);
        for g in c.iter() {
            if let Some((a, b)) = g.two_qubit_pair() {
                assert_eq!((a.0 as i64 - b.0 as i64).abs(), 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_panics() {
        alt_ansatz(4, 0);
    }
}
