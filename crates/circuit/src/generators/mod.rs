//! Benchmark circuit generators (Table 2 of the paper).
//!
//! Every generator returns a plain [`Circuit`](crate::Circuit). Two-qubit
//! interactions are
//! decomposed down to CX/MS-level two-qubit gates so the counts match the
//! granularity at which a QCCD compiler has to route:
//!
//! | App | Qubits | Two-qubit gates | Generator |
//! |---|---|---|---|
//! | `Adder_32` | 66 | ≈545 | [`cuccaro_adder`]`(32)` |
//! | `QAOA_64` | 64 | 1260 | [`qaoa_nearest_neighbor`]`(64, 10)` |
//! | `ALT_64` | 64 | 1260 | [`alt_ansatz`]`(64, 10)` |
//! | `BV_64` | 65 | 64 | [`bernstein_vazirani`]`(64)` |
//! | `QFT_24` | 24 | 552 | [`qft`]`(24)` |
//! | `QFT_64` | 64 | 4032 | [`qft`]`(64)` |
//! | `Heisenberg_48` | 48 | 13536 | [`heisenberg_chain`]`(48, 48)` |

mod adder;
mod alt;
mod bv;
mod heisenberg;
mod qaoa;
mod qft;
mod random;
mod suite;

pub use adder::cuccaro_adder;
pub use alt::alt_ansatz;
pub use bv::{bernstein_vazirani, bernstein_vazirani_with_secret};
pub use heisenberg::heisenberg_chain;
pub use qaoa::{qaoa_nearest_neighbor, qaoa_random_graph};
pub use qft::qft;
pub use random::random_two_qubit_circuit;
pub use suite::{table2_suite, NamedCircuit};
