//! Cuccaro ripple-carry adder generator.

use crate::circuit::Circuit;
use crate::gate::Qubit;

/// Builds a Cuccaro ripple-carry adder over two `bits`-bit registers.
///
/// Register layout (matching the original paper "A new quantum ripple-carry
/// addition circuit", Cuccaro et al. 2004):
///
/// * qubit 0 — incoming carry `c0`
/// * qubits `1 ..= 2·bits` — interleaved `b_i`, `a_i` pairs
/// * qubit `2·bits + 1` — high bit `z` of the sum
///
/// Total qubits: `2·bits + 2` (66 for `bits = 32`, matching `Adder_32` in
/// Table 2). Toffoli gates are decomposed into six CX gates plus
/// single-qubit rotations, the textbook decomposition, which yields ≈545
/// two-qubit gates for the 32-bit instance.
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// ```
/// let c = ssync_circuit::generators::cuccaro_adder(32);
/// assert_eq!(c.num_qubits(), 66);
/// ```
pub fn cuccaro_adder(bits: usize) -> Circuit {
    assert!(bits > 0, "cuccaro_adder requires at least one bit");
    let n = 2 * bits + 2;
    let mut c = Circuit::with_name(n, format!("Adder_{bits}"));

    // Qubit index helpers following the interleaved layout.
    let carry = Qubit(0);
    let b = |i: usize| Qubit((1 + 2 * i) as u32);
    let a = |i: usize| Qubit((2 + 2 * i) as u32);
    let z = Qubit((2 * bits + 1) as u32);

    // MAJ(c, b, a): computes the carry majority in place.
    let maj = |c: &mut Circuit, x: Qubit, y: Qubit, zq: Qubit| {
        c.cx(zq, y);
        c.cx(zq, x);
        toffoli(c, x, y, zq);
    };
    // UMA(c, b, a): un-majority and add.
    let uma = |c: &mut Circuit, x: Qubit, y: Qubit, zq: Qubit| {
        toffoli(c, x, y, zq);
        c.cx(zq, x);
        c.cx(x, y);
    };

    maj(&mut c, carry, b(0), a(0));
    for i in 1..bits {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cx(a(bits - 1), z);
    for i in (1..bits).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, carry, b(0), a(0));
    c
}

/// Textbook decomposition of a Toffoli (CCX) gate into 6 CX gates, 2 H and
/// 7 T/T† rotations (modelled here as RZ(±π/4)).
fn toffoli(c: &mut Circuit, ctrl1: Qubit, ctrl2: Qubit, target: Qubit) {
    use std::f64::consts::FRAC_PI_4;
    c.h(target);
    c.cx(ctrl2, target);
    c.rz(target, -FRAC_PI_4);
    c.cx(ctrl1, target);
    c.rz(target, FRAC_PI_4);
    c.cx(ctrl2, target);
    c.rz(target, -FRAC_PI_4);
    c.cx(ctrl1, target);
    c.rz(ctrl2, FRAC_PI_4);
    c.rz(target, FRAC_PI_4);
    c.cx(ctrl1, ctrl2);
    c.h(target);
    c.rz(ctrl1, FRAC_PI_4);
    c.rz(ctrl2, -FRAC_PI_4);
    c.cx(ctrl1, ctrl2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_32_has_66_qubits() {
        let c = cuccaro_adder(32);
        assert_eq!(c.num_qubits(), 66);
        assert_eq!(c.name(), "Adder_32");
    }

    #[test]
    fn adder_32_two_qubit_count_near_table2() {
        // Table 2 reports 545; the exact figure depends on the Toffoli
        // decomposition. Ours must land in the same ballpark.
        let count = cuccaro_adder(32).two_qubit_gate_count();
        assert!((450..=650).contains(&count), "expected ~545 two-qubit gates, got {count}");
    }

    #[test]
    fn adder_scales_linearly() {
        let c4 = cuccaro_adder(4).two_qubit_gate_count();
        let c8 = cuccaro_adder(8).two_qubit_gate_count();
        let c16 = cuccaro_adder(16).two_qubit_gate_count();
        assert!(c8 > c4 && c16 > c8);
        // Roughly linear growth: doubling bits roughly doubles gates.
        let ratio = c16 as f64 / c8 as f64;
        assert!((1.5..=2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn all_qubits_participate() {
        let c = cuccaro_adder(8);
        let mut touched = vec![false; c.num_qubits()];
        for g in c.iter() {
            for q in g.qubits() {
                touched[q.index()] = true;
            }
        }
        assert!(touched.into_iter().all(|t| t));
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_panics() {
        cuccaro_adder(0);
    }
}
