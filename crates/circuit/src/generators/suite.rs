//! The Table 2 benchmark suite as a ready-made collection.

use super::{
    alt_ansatz, bernstein_vazirani, cuccaro_adder, heisenberg_chain, qaoa_nearest_neighbor, qft,
};
use crate::circuit::Circuit;

/// A benchmark circuit together with the label used in the paper's figures.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedCircuit {
    /// The label used in the paper (e.g. `"QFT_24"`).
    pub label: &'static str,
    /// The paper's communication-pattern description from Table 2.
    pub communication: &'static str,
    /// The circuit itself.
    pub circuit: Circuit,
}

/// Builds every benchmark from Table 2 of the paper, in table order.
///
/// ```
/// let suite = ssync_circuit::generators::table2_suite();
/// assert_eq!(suite.len(), 7);
/// assert_eq!(suite[0].label, "Adder_32");
/// ```
pub fn table2_suite() -> Vec<NamedCircuit> {
    vec![
        NamedCircuit {
            label: "Adder_32",
            communication: "Short-distance gates",
            circuit: cuccaro_adder(32),
        },
        NamedCircuit {
            label: "QAOA_64",
            communication: "Nearest-neighbor gates",
            circuit: qaoa_nearest_neighbor(64, 10),
        },
        NamedCircuit {
            label: "ALT_64",
            communication: "Nearest-neighbor gates",
            circuit: alt_ansatz(64, 10),
        },
        NamedCircuit {
            label: "BV_64",
            communication: "Long-distance gates",
            circuit: bernstein_vazirani(64),
        },
        NamedCircuit { label: "QFT_24", communication: "Long-distance gates", circuit: qft(24) },
        NamedCircuit { label: "QFT_64", communication: "Long-distance gates", circuit: qft(64) },
        NamedCircuit {
            label: "Heisenberg_48",
            communication: "Long-distance gates",
            circuit: heisenberg_chain(48, 48),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_seven_entries_in_table_order() {
        let suite = table2_suite();
        let labels: Vec<&str> = suite.iter().map(|n| n.label).collect();
        assert_eq!(
            labels,
            vec!["Adder_32", "QAOA_64", "ALT_64", "BV_64", "QFT_24", "QFT_64", "Heisenberg_48"]
        );
    }

    #[test]
    fn suite_qubit_counts_match_table2() {
        let suite = table2_suite();
        let expected = [66usize, 64, 64, 65, 24, 64, 48];
        for (entry, want) in suite.iter().zip(expected) {
            assert_eq!(entry.circuit.num_qubits(), want, "{}", entry.label);
        }
    }

    #[test]
    fn suite_two_qubit_counts_match_table2_where_exact() {
        let suite = table2_suite();
        // Exact values for the formula-driven generators.
        let exact: &[(&str, usize)] = &[
            ("QAOA_64", 1260),
            ("ALT_64", 1260),
            ("BV_64", 64),
            ("QFT_24", 552),
            ("QFT_64", 4032),
            ("Heisenberg_48", 13_536),
        ];
        for (label, want) in exact {
            let entry = suite.iter().find(|n| n.label == *label).unwrap();
            assert_eq!(entry.circuit.two_qubit_gate_count(), *want, "{label}");
        }
    }
}
