//! Minimal plain-text table rendering for the figure/table binaries.

use std::fmt::Write as _;

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must have the same arity as the headers).
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity must match headers");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "| {:width$} ", cell, width = widths[i]);
            }
            out.push_str("|\n");
        };
        write_row(&mut out, &self.headers);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(&mut out, "|{:-<width$}", "", width = w + 2);
            if i + 1 == widths.len() {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a success rate compactly: fixed-point when large, scientific
/// when tiny (matching the paper's log-scale plots).
pub fn fmt_rate(rate: f64) -> String {
    if rate >= 0.001 {
        format!("{rate:.4}")
    } else {
        format!("{rate:.2e}")
    }
}

/// Formats a microsecond duration with thousands grouping into a compact
/// human-readable string.
pub fn fmt_us(us: f64) -> String {
    if us >= 1.0e6 {
        format!("{:.2}s", us / 1.0e6)
    } else if us >= 1.0e3 {
        format!("{:.1}ms", us / 1.0e3)
    } else {
        format!("{us:.0}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(["app", "shuttles"]);
        t.push_row(["QFT_24", "120"]);
        t.push_row(["Adder_32", "35"]);
        let s = t.render();
        assert!(s.contains("| app      | shuttles |"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn rate_formatting_switches_to_scientific() {
        assert_eq!(fmt_rate(0.5), "0.5000");
        assert!(fmt_rate(1e-7).contains('e'));
    }

    #[test]
    fn time_formatting_picks_sensible_units() {
        assert_eq!(fmt_us(500.0), "500us");
        assert_eq!(fmt_us(2_500.0), "2.5ms");
        assert_eq!(fmt_us(3_000_000.0), "3.00s");
    }
}
