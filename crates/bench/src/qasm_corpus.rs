//! Sweeping the `workloads/` QASM corpus through the compile service:
//! the wire-level analogue of the Figs. 8–10 comparison, over circuits
//! that arrived as *text* instead of from the built-in generators.
//!
//! The corpus directory holds OpenQASM 2.0 files (generator exports plus
//! hand-written programs; see `docs/WORKLOADS.md`). [`corpus_rows`]
//! parses every file with `ssync-qasm`, registers each target topology
//! once, submits the full (circuit × topology × compiler) product to a
//! [`CompileService`] in one batch, and returns [`ComparisonRow`]s in
//! deterministic (file name → topology → compiler) order — the same
//! row shape `comparison_rows` produces, so downstream tooling treats
//! generated and ingested circuits identically.

use crate::comparison::ComparisonRow;
use crate::harness::CompilerKind;
use ssync_arch::QccdTopology;
use ssync_circuit::Circuit;
use ssync_core::CompilerConfig;
use ssync_qasm::ParseReport;
use ssync_service::{CompileRequest, CompileService, Priority, RegisteredDevice, TenantId};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The topologies every corpus circuit is tried on: a linear machine and
/// a grid from the paper's table, plus a deliberately *small-trap* grid
/// (2×2 traps of capacity 4) on which even the 8–10-qubit corpus
/// circuits cannot sit in one chain — so the sweep exercises real
/// shuttling and swapping, not just in-trap reordering. Cells whose
/// device cannot hold the circuit plus one free slot are skipped, the
/// same fit predicate as the generator sweeps.
pub fn corpus_topologies() -> Vec<(&'static str, QccdTopology)> {
    vec![
        ("L-4", QccdTopology::named("L-4").expect("paper topology")),
        ("G-2x2", QccdTopology::named("G-2x2").expect("paper topology")),
        ("tiny-G-2x2c4", QccdTopology::grid(2, 2, 4)),
    ]
}

/// One parsed corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// File stem the circuit was loaded from (e.g. `"qft_8"`).
    pub name: String,
    /// The lowered circuit.
    pub circuit: Arc<Circuit>,
    /// What the lowering stripped or counted.
    pub report: ParseReport,
}

/// The workloads directory: `SSYNC_WORKLOADS` when set, else the
/// checked-in `workloads/` at the workspace root (resolved relative to
/// this crate, so it works from any working directory).
pub fn corpus_dir() -> PathBuf {
    match std::env::var("SSYNC_WORKLOADS") {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../workloads"),
    }
}

/// Loads and parses every `.qasm` file under `dir`, sorted by file name
/// for deterministic output.
///
/// # Errors
///
/// Returns a human-readable message naming the offending file on I/O or
/// parse failures — a corpus that stops parsing should fail loudly, not
/// silently shrink.
pub fn load_corpus(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let listing =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = listing
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "qasm"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .qasm files under {}", dir.display()));
    }
    let mut entries = Vec::with_capacity(paths.len());
    for path in paths {
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("unnamed").to_string();
        let out = ssync_qasm::parse_named(&source, &name)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        entries.push(CorpusEntry { name, circuit: Arc::new(out.circuit), report: out.report });
    }
    Ok(entries)
}

/// Compiles the whole corpus across [`corpus_topologies`] and **all
/// four** [`CompilerKind`]s through one service batch, returning rows in
/// (file, topology, compiler) nesting order. `progress` is called with
/// submission/drain summaries, mirroring `comparison_rows`.
pub fn corpus_rows(
    entries: &[CorpusEntry],
    config: &CompilerConfig,
    mut progress: impl FnMut(&str),
) -> Vec<ComparisonRow> {
    struct Cell<'a> {
        entry: &'a CorpusEntry,
        topo_name: &'static str,
    }
    let service = CompileService::new();
    let mut devices: BTreeMap<&'static str, Arc<RegisteredDevice>> = BTreeMap::new();
    let mut cells: Vec<Cell<'_>> = Vec::new();
    let topologies = corpus_topologies();
    for entry in entries {
        for (topo_name, topo) in &topologies {
            if entry.circuit.num_qubits() + 1 > topo.total_capacity() {
                continue;
            }
            devices.entry(topo_name).or_insert_with(|| {
                service.registry().get_or_build(topo_name, config.weights, || topo.clone())
            });
            cells.push(Cell { entry, topo_name });
        }
    }

    let compilers = CompilerKind::ALL;
    progress(&format!(
        "submitting {} (file, topology) cells x {} compilers to the compile service \
         ({} workers, {} devices)",
        cells.len(),
        compilers.len(),
        service.workers(),
        devices.len()
    ));
    let tenant = TenantId::from_name("fig-qasm");
    let handles = service.submit_batch(cells.iter().flat_map(|cell| {
        let device = Arc::clone(&devices[cell.topo_name]);
        let circuit = Arc::clone(&cell.entry.circuit);
        compilers.into_iter().map(move |compiler| {
            CompileRequest::new(Arc::clone(&device), Arc::clone(&circuit), compiler, *config)
                .with_priority(Priority::Batch)
                .with_tenant(tenant)
        })
    }));

    let mut rows = Vec::with_capacity(handles.len());
    let mut last_file: Option<&str> = None;
    for (cell, chunk) in cells.iter().zip(handles.chunks(compilers.len())) {
        if last_file != Some(cell.entry.name.as_str()) {
            progress(&format!("draining results for {}", cell.entry.name));
            last_file = Some(cell.entry.name.as_str());
        }
        for (compiler, handle) in compilers.into_iter().zip(chunk) {
            let outcome = handle.wait().expect("corpus circuits must compile");
            let counts = outcome.counts();
            rows.push(ComparisonRow {
                app: cell.entry.name.clone(),
                topology: cell.topo_name.to_string(),
                compiler,
                shuttles: counts.shuttles,
                swaps: counts.swap_gates,
                success_rate: outcome.report().success_rate,
                execution_time_us: outcome.report().total_time_us,
                compile_time_s: outcome.compile_time().as_secs_f64(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_checked_in_corpus_loads_and_sweeps() {
        let entries = load_corpus(&corpus_dir()).expect("corpus parses");
        assert!(entries.len() >= 9, "six exports + three hand-written programs");
        // Deterministic order: sorted by file name.
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        // The hand-written programs exercise the stripping counters.
        let stdlib = entries.iter().find(|e| e.name == "stdlib").expect("stdlib.qasm");
        assert!(stdlib.report.stripped_anything());
        let barriers = entries.iter().find(|e| e.name == "barriers").expect("barriers.qasm");
        assert!(barriers.report.barriers >= 4);

        // A one-file sweep produces all four compiler rows per topology.
        let one = &entries[..1];
        let rows = corpus_rows(one, &CompilerConfig::default(), |_| {});
        assert!(!rows.is_empty());
        assert_eq!(rows.len() % CompilerKind::ALL.len(), 0);
        for row in &rows {
            assert!(row.success_rate > 0.0 && row.success_rate <= 1.0, "{row:?}");
        }
    }
}
