//! # ssync-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! S-SYNC evaluation (Sec. 5). Each binary under `src/bin/` prints one
//! artifact as a plain-text table:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table01` | Table 1 — transport operation times |
//! | `table02` | Table 2 — benchmark suite |
//! | `fig08` | Fig. 8 — shuttle counts vs. Murali / Dai |
//! | `fig09` | Fig. 9 — SWAP counts vs. Murali / Dai |
//! | `fig10` | Fig. 10 — success rates vs. Murali / Dai |
//! | `fig11` | Fig. 11 — topology & trap-capacity sweep |
//! | `fig12` | Fig. 12 — initial-mapping comparison |
//! | `fig13` | Fig. 13 — gate-implementation comparison |
//! | `fig14` | Fig. 14 — hyper-parameter sensitivity |
//! | `fig15` | Fig. 15 — compilation-time scalability |
//! | `fig16` | Fig. 16 — optimality analysis |
//! | `fig_qasm` | the `workloads/` OpenQASM corpus across all four compilers |
//!
//! Run them with `cargo run --release -p ssync-bench --bin fig08`. Set
//! `SSYNC_BENCH_SCALE=small` to run reduced problem sizes (useful for smoke
//! testing); the default regenerates the paper-scale configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod comparison;
pub mod harness;
pub mod qasm_corpus;
pub mod table;

pub use apps::{fitting_cells, scaled_app, AppKind};
pub use comparison::{comparison_rows, comparison_table, comparison_targets, ComparisonRow};
pub use harness::{
    run_compiler, run_compiler_batch, run_compiler_batch_with_workers, run_compiler_on, BenchScale,
    CompilerKind,
};
pub use table::Table;
