//! The shared Figs. 8–10 comparison sweep: benchmark × topology × compiler.
//!
//! The sweep is one big submission to the
//! [`CompileService`]: every topology is
//! registered once in the service's device registry (the slot graph /
//! router / distance matrix is built exactly once), every circuit travels
//! as a shared `Arc` (one allocation per application, however many
//! topologies it targets), and the full (application × topology ×
//! compiler) product is queued at once for the work-stealing pool to
//! drain. Row order (and every measured count) is identical to the
//! historical one-compile-at-a-time nesting — the service guarantees
//! worker-count-independent, bit-identical results.

use crate::apps::{scaled_app, AppKind};
use crate::harness::{BenchScale, CompilerKind};
use crate::table::Table;
use ssync_arch::QccdTopology;
use ssync_circuit::Circuit;
use ssync_core::CompilerConfig;
use ssync_service::{CompileRequest, CompileService, RegisteredDevice};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One (application, topology, compiler) measurement.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Application label as used in the paper (e.g. `"QFT_24"`).
    pub app: String,
    /// Topology name (e.g. `"G-2x3"`).
    pub topology: String,
    /// Which compiler produced the row.
    pub compiler: CompilerKind,
    /// Number of shuttles (Fig. 8).
    pub shuttles: usize,
    /// Number of inserted SWAP gates (Fig. 9).
    pub swaps: usize,
    /// End-to-end success rate (Fig. 10).
    pub success_rate: f64,
    /// Estimated execution time in µs.
    pub execution_time_us: f64,
    /// Compilation wall-clock time in seconds.
    pub compile_time_s: f64,
}

/// The application/topology pairs evaluated in Figs. 8–10 of the paper.
/// Each entry is `(app, qubits, topology names)`.
pub fn comparison_targets(scale: BenchScale) -> Vec<(AppKind, usize, Vec<&'static str>)> {
    let paper: Vec<(AppKind, usize, Vec<&'static str>)> = vec![
        (AppKind::Qft, 24, vec!["S-4", "L-6", "G-2x2", "G-2x3", "G-3x3"]),
        (AppKind::Adder, 66, vec!["S-4", "L-4", "G-2x2", "G-2x3", "G-3x3"]),
        (AppKind::Qaoa, 64, vec!["S-4", "L-4", "L-6", "G-2x2", "G-2x3", "G-3x3"]),
        (AppKind::Alt, 64, vec!["S-4", "G-2x2", "G-2x3", "G-3x3"]),
        (AppKind::Qft, 64, vec!["S-4", "G-2x2", "G-3x3"]),
        (AppKind::Bv, 65, vec!["S-4", "L-6", "G-2x3", "G-3x3"]),
    ];
    match scale {
        BenchScale::Paper => paper,
        BenchScale::Small => paper
            .into_iter()
            .map(|(app, q, topos)| (app, scale.qubits(q), topos.into_iter().take(1).collect()))
            .collect(),
    }
}

/// Runs the full comparison sweep and returns one row per
/// (application, topology, compiler) triple, in the same nesting order as
/// the paper's figures (application → topology → compiler). The whole
/// product is submitted to a [`CompileService`] in one batch: each
/// topology's device is registered (and built) exactly once, each
/// application's circuit is shared by `Arc` across every topology cell,
/// and the pool's workers drain the queue with stealing. `progress` is
/// called with a submission summary and once per drained topology group.
pub fn comparison_rows(
    scale: BenchScale,
    config: &CompilerConfig,
    mut progress: impl FnMut(&str),
) -> Vec<ComparisonRow> {
    // One entry per (application, topology) cell, in output nesting order.
    struct Cell {
        app_label: String,
        topo_name: &'static str,
        circuit: Arc<Circuit>,
    }
    let service = CompileService::new();
    let mut cells: Vec<Cell> = Vec::new();
    let mut devices: BTreeMap<&'static str, Arc<RegisteredDevice>> = BTreeMap::new();
    for (app, qubits, topologies) in comparison_targets(scale) {
        let circuit = Arc::new(scaled_app(app, qubits));
        let app_label = format!("{}_{}", app.label(), qubits);
        for topo_name in topologies {
            let topo = QccdTopology::named(topo_name).expect("known topology name");
            if topo.total_capacity() <= circuit.num_qubits() {
                continue; // no device build for cells nothing targets
            }
            devices.entry(topo_name).or_insert_with(|| {
                service.registry().get_or_build(topo_name, config.weights, || topo)
            });
            cells.push(Cell {
                app_label: app_label.clone(),
                topo_name,
                circuit: Arc::clone(&circuit),
            });
        }
    }

    // Submit the whole (cell × compiler) product in row nesting order.
    let compilers = CompilerKind::PAPER;
    progress(&format!(
        "submitting {} (app, topology) cells x {} compilers to the compile service \
         ({} workers, {} devices)",
        cells.len(),
        compilers.len(),
        service.workers(),
        devices.len()
    ));
    let handles = service.submit_batch(cells.iter().flat_map(|cell| {
        let device = Arc::clone(&devices[cell.topo_name]);
        let circuit = Arc::clone(&cell.circuit);
        compilers.into_iter().map(move |compiler| {
            CompileRequest::new(Arc::clone(&device), Arc::clone(&circuit), compiler, *config)
        })
    }));

    let mut rows = Vec::with_capacity(handles.len());
    let mut last_topo: Option<&'static str> = None;
    for (cell, chunk) in cells.iter().zip(handles.chunks(compilers.len())) {
        if last_topo != Some(cell.topo_name) {
            progress(&format!("draining results for {}", cell.topo_name));
            last_topo = Some(cell.topo_name);
        }
        for (compiler, handle) in compilers.into_iter().zip(chunk) {
            let outcome = handle.wait().expect("paper configurations must compile");
            let counts = outcome.counts();
            rows.push(ComparisonRow {
                app: cell.app_label.clone(),
                topology: cell.topo_name.to_string(),
                compiler,
                shuttles: counts.shuttles,
                swaps: counts.swap_gates,
                success_rate: outcome.report().success_rate,
                execution_time_us: outcome.report().total_time_us,
                compile_time_s: outcome.compile_time().as_secs_f64(),
            });
        }
    }
    rows
}

/// Builds a Figs. 8–10 panel table from a comparison sweep: one row per
/// (application, topology) cell in sweep order, one metric column per
/// compiler in [`CompilerKind::PAPER`] order. Headers come straight from
/// [`CompilerKind::label`], so adding or reordering kinds can never
/// silently misalign a figure column against its header — the binaries
/// only choose the metric.
pub fn comparison_table(
    rows: &[ComparisonRow],
    metric: impl Fn(&ComparisonRow) -> String,
) -> Table {
    let compilers = CompilerKind::PAPER;
    let mut table = Table::new(
        ["Application", "Topology"]
            .into_iter()
            .map(String::from)
            .chain(compilers.iter().map(|kind| kind.label().to_string())),
    );
    let mut seen = std::collections::BTreeSet::new();
    for row in rows {
        let key = (row.app.clone(), row.topology.clone());
        if !seen.insert(key.clone()) {
            continue;
        }
        let mut cells = vec![key.0.clone(), key.1.clone()];
        for kind in compilers {
            cells.push(
                rows.iter()
                    .find(|r| r.compiler == kind && r.app == key.0 && r.topology == key.1)
                    .map(&metric)
                    .unwrap_or_else(|| "-".into()),
            );
        }
        table.push_row(cells);
    }
    table
}

/// Geometric-mean ratio of a metric between two compilers over matching
/// (app, topology) pairs — the "3.69× fewer shuttles on average" style of
/// summary quoted in the paper.
pub fn geometric_mean_ratio(
    rows: &[ComparisonRow],
    numerator: CompilerKind,
    denominator: CompilerKind,
    metric: impl Fn(&ComparisonRow) -> f64,
) -> f64 {
    let mut log_sum = 0.0f64;
    let mut count = 0usize;
    for row in rows.iter().filter(|r| r.compiler == numerator) {
        if let Some(other) = rows
            .iter()
            .find(|r| r.compiler == denominator && r.app == row.app && r.topology == row.topology)
        {
            let (a, b) = (metric(row), metric(other));
            if a > 0.0 && b > 0.0 {
                log_sum += (a / b).ln();
                count += 1;
            }
        }
    }
    if count == 0 {
        1.0
    } else {
        (log_sum / count as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_targets_cover_six_panels() {
        let targets = comparison_targets(BenchScale::Paper);
        assert_eq!(targets.len(), 6);
        // Every referenced topology name must be resolvable.
        for (_, _, topos) in &targets {
            for t in topos {
                assert!(QccdTopology::named(t).is_some(), "{t}");
            }
        }
    }

    #[test]
    fn small_scale_produces_rows_quickly() {
        let rows = comparison_rows(BenchScale::Small, &CompilerConfig::default(), |_| {});
        assert!(!rows.is_empty());
        // Three compilers per (app, topology) pair.
        assert_eq!(rows.len() % 3, 0);
        for r in &rows {
            assert!(r.success_rate >= 0.0 && r.success_rate <= 1.0);
        }
    }

    #[test]
    fn comparison_table_derives_columns_from_the_kind_enum() {
        let row = |compiler, shuttles| ComparisonRow {
            app: "QFT_12".into(),
            topology: "G-2x2".into(),
            compiler,
            shuttles,
            swaps: 0,
            success_rate: 1.0,
            execution_time_us: 1.0,
            compile_time_s: 0.1,
        };
        // Murali's row is deliberately missing: its column must render "-",
        // never shift another compiler's number under the wrong header.
        let rows = vec![row(CompilerKind::SSync, 7), row(CompilerKind::Dai, 9)];
        let table = comparison_table(&rows, |r| r.shuttles.to_string());
        let rendered = table.render();
        let header = rendered.lines().next().expect("header line");
        let mut last = 1;
        for kind in CompilerKind::PAPER {
            let at = header.find(kind.label()).expect("every PAPER label is a column");
            assert!(at > last, "columns follow PAPER order: {}", kind.label());
            last = at;
        }
        assert_eq!(table.len(), 1, "one row per (app, topology) cell");
        let data = rendered.lines().nth(2).expect("data line");
        let cells: Vec<&str> = data.split('|').map(str::trim).collect();
        assert_eq!(&cells[1..6], &["QFT_12", "G-2x2", "-", "9", "7"]);
    }

    #[test]
    fn geometric_mean_ratio_is_one_for_identical_sets() {
        let rows = vec![
            ComparisonRow {
                app: "A".into(),
                topology: "T".into(),
                compiler: CompilerKind::SSync,
                shuttles: 10,
                swaps: 5,
                success_rate: 0.5,
                execution_time_us: 1.0,
                compile_time_s: 0.1,
            },
            ComparisonRow {
                app: "A".into(),
                topology: "T".into(),
                compiler: CompilerKind::Murali,
                shuttles: 20,
                swaps: 5,
                success_rate: 0.25,
                execution_time_us: 1.0,
                compile_time_s: 0.1,
            },
        ];
        let ratio = geometric_mean_ratio(&rows, CompilerKind::Murali, CompilerKind::SSync, |r| {
            r.shuttles as f64
        });
        assert!((ratio - 2.0).abs() < 1e-9);
    }
}
