//! The shared Figs. 8–10 comparison sweep: benchmark × topology × compiler.

use crate::apps::{scaled_app, AppKind};
use crate::harness::{run_compiler, BenchScale, CompilerKind};
use ssync_arch::QccdTopology;
use ssync_core::CompilerConfig;

/// One (application, topology, compiler) measurement.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Application label as used in the paper (e.g. `"QFT_24"`).
    pub app: String,
    /// Topology name (e.g. `"G-2x3"`).
    pub topology: String,
    /// Which compiler produced the row.
    pub compiler: CompilerKind,
    /// Number of shuttles (Fig. 8).
    pub shuttles: usize,
    /// Number of inserted SWAP gates (Fig. 9).
    pub swaps: usize,
    /// End-to-end success rate (Fig. 10).
    pub success_rate: f64,
    /// Estimated execution time in µs.
    pub execution_time_us: f64,
    /// Compilation wall-clock time in seconds.
    pub compile_time_s: f64,
}

/// The application/topology pairs evaluated in Figs. 8–10 of the paper.
/// Each entry is `(app, qubits, topology names)`.
pub fn comparison_targets(scale: BenchScale) -> Vec<(AppKind, usize, Vec<&'static str>)> {
    let paper: Vec<(AppKind, usize, Vec<&'static str>)> = vec![
        (AppKind::Qft, 24, vec!["S-4", "L-6", "G-2x2", "G-2x3", "G-3x3"]),
        (AppKind::Adder, 66, vec!["S-4", "L-4", "G-2x2", "G-2x3", "G-3x3"]),
        (AppKind::Qaoa, 64, vec!["S-4", "L-4", "L-6", "G-2x2", "G-2x3", "G-3x3"]),
        (AppKind::Alt, 64, vec!["S-4", "G-2x2", "G-2x3", "G-3x3"]),
        (AppKind::Qft, 64, vec!["S-4", "G-2x2", "G-3x3"]),
        (AppKind::Bv, 65, vec!["S-4", "L-6", "G-2x3", "G-3x3"]),
    ];
    match scale {
        BenchScale::Paper => paper,
        BenchScale::Small => paper
            .into_iter()
            .map(|(app, q, topos)| (app, scale.qubits(q), topos.into_iter().take(1).collect()))
            .collect(),
    }
}

/// Runs the full comparison sweep and returns one row per
/// (application, topology, compiler) triple. `progress` is called before
/// each compilation with a short description.
pub fn comparison_rows(
    scale: BenchScale,
    config: &CompilerConfig,
    mut progress: impl FnMut(&str),
) -> Vec<ComparisonRow> {
    let mut rows = Vec::new();
    for (app, qubits, topologies) in comparison_targets(scale) {
        let circuit = scaled_app(app, qubits);
        let app_label = format!("{}_{}", app.label(), qubits);
        for topo_name in topologies {
            let topo = QccdTopology::named(topo_name).expect("known topology name");
            if topo.total_capacity() <= circuit.num_qubits() {
                continue;
            }
            for compiler in CompilerKind::ALL {
                progress(&format!("{app_label} on {topo_name} with {}", compiler.label()));
                let outcome = run_compiler(compiler, &circuit, &topo, config)
                    .expect("paper configurations must compile");
                let counts = outcome.counts();
                rows.push(ComparisonRow {
                    app: app_label.clone(),
                    topology: topo_name.to_string(),
                    compiler,
                    shuttles: counts.shuttles,
                    swaps: counts.swap_gates,
                    success_rate: outcome.report().success_rate,
                    execution_time_us: outcome.report().total_time_us,
                    compile_time_s: outcome.compile_time().as_secs_f64(),
                });
            }
        }
    }
    rows
}

/// Geometric-mean ratio of a metric between two compilers over matching
/// (app, topology) pairs — the "3.69× fewer shuttles on average" style of
/// summary quoted in the paper.
pub fn geometric_mean_ratio(
    rows: &[ComparisonRow],
    numerator: CompilerKind,
    denominator: CompilerKind,
    metric: impl Fn(&ComparisonRow) -> f64,
) -> f64 {
    let mut log_sum = 0.0f64;
    let mut count = 0usize;
    for row in rows.iter().filter(|r| r.compiler == numerator) {
        if let Some(other) = rows
            .iter()
            .find(|r| r.compiler == denominator && r.app == row.app && r.topology == row.topology)
        {
            let (a, b) = (metric(row), metric(other));
            if a > 0.0 && b > 0.0 {
                log_sum += (a / b).ln();
                count += 1;
            }
        }
    }
    if count == 0 {
        1.0
    } else {
        (log_sum / count as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_targets_cover_six_panels() {
        let targets = comparison_targets(BenchScale::Paper);
        assert_eq!(targets.len(), 6);
        // Every referenced topology name must be resolvable.
        for (_, _, topos) in &targets {
            for t in topos {
                assert!(QccdTopology::named(t).is_some(), "{t}");
            }
        }
    }

    #[test]
    fn small_scale_produces_rows_quickly() {
        let rows = comparison_rows(BenchScale::Small, &CompilerConfig::default(), |_| {});
        assert!(!rows.is_empty());
        // Three compilers per (app, topology) pair.
        assert_eq!(rows.len() % 3, 0);
        for r in &rows {
            assert!(r.success_rate >= 0.0 && r.success_rate <= 1.0);
        }
    }

    #[test]
    fn geometric_mean_ratio_is_one_for_identical_sets() {
        let rows = vec![
            ComparisonRow {
                app: "A".into(),
                topology: "T".into(),
                compiler: CompilerKind::SSync,
                shuttles: 10,
                swaps: 5,
                success_rate: 0.5,
                execution_time_us: 1.0,
                compile_time_s: 0.1,
            },
            ComparisonRow {
                app: "A".into(),
                topology: "T".into(),
                compiler: CompilerKind::Murali,
                shuttles: 20,
                swaps: 5,
                success_rate: 0.25,
                execution_time_us: 1.0,
                compile_time_s: 0.1,
            },
        ];
        let ratio = geometric_mean_ratio(&rows, CompilerKind::Murali, CompilerKind::SSync, |r| {
            r.shuttles as f64
        });
        assert!((ratio - 2.0).abs() < 1e-9);
    }
}
