//! Regenerates Fig. 11: how communication topology and trap capacity affect
//! success rate and execution time, across seven QCCD topologies.
//!
//! Each (topology, capacity) cell builds its shared [`ssync_arch::Device`]
//! exactly once and compiles every application against it in parallel
//! through [`ssync_core::SSyncCompiler::compile_batch`].

use ssync_bench::table::{fmt_rate, fmt_us};
use ssync_bench::{scaled_app, AppKind, BenchScale, Table};
use ssync_core::{batch, CompileOutcome, CompilerConfig, SSyncCompiler};
use std::collections::BTreeMap;
use std::time::Instant;

/// The seven topology families of Fig. 11 with a capacity chosen so the
/// total device capacity is close to the requested target.
fn topology(name: &str, total_capacity: usize) -> Option<ssync_arch::QccdTopology> {
    use ssync_arch::QccdTopology;
    let traps = match name {
        "L-4" | "S-4" | "G-2x2" => 4,
        "L-6" | "G-2x3" | "S-6" => 6,
        "G-3x3" => 9,
        _ => return None,
    };
    let capacity = total_capacity.div_ceil(traps);
    let t = match name {
        "L-4" => QccdTopology::linear(4, capacity),
        "L-6" => QccdTopology::linear(6, capacity),
        "S-4" => QccdTopology::fully_connected(4, capacity),
        "S-6" => QccdTopology::fully_connected(6, capacity),
        "G-2x2" => QccdTopology::grid(2, 2, capacity),
        "G-2x3" => QccdTopology::grid(2, 3, capacity),
        "G-3x3" => QccdTopology::grid(3, 3, capacity),
        _ => return None,
    };
    Some(t)
}

fn main() {
    let scale = BenchScale::from_env();
    let apps: Vec<(AppKind, usize)> = match scale {
        BenchScale::Paper => vec![
            (AppKind::Qft, 64),
            (AppKind::Bv, 65),
            (AppKind::Adder, 66),
            (AppKind::Heisenberg, 48),
        ],
        BenchScale::Small => vec![(AppKind::Qft, 16), (AppKind::Bv, 16)],
    };
    let capacities: Vec<usize> = match scale {
        BenchScale::Paper => vec![96, 120, 144, 160],
        BenchScale::Small => vec![24, 36],
    };
    let topologies = ["L-6", "G-2x3", "S-6", "L-4", "G-2x2", "S-4", "G-3x3"];
    let config = CompilerConfig::default();
    let compiler = SSyncCompiler::new(config);

    let circuits: Vec<_> = apps.iter().map(|&(app, qubits)| scaled_app(app, qubits)).collect();
    let labels: Vec<String> = apps
        .iter()
        .zip(&circuits)
        .map(|(&(app, _), c)| format!("{}_{}", app.label(), c.num_qubits()))
        .collect();

    // One device per (topology, capacity) cell; all fitting applications
    // compile against it in one parallel batch.
    let sweep_start = Instant::now();
    let mut outcomes: BTreeMap<(usize, usize, usize), (usize, CompileOutcome)> = BTreeMap::new();
    for (t, topo_name) in topologies.iter().enumerate() {
        for (c, &cap) in capacities.iter().enumerate() {
            let Some(topo) = topology(topo_name, cap) else { continue };
            let total = topo.total_capacity();
            let fitting: Vec<usize> =
                (0..circuits.len()).filter(|&a| total > circuits[a].num_qubits()).collect();
            if fitting.is_empty() {
                continue;
            }
            let device = ssync_arch::Device::build(topo, config.weights);
            eprintln!(
                "[fig11] {} circuits on {topo_name} (total capacity {total}) in parallel",
                fitting.len()
            );
            let batch_circuits: Vec<_> = fitting.iter().map(|&a| circuits[a].clone()).collect();
            let batch = compiler.compile_batch(&device, &batch_circuits);
            for (&a, outcome) in fitting.iter().zip(batch) {
                let outcome = outcome.expect("compilation succeeds");
                outcomes.insert((a, t, c), (total, outcome));
            }
        }
    }
    let sweep_time = sweep_start.elapsed();

    let mut table = Table::new([
        "Application",
        "Topology",
        "Total capacity",
        "Shuttles",
        "Success rate",
        "Execution time",
    ]);
    for (a, label) in labels.iter().enumerate() {
        for (t, topo_name) in topologies.iter().enumerate() {
            for c in 0..capacities.len() {
                let Some((total, outcome)) = outcomes.get(&(a, t, c)) else { continue };
                table.push_row([
                    label.clone(),
                    topo_name.to_string(),
                    total.to_string(),
                    outcome.counts().shuttles.to_string(),
                    fmt_rate(outcome.report().success_rate),
                    fmt_us(outcome.report().total_time_us),
                ]);
            }
        }
    }
    println!("Fig. 11 — topology and trap-capacity sweep (S-SYNC, FM gates)\n");
    println!("{table}");
    println!(
        "Sweep wall-clock: {:.2}s with {} batch workers (SSYNC_BATCH_WORKERS=1 for serial).",
        sweep_time.as_secs_f64(),
        batch::resolve_workers(config.batch_workers)
    );
    println!("Expected shape: grid topologies (G-2x3, G-3x3) give the best execution");
    println!("time / success rate; peak success occurs around 10-15 ions per trap.");
}
