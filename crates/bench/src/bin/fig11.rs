//! Regenerates Fig. 11: how communication topology and trap capacity affect
//! success rate and execution time, across seven QCCD topologies.

use ssync_bench::table::{fmt_rate, fmt_us};
use ssync_bench::{scaled_app, AppKind, BenchScale, Table};
use ssync_core::{CompilerConfig, SSyncCompiler};

/// The seven topology families of Fig. 11 with a capacity chosen so the
/// total device capacity is close to the requested target.
fn topology(name: &str, total_capacity: usize) -> Option<ssync_arch::QccdTopology> {
    use ssync_arch::QccdTopology;
    let traps = match name {
        "L-4" | "S-4" | "G-2x2" => 4,
        "L-6" | "G-2x3" | "S-6" => 6,
        "G-3x3" => 9,
        _ => return None,
    };
    let capacity = total_capacity.div_ceil(traps);
    let t = match name {
        "L-4" => QccdTopology::linear(4, capacity),
        "L-6" => QccdTopology::linear(6, capacity),
        "S-4" => QccdTopology::fully_connected(4, capacity),
        "S-6" => QccdTopology::fully_connected(6, capacity),
        "G-2x2" => QccdTopology::grid(2, 2, capacity),
        "G-2x3" => QccdTopology::grid(2, 3, capacity),
        "G-3x3" => QccdTopology::grid(3, 3, capacity),
        _ => return None,
    };
    Some(t)
}

fn main() {
    let scale = BenchScale::from_env();
    let apps: Vec<(AppKind, usize)> = match scale {
        BenchScale::Paper => vec![
            (AppKind::Qft, 64),
            (AppKind::Bv, 65),
            (AppKind::Adder, 66),
            (AppKind::Heisenberg, 48),
        ],
        BenchScale::Small => vec![(AppKind::Qft, 16), (AppKind::Bv, 16)],
    };
    let capacities: Vec<usize> = match scale {
        BenchScale::Paper => vec![96, 120, 144, 160],
        BenchScale::Small => vec![24, 36],
    };
    let topologies = ["L-6", "G-2x3", "S-6", "L-4", "G-2x2", "S-4", "G-3x3"];
    let config = CompilerConfig::default();
    let compiler = SSyncCompiler::new(config);

    let mut table = Table::new([
        "Application",
        "Topology",
        "Total capacity",
        "Shuttles",
        "Success rate",
        "Execution time",
    ]);
    for (app, qubits) in apps {
        let circuit = scaled_app(app, qubits);
        let label = format!("{}_{}", app.label(), circuit.num_qubits());
        for topo_name in topologies {
            for &cap in &capacities {
                let Some(topo) = topology(topo_name, cap) else { continue };
                if topo.total_capacity() <= circuit.num_qubits() {
                    continue;
                }
                eprintln!(
                    "[fig11] {label} on {topo_name} (total capacity {})",
                    topo.total_capacity()
                );
                let outcome = compiler.compile(&circuit, &topo).expect("compilation succeeds");
                table.push_row([
                    label.clone(),
                    topo_name.to_string(),
                    topo.total_capacity().to_string(),
                    outcome.counts().shuttles.to_string(),
                    fmt_rate(outcome.report().success_rate),
                    fmt_us(outcome.report().total_time_us),
                ]);
            }
        }
    }
    println!("Fig. 11 — topology and trap-capacity sweep (S-SYNC, FM gates)\n");
    println!("{table}");
    println!("Expected shape: grid topologies (G-2x3, G-3x3) give the best execution");
    println!("time / success rate; peak success occurs around 10-15 ions per trap.");
}
