//! Regenerates Fig. 15: compilation time vs application size — S-SYNC
//! against the Murali et al. baseline on QFT (left panel) and across all
//! benchmarks for S-SYNC (right panel), on a G-2x2 device of capacity 20.

use ssync_bench::{run_compiler, scaled_app, AppKind, BenchScale, CompilerKind, Table};
use ssync_core::CompilerConfig;

fn main() {
    let scale = BenchScale::from_env();
    let sizes: Vec<usize> = match scale {
        BenchScale::Paper => vec![48, 56, 64, 72],
        BenchScale::Small => vec![12, 16],
    };
    let topo = ssync_arch::QccdTopology::grid(2, 2, 20);
    let config = CompilerConfig::default();

    // Left panel: QFT, S-SYNC vs Murali.
    let mut left = Table::new(["QFT size", "Murali et al. (s)", "This Work (s)"]);
    for &size in &sizes {
        let circuit = scaled_app(AppKind::Qft, size);
        if circuit.num_qubits() + 1 > topo.total_capacity() {
            continue;
        }
        eprintln!("[fig15] QFT_{size} under both compilers");
        let murali = run_compiler(CompilerKind::Murali, &circuit, &topo, &config).unwrap();
        let ssync = run_compiler(CompilerKind::SSync, &circuit, &topo, &config).unwrap();
        left.push_row([
            size.to_string(),
            format!("{:.3}", murali.compile_time().as_secs_f64()),
            format!("{:.3}", ssync.compile_time().as_secs_f64()),
        ]);
    }

    // Right panel: every benchmark under S-SYNC.
    let apps = [AppKind::Qft, AppKind::Adder, AppKind::Bv, AppKind::Qaoa, AppKind::Alt];
    let mut right = Table::new(["Application", "Size", "Compile time (s)"]);
    for app in apps {
        for &size in &sizes {
            let circuit = scaled_app(app, size);
            if circuit.num_qubits() + 1 > topo.total_capacity() {
                continue;
            }
            eprintln!("[fig15] {}_{} under S-SYNC", app.label(), size);
            let outcome = run_compiler(CompilerKind::SSync, &circuit, &topo, &config).unwrap();
            right.push_row([
                app.label().to_string(),
                circuit.num_qubits().to_string(),
                format!("{:.3}", outcome.compile_time().as_secs_f64()),
            ]);
        }
    }

    println!("Fig. 15 (left) — compilation time, QFT, S-SYNC vs Murali et al. (G-2x2, cap 20)\n");
    println!("{left}");
    println!("Fig. 15 (right) — S-SYNC compilation time across benchmarks\n");
    println!("{right}");
    println!("Expected shape: S-SYNC's compilation time does not grow strictly with");
    println!("application size — as devices fill up there are fewer space nodes and");
    println!("therefore fewer candidate paths to score.");
}
