//! Regenerates Fig. 15: compilation time vs application size — S-SYNC
//! against the Murali et al. baseline on QFT (left panel) and across all
//! benchmarks for S-SYNC (right panel), on a G-2x2 device of capacity 20.
//!
//! One shared device serves the whole figure. Because the per-circuit
//! `compile_time` IS the quantity this figure reports, the batches run
//! with a single worker: concurrent compilations would contend for cores
//! and inflate each other's wall-clock readings. The shared device is
//! still built exactly once.

use ssync_arch::{Device, QccdTopology};
use ssync_bench::{
    fitting_cells, run_compiler_batch_with_workers, AppKind, BenchScale, CompilerKind, Table,
};
use ssync_core::CompilerConfig;

fn main() {
    let scale = BenchScale::from_env();
    let sizes: Vec<usize> = match scale {
        BenchScale::Paper => vec![48, 56, 64, 72],
        BenchScale::Small => vec![12, 16],
    };
    let topo = QccdTopology::grid(2, 2, 20);
    let config = CompilerConfig::default();
    let device = Device::build(topo, config.weights);

    // Left panel: QFT, S-SYNC vs Murali.
    let (_, qft_circuits) =
        fitting_cells(sizes.iter().map(|&size| (AppKind::Qft, size)), device.topology());
    // Single worker: compile_time is the measured quantity (see module doc).
    eprintln!("[fig15] {} QFT sizes under both compilers (shared device)", qft_circuits.len());
    let murali =
        run_compiler_batch_with_workers(CompilerKind::Murali, &device, &qft_circuits, &config, 1);
    let ssync =
        run_compiler_batch_with_workers(CompilerKind::SSync, &device, &qft_circuits, &config, 1);
    let mut left = Table::new([
        "QFT size".to_string(),
        format!("{} (s)", CompilerKind::Murali.label()),
        format!("{} (s)", CompilerKind::SSync.label()),
    ]);
    for (i, circuit) in qft_circuits.iter().enumerate() {
        let m = murali[i].as_ref().expect("compilation succeeds");
        let s = ssync[i].as_ref().expect("compilation succeeds");
        left.push_row([
            circuit.num_qubits().to_string(),
            format!("{:.3}", m.compile_time().as_secs_f64()),
            format!("{:.3}", s.compile_time().as_secs_f64()),
        ]);
    }

    // Right panel: every benchmark under S-SYNC.
    let apps = [AppKind::Qft, AppKind::Adder, AppKind::Bv, AppKind::Qaoa, AppKind::Alt];
    let (cells, circuits) = fitting_cells(
        apps.iter().flat_map(|&app| sizes.iter().map(move |&size| (app, size))),
        device.topology(),
    );
    eprintln!("[fig15] {} benchmark circuits under S-SYNC (shared device)", circuits.len());
    let outcomes =
        run_compiler_batch_with_workers(CompilerKind::SSync, &device, &circuits, &config, 1);
    let mut right = Table::new(["Application", "Size", "Compile time (s)"]);
    for (&(app, qubits), outcome) in cells.iter().zip(&outcomes) {
        let outcome = outcome.as_ref().expect("compilation succeeds");
        right.push_row([
            app.label().to_string(),
            qubits.to_string(),
            format!("{:.3}", outcome.compile_time().as_secs_f64()),
        ]);
    }

    println!("Fig. 15 (left) — compilation time, QFT, S-SYNC vs Murali et al. (G-2x2, cap 20)\n");
    println!("{left}");
    println!("Fig. 15 (right) — S-SYNC compilation time across benchmarks\n");
    println!("{right}");
    println!("Expected shape: S-SYNC's compilation time does not grow strictly with");
    println!("application size — as devices fill up there are fewer space nodes and");
    println!("therefore fewer candidate paths to score.");
    println!("Note: compile times cover compilation proper over a prepared device;");
    println!("the shared Device artifact (slot graph, router, distance matrix) is a");
    println!("per-sweep cost excluded here (see device_build in BENCH_scheduling.json).");
}
