//! Regenerates Fig. 16: the optimality analysis — S-SYNC against the
//! "perfect SWAP", "perfect shuttle" and "ideal" upper bounds on a G-2x2
//! device with trap capacity 20.
//!
//! One shared device, one parallel batch; the idealised bounds re-evaluate
//! each compiled program without recompiling.

use ssync_arch::{Device, QccdTopology};
use ssync_bench::table::fmt_rate;
use ssync_bench::{fitting_cells, AppKind, BenchScale, Table};
use ssync_core::{CompilerConfig, IdealizationMode, SSyncCompiler};

fn main() {
    let scale = BenchScale::from_env();
    let apps: Vec<(AppKind, usize)> = match scale {
        BenchScale::Paper => vec![
            (AppKind::Bv, 65),
            (AppKind::Adder, 66),
            (AppKind::Qaoa, 64),
            (AppKind::Alt, 64),
            (AppKind::Qft, 64),
        ],
        BenchScale::Small => vec![(AppKind::Bv, 16), (AppKind::Qft, 16)],
    };
    let config = CompilerConfig::default();
    let device = Device::build(QccdTopology::grid(2, 2, 20), config.weights);
    let compiler = SSyncCompiler::new(config);

    let (cells, circuits) = fitting_cells(apps, device.topology());
    let labels: Vec<String> =
        cells.iter().map(|&(app, qubits)| format!("{}_{qubits}", app.label())).collect();
    eprintln!("[fig16] compiling {} benchmarks in parallel", circuits.len());
    let outcomes = compiler.compile_batch(&device, &circuits);

    let mut table =
        Table::new(["Application", "Ideal", "Perfect Shuttle", "Perfect SWAP", "S-SYNC"]);
    let tracer = compiler.tracer();
    for (label, outcome) in labels.into_iter().zip(outcomes) {
        let outcome = outcome.expect("compilation succeeds");
        let rate =
            |mode: IdealizationMode| fmt_rate(outcome.evaluate_with(&tracer, mode).success_rate);
        table.push_row([
            label,
            rate(IdealizationMode::Ideal),
            rate(IdealizationMode::PerfectShuttle),
            rate(IdealizationMode::PerfectSwap),
            rate(IdealizationMode::None),
        ]);
    }
    println!("Fig. 16 — optimality analysis (G-2x2, capacity 20)\n");
    println!("{table}");
    println!("Expected shape: S-SYNC closely tracks the perfect-SWAP bound; a gap");
    println!("remains against perfect shuttle, largest for QFT's long-range pattern.");
}
