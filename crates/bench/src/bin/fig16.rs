//! Regenerates Fig. 16: the optimality analysis — S-SYNC against the
//! "perfect SWAP", "perfect shuttle" and "ideal" upper bounds on a G-2x2
//! device with trap capacity 20.
//!
//! One registered device, one service submission; the idealised bounds
//! re-evaluate each compiled program without recompiling.

use ssync_arch::QccdTopology;
use ssync_bench::table::fmt_rate;
use ssync_bench::{fitting_cells, AppKind, BenchScale, CompilerKind, Table};
use ssync_core::{CompilerConfig, IdealizationMode, SSyncCompiler};
use ssync_service::{CompileRequest, CompileService, Priority, TenantId};
use std::sync::Arc;

fn main() {
    let scale = BenchScale::from_env();
    let apps: Vec<(AppKind, usize)> = match scale {
        BenchScale::Paper => vec![
            (AppKind::Bv, 65),
            (AppKind::Adder, 66),
            (AppKind::Qaoa, 64),
            (AppKind::Alt, 64),
            (AppKind::Qft, 64),
        ],
        BenchScale::Small => vec![(AppKind::Bv, 16), (AppKind::Qft, 16)],
    };
    let config = CompilerConfig::default();
    let topo = QccdTopology::grid(2, 2, 20);
    let service = CompileService::new();
    let device = service.registry().get_or_build(topo.name(), config.weights, || topo.clone());

    let (cells, circuits) = fitting_cells(apps, device.device().topology());
    let labels: Vec<String> =
        cells.iter().map(|&(app, qubits)| format!("{}_{qubits}", app.label())).collect();
    eprintln!(
        "[fig16] submitting {} benchmarks to the compile service ({} workers)",
        circuits.len(),
        service.workers()
    );
    let tenant = TenantId::from_name("fig16-optimality");
    let handles = service.submit_batch(circuits.into_iter().map(|circuit| {
        CompileRequest::new(Arc::clone(&device), Arc::new(circuit), CompilerKind::SSync, config)
            .with_priority(Priority::Batch)
            .with_tenant(tenant)
    }));

    let mut table =
        Table::new(["Application", "Ideal", "Perfect Shuttle", "Perfect SWAP", "S-SYNC"]);
    let tracer = SSyncCompiler::new(config).tracer();
    for (label, handle) in labels.into_iter().zip(handles) {
        let outcome = handle.wait().expect("compilation succeeds");
        let rate =
            |mode: IdealizationMode| fmt_rate(outcome.evaluate_with(&tracer, mode).success_rate);
        table.push_row([
            label,
            rate(IdealizationMode::Ideal),
            rate(IdealizationMode::PerfectShuttle),
            rate(IdealizationMode::PerfectSwap),
            rate(IdealizationMode::None),
        ]);
    }
    println!("Fig. 16 — optimality analysis (G-2x2, capacity 20)\n");
    println!("{table}");
    println!("Expected shape: S-SYNC closely tracks the perfect-SWAP bound; a gap");
    println!("remains against perfect shuttle, largest for QFT's long-range pattern.");
}
