//! Regenerates Fig. 16: the optimality analysis — S-SYNC against the
//! "perfect SWAP", "perfect shuttle" and "ideal" upper bounds on a G-2x2
//! device with trap capacity 20.

use ssync_bench::table::fmt_rate;
use ssync_bench::{scaled_app, AppKind, BenchScale, Table};
use ssync_core::{CompilerConfig, IdealizationMode, SSyncCompiler};

fn main() {
    let scale = BenchScale::from_env();
    let apps: Vec<(AppKind, usize)> = match scale {
        BenchScale::Paper => vec![
            (AppKind::Bv, 65),
            (AppKind::Adder, 66),
            (AppKind::Qaoa, 64),
            (AppKind::Alt, 64),
            (AppKind::Qft, 64),
        ],
        BenchScale::Small => vec![(AppKind::Bv, 16), (AppKind::Qft, 16)],
    };
    let topo = ssync_arch::QccdTopology::grid(2, 2, 20);
    let config = CompilerConfig::default();
    let compiler = SSyncCompiler::new(config);

    let mut table =
        Table::new(["Application", "Ideal", "Perfect Shuttle", "Perfect SWAP", "S-SYNC"]);
    for (app, qubits) in apps {
        let circuit = scaled_app(app, qubits);
        let label = format!("{}_{}", app.label(), circuit.num_qubits());
        if circuit.num_qubits() + 1 > topo.total_capacity() {
            eprintln!("[fig16] skipping {label}: does not fit on G-2x2 cap 20");
            continue;
        }
        eprintln!("[fig16] compiling {label}");
        let outcome = compiler.compile(&circuit, &topo).expect("compilation succeeds");
        let tracer = compiler.tracer();
        let rate =
            |mode: IdealizationMode| fmt_rate(outcome.evaluate_with(&tracer, mode).success_rate);
        table.push_row([
            label,
            rate(IdealizationMode::Ideal),
            rate(IdealizationMode::PerfectShuttle),
            rate(IdealizationMode::PerfectSwap),
            rate(IdealizationMode::None),
        ]);
    }
    println!("Fig. 16 — optimality analysis (G-2x2, capacity 20)\n");
    println!("{table}");
    println!("Expected shape: S-SYNC closely tracks the perfect-SWAP bound; a gap");
    println!("remains against perfect shuttle, largest for QFT's long-range pattern.");
}
