//! Regenerates Fig. 10: application success rates of Murali et al., Dai et
//! al. and S-SYNC across the benchmark × topology grid (higher is better).

use ssync_bench::comparison::geometric_mean_ratio;
use ssync_bench::table::fmt_rate;
use ssync_bench::{comparison_rows, comparison_table, BenchScale, CompilerKind};
use ssync_core::CompilerConfig;

fn main() {
    let scale = BenchScale::from_env();
    let rows = comparison_rows(scale, &CompilerConfig::default(), |what| {
        eprintln!("[fig10] compiling {what}");
    });
    let table = comparison_table(&rows, |r| fmt_rate(r.success_rate));
    println!("Fig. 10 — success rate (higher is better, FM gates)\n");
    println!("{table}");
    let vs_murali = geometric_mean_ratio(&rows, CompilerKind::SSync, CompilerKind::Murali, |r| {
        r.success_rate.max(1e-30)
    });
    let vs_dai = geometric_mean_ratio(&rows, CompilerKind::SSync, CompilerKind::Dai, |r| {
        r.success_rate.max(1e-30)
    });
    println!("Geometric-mean success-rate improvement vs Murali et al.: {vs_murali:.2}x");
    println!("Geometric-mean success-rate improvement vs Dai et al.:    {vs_dai:.2}x");
    println!("(paper reports a 1.73x average improvement)");
}
