//! Regenerates Table 2: the benchmark suite (qubits, two-qubit gates,
//! communication pattern).

use ssync_bench::Table;
use ssync_circuit::generators::table2_suite;
use ssync_circuit::InteractionGraph;

fn main() {
    let mut table = Table::new(["Application", "#Qubits", "#2Q Gates", "Communication"]);
    for entry in table2_suite() {
        let stats = entry.circuit.stats();
        let avg = InteractionGraph::from_circuit(&entry.circuit).average_interaction_distance();
        table.push_row([
            entry.label.to_string(),
            stats.num_qubits.to_string(),
            stats.two_qubit_gates.to_string(),
            format!("{} (avg index distance {:.1})", entry.communication, avg),
        ]);
    }
    println!("Table 2 — benchmark suite\n");
    println!("{table}");
}
