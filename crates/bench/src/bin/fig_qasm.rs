//! Sweeps the checked-in `workloads/` OpenQASM corpus through the
//! compile service across **all four** compilers and the corpus
//! topology set — the scenario-diversity counterpart of the Figs. 8–10
//! comparison, over circuits ingested as text instead of generated
//! in-process.
//!
//! ```sh
//! cargo run --release -p ssync-bench --bin fig_qasm
//! SSYNC_WORKLOADS=path/to/corpus cargo run --release -p ssync-bench --bin fig_qasm
//! ```

use ssync_bench::qasm_corpus::{corpus_dir, corpus_rows, load_corpus};
use ssync_bench::table::{fmt_rate, fmt_us};
use ssync_bench::Table;
use ssync_core::CompilerConfig;

fn main() {
    let dir = corpus_dir();
    let entries = match load_corpus(&dir) {
        Ok(entries) => entries,
        Err(message) => {
            eprintln!("[fig_qasm] {message}");
            std::process::exit(1);
        }
    };
    eprintln!("[fig_qasm] parsed {} circuits from {}", entries.len(), dir.display());
    for entry in &entries {
        let r = &entry.report;
        if r.stripped_anything() || r.barriers > 0 {
            eprintln!(
                "[fig_qasm]   {}: stripped {} measure / {} reset / {} conditional, \
                 {} barriers, {} gates inlined",
                entry.name,
                r.measurements_stripped,
                r.resets_stripped,
                r.conditionals_stripped,
                r.barriers,
                r.gates_inlined
            );
        }
    }

    let config = CompilerConfig::default();
    let rows = corpus_rows(&entries, &config, |message| eprintln!("[fig_qasm] {message}"));

    let mut table = Table::new([
        "Workload",
        "Qubits",
        "2Q gates",
        "Topology",
        "Compiler",
        "Shuttles",
        "SWAPs",
        "Execution time",
        "Success rate",
    ]);
    for row in &rows {
        let entry = entries.iter().find(|e| e.name == row.app).expect("row from corpus");
        table.push_row([
            row.app.clone(),
            entry.circuit.num_qubits().to_string(),
            entry.circuit.two_qubit_gate_count().to_string(),
            row.topology.clone(),
            row.compiler.label().to_string(),
            row.shuttles.to_string(),
            row.swaps.to_string(),
            fmt_us(row.execution_time_us),
            fmt_rate(row.success_rate),
        ]);
    }
    println!("QASM workload corpus — all compilers across the corpus topology set\n");
    println!("{table}");
    println!("Rows: {} ((file x topology x compiler) cells that fit).", rows.len());
}
