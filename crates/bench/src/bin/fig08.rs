//! Regenerates Fig. 8: shuttle counts of Murali et al., Dai et al. and
//! S-SYNC across the benchmark × topology grid (lower is better).

use ssync_bench::comparison::geometric_mean_ratio;
use ssync_bench::{comparison_rows, comparison_table, BenchScale, CompilerKind};
use ssync_core::CompilerConfig;

fn main() {
    let scale = BenchScale::from_env();
    let rows = comparison_rows(scale, &CompilerConfig::default(), |what| {
        eprintln!("[fig08] compiling {what}");
    });
    let table = comparison_table(&rows, |r| r.shuttles.to_string());
    println!("Fig. 8 — number of shuttles (lower is better)\n");
    println!("{table}");
    let vs_murali = geometric_mean_ratio(&rows, CompilerKind::Murali, CompilerKind::SSync, |r| {
        r.shuttles as f64
    });
    let vs_dai =
        geometric_mean_ratio(&rows, CompilerKind::Dai, CompilerKind::SSync, |r| r.shuttles as f64);
    println!("Geometric-mean shuttle reduction vs Murali et al.: {vs_murali:.2}x");
    println!("Geometric-mean shuttle reduction vs Dai et al.:    {vs_dai:.2}x");
    println!("(paper reports a 3.69x average reduction)");
}
