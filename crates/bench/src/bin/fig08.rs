//! Regenerates Fig. 8: shuttle counts of Murali et al., Dai et al. and
//! S-SYNC across the benchmark × topology grid (lower is better).

use ssync_bench::comparison::geometric_mean_ratio;
use ssync_bench::{comparison_rows, BenchScale, CompilerKind, Table};
use ssync_core::CompilerConfig;

fn main() {
    let scale = BenchScale::from_env();
    let rows = comparison_rows(scale, &CompilerConfig::default(), |what| {
        eprintln!("[fig08] compiling {what}");
    });
    let mut table =
        Table::new(["Application", "Topology", "Murali et al.", "Dai et al.", "This Work"]);
    let mut seen = std::collections::BTreeSet::new();
    for row in &rows {
        let key = (row.app.clone(), row.topology.clone());
        if !seen.insert(key.clone()) {
            continue;
        }
        let get = |kind: CompilerKind| {
            rows.iter()
                .find(|r| r.compiler == kind && r.app == key.0 && r.topology == key.1)
                .map(|r| r.shuttles.to_string())
                .unwrap_or_else(|| "-".into())
        };
        table.push_row([
            key.0.clone(),
            key.1.clone(),
            get(CompilerKind::Murali),
            get(CompilerKind::Dai),
            get(CompilerKind::SSync),
        ]);
    }
    println!("Fig. 8 — number of shuttles (lower is better)\n");
    println!("{table}");
    let vs_murali = geometric_mean_ratio(&rows, CompilerKind::Murali, CompilerKind::SSync, |r| {
        r.shuttles as f64
    });
    let vs_dai =
        geometric_mean_ratio(&rows, CompilerKind::Dai, CompilerKind::SSync, |r| r.shuttles as f64);
    println!("Geometric-mean shuttle reduction vs Murali et al.: {vs_murali:.2}x");
    println!("Geometric-mean shuttle reduction vs Dai et al.:    {vs_dai:.2}x");
    println!("(paper reports a 3.69x average reduction)");
}
