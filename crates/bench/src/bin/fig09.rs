//! Regenerates Fig. 9: inserted SWAP gate counts of Murali et al., Dai et
//! al. and S-SYNC across the benchmark × topology grid (lower is better).

use ssync_bench::comparison::geometric_mean_ratio;
use ssync_bench::{comparison_rows, comparison_table, BenchScale, CompilerKind};
use ssync_core::CompilerConfig;

fn main() {
    let scale = BenchScale::from_env();
    let rows = comparison_rows(scale, &CompilerConfig::default(), |what| {
        eprintln!("[fig09] compiling {what}");
    });
    let table = comparison_table(&rows, |r| r.swaps.to_string());
    println!("Fig. 9 — number of inserted SWAP gates (lower is better)\n");
    println!("{table}");
    let vs_murali = geometric_mean_ratio(&rows, CompilerKind::SSync, CompilerKind::Murali, |r| {
        (r.swaps as f64).max(0.5)
    });
    let vs_dai = geometric_mean_ratio(&rows, CompilerKind::SSync, CompilerKind::Dai, |r| {
        (r.swaps as f64).max(0.5)
    });
    println!("Geometric-mean SWAP ratio vs Murali et al.: {:.1}% of baseline", vs_murali * 100.0);
    println!("Geometric-mean SWAP ratio vs Dai et al.:    {:.1}% of baseline", vs_dai * 100.0);
    println!("(paper reports 68.5% / 54.9% average reductions)");
}
