//! Regenerates Fig. 9: inserted SWAP gate counts of Murali et al., Dai et
//! al. and S-SYNC across the benchmark × topology grid (lower is better).

use ssync_bench::comparison::geometric_mean_ratio;
use ssync_bench::{comparison_rows, BenchScale, CompilerKind, Table};
use ssync_core::CompilerConfig;

fn main() {
    let scale = BenchScale::from_env();
    let rows = comparison_rows(scale, &CompilerConfig::default(), |what| {
        eprintln!("[fig09] compiling {what}");
    });
    let mut table =
        Table::new(["Application", "Topology", "Murali et al.", "Dai et al.", "This Work"]);
    let mut seen = std::collections::BTreeSet::new();
    for row in &rows {
        let key = (row.app.clone(), row.topology.clone());
        if !seen.insert(key.clone()) {
            continue;
        }
        let get = |kind: CompilerKind| {
            rows.iter()
                .find(|r| r.compiler == kind && r.app == key.0 && r.topology == key.1)
                .map(|r| r.swaps.to_string())
                .unwrap_or_else(|| "-".into())
        };
        table.push_row([
            key.0.clone(),
            key.1.clone(),
            get(CompilerKind::Murali),
            get(CompilerKind::Dai),
            get(CompilerKind::SSync),
        ]);
    }
    println!("Fig. 9 — number of inserted SWAP gates (lower is better)\n");
    println!("{table}");
    let vs_murali = geometric_mean_ratio(&rows, CompilerKind::SSync, CompilerKind::Murali, |r| {
        (r.swaps as f64).max(0.5)
    });
    let vs_dai = geometric_mean_ratio(&rows, CompilerKind::SSync, CompilerKind::Dai, |r| {
        (r.swaps as f64).max(0.5)
    });
    println!("Geometric-mean SWAP ratio vs Murali et al.: {:.1}% of baseline", vs_murali * 100.0);
    println!("Geometric-mean SWAP ratio vs Dai et al.:    {:.1}% of baseline", vs_dai * 100.0);
    println!("(paper reports 68.5% / 54.9% average reductions)");
}
