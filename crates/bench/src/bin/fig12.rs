//! Regenerates Fig. 12: the effect of the initial mapping (gathering,
//! even-divided, STA) on shuttles, SWAPs, execution time and success rate,
//! for the Adder and QFT applications on a G-2x3 device across application
//! sizes.
//!
//! The full (mapping × application) product goes through the compile
//! service in one submission: the G-2x3 device is registered (and built)
//! once, every circuit is shared by `Arc` across the three mapping
//! configurations, and the work-stealing pool drains the product.

use ssync_bench::table::{fmt_rate, fmt_us};
use ssync_bench::{fitting_cells, AppKind, BenchScale, CompilerKind, Table};
use ssync_core::{CompilerConfig, InitialMapping};
use ssync_service::{CompileRequest, CompileService, Priority, TenantId};
use std::sync::Arc;

fn main() {
    let scale = BenchScale::from_env();
    let sizes: Vec<usize> = match scale {
        BenchScale::Paper => vec![50, 58, 66, 74, 82, 90],
        BenchScale::Small => vec![12, 16],
    };
    let base_config = CompilerConfig::default();
    let service = CompileService::new();
    let device = service
        .registry()
        .get_or_build_named("G-2x3", base_config.weights)
        .expect("known topology");
    let apps = [AppKind::Adder, AppKind::Qft];

    // All (app, size) circuits that fit, in output order, shared by Arc
    // across every mapping.
    let (cells, circuits) = fitting_cells(
        apps.iter().flat_map(|&app| sizes.iter().map(move |&size| (app, size))),
        device.device().topology(),
    );
    let circuits: Vec<Arc<_>> = circuits.into_iter().map(Arc::new).collect();

    // One submission covering the whole (mapping × circuit) product.
    eprintln!(
        "[fig12] submitting {} circuits x {} mappings to the compile service ({} workers)",
        circuits.len(),
        InitialMapping::ALL.len(),
        service.workers()
    );
    // Each mapping sweep is its own tenant at Batch priority, so when
    // several figure binaries share one long-lived daemon none of them
    // can starve the others (or an interactive request).
    let per_mapping: Vec<Vec<_>> = InitialMapping::ALL
        .into_iter()
        .map(|mapping| {
            let config = base_config.with_initial_mapping(mapping);
            let tenant = TenantId::from_name(&format!("fig12-{}", mapping.label()));
            service.submit_batch(circuits.iter().map(|circuit| {
                CompileRequest::new(
                    Arc::clone(&device),
                    Arc::clone(circuit),
                    CompilerKind::SSync,
                    config,
                )
                .with_priority(Priority::Batch)
                .with_tenant(tenant)
            }))
        })
        .collect();

    let mut table = Table::new([
        "Application",
        "Size",
        "Mapping",
        "Shuttles",
        "SWAPs",
        "Execution time",
        "Success rate",
    ]);
    for (i, &(app, qubits)) in cells.iter().enumerate() {
        for (m, mapping) in InitialMapping::ALL.into_iter().enumerate() {
            let outcome = per_mapping[m][i].wait().expect("compilation succeeds");
            table.push_row([
                app.label().to_string(),
                qubits.to_string(),
                mapping.label().to_string(),
                outcome.counts().shuttles.to_string(),
                outcome.counts().swap_gates.to_string(),
                fmt_us(outcome.report().total_time_us),
                fmt_rate(outcome.report().success_rate),
            ]);
        }
    }
    let metrics = service.metrics();
    println!("Fig. 12 — initial-mapping comparison on G-2x3 (S-SYNC, FM gates)\n");
    println!("{table}");
    eprintln!(
        "[fig12] fairness: {} batch-priority jobs across {} tenants drained evenly",
        metrics.submitted_at(Priority::Batch),
        InitialMapping::ALL.len()
    );
    println!("Expected shape: gathering needs the fewest shuttles but its longer FM");
    println!("chains raise execution time and can lower the success rate as the");
    println!("application's communication pattern gets more complex.");
}
