//! Regenerates Fig. 12: the effect of the initial mapping (gathering,
//! even-divided, STA) on shuttles, SWAPs, execution time and success rate,
//! for the Adder and QFT applications on a G-2x3 device across application
//! sizes.

use ssync_bench::table::{fmt_rate, fmt_us};
use ssync_bench::{scaled_app, AppKind, BenchScale, Table};
use ssync_core::{CompilerConfig, InitialMapping, SSyncCompiler};

fn main() {
    let scale = BenchScale::from_env();
    let sizes: Vec<usize> = match scale {
        BenchScale::Paper => vec![50, 58, 66, 74, 82, 90],
        BenchScale::Small => vec![12, 16],
    };
    let topo = ssync_arch::QccdTopology::named("G-2x3").expect("known topology");
    let apps = [AppKind::Adder, AppKind::Qft];

    let mut table = Table::new([
        "Application",
        "Size",
        "Mapping",
        "Shuttles",
        "SWAPs",
        "Execution time",
        "Success rate",
    ]);
    for app in apps {
        for &size in &sizes {
            let circuit = scaled_app(app, size);
            if circuit.num_qubits() + 1 > topo.total_capacity() {
                continue;
            }
            for mapping in InitialMapping::ALL {
                eprintln!("[fig12] {}_{} with {}", app.label(), size, mapping.label());
                let config = CompilerConfig::default().with_initial_mapping(mapping);
                let outcome = SSyncCompiler::new(config)
                    .compile(&circuit, &topo)
                    .expect("compilation succeeds");
                table.push_row([
                    app.label().to_string(),
                    circuit.num_qubits().to_string(),
                    mapping.label().to_string(),
                    outcome.counts().shuttles.to_string(),
                    outcome.counts().swap_gates.to_string(),
                    fmt_us(outcome.report().total_time_us),
                    fmt_rate(outcome.report().success_rate),
                ]);
            }
        }
    }
    println!("Fig. 12 — initial-mapping comparison on G-2x3 (S-SYNC, FM gates)\n");
    println!("{table}");
    println!("Expected shape: gathering needs the fewest shuttles but its longer FM");
    println!("chains raise execution time and can lower the success rate as the");
    println!("application's communication pattern gets more complex.");
}
