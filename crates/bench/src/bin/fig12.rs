//! Regenerates Fig. 12: the effect of the initial mapping (gathering,
//! even-divided, STA) on shuttles, SWAPs, execution time and success rate,
//! for the Adder and QFT applications on a G-2x3 device across application
//! sizes.
//!
//! The G-2x3 device is built once and shared by every mapping; each
//! mapping's circuits compile in one parallel batch.

use ssync_arch::Device;
use ssync_bench::table::{fmt_rate, fmt_us};
use ssync_bench::{fitting_cells, AppKind, BenchScale, Table};
use ssync_core::{CompilerConfig, InitialMapping, SSyncCompiler};

fn main() {
    let scale = BenchScale::from_env();
    let sizes: Vec<usize> = match scale {
        BenchScale::Paper => vec![50, 58, 66, 74, 82, 90],
        BenchScale::Small => vec![12, 16],
    };
    let base_config = CompilerConfig::default();
    let device = Device::named("G-2x3", base_config.weights).expect("known topology");
    let apps = [AppKind::Adder, AppKind::Qft];

    // All (app, size) circuits that fit, in output order.
    let (cells, circuits) = fitting_cells(
        apps.iter().flat_map(|&app| sizes.iter().map(move |&size| (app, size))),
        device.topology(),
    );

    // One parallel batch per mapping over the shared device.
    let mut per_mapping = Vec::new();
    for mapping in InitialMapping::ALL {
        eprintln!("[fig12] {} circuits with {} (batched)", circuits.len(), mapping.label());
        let config = base_config.with_initial_mapping(mapping);
        let outcomes = SSyncCompiler::new(config).compile_batch(&device, &circuits);
        per_mapping.push(outcomes);
    }

    let mut table = Table::new([
        "Application",
        "Size",
        "Mapping",
        "Shuttles",
        "SWAPs",
        "Execution time",
        "Success rate",
    ]);
    for (i, &(app, qubits)) in cells.iter().enumerate() {
        for (m, mapping) in InitialMapping::ALL.into_iter().enumerate() {
            let outcome = per_mapping[m][i].as_ref().expect("compilation succeeds");
            table.push_row([
                app.label().to_string(),
                qubits.to_string(),
                mapping.label().to_string(),
                outcome.counts().shuttles.to_string(),
                outcome.counts().swap_gates.to_string(),
                fmt_us(outcome.report().total_time_us),
                fmt_rate(outcome.report().success_rate),
            ]);
        }
    }
    println!("Fig. 12 — initial-mapping comparison on G-2x3 (S-SYNC, FM gates)\n");
    println!("{table}");
    println!("Expected shape: gathering needs the fewest shuttles but its longer FM");
    println!("chains raise execution time and can lower the success rate as the");
    println!("application's communication pattern gets more complex.");
}
