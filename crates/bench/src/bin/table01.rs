//! Regenerates Table 1: execution times of the QCCD transport primitives.

use ssync_bench::Table;
use ssync_sim::OperationTimes;

fn main() {
    let t = OperationTimes::default();
    let mut table = Table::new(["Operation", "Time"]);
    table.push_row(["Move (per segment)".to_string(), format!("{} us", t.move_us)]);
    table.push_row(["Split".to_string(), format!("{} us", t.split_us)]);
    table.push_row(["Merge".to_string(), format!("{} us", t.merge_us)]);
    table.push_row([
        "Cross n-path junction".to_string(),
        format!("{} + {} x n us", t.junction_base_us, t.junction_per_path_us),
    ]);
    table.push_row([
        "  e.g. 3-path junction".to_string(),
        format!("{} us", t.junction_crossing_us(3)),
    ]);
    println!("Table 1 — transport operation times\n");
    println!("{table}");
}
