//! Regenerates Fig. 13: success rate of the large benchmarks under the
//! four two-qubit gate implementations (FM, AM1, AM2, PM) on a G-2x3
//! device with trap capacity 16.
//!
//! The device is built once; every benchmark compiles against it in one
//! parallel batch, then the schedule is re-evaluated (not recompiled)
//! under each gate implementation.

use ssync_arch::Device;
use ssync_bench::table::fmt_rate;
use ssync_bench::{scaled_app, AppKind, BenchScale, Table};
use ssync_core::{CompilerConfig, SSyncCompiler};
use ssync_sim::{ExecutionTracer, GateImplementation};

fn main() {
    let scale = BenchScale::from_env();
    let apps: Vec<(AppKind, usize)> = match scale {
        BenchScale::Paper => vec![
            (AppKind::Adder, 66),
            (AppKind::Qft, 64),
            (AppKind::Bv, 65),
            (AppKind::Qaoa, 64),
            (AppKind::Alt, 64),
        ],
        BenchScale::Small => vec![(AppKind::Qft, 16), (AppKind::Qaoa, 16)],
    };
    let config = CompilerConfig::default();
    let device = Device::build(ssync_arch::QccdTopology::grid(2, 3, 16), config.weights);
    let compiler = SSyncCompiler::new(config);

    let circuits: Vec<_> = apps.iter().map(|&(app, qubits)| scaled_app(app, qubits)).collect();
    let labels: Vec<String> = apps
        .iter()
        .zip(&circuits)
        .map(|(&(app, _), c)| format!("{}_{}", app.label(), c.num_qubits()))
        .collect();
    eprintln!("[fig13] compiling {} benchmarks in parallel", circuits.len());
    // The schedule is gate-implementation independent: compile each circuit
    // once (in one shared-device batch) and re-evaluate the timing/fidelity
    // under each implementation.
    let outcomes = compiler.compile_batch(&device, &circuits);

    let mut table = Table::new(["Application", "FM", "AM1", "AM2", "PM"]);
    for (label, outcome) in labels.into_iter().zip(outcomes) {
        let outcome = outcome.expect("compilation succeeds");
        let rate_for = |gate_impl: GateImplementation| {
            let tracer = ExecutionTracer { gate_impl, ..compiler.tracer() };
            fmt_rate(tracer.evaluate(outcome.program()).success_rate)
        };
        table.push_row([
            label,
            rate_for(GateImplementation::Fm),
            rate_for(GateImplementation::Am1),
            rate_for(GateImplementation::Am2),
            rate_for(GateImplementation::Pm),
        ]);
    }
    println!("Fig. 13 — success rate per gate implementation (G-2x3, capacity 16)\n");
    println!("{table}");
    println!("Expected shape: AM2 wins for short-range apps (QAOA, ALT); FM/PM are");
    println!("better suited to long-range apps (QFT) because their duration depends");
    println!("only weakly on ion separation.");
}
