//! Regenerates Fig. 13: success rate of the large benchmarks under the
//! four two-qubit gate implementations (FM, AM1, AM2, PM) on a G-2x3
//! device with trap capacity 16.

use ssync_bench::table::fmt_rate;
use ssync_bench::{scaled_app, AppKind, BenchScale, Table};
use ssync_core::{CompilerConfig, SSyncCompiler};
use ssync_sim::{ExecutionTracer, GateImplementation};

fn main() {
    let scale = BenchScale::from_env();
    let apps: Vec<(AppKind, usize)> = match scale {
        BenchScale::Paper => vec![
            (AppKind::Adder, 66),
            (AppKind::Qft, 64),
            (AppKind::Bv, 65),
            (AppKind::Qaoa, 64),
            (AppKind::Alt, 64),
        ],
        BenchScale::Small => vec![(AppKind::Qft, 16), (AppKind::Qaoa, 16)],
    };
    let topo = ssync_arch::QccdTopology::grid(2, 3, 16);
    let config = CompilerConfig::default();
    let compiler = SSyncCompiler::new(config);

    let mut table = Table::new(["Application", "FM", "AM1", "AM2", "PM"]);
    for (app, qubits) in apps {
        let circuit = scaled_app(app, qubits);
        let label = format!("{}_{}", app.label(), circuit.num_qubits());
        eprintln!("[fig13] compiling {label}");
        // The schedule is gate-implementation independent: compile once and
        // re-evaluate the timing/fidelity under each implementation.
        let outcome = compiler.compile(&circuit, &topo).expect("compilation succeeds");
        let rate_for = |gate_impl: GateImplementation| {
            let tracer = ExecutionTracer { gate_impl, ..compiler.tracer() };
            fmt_rate(tracer.evaluate(outcome.program()).success_rate)
        };
        table.push_row([
            label,
            rate_for(GateImplementation::Fm),
            rate_for(GateImplementation::Am1),
            rate_for(GateImplementation::Am2),
            rate_for(GateImplementation::Pm),
        ]);
    }
    println!("Fig. 13 — success rate per gate implementation (G-2x3, capacity 16)\n");
    println!("{table}");
    println!("Expected shape: AM2 wins for short-range apps (QAOA, ALT); FM/PM are");
    println!("better suited to long-range apps (QFT) because their duration depends");
    println!("only weakly on ion separation.");
}
