//! Regenerates Fig. 14: hyper-parameter sensitivity of S-SYNC — the
//! shuttle/inner weight ratio r (left panel) and the decay rate δ (right
//! panel) — on a G-2x2 device with trap capacity 20.
//!
//! Both panels go through the compile service in one submission each.
//! Devices are keyed by (name, weights) in the service registry: the
//! weight-ratio sweep registers one device per ratio (the edge weights
//! change the artifact), while the decay sweep shares a single registered
//! device across every δ. Circuits are shared by `Arc` across every
//! configuration of both panels.

use ssync_arch::QccdTopology;
use ssync_bench::table::fmt_rate;
use ssync_bench::{fitting_cells, AppKind, BenchScale, CompilerKind, Table};
use ssync_core::CompilerConfig;
use ssync_service::{CompileRequest, CompileService, Priority, TenantId};
use std::sync::Arc;

fn main() {
    let scale = BenchScale::from_env();
    let sizes: Vec<usize> = match scale {
        BenchScale::Paper => vec![50, 60, 70],
        BenchScale::Small => vec![12, 16],
    };
    let apps = [AppKind::Adder, AppKind::Qft, AppKind::Qaoa];
    let topo = QccdTopology::grid(2, 2, 20);
    let service = CompileService::new();

    // The (app, size) cells that fit, in output order.
    let (cells, circuits) = fitting_cells(
        apps.iter().flat_map(|&app| sizes.iter().map(move |&size| (app, size))),
        &topo,
    );
    let circuits: Vec<Arc<_>> = circuits.into_iter().map(Arc::new).collect();

    // Left panel: weight-ratio sweep — the weights are part of the device
    // artifact, so each ratio registers its own device once.
    let ratios = [100.0, 1_000.0, 10_000.0, 100_000.0];
    eprintln!(
        "[fig14] submitting {} circuits x {} ratios + {} decays ({} workers)",
        circuits.len(),
        ratios.len(),
        4,
        service.workers()
    );
    // The two panels are two tenants at Batch priority: with both
    // backlogged, deficit round-robin interleaves them instead of letting
    // the (submitted-first) ratio sweep run to completion alone.
    let ratio_tenant = TenantId::from_name("fig14-ratio-sweep");
    let decay_tenant = TenantId::from_name("fig14-decay-sweep");
    let per_ratio: Vec<Vec<_>> = ratios
        .iter()
        .map(|&ratio| {
            let config = CompilerConfig::default().with_weight_ratio(ratio);
            let device =
                service.registry().get_or_build(topo.name(), config.weights, || topo.clone());
            service.submit_batch(circuits.iter().map(|circuit| {
                CompileRequest::new(
                    Arc::clone(&device),
                    Arc::clone(circuit),
                    CompilerKind::SSync,
                    config,
                )
                .with_priority(Priority::Batch)
                .with_tenant(ratio_tenant)
            }))
        })
        .collect();

    // Right panel: decay-rate sweep — δ does not touch the device, so one
    // registered artifact serves every configuration (and the ratio-1000
    // entry above is literally the same device: same name, same weights).
    let decays = [0.0, 0.01, 0.001, 0.0001];
    let shared =
        service
            .registry()
            .get_or_build(topo.name(), CompilerConfig::default().weights, || topo.clone());
    let per_decay: Vec<Vec<_>> = decays
        .iter()
        .map(|&delta| {
            let config = CompilerConfig::default().with_decay(delta);
            service.submit_batch(circuits.iter().map(|circuit| {
                CompileRequest::new(
                    Arc::clone(&shared),
                    Arc::clone(circuit),
                    CompilerKind::SSync,
                    config,
                )
                .with_priority(Priority::Batch)
                .with_tenant(decay_tenant)
            }))
        })
        .collect();

    let mut weight_table = Table::new(["Application", "Size", "r=100", "r=1e3", "r=1e4", "r=1e5"]);
    for (i, &(app, qubits)) in cells.iter().enumerate() {
        let mut row = vec![app.label().to_string(), qubits.to_string()];
        for handles in &per_ratio {
            let outcome = handles[i].wait().expect("compilation succeeds");
            row.push(fmt_rate(outcome.report().success_rate));
        }
        weight_table.push_row(row);
    }

    let mut decay_table =
        Table::new(["Application", "Size", "d=0", "d=0.01", "d=0.001", "d=0.0001"]);
    for (i, &(app, qubits)) in cells.iter().enumerate() {
        let mut row = vec![app.label().to_string(), qubits.to_string()];
        for handles in &per_decay {
            let outcome = handles[i].wait().expect("compilation succeeds");
            row.push(fmt_rate(outcome.report().success_rate));
        }
        decay_table.push_row(row);
    }

    let metrics = service.metrics();
    println!("Fig. 14 (left) — success rate vs shuttle/inner weight ratio (G-2x2, cap 20)\n");
    println!("{weight_table}");
    println!("Fig. 14 (right) — success rate vs decay rate δ (G-2x2, cap 20)\n");
    println!("{decay_table}");
    println!("Expected shape: performance is largely insensitive to the weight ratio as");
    println!("long as shuttle weight stays proportionally larger than the inner weight;");
    println!("δ has a mild, application-dependent optimum around 1e-3.");
    eprintln!(
        "[fig14] dedup: {} cache hits + {} coalesced of {} submitted \
         (r=1e3 and d=0.001 are both the default config); \
         {} near-duplicates shared a device+circuit under different configs",
        metrics.cache.hits,
        metrics.jobs_coalesced,
        metrics.jobs_submitted,
        metrics.jobs_near_duplicate
    );
    eprintln!(
        "[fig14] fairness: two Batch tenants (ratio / decay panels), \
         {} jobs total, drained by deficit round-robin",
        metrics.submitted_at(Priority::Batch)
    );
}
