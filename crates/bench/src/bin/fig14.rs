//! Regenerates Fig. 14: hyper-parameter sensitivity of S-SYNC — the
//! shuttle/inner weight ratio r (left panel) and the decay rate δ (right
//! panel) — on a G-2x2 device with trap capacity 20.

use ssync_bench::table::fmt_rate;
use ssync_bench::{scaled_app, AppKind, BenchScale, Table};
use ssync_core::{CompilerConfig, SSyncCompiler};

fn main() {
    let scale = BenchScale::from_env();
    let sizes: Vec<usize> = match scale {
        BenchScale::Paper => vec![50, 60, 70],
        BenchScale::Small => vec![12, 16],
    };
    let apps = [AppKind::Adder, AppKind::Qft, AppKind::Qaoa];
    let topo = ssync_arch::QccdTopology::grid(2, 2, 20);

    // Left panel: weight-ratio sweep.
    let ratios = [100.0, 1_000.0, 10_000.0, 100_000.0];
    let mut weight_table = Table::new(["Application", "Size", "r=100", "r=1e3", "r=1e4", "r=1e5"]);
    for app in apps {
        for &size in &sizes {
            let circuit = scaled_app(app, size);
            if circuit.num_qubits() + 1 > topo.total_capacity() {
                continue;
            }
            let mut cells = vec![app.label().to_string(), circuit.num_qubits().to_string()];
            for &ratio in &ratios {
                eprintln!("[fig14] {}_{} ratio {ratio}", app.label(), size);
                let config = CompilerConfig::default().with_weight_ratio(ratio);
                let outcome = SSyncCompiler::new(config)
                    .compile(&circuit, &topo)
                    .expect("compilation succeeds");
                cells.push(fmt_rate(outcome.report().success_rate));
            }
            weight_table.push_row(cells);
        }
    }

    // Right panel: decay-rate sweep.
    let decays = [0.0, 0.01, 0.001, 0.0001];
    let mut decay_table =
        Table::new(["Application", "Size", "d=0", "d=0.01", "d=0.001", "d=0.0001"]);
    for app in apps {
        for &size in &sizes {
            let circuit = scaled_app(app, size);
            if circuit.num_qubits() + 1 > topo.total_capacity() {
                continue;
            }
            let mut cells = vec![app.label().to_string(), circuit.num_qubits().to_string()];
            for &delta in &decays {
                eprintln!("[fig14] {}_{} decay {delta}", app.label(), size);
                let config = CompilerConfig::default().with_decay(delta);
                let outcome = SSyncCompiler::new(config)
                    .compile(&circuit, &topo)
                    .expect("compilation succeeds");
                cells.push(fmt_rate(outcome.report().success_rate));
            }
            decay_table.push_row(cells);
        }
    }

    println!("Fig. 14 (left) — success rate vs shuttle/inner weight ratio (G-2x2, cap 20)\n");
    println!("{weight_table}");
    println!("Fig. 14 (right) — success rate vs decay rate δ (G-2x2, cap 20)\n");
    println!("{decay_table}");
    println!("Expected shape: performance is largely insensitive to the weight ratio as");
    println!("long as shuttle weight stays proportionally larger than the inner weight;");
    println!("δ has a mild, application-dependent optimum around 1e-3.");
}
