//! Regenerates Fig. 14: hyper-parameter sensitivity of S-SYNC — the
//! shuttle/inner weight ratio r (left panel) and the decay rate δ (right
//! panel) — on a G-2x2 device with trap capacity 20.
//!
//! Devices are keyed by (topology, weights): the weight-ratio sweep
//! builds one device per ratio (the edge weights change the artifact),
//! while the decay sweep shares a single device across every δ. Each
//! cell's circuits compile in one parallel batch.

use ssync_arch::{Device, QccdTopology};
use ssync_bench::table::fmt_rate;
use ssync_bench::{fitting_cells, AppKind, BenchScale, Table};
use ssync_core::{CompilerConfig, SSyncCompiler};

fn main() {
    let scale = BenchScale::from_env();
    let sizes: Vec<usize> = match scale {
        BenchScale::Paper => vec![50, 60, 70],
        BenchScale::Small => vec![12, 16],
    };
    let apps = [AppKind::Adder, AppKind::Qft, AppKind::Qaoa];
    let topo = QccdTopology::grid(2, 2, 20);

    // The (app, size) cells that fit, in output order.
    let (cells, circuits) = fitting_cells(
        apps.iter().flat_map(|&app| sizes.iter().map(move |&size| (app, size))),
        &topo,
    );

    // Left panel: weight-ratio sweep — the weights are part of the device
    // artifact, so each ratio builds its own device once.
    let ratios = [100.0, 1_000.0, 10_000.0, 100_000.0];
    let mut per_ratio = Vec::new();
    for &ratio in &ratios {
        let config = CompilerConfig::default().with_weight_ratio(ratio);
        let device = Device::build(topo.clone(), config.weights);
        eprintln!("[fig14] {} circuits at ratio {ratio} (batched)", circuits.len());
        per_ratio.push(SSyncCompiler::new(config).compile_batch(&device, &circuits));
    }
    let mut weight_table = Table::new(["Application", "Size", "r=100", "r=1e3", "r=1e4", "r=1e5"]);
    for (i, &(app, qubits)) in cells.iter().enumerate() {
        let mut row = vec![app.label().to_string(), qubits.to_string()];
        for outcomes in &per_ratio {
            let outcome = outcomes[i].as_ref().expect("compilation succeeds");
            row.push(fmt_rate(outcome.report().success_rate));
        }
        weight_table.push_row(row);
    }

    // Right panel: decay-rate sweep — δ does not touch the device, so one
    // shared artifact serves every configuration.
    let decays = [0.0, 0.01, 0.001, 0.0001];
    let shared = Device::build(topo.clone(), CompilerConfig::default().weights);
    let mut per_decay = Vec::new();
    for &delta in &decays {
        let config = CompilerConfig::default().with_decay(delta);
        eprintln!("[fig14] {} circuits at decay {delta} (batched)", circuits.len());
        per_decay.push(SSyncCompiler::new(config).compile_batch(&shared, &circuits));
    }
    let mut decay_table =
        Table::new(["Application", "Size", "d=0", "d=0.01", "d=0.001", "d=0.0001"]);
    for (i, &(app, qubits)) in cells.iter().enumerate() {
        let mut row = vec![app.label().to_string(), qubits.to_string()];
        for outcomes in &per_decay {
            let outcome = outcomes[i].as_ref().expect("compilation succeeds");
            row.push(fmt_rate(outcome.report().success_rate));
        }
        decay_table.push_row(row);
    }

    println!("Fig. 14 (left) — success rate vs shuttle/inner weight ratio (G-2x2, cap 20)\n");
    println!("{weight_table}");
    println!("Fig. 14 (right) — success rate vs decay rate δ (G-2x2, cap 20)\n");
    println!("{decay_table}");
    println!("Expected shape: performance is largely insensitive to the weight ratio as");
    println!("long as shuttle weight stays proportionally larger than the inner weight;");
    println!("δ has a mild, application-dependent optimum around 1e-3.");
}
