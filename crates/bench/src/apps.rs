//! Application registry: the Table 2 benchmarks plus size-parameterised
//! variants for the application-size sweeps (Figs. 12, 14, 15).

use ssync_arch::QccdTopology;
use ssync_circuit::generators;
use ssync_circuit::Circuit;

/// The benchmark applications used throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Cuccaro ripple-carry adder.
    Adder,
    /// Quantum Fourier Transform.
    Qft,
    /// Bernstein–Vazirani with the all-ones secret.
    Bv,
    /// Nearest-neighbour QAOA (10 rounds).
    Qaoa,
    /// Alternating layered ansatz (10 blocks).
    Alt,
    /// Trotterised Heisenberg chain (one step per qubit).
    Heisenberg,
}

impl AppKind {
    /// Every application, in Table 2 order.
    pub const ALL: [AppKind; 6] = [
        AppKind::Adder,
        AppKind::Qaoa,
        AppKind::Alt,
        AppKind::Bv,
        AppKind::Qft,
        AppKind::Heisenberg,
    ];

    /// Short label used in tables (e.g. `"QFT"`).
    pub fn label(self) -> &'static str {
        match self {
            AppKind::Adder => "Adder",
            AppKind::Qft => "QFT",
            AppKind::Bv => "BV",
            AppKind::Qaoa => "QAOA",
            AppKind::Alt => "ALT",
            AppKind::Heisenberg => "Heisenberg",
        }
    }
}

/// Builds a benchmark instance with (approximately) `qubits` program qubits.
/// The exact register width can differ by one or two qubits for apps with
/// structural constraints (the adder needs an even data width plus carries;
/// BV adds an ancilla).
pub fn scaled_app(kind: AppKind, qubits: usize) -> Circuit {
    match kind {
        AppKind::Adder => {
            let bits = ((qubits.saturating_sub(2)) / 2).max(1);
            generators::cuccaro_adder(bits)
        }
        AppKind::Qft => generators::qft(qubits.max(2)),
        AppKind::Bv => generators::bernstein_vazirani(qubits.saturating_sub(1).max(1)),
        AppKind::Qaoa => generators::qaoa_nearest_neighbor(qubits.max(2), 10),
        AppKind::Alt => generators::alt_ansatz(qubits.max(2), 10),
        AppKind::Heisenberg => {
            let n = qubits.max(2);
            generators::heisenberg_chain(n, n)
        }
    }
}

/// Builds the (application, size) sweep cells that fit on `topology`
/// (the device must hold every qubit plus one free slot), in input order.
/// Returns one `(app, actual_qubits)` entry per kept circuit, aligned
/// with the circuit list — the shape every batch-compiling fig binary
/// feeds to `compile_batch` / `run_compiler_batch`. This is the single
/// home of the fit predicate, so every figure skips exactly the same
/// cells.
pub fn fitting_cells(
    pairs: impl IntoIterator<Item = (AppKind, usize)>,
    topology: &QccdTopology,
) -> (Vec<(AppKind, usize)>, Vec<Circuit>) {
    let mut cells = Vec::new();
    let mut circuits = Vec::new();
    for (app, size) in pairs {
        let circuit = scaled_app(app, size);
        if circuit.num_qubits() + 1 > topology.total_capacity() {
            continue;
        }
        cells.push((app, circuit.num_qubits()));
        circuits.push(circuit);
    }
    (cells, circuits)
}

/// The paper-scale instance of each application (Table 2 sizes).
pub fn table2_app(kind: AppKind) -> Circuit {
    match kind {
        AppKind::Adder => generators::cuccaro_adder(32),
        AppKind::Qft => generators::qft(64),
        AppKind::Bv => generators::bernstein_vazirani(64),
        AppKind::Qaoa => generators::qaoa_nearest_neighbor(64, 10),
        AppKind::Alt => generators::alt_ansatz(64, 10),
        AppKind::Heisenberg => generators::heisenberg_chain(48, 48),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_apps_hit_requested_sizes_approximately() {
        for kind in AppKind::ALL {
            let c = scaled_app(kind, 48);
            let n = c.num_qubits();
            assert!((44..=50).contains(&n), "{kind:?} produced {n} qubits");
            assert!(c.two_qubit_gate_count() > 0);
        }
    }

    #[test]
    fn table2_sizes_match_the_paper() {
        assert_eq!(table2_app(AppKind::Adder).num_qubits(), 66);
        assert_eq!(table2_app(AppKind::Qft).num_qubits(), 64);
        assert_eq!(table2_app(AppKind::Bv).num_qubits(), 65);
        assert_eq!(table2_app(AppKind::Heisenberg).two_qubit_gate_count(), 13_536);
    }

    #[test]
    fn fitting_cells_keeps_only_circuits_with_a_spare_slot() {
        let topo = QccdTopology::linear(2, 9); // 18 slots
        let (cells, circuits) =
            fitting_cells([(AppKind::Qft, 16), (AppKind::Qft, 18), (AppKind::Qft, 12)], &topo);
        // QFT_18 needs 18 + 1 slots and is dropped; order is preserved.
        assert_eq!(cells, vec![(AppKind::Qft, 16), (AppKind::Qft, 12)]);
        assert_eq!(circuits.len(), 2);
        assert_eq!(circuits[0].num_qubits(), 16);
        assert_eq!(circuits[1].num_qubits(), 12);
    }

    #[test]
    fn labels_are_short() {
        for kind in AppKind::ALL {
            assert!(!kind.label().is_empty() && kind.label().len() <= 10);
        }
    }
}
