//! Shared harness plumbing: compiler selection, shared-device batch
//! compilation and benchmark scale.
//!
//! The compiler selector itself is [`ssync_baselines::CompilerKind`] —
//! re-exported here — so the figure binaries, the batch fan-out and the
//! `ssync-service` pool all dispatch through one enum. Figures compare the
//! paper's three compilers ([`CompilerKind::PAPER`]); the service also
//! accepts the plain-greedy ablation ([`CompilerKind::Greedy`]).

pub use ssync_baselines::CompilerKind;

use ssync_arch::{Device, QccdTopology};
use ssync_circuit::Circuit;
use ssync_core::{batch, CompileError, CompileOutcome, CompileScratch, CompilerConfig};
use std::borrow::Borrow;

/// Compiles `circuit` for `topology` with the selected compiler and a
/// shared evaluation configuration, building a throw-away [`Device`].
/// Sweeps should build the device once and use [`run_compiler_on`] or
/// [`run_compiler_batch`] instead.
///
/// # Errors
///
/// Propagates the underlying compiler's [`CompileError`].
pub fn run_compiler(
    kind: CompilerKind,
    circuit: &Circuit,
    topology: &QccdTopology,
    config: &CompilerConfig,
) -> Result<CompileOutcome, CompileError> {
    let device = Device::build(topology.clone(), config.weights);
    run_compiler_on(kind, &device, circuit, config)
}

/// Compiles `circuit` against a prepared, shared `device` with the
/// selected compiler.
///
/// # Errors
///
/// Propagates the underlying compiler's [`CompileError`].
pub fn run_compiler_on(
    kind: CompilerKind,
    device: &Device,
    circuit: &Circuit,
    config: &CompilerConfig,
) -> Result<CompileOutcome, CompileError> {
    kind.compile_on(device, circuit, config)
}

/// Compiles every circuit against one shared `device` with the selected
/// compiler, fanning out over worker threads (`SSYNC_BATCH_WORKERS`
/// environment variable, then `config.batch_workers`, then available
/// parallelism). Results come back in input order and are bit-identical
/// to calling [`run_compiler_on`] per circuit, whatever the worker count.
/// The work-list is generic over [`Borrow<Circuit>`], so `&[Circuit]` and
/// `&[Arc<Circuit>]` both work without cloning circuits.
pub fn run_compiler_batch<C: Borrow<Circuit> + Sync>(
    kind: CompilerKind,
    device: &Device,
    circuits: &[C],
    config: &CompilerConfig,
) -> Vec<Result<CompileOutcome, CompileError>> {
    run_compiler_batch_with_workers(
        kind,
        device,
        circuits,
        config,
        batch::resolve_workers(config.batch_workers),
    )
}

/// [`run_compiler_batch`] with an explicit worker count. Pass `1` when the
/// per-circuit `compile_time` is the quantity under study (e.g. Fig. 15):
/// concurrent workers contend for cores and would inflate the wall-clock
/// readings, while the compiled programs themselves are identical either
/// way. Every worker reuses one [`CompileScratch`] across its share of
/// the batch.
pub fn run_compiler_batch_with_workers<C: Borrow<Circuit> + Sync>(
    kind: CompilerKind,
    device: &Device,
    circuits: &[C],
    config: &CompilerConfig,
    workers: usize,
) -> Vec<Result<CompileOutcome, CompileError>> {
    batch::parallel_map_with(workers, circuits, CompileScratch::default, |scratch, _, c| {
        kind.compile_on_with(device, c.borrow(), config, None, scratch)
    })
}

/// Problem-size scaling of the figure binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// Paper-scale configurations (default).
    Paper,
    /// Reduced sizes for smoke testing / CI.
    Small,
}

impl BenchScale {
    /// Reads the scale from the `SSYNC_BENCH_SCALE` environment variable
    /// (`"small"` selects the reduced configuration).
    pub fn from_env() -> Self {
        match std::env::var("SSYNC_BENCH_SCALE").ok().as_deref() {
            Some("small") | Some("SMALL") => BenchScale::Small,
            _ => BenchScale::Paper,
        }
    }

    /// Scales a qubit count: paper scale passes through, small scale caps
    /// the size at 16 qubits.
    pub fn qubits(self, paper: usize) -> usize {
        match self {
            BenchScale::Paper => paper,
            BenchScale::Small => paper.min(16),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_circuit::generators::qft;
    use std::sync::Arc;

    #[test]
    fn all_four_compilers_run_through_the_harness() {
        let circuit = qft(12);
        let topo = QccdTopology::grid(2, 2, 5);
        let config = CompilerConfig::default();
        for kind in CompilerKind::ALL {
            let outcome = run_compiler(kind, &circuit, &topo, &config).unwrap();
            assert_eq!(outcome.counts().two_qubit_gates, 132, "{kind:?}");
        }
    }

    #[test]
    fn batch_matches_per_circuit_compiles_for_every_compiler() {
        let circuits: Vec<_> = vec![qft(8), qft(10), qft(12)];
        let config = CompilerConfig::default();
        let device = Device::build(QccdTopology::grid(2, 2, 5), config.weights);
        for kind in CompilerKind::ALL {
            let batched = run_compiler_batch(kind, &device, &circuits, &config);
            assert_eq!(batched.len(), circuits.len());
            for (circuit, outcome) in circuits.iter().zip(&batched) {
                let single = run_compiler_on(kind, &device, circuit, &config).unwrap();
                let outcome = outcome.as_ref().unwrap();
                assert_eq!(outcome.program().ops(), single.program().ops(), "{kind:?}");
                assert_eq!(outcome.final_placement(), single.final_placement(), "{kind:?}");
            }
        }
    }

    #[test]
    fn arc_work_lists_batch_without_cloning_circuits() {
        let circuits: Vec<Arc<Circuit>> = vec![Arc::new(qft(8)), Arc::new(qft(10))];
        let config = CompilerConfig::default();
        let device = Device::build(QccdTopology::grid(2, 2, 5), config.weights);
        let batched = run_compiler_batch(CompilerKind::SSync, &device, &circuits, &config);
        for (circuit, outcome) in circuits.iter().zip(&batched) {
            let single = run_compiler_on(CompilerKind::SSync, &device, circuit, &config).unwrap();
            assert_eq!(outcome.as_ref().unwrap().program().ops(), single.program().ops());
        }
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(CompilerKind::SSync.label(), "This Work");
        assert_eq!(CompilerKind::Murali.label(), "Murali et al.");
        assert_eq!(CompilerKind::Dai.label(), "Dai et al.");
        assert_eq!(CompilerKind::Greedy.label(), "Greedy");
    }

    #[test]
    fn small_scale_caps_sizes() {
        assert_eq!(BenchScale::Small.qubits(64), 16);
        assert_eq!(BenchScale::Paper.qubits(64), 64);
        assert_eq!(BenchScale::Small.qubits(12), 12);
    }
}
