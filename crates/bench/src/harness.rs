//! Shared harness plumbing: compiler selection and benchmark scale.

use ssync_arch::QccdTopology;
use ssync_baselines::{DaiCompiler, MuraliCompiler};
use ssync_circuit::Circuit;
use ssync_core::{CompileError, CompileOutcome, CompilerConfig, SSyncCompiler};

/// Which compiler to run for a comparison row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompilerKind {
    /// Murali et al. (ISCA 2020) greedy baseline.
    Murali,
    /// Dai et al. (TQE 2024) parallel-shuttle baseline.
    Dai,
    /// This work (S-SYNC).
    SSync,
}

impl CompilerKind {
    /// The three compilers in the order plotted in Figs. 8–10.
    pub const ALL: [CompilerKind; 3] =
        [CompilerKind::Murali, CompilerKind::Dai, CompilerKind::SSync];

    /// Legend label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            CompilerKind::Murali => "Murali et al.",
            CompilerKind::Dai => "Dai et al.",
            CompilerKind::SSync => "This Work",
        }
    }
}

/// Compiles `circuit` for `topology` with the selected compiler and a
/// shared evaluation configuration.
///
/// # Errors
///
/// Propagates the underlying compiler's [`CompileError`].
pub fn run_compiler(
    kind: CompilerKind,
    circuit: &Circuit,
    topology: &QccdTopology,
    config: &CompilerConfig,
) -> Result<CompileOutcome, CompileError> {
    match kind {
        CompilerKind::Murali => MuraliCompiler::new(*config).compile(circuit, topology),
        CompilerKind::Dai => DaiCompiler::new(*config).compile(circuit, topology),
        CompilerKind::SSync => SSyncCompiler::new(*config).compile(circuit, topology),
    }
}

/// Problem-size scaling of the figure binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// Paper-scale configurations (default).
    Paper,
    /// Reduced sizes for smoke testing / CI.
    Small,
}

impl BenchScale {
    /// Reads the scale from the `SSYNC_BENCH_SCALE` environment variable
    /// (`"small"` selects the reduced configuration).
    pub fn from_env() -> Self {
        match std::env::var("SSYNC_BENCH_SCALE").ok().as_deref() {
            Some("small") | Some("SMALL") => BenchScale::Small,
            _ => BenchScale::Paper,
        }
    }

    /// Scales a qubit count: paper scale passes through, small scale caps
    /// the size at 16 qubits.
    pub fn qubits(self, paper: usize) -> usize {
        match self {
            BenchScale::Paper => paper,
            BenchScale::Small => paper.min(16),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_circuit::generators::qft;

    #[test]
    fn all_three_compilers_run_through_the_harness() {
        let circuit = qft(12);
        let topo = QccdTopology::grid(2, 2, 5);
        let config = CompilerConfig::default();
        for kind in CompilerKind::ALL {
            let outcome = run_compiler(kind, &circuit, &topo, &config).unwrap();
            assert_eq!(outcome.counts().two_qubit_gates, 132, "{kind:?}");
        }
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(CompilerKind::SSync.label(), "This Work");
        assert_eq!(CompilerKind::Murali.label(), "Murali et al.");
        assert_eq!(CompilerKind::Dai.label(), "Dai et al.");
    }

    #[test]
    fn small_scale_caps_sizes() {
        assert_eq!(BenchScale::Small.qubits(64), 16);
        assert_eq!(BenchScale::Paper.qubits(64), 64);
        assert_eq!(BenchScale::Small.qubits(12), 12);
    }
}
