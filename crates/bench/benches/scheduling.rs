//! Criterion micro-benchmarks of the compiler's building blocks: DAG
//! construction, initial mapping, trap routing and the execution tracer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssync_arch::{Device, QccdTopology, TrapRouter, WeightConfig};
use ssync_baselines::CompilerKind;
use ssync_circuit::generators::{qft, random_two_qubit_circuit};
use ssync_circuit::DependencyDag;
use ssync_core::{initial, CompilerConfig, SSyncCompiler, SwapScheduleKind};
use ssync_sim::ExecutionTracer;

fn bench_dag_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_construction");
    for n in [16usize, 32, 64] {
        let circuit = qft(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| DependencyDag::from_circuit(circuit).len())
        });
    }
    group.finish();
}

fn bench_initial_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("initial_mapping");
    let circuit = qft(48);
    let topo = QccdTopology::grid(2, 3, 10);
    let device = Device::build(topo, CompilerConfig::default().weights);
    for mapping in ssync_core::InitialMapping::ALL {
        let config = CompilerConfig::default().with_initial_mapping(mapping);
        group.bench_function(mapping.label(), |b| {
            b.iter(|| initial::build_placement(&circuit, &device, &config).num_placed())
        });
    }
    group.finish();
}

fn bench_tracer(c: &mut Criterion) {
    let mut group = c.benchmark_group("execution_tracer");
    group.sample_size(20);
    let circuit = random_two_qubit_circuit(24, 400, 7);
    let topo = QccdTopology::grid(2, 2, 8);
    let outcome = SSyncCompiler::default().compile(&circuit, &topo).expect("compiles");
    let tracer = ExecutionTracer::default();
    group.bench_function("trace_compiled_program", |b| {
        b.iter(|| tracer.evaluate(outcome.program()).success_rate)
    });
    group.finish();
}

fn bench_perm_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("perm_route");
    // Schedule generation + replay alone, per kind, across chain lengths.
    for schedule in SwapScheduleKind::ALL {
        for n in [16usize, 64, 128] {
            let targets: Vec<usize> = (0..n).rev().collect(); // worst-case reversal
            group.bench_with_input(
                BenchmarkId::new(schedule.label(), n),
                &targets,
                |b, targets| {
                    b.iter(|| {
                        let mut scratch = targets.clone();
                        schedule.permutation_to_swap_schedule(&mut scratch).len()
                    })
                },
            );
        }
    }
    // The full compiler under each schedule kind: the ablation row pair
    // that lands in BENCH_scheduling.json.
    group.sample_size(20);
    let circuit = random_two_qubit_circuit(14, 200, 11);
    let config = CompilerConfig::default();
    let device = Device::build(QccdTopology::grid(2, 2, 8), config.weights);
    for schedule in SwapScheduleKind::ALL {
        let config = config.with_perm_schedule(schedule);
        group.bench_function(format!("compile/{}", schedule.label()), |b| {
            b.iter(|| {
                CompilerKind::PermRoute
                    .compile_on(&device, &circuit, &config)
                    .expect("compiles")
                    .counts()
                    .swap_gates
            })
        });
    }
    group.finish();
}

fn bench_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("trap_router");
    for name in ["L-6", "G-3x3", "S-4"] {
        let topo = QccdTopology::named(name).expect("known topology");
        group.bench_function(name, |b| {
            b.iter(|| TrapRouter::new(&topo, WeightConfig::default()).is_connected())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dag_construction,
    bench_initial_mapping,
    bench_tracer,
    bench_perm_route,
    bench_router
);
criterion_main!(benches);
