//! Criterion benchmark behind Fig. 15: compilation time of S-SYNC and the
//! two baselines as the application grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssync_arch::QccdTopology;
use ssync_bench::{run_compiler, scaled_app, AppKind, CompilerKind};
use ssync_core::CompilerConfig;

fn bench_compile_time(c: &mut Criterion) {
    let topo = QccdTopology::grid(2, 2, 10);
    let config = CompilerConfig::default();
    let mut group = c.benchmark_group("compile_time_qft");
    group.sample_size(10);
    for qubits in [12usize, 20, 28] {
        let circuit = scaled_app(AppKind::Qft, qubits);
        for compiler in CompilerKind::ALL {
            group.bench_with_input(
                BenchmarkId::new(compiler.label(), qubits),
                &circuit,
                |b, circuit| {
                    b.iter(|| {
                        run_compiler(compiler, circuit, &topo, &config)
                            .expect("compilation succeeds")
                            .counts()
                            .shuttles
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_compile_apps(c: &mut Criterion) {
    let topo = QccdTopology::grid(2, 2, 10);
    let config = CompilerConfig::default();
    let mut group = c.benchmark_group("compile_time_apps");
    group.sample_size(10);
    for app in [AppKind::Adder, AppKind::Qaoa, AppKind::Alt, AppKind::Bv] {
        let circuit = scaled_app(app, 24);
        group.bench_function(BenchmarkId::new("ssync", app.label()), |b| {
            b.iter(|| {
                run_compiler(CompilerKind::SSync, &circuit, &topo, &config)
                    .expect("compilation succeeds")
                    .counts()
                    .shuttles
            })
        });
    }
    group.finish();
}

/// The hot-path speedup measurement: the optimized scheduler
/// ([`ssync_core::Scheduler::run`]) against the straightforward reference
/// transcription of Algorithm 1 (`run_reference`), scheduler-only (no
/// tracing / report overhead), on the largest circuits of the suite. Both
/// produce bit-identical programs; only the wall clock differs.
fn bench_scheduler_hot_path(c: &mut Criterion) {
    use ssync_arch::{SlotGraph, TrapRouter};
    use ssync_core::{initial, Scheduler};

    let topo = QccdTopology::grid(2, 2, 10);
    let config = CompilerConfig::default();
    let graph = SlotGraph::new(topo.clone(), config.weights);
    let router = TrapRouter::new(&topo, config.weights);
    let mut group = c.benchmark_group("scheduler_hot_path");
    group.sample_size(10);
    for (label, circuit) in [
        ("qft/28", scaled_app(AppKind::Qft, 28)),
        ("qaoa/24", scaled_app(AppKind::Qaoa, 24)),
        ("adder/24", scaled_app(AppKind::Adder, 24)),
    ] {
        let placement = initial::build_placement(&circuit, &graph, &config);
        group.bench_with_input(BenchmarkId::new("optimized", label), &circuit, |b, circuit| {
            b.iter(|| {
                let mut scheduler = Scheduler::new(&graph, &router, &config);
                scheduler.run(circuit, placement.clone()).expect("schedules").0.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", label), &circuit, |b, circuit| {
            b.iter(|| {
                let mut scheduler = Scheduler::new(&graph, &router, &config);
                scheduler.run_reference(circuit, placement.clone()).expect("schedules").0.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile_time, bench_compile_apps, bench_scheduler_hot_path);
criterion_main!(benches);
