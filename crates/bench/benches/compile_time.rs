//! Criterion benchmark behind Fig. 15: compilation time of S-SYNC and the
//! two baselines as the application grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssync_arch::QccdTopology;
use ssync_bench::{run_compiler, scaled_app, AppKind, CompilerKind};
use ssync_core::CompilerConfig;

fn bench_compile_time(c: &mut Criterion) {
    let topo = QccdTopology::grid(2, 2, 10);
    let config = CompilerConfig::default();
    let mut group = c.benchmark_group("compile_time_qft");
    group.sample_size(10);
    for qubits in [12usize, 20, 28] {
        let circuit = scaled_app(AppKind::Qft, qubits);
        for compiler in CompilerKind::ALL {
            group.bench_with_input(
                BenchmarkId::new(compiler.label(), qubits),
                &circuit,
                |b, circuit| {
                    b.iter(|| {
                        run_compiler(compiler, circuit, &topo, &config)
                            .expect("compilation succeeds")
                            .counts()
                            .shuttles
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_compile_apps(c: &mut Criterion) {
    let topo = QccdTopology::grid(2, 2, 10);
    let config = CompilerConfig::default();
    let mut group = c.benchmark_group("compile_time_apps");
    group.sample_size(10);
    for app in [AppKind::Adder, AppKind::Qaoa, AppKind::Alt, AppKind::Bv] {
        let circuit = scaled_app(app, 24);
        group.bench_function(BenchmarkId::new("ssync", app.label()), |b| {
            b.iter(|| {
                run_compiler(CompilerKind::SSync, &circuit, &topo, &config)
                    .expect("compilation succeeds")
                    .counts()
                    .shuttles
            })
        });
    }
    group.finish();
}

/// The hot-path speedup measurement: the optimized scheduler
/// ([`ssync_core::Scheduler::run`]) against the straightforward reference
/// transcription of Algorithm 1 (`run_reference`), scheduler-only (no
/// tracing / report overhead), on the largest circuits of the suite. Both
/// produce bit-identical programs; only the wall clock differs.
fn bench_scheduler_hot_path(c: &mut Criterion) {
    use ssync_arch::Device;
    use ssync_core::{initial, Scheduler};

    let config = CompilerConfig::default();
    let device = Device::build(QccdTopology::grid(2, 2, 10), config.weights);
    let mut group = c.benchmark_group("scheduler_hot_path");
    group.sample_size(10);
    for (label, circuit) in [
        ("qft/28", scaled_app(AppKind::Qft, 28)),
        ("qaoa/24", scaled_app(AppKind::Qaoa, 24)),
        ("adder/24", scaled_app(AppKind::Adder, 24)),
    ] {
        let placement = initial::build_placement(&circuit, &device, &config);
        group.bench_with_input(BenchmarkId::new("optimized", label), &circuit, |b, circuit| {
            b.iter(|| {
                let mut scheduler = Scheduler::new(&device, &config);
                scheduler.run(circuit, placement.clone()).expect("schedules").0.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", label), &circuit, |b, circuit| {
            b.iter(|| {
                let mut scheduler = Scheduler::new(&device, &config);
                scheduler.run_reference(circuit, placement.clone()).expect("schedules").0.len()
            })
        });
    }
    group.finish();
}

/// Batch throughput over one shared device: the same circuit set compiled
/// three ways — rebuilding the device artifact per compile like the
/// pre-`Device` code did ("rebuild_device"), through one shared device a
/// worker at a time ("sequential") and with the full worker pool
/// ("parallel"), the latter two via the identical
/// `compile_batch_with_workers` code path.
/// circuits/sec = circuit count ÷ (mean_ns × 1e-9). The circuit count is
/// part of the benchmark name so the JSON stays self-describing.
fn bench_batch_throughput(c: &mut Criterion) {
    use ssync_arch::Device;
    use ssync_core::SSyncCompiler;

    let config = CompilerConfig::default();
    let topo = QccdTopology::grid(2, 3, 10);
    let device = Device::build(topo.clone(), config.weights);
    let compiler = SSyncCompiler::new(config);
    // A fig11-style cell: every application of the suite against one
    // fixed device, at smoke-test sizes.
    let circuits: Vec<_> = [
        (AppKind::Qft, 16usize),
        (AppKind::Bv, 16),
        (AppKind::Adder, 16),
        (AppKind::Qaoa, 16),
        (AppKind::Alt, 16),
        (AppKind::Heisenberg, 16),
        (AppKind::Qft, 24),
        (AppKind::Qaoa, 24),
    ]
    .into_iter()
    .map(|(app, n)| scaled_app(app, n))
    .collect();
    let workers = std::thread::available_parallelism().map_or(1, usize::from);

    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(10);
    let n = circuits.len();
    group.bench_function(BenchmarkId::new("rebuild_device", format!("{n}circ")), |b| {
        b.iter(|| circuits.iter().filter(|c| compiler.compile(c, &topo).is_ok()).count())
    });
    group.bench_function(BenchmarkId::new("sequential", format!("{n}circ")), |b| {
        b.iter(|| {
            compiler
                .compile_batch_with_workers(&device, &circuits, 1)
                .into_iter()
                .filter(|r| r.is_ok())
                .count()
        })
    });
    group.bench_function(BenchmarkId::new("parallel", format!("{n}circ/{workers}workers")), |b| {
        b.iter(|| {
            compiler
                .compile_batch_with_workers(&device, &circuits, workers)
                .into_iter()
                .filter(|r| r.is_ok())
                .count()
        })
    });
    group.finish();
}

/// Cost of building the shared [`ssync_arch::Device`] artifact itself —
/// the fixed price a sweep pays once per (topology, weights) cell instead
/// of once per compile.
fn bench_device_build(c: &mut Criterion) {
    use ssync_arch::Device;

    let config = CompilerConfig::default();
    let mut group = c.benchmark_group("device_build");
    group.sample_size(10);
    for name in ["G-2x3", "G-3x3", "S-6", "L-6"] {
        group.bench_function(name, |b| {
            b.iter(|| {
                // Touch the lazy distance matrix so the full artifact cost
                // (graph + router + all-pairs distances + edge index) is
                // what this benchmark reports.
                Device::named(name, config.weights)
                    .expect("known topology")
                    .distance_matrix()
                    .num_slots()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compile_time,
    bench_compile_apps,
    bench_scheduler_hot_path,
    bench_batch_throughput,
    bench_device_build
);
criterion_main!(benches);
