//! Criterion benchmark behind Fig. 15: compilation time of S-SYNC and the
//! two baselines as the application grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssync_arch::QccdTopology;
use ssync_bench::{run_compiler, scaled_app, AppKind, CompilerKind};
use ssync_core::CompilerConfig;

fn bench_compile_time(c: &mut Criterion) {
    let topo = QccdTopology::grid(2, 2, 10);
    let config = CompilerConfig::default();
    let mut group = c.benchmark_group("compile_time_qft");
    group.sample_size(10);
    for qubits in [12usize, 20, 28] {
        let circuit = scaled_app(AppKind::Qft, qubits);
        for compiler in CompilerKind::PAPER {
            group.bench_with_input(
                BenchmarkId::new(compiler.label(), qubits),
                &circuit,
                |b, circuit| {
                    b.iter(|| {
                        run_compiler(compiler, circuit, &topo, &config)
                            .expect("compilation succeeds")
                            .counts()
                            .shuttles
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_compile_apps(c: &mut Criterion) {
    let topo = QccdTopology::grid(2, 2, 10);
    let config = CompilerConfig::default();
    let mut group = c.benchmark_group("compile_time_apps");
    group.sample_size(10);
    for app in [AppKind::Adder, AppKind::Qaoa, AppKind::Alt, AppKind::Bv] {
        let circuit = scaled_app(app, 24);
        group.bench_function(BenchmarkId::new("ssync", app.label()), |b| {
            b.iter(|| {
                run_compiler(CompilerKind::SSync, &circuit, &topo, &config)
                    .expect("compilation succeeds")
                    .counts()
                    .shuttles
            })
        });
    }
    group.finish();
}

/// The hot-path speedup measurement: the optimized scheduler
/// ([`ssync_core::Scheduler::run`]) against the straightforward reference
/// transcription of Algorithm 1 (`run_reference`), scheduler-only (no
/// tracing / report overhead), on the largest circuits of the suite. Both
/// produce bit-identical programs; only the wall clock differs.
fn bench_scheduler_hot_path(c: &mut Criterion) {
    use ssync_arch::Device;
    use ssync_core::{initial, Scheduler};

    let config = CompilerConfig::default();
    let device = Device::build(QccdTopology::grid(2, 2, 10), config.weights);
    let mut group = c.benchmark_group("scheduler_hot_path");
    group.sample_size(10);
    for (label, circuit) in [
        ("qft/28", scaled_app(AppKind::Qft, 28)),
        ("qaoa/24", scaled_app(AppKind::Qaoa, 24)),
        ("adder/24", scaled_app(AppKind::Adder, 24)),
    ] {
        let placement = initial::build_placement(&circuit, &device, &config);
        group.bench_with_input(BenchmarkId::new("optimized", label), &circuit, |b, circuit| {
            b.iter(|| {
                let mut scheduler = Scheduler::new(&device, &config);
                scheduler.run(circuit, placement.clone()).expect("schedules").0.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", label), &circuit, |b, circuit| {
            b.iter(|| {
                let mut scheduler = Scheduler::new(&device, &config);
                scheduler.run_reference(circuit, placement.clone()).expect("schedules").0.len()
            })
        });
    }
    group.finish();
}

/// Single-compile latency of the intra-compile parallel scorer: the
/// scheduler alone (no tracing / report overhead) on the two largest QFT
/// circuits at 1, 2, 4 and 8 scoring threads. Every thread count emits a
/// bit-identical program (asserted against the serial op count each
/// sample), so only the latency distribution — read `median_ns` as p50
/// and `p99_ns` as the tail — may move. On a single-vCPU host (CI) the
/// crew cannot beat serial; expect parity-to-overhead there and a real
/// reduction only on multi-core machines.
fn bench_intra_compile(c: &mut Criterion) {
    use ssync_arch::Device;
    use ssync_core::{initial, Scheduler};

    let base = CompilerConfig::default();
    let device = Device::build(QccdTopology::grid(2, 2, 10), base.weights);
    let mut group = c.benchmark_group("intra_compile");
    group.sample_size(10);
    for (label, circuit) in
        [("qft/24", scaled_app(AppKind::Qft, 24)), ("qft/28", scaled_app(AppKind::Qft, 28))]
    {
        let placement = initial::build_placement(&circuit, &device, &base);
        let serial_config = base.with_scoring_threads(1);
        let serial_ops = {
            let mut scheduler = Scheduler::new(&device, &serial_config);
            scheduler.run(&circuit, placement.clone()).expect("schedules").0.len()
        };
        for threads in [1usize, 2, 4, 8] {
            let config = base.with_scoring_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("threads{threads}"), label),
                &circuit,
                |b, circuit| {
                    b.iter(|| {
                        let mut scheduler = Scheduler::new(&device, &config);
                        let ops =
                            scheduler.run(circuit, placement.clone()).expect("schedules").0.len();
                        assert_eq!(ops, serial_ops, "thread count changed the program");
                        ops
                    })
                },
            );
        }
    }
    group.finish();
}

/// Batch throughput over one shared device: the same circuit set compiled
/// three ways — rebuilding the device artifact per compile like the
/// pre-`Device` code did ("rebuild_device"), through one shared device a
/// worker at a time ("sequential") and with the full worker pool
/// ("parallel"), the latter two via the identical
/// `compile_batch_with_workers` code path.
/// circuits/sec = circuit count ÷ (mean_ns × 1e-9). The circuit count is
/// part of the benchmark name so the JSON stays self-describing.
fn bench_batch_throughput(c: &mut Criterion) {
    use ssync_arch::Device;
    use ssync_core::SSyncCompiler;

    let config = CompilerConfig::default();
    let topo = QccdTopology::grid(2, 3, 10);
    let device = Device::build(topo.clone(), config.weights);
    let compiler = SSyncCompiler::new(config);
    // A fig11-style cell: every application of the suite against one
    // fixed device, at smoke-test sizes.
    let circuits: Vec<_> = [
        (AppKind::Qft, 16usize),
        (AppKind::Bv, 16),
        (AppKind::Adder, 16),
        (AppKind::Qaoa, 16),
        (AppKind::Alt, 16),
        (AppKind::Heisenberg, 16),
        (AppKind::Qft, 24),
        (AppKind::Qaoa, 24),
    ]
    .into_iter()
    .map(|(app, n)| scaled_app(app, n))
    .collect();
    let workers = std::thread::available_parallelism().map_or(1, usize::from);

    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(10);
    let n = circuits.len();
    group.bench_function(BenchmarkId::new("rebuild_device", format!("{n}circ")), |b| {
        b.iter(|| circuits.iter().filter(|c| compiler.compile(c, &topo).is_ok()).count())
    });
    group.bench_function(BenchmarkId::new("sequential", format!("{n}circ")), |b| {
        b.iter(|| {
            compiler
                .compile_batch_with_workers(&device, &circuits, 1)
                .into_iter()
                .filter(|r| r.is_ok())
                .count()
        })
    });
    group.bench_function(BenchmarkId::new("parallel", format!("{n}circ/{workers}workers")), |b| {
        b.iter(|| {
            compiler
                .compile_batch_with_workers(&device, &circuits, workers)
                .into_iter()
                .filter(|r| r.is_ok())
                .count()
        })
    });
    group.finish();
}

/// Cost of building the shared [`ssync_arch::Device`] artifact itself —
/// the fixed price a sweep pays once per (topology, weights) cell instead
/// of once per compile.
fn bench_device_build(c: &mut Criterion) {
    use ssync_arch::Device;

    let config = CompilerConfig::default();
    let mut group = c.benchmark_group("device_build");
    group.sample_size(10);
    for name in ["G-2x3", "G-3x3", "S-6", "L-6"] {
        group.bench_function(name, |b| {
            b.iter(|| {
                // Touch the lazy distance matrix so the full artifact cost
                // (graph + router + all-pairs distances + edge index) is
                // what this benchmark reports.
                Device::named(name, config.weights)
                    .expect("known topology")
                    .distance_matrix()
                    .num_slots()
            })
        });
    }
    group.finish();
}

/// Service throughput over the multi-device product: the same
/// (device × circuit × compiler) job set run three ways — a direct
/// sequential `compile_on` loop ("direct"), a fresh [`CompileService`]
/// per iteration including worker spawn/join ("service"), and resubmission
/// against a persistent, already-primed service where every job is a
/// result-cache hit ("cache_hit"). Job count is part of the benchmark name
/// so the JSON stays self-describing; jobs/sec = jobs ÷ (mean_ns × 1e-9).
fn bench_service_throughput(c: &mut Criterion) {
    use ssync_service::{CompileRequest, CompileService};
    use std::sync::Arc;

    let config = CompilerConfig::default();
    let topologies =
        [("G-2x2", QccdTopology::grid(2, 2, 10)), ("L-3", QccdTopology::linear(3, 10))];
    let circuits: Vec<Arc<_>> =
        [(AppKind::Qft, 16usize), (AppKind::Bv, 16), (AppKind::Adder, 16), (AppKind::Qaoa, 16)]
            .into_iter()
            .map(|(app, n)| Arc::new(scaled_app(app, n)))
            .collect();
    let kinds = CompilerKind::ALL;
    let jobs = topologies.len() * circuits.len() * kinds.len();
    let workers = std::thread::available_parallelism().map_or(1, usize::from);

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("direct", format!("{jobs}jobs")), |b| {
        use ssync_arch::Device;
        let devices: Vec<Device> =
            topologies.iter().map(|(_, t)| Device::build(t.clone(), config.weights)).collect();
        b.iter(|| {
            let mut ok = 0usize;
            for device in &devices {
                for circuit in &circuits {
                    for kind in kinds {
                        ok += usize::from(
                            ssync_bench::run_compiler_on(kind, device, circuit, &config).is_ok(),
                        );
                    }
                }
            }
            ok
        })
    });

    group.bench_function(
        BenchmarkId::new("service", format!("{jobs}jobs/{workers}workers")),
        |b| {
            b.iter(|| {
                // Fresh service per iteration: the measurement includes
                // registry build, worker spawn and join, so it is the
                // honest cold-start cost — no cache carry-over between
                // iterations.
                let service = CompileService::with_workers(workers);
                let devices: Vec<_> = topologies
                    .iter()
                    .map(|(name, t)| {
                        service.registry().get_or_build(name, config.weights, || t.clone())
                    })
                    .collect();
                let handles = service.submit_batch(devices.iter().flat_map(|device| {
                    circuits.iter().flat_map(|circuit| {
                        kinds.map(|kind| {
                            CompileRequest::new(
                                Arc::clone(device),
                                Arc::clone(circuit),
                                kind,
                                config,
                            )
                        })
                    })
                }));
                handles.iter().filter(|h| h.wait().is_ok()).count()
            })
        },
    );

    // Persistent service, primed once: every iteration's jobs are all
    // result-cache hits — the steady-state cost of a repeated sweep.
    let service = CompileService::with_workers(workers);
    let devices: Vec<_> = topologies
        .iter()
        .map(|(name, t)| service.registry().get_or_build(name, config.weights, || t.clone()))
        .collect();
    let submit_all = || {
        service.submit_batch(devices.iter().flat_map(|device| {
            circuits.iter().flat_map(|circuit| {
                kinds.map(|kind| {
                    CompileRequest::new(Arc::clone(device), Arc::clone(circuit), kind, config)
                })
            })
        }))
    };
    for handle in submit_all() {
        handle.wait().expect("priming compiles");
    }
    group.bench_function(BenchmarkId::new("cache_hit", format!("{jobs}jobs")), |b| {
        b.iter(|| submit_all().iter().filter(|h| h.wait().is_ok()).count())
    });
    let stats = service.cache().stats();
    assert!(stats.hits > 0, "cache-hit bench must exercise the hit path");
    group.finish();
}

/// Result-cache behaviour under capacity pressure: one fixed working set
/// of (circuit, config) jobs replayed against caches bounded at 25%, 50%
/// and 100% of the working-set size. The access pattern mixes a hot
/// quarter of the keys (re-touched between every cold key) with a cold
/// sweep, so the segmented-LRU policy has something to protect:
///
/// * `cap100pct` — everything fits; steady state is all hits.
/// * `cap50pct` — the hot keys stay protected, the cold sweep churns.
/// * `cap25pct` — even the hot set barely fits; most accesses recompile.
///
/// The measured steady-state hit rate is embedded in the benchmark name
/// (`…/hitNN`, in percent) so the JSON records rate and wall-clock
/// together; wall-clock per sweep is dominated by the eviction-induced
/// recompiles.
fn bench_cache_eviction(c: &mut Criterion) {
    use ssync_arch::Device;
    use ssync_core::{CacheBounds, SSyncCompiler};
    use ssync_service::hash::{config_hash, device_fingerprint};
    use ssync_service::{CacheKey, ResultCache};
    use std::sync::Arc;

    let base = CompilerConfig::default();
    let device = Device::build(QccdTopology::grid(2, 2, 8), base.weights);
    let fingerprint = device_fingerprint(&device);
    let circuit = scaled_app(AppKind::Qft, 12);
    let circuit_hash = circuit.content_hash();

    // Twelve distinct output-affecting configs = twelve cache keys.
    let configs: Vec<CompilerConfig> =
        (0..12).map(|i| base.with_decay(0.001 + 0.0005 * i as f64)).collect();
    let jobs: Vec<(CacheKey, CompilerConfig)> = configs
        .iter()
        .map(|config| {
            let key = CacheKey {
                device_fingerprint: fingerprint,
                circuit_hash,
                config_hash: config_hash(config),
                compiler: CompilerKind::SSync,
            };
            (key, *config)
        })
        .collect();
    // Hot/cold access pattern: cold keys 3..12 in order, a hot key
    // (0..3, round-robin) re-touched after each.
    let accesses: Vec<usize> = (3..jobs.len()).flat_map(|cold| [cold, cold % 3]).collect();

    let sweep = |cache: &ResultCache| -> usize {
        let mut compiled = 0usize;
        for &i in &accesses {
            let (key, config) = &jobs[i];
            if cache.get(key).is_none() {
                let outcome =
                    SSyncCompiler::new(*config).compile_on(&device, &circuit).expect("compiles");
                cache.insert(*key, Arc::new(outcome));
                compiled += 1;
            }
        }
        compiled
    };

    let mut group = c.benchmark_group("cache_eviction");
    group.sample_size(10);
    for (label, capacity) in
        [("cap25pct", jobs.len() / 4), ("cap50pct", jobs.len() / 2), ("cap100pct", jobs.len())]
    {
        let cache = ResultCache::bounded(CacheBounds::with_max_entries(capacity));
        sweep(&cache); // warm to steady state
        let before = cache.stats();
        sweep(&cache);
        let after = cache.stats();
        let lookups = (after.hits + after.misses) - (before.hits + before.misses);
        let hit_pct = (100 * (after.hits - before.hits)) / lookups.max(1);
        group.bench_function(BenchmarkId::new(label, format!("hit{hit_pct}")), |b| {
            b.iter(|| sweep(&cache))
        });
    }
    group.finish();
}

/// Cost of request tracing on the compile service. `tracing_on` is the
/// default configuration (spans, stage histograms and the trace journal
/// all live); `tracing_off` flips the service-wide telemetry switch
/// before any submission. Both modes run the identical mixed workload
/// through a fresh two-worker service per iteration, and before anything
/// is timed one run of each mode is compared outcome-by-outcome: tracing
/// must not change a single compiled op, placement, or scheduler stat.
/// The two groups land side by side in `BENCH_scheduling.json`, so the
/// recorded overhead bound is `tracing_on / tracing_off`.
fn bench_telemetry_overhead(c: &mut Criterion) {
    use ssync_service::{CompileRequest, CompileService};
    use std::sync::Arc;

    let config = CompilerConfig::default();
    let topology = QccdTopology::grid(2, 2, 8);
    let circuits: Vec<Arc<_>> = [(AppKind::Qft, 12usize), (AppKind::Bv, 12), (AppKind::Adder, 12)]
        .into_iter()
        .map(|(app, n)| Arc::new(scaled_app(app, n)))
        .collect();
    let jobs = circuits.len() * CompilerKind::ALL.len();

    let run = |tracing: bool| {
        let service = CompileService::with_workers(2);
        service.telemetry().set_enabled(tracing);
        let device = service.registry().get_or_build("tight", config.weights, || topology.clone());
        let handles = service.submit_batch(circuits.iter().flat_map(|circuit| {
            CompilerKind::ALL.map(|kind| {
                CompileRequest::new(Arc::clone(&device), Arc::clone(circuit), kind, config)
            })
        }));
        handles.iter().map(|h| h.wait().expect("compiles")).collect::<Vec<_>>()
    };

    // Bit-identical gate, outside the timed region: tracing is pure
    // observation and must never leak into compilation results.
    let on = run(true);
    let off = run(false);
    assert_eq!(on.len(), off.len());
    for (a, b) in on.iter().zip(off.iter()) {
        assert_eq!(a.program().ops(), b.program().ops(), "tracing changed compiled ops");
        assert_eq!(a.final_placement(), b.final_placement(), "tracing changed placement");
        assert_eq!(a.scheduler_stats(), b.scheduler_stats(), "tracing changed scheduler stats");
    }
    drop((on, off));

    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    for (label, tracing) in [("tracing_on", true), ("tracing_off", false)] {
        group.bench_function(BenchmarkId::new(label, format!("{jobs}jobs")), |b| {
            b.iter(|| run(tracing).len())
        });
    }
    group.finish();
}

/// Cost of the compile flight recorder: QFT-24 through every compiler
/// with `CompilerConfig::flight_recorder` on versus off. Before anything
/// is timed, one run of each mode is compared outcome-by-outcome for
/// **every** [`CompilerKind`]: the recorder observes without steering, so
/// a single differing op, placement entry or scheduler stat is a bug, not
/// a regression. The two groups land side by side in
/// `BENCH_scheduling.json`; the recorded overhead bound is
/// `recorder_on / recorder_off`.
fn bench_flight_recorder(c: &mut Criterion) {
    let topo = QccdTopology::grid(2, 2, 10);
    let base = CompilerConfig::default();
    let circuit = scaled_app(AppKind::Qft, 24);

    // Bit-identity gate, outside the timed region.
    for kind in CompilerKind::ALL {
        let plain = run_compiler(kind, &circuit, &topo, &base).expect("compiles");
        let recorded = run_compiler(kind, &circuit, &topo, &base.with_flight_recorder(true))
            .expect("compiles");
        assert_eq!(
            plain.program().ops(),
            recorded.program().ops(),
            "{kind:?}: recording changed compiled ops"
        );
        assert_eq!(
            plain.final_placement(),
            recorded.final_placement(),
            "{kind:?}: recording changed placement"
        );
        assert_eq!(
            plain.scheduler_stats(),
            recorded.scheduler_stats(),
            "{kind:?}: recording changed scheduler stats"
        );
        assert!(plain.flight_recording().is_none(), "{kind:?}: off means off");
        if matches!(kind, CompilerKind::SSync | CompilerKind::PermRoute) {
            let recording = recorded.flight_recording().expect("instrumented compiler records");
            assert!(!recording.events.is_empty(), "{kind:?}: recording captured events");
        }
    }

    let mut group = c.benchmark_group("flight_recorder");
    group.sample_size(10);
    for (label, config) in
        [("recorder_off", base), ("recorder_on", base.with_flight_recorder(true))]
    {
        group.bench_function(BenchmarkId::new(label, "qft/24"), |b| {
            b.iter(|| {
                CompilerKind::ALL
                    .into_iter()
                    .map(|kind| {
                        run_compiler(kind, &circuit, &topo, &config)
                            .expect("compiles")
                            .counts()
                            .shuttles
                    })
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compile_time,
    bench_compile_apps,
    bench_scheduler_hot_path,
    bench_intra_compile,
    bench_batch_throughput,
    bench_device_build,
    bench_service_throughput,
    bench_cache_eviction,
    bench_telemetry_overhead,
    bench_flight_recorder
);
criterion_main!(benches);
