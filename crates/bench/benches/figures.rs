//! Criterion smoke benchmarks of the end-to-end figure pipelines at reduced
//! problem sizes (one representative cell per figure family).

use criterion::{criterion_group, criterion_main, Criterion};
use ssync_arch::QccdTopology;
use ssync_bench::{run_compiler, scaled_app, AppKind, CompilerKind};
use ssync_core::{CompilerConfig, IdealizationMode, InitialMapping, SSyncCompiler};
use ssync_sim::{ExecutionTracer, GateImplementation};

fn bench_comparison_cell(c: &mut Criterion) {
    // One Fig. 8/9/10 cell: QFT_16 on G-2x2 under all three compilers.
    let circuit = scaled_app(AppKind::Qft, 16);
    let topo = QccdTopology::grid(2, 2, 6);
    let config = CompilerConfig::default();
    let mut group = c.benchmark_group("figure_comparison_cell");
    group.sample_size(10);
    for compiler in CompilerKind::PAPER {
        group.bench_function(compiler.label(), |b| {
            b.iter(|| {
                let outcome = run_compiler(compiler, &circuit, &topo, &config).unwrap();
                (outcome.counts().shuttles, outcome.counts().swap_gates)
            })
        });
    }
    group.finish();
}

fn bench_mapping_cell(c: &mut Criterion) {
    // One Fig. 12 cell: Adder at a reduced size under the three mappings.
    let circuit = scaled_app(AppKind::Adder, 20);
    let topo = QccdTopology::grid(2, 3, 6);
    let mut group = c.benchmark_group("figure_mapping_cell");
    group.sample_size(10);
    for mapping in InitialMapping::ALL {
        let config = CompilerConfig::default().with_initial_mapping(mapping);
        group.bench_function(mapping.label(), |b| {
            b.iter(|| {
                SSyncCompiler::new(config).compile(&circuit, &topo).unwrap().counts().shuttles
            })
        });
    }
    group.finish();
}

fn bench_gate_impl_and_idealization(c: &mut Criterion) {
    // Fig. 13 / Fig. 16 evaluation stages reuse one compiled program.
    let circuit = scaled_app(AppKind::Qaoa, 16);
    let topo = QccdTopology::grid(2, 2, 6);
    let compiler = SSyncCompiler::default();
    let outcome = compiler.compile(&circuit, &topo).unwrap();
    let mut group = c.benchmark_group("figure_reevaluation");
    group.bench_function("four_gate_implementations", |b| {
        b.iter(|| {
            GateImplementation::ALL
                .iter()
                .map(|&g| {
                    ExecutionTracer { gate_impl: g, ..compiler.tracer() }
                        .evaluate(outcome.program())
                        .success_rate
                })
                .sum::<f64>()
        })
    });
    group.bench_function("four_idealization_modes", |b| {
        let tracer = compiler.tracer();
        b.iter(|| {
            IdealizationMode::ALL
                .iter()
                .map(|&m| outcome.evaluate_with(&tracer, m).success_rate)
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_comparison_cell,
    bench_mapping_cell,
    bench_gate_impl_and_idealization
);
criterion_main!(benches);
