//! The hardware-compatible operation stream produced by a QCCD compiler.

use serde::{Deserialize, Serialize};
use ssync_arch::TrapId;
use ssync_circuit::Qubit;
use std::fmt;

/// One scheduled hardware operation.
///
/// Each variant carries the chain-shape information captured at emission
/// time (chain length, ion separation, junction count) so the timing and
/// fidelity models can be evaluated without replaying the placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScheduledOp {
    /// A single-qubit gate (always executable; never routed).
    SingleQubitGate {
        /// The program qubit.
        qubit: Qubit,
    },
    /// An entangling two-qubit gate executed inside one trap.
    TwoQubitGate {
        /// First program qubit.
        a: Qubit,
        /// Second program qubit.
        b: Qubit,
        /// Trap in which the gate executes.
        trap: TrapId,
        /// Number of ions in the trap's chain at execution time.
        chain_len: usize,
        /// Chain-position distance between the two ions (adjacent = 1).
        ion_distance: usize,
    },
    /// A SWAP gate inserted by the compiler (three entangling gates).
    SwapGate {
        /// First program qubit.
        a: Qubit,
        /// Second program qubit.
        b: Qubit,
        /// Trap in which the SWAP executes.
        trap: TrapId,
        /// Number of ions in the trap's chain at execution time.
        chain_len: usize,
        /// Chain-position distance between the two ions (adjacent = 1).
        ion_distance: usize,
    },
    /// A physical intra-trap reorder: shifting a space node towards a chain
    /// end by `steps` positions (no gate is applied; only transport).
    IonReorder {
        /// Trap in which the reorder happens.
        trap: TrapId,
        /// Number of single-position shifts performed.
        steps: usize,
    },
    /// A shuttle: split at the source trap edge, transport (possibly through
    /// junctions) and merge into the destination trap edge.
    Shuttle {
        /// The transported program qubit.
        qubit: Qubit,
        /// Source trap.
        from_trap: TrapId,
        /// Destination trap.
        to_trap: TrapId,
        /// Junctions crossed on the way.
        junctions: u32,
        /// Linear transport segments traversed.
        segments: usize,
        /// Source-chain ion count *before* the split.
        source_chain_len: usize,
        /// Destination-chain ion count *after* the merge.
        dest_chain_len: usize,
    },
}

impl ScheduledOp {
    /// `true` for operations that apply an entangling interaction (two-qubit
    /// gates and SWAPs).
    pub fn is_entangling(&self) -> bool {
        matches!(self, ScheduledOp::TwoQubitGate { .. } | ScheduledOp::SwapGate { .. })
    }
}

impl fmt::Display for ScheduledOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduledOp::SingleQubitGate { qubit } => write!(f, "1q {qubit}"),
            ScheduledOp::TwoQubitGate { a, b, trap, .. } => write!(f, "2q {a},{b} @ {trap}"),
            ScheduledOp::SwapGate { a, b, trap, .. } => write!(f, "swap {a},{b} @ {trap}"),
            ScheduledOp::IonReorder { trap, steps } => write!(f, "reorder {steps} @ {trap}"),
            ScheduledOp::Shuttle { qubit, from_trap, to_trap, junctions, .. } => {
                write!(f, "shuttle {qubit} {from_trap}->{to_trap} ({junctions} junctions)")
            }
        }
    }
}

/// Operation counts of a compiled program — the quantities plotted in
/// Figs. 8 and 9 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OpCounts {
    /// Single-qubit gates.
    pub single_qubit_gates: usize,
    /// Entangling two-qubit gates from the original program.
    pub two_qubit_gates: usize,
    /// SWAP gates inserted by the compiler.
    pub swap_gates: usize,
    /// Shuttle operations inserted by the compiler.
    pub shuttles: usize,
    /// Intra-trap reorder operations inserted by the compiler.
    pub reorders: usize,
}

impl OpCounts {
    /// Total entangling gates executed on hardware (program gates plus
    /// three per SWAP).
    pub fn total_entangling(&self) -> usize {
        self.two_qubit_gates + 3 * self.swap_gates
    }
}

/// A compiled, hardware-compatible program: the full operation stream plus
/// the register/device dimensions needed to interpret it.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CompiledProgram {
    num_qubits: usize,
    num_traps: usize,
    ops: Vec<ScheduledOp>,
}

impl CompiledProgram {
    /// Creates an empty program for `num_qubits` program qubits on a device
    /// with `num_traps` traps.
    pub fn new(num_qubits: usize, num_traps: usize) -> Self {
        CompiledProgram { num_qubits, num_traps, ops: Vec::new() }
    }

    /// Number of program qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of traps of the target device.
    pub fn num_traps(&self) -> usize {
        self.num_traps
    }

    /// Appends an operation.
    pub fn push(&mut self, op: ScheduledOp) {
        self.ops.push(op);
    }

    /// The operation stream, in execution order.
    pub fn ops(&self) -> &[ScheduledOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the program contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Aggregated operation counts (Figs. 8–9 quantities).
    pub fn counts(&self) -> OpCounts {
        let mut c = OpCounts::default();
        for op in &self.ops {
            match op {
                ScheduledOp::SingleQubitGate { .. } => c.single_qubit_gates += 1,
                ScheduledOp::TwoQubitGate { .. } => c.two_qubit_gates += 1,
                ScheduledOp::SwapGate { .. } => c.swap_gates += 1,
                ScheduledOp::Shuttle { .. } => c.shuttles += 1,
                ScheduledOp::IonReorder { .. } => c.reorders += 1,
            }
        }
        c
    }

    /// Number of shuttles (convenience accessor).
    pub fn shuttle_count(&self) -> usize {
        self.counts().shuttles
    }

    /// Number of inserted SWAP gates (convenience accessor).
    pub fn swap_count(&self) -> usize {
        self.counts().swap_gates
    }
}

impl Extend<ScheduledOp> for CompiledProgram {
    fn extend<T: IntoIterator<Item = ScheduledOp>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CompiledProgram {
        let mut p = CompiledProgram::new(4, 2);
        p.push(ScheduledOp::SingleQubitGate { qubit: Qubit(0) });
        p.push(ScheduledOp::TwoQubitGate {
            a: Qubit(0),
            b: Qubit(1),
            trap: TrapId(0),
            chain_len: 3,
            ion_distance: 1,
        });
        p.push(ScheduledOp::SwapGate {
            a: Qubit(1),
            b: Qubit(2),
            trap: TrapId(0),
            chain_len: 3,
            ion_distance: 1,
        });
        p.push(ScheduledOp::Shuttle {
            qubit: Qubit(1),
            from_trap: TrapId(0),
            to_trap: TrapId(1),
            junctions: 1,
            segments: 1,
            source_chain_len: 3,
            dest_chain_len: 2,
        });
        p.push(ScheduledOp::IonReorder { trap: TrapId(1), steps: 2 });
        p
    }

    #[test]
    fn counts_classify_every_variant() {
        let c = sample().counts();
        assert_eq!(c.single_qubit_gates, 1);
        assert_eq!(c.two_qubit_gates, 1);
        assert_eq!(c.swap_gates, 1);
        assert_eq!(c.shuttles, 1);
        assert_eq!(c.reorders, 1);
        assert_eq!(c.total_entangling(), 4);
    }

    #[test]
    fn convenience_accessors() {
        let p = sample();
        assert_eq!(p.shuttle_count(), 1);
        assert_eq!(p.swap_count(), 1);
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert_eq!(p.num_qubits(), 4);
        assert_eq!(p.num_traps(), 2);
    }

    #[test]
    fn entangling_classification() {
        let p = sample();
        let entangling = p.ops().iter().filter(|o| o.is_entangling()).count();
        assert_eq!(entangling, 2);
    }

    #[test]
    fn display_is_compact() {
        let p = sample();
        let rendered: Vec<String> = p.ops().iter().map(|o| o.to_string()).collect();
        assert!(rendered[1].contains("2q"));
        assert!(rendered[3].contains("shuttle"));
    }

    #[test]
    fn extend_appends_ops() {
        let mut p = CompiledProgram::new(2, 1);
        p.extend([ScheduledOp::SingleQubitGate { qubit: Qubit(0) }]);
        assert_eq!(p.len(), 1);
    }
}
