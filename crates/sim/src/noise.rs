//! The motional-heating fidelity model of Eq. (4).

use serde::{Deserialize, Serialize};

/// Fidelity model for trapped-ion operations (Sec. 4.1):
///
/// `F = 1 − Γτ − A(2n̄ + 1)`
///
/// where `Γ` is the background heating rate, `τ` the operation time, `n̄`
/// the accumulated motional quanta of the chain and `A ∝ N / ln N` a
/// thermal scaling factor in the chain length `N`. Splitting/merging a
/// chain adds `k₁` quanta and each shuttled segment adds `k₂` quanta
/// (defaults `k₁ = 0.1`, `k₂ = 0.01`, `Γ = 1`, matching Sec. 4.2 and the
/// Murali et al. configuration the paper reuses).
///
/// The proportionality constant of `A` is not given in the paper; it is
/// exposed as [`NoiseModel::thermal_scale`] and calibrated so the reported
/// success-rate ranges are reproduced in order of magnitude (see
/// EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Background heating rate Γ, in quanta per second.
    pub heating_rate_gamma: f64,
    /// Motional quanta added by a split + merge pair (k₁).
    pub k1_split_merge: f64,
    /// Motional quanta added per shuttled segment (k₂).
    pub k2_shuttle_segment: f64,
    /// Proportionality constant of the thermal scaling factor
    /// `A = thermal_scale · N / ln N`.
    pub thermal_scale: f64,
    /// Fidelity of a single-qubit gate (99.9999 % in the paper).
    pub single_qubit_fidelity: f64,
    /// Fraction of a chain's motional quanta removed after each two-qubit
    /// gate by sympathetic re-cooling (0 = no cooling, 1 = perfect reset).
    pub recooling_factor: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            heating_rate_gamma: 1.0,
            k1_split_merge: 0.1,
            k2_shuttle_segment: 0.01,
            thermal_scale: 2.0e-5,
            single_qubit_fidelity: 0.999_999,
            recooling_factor: 0.0,
        }
    }
}

impl NoiseModel {
    /// The thermal scaling factor `A = thermal_scale · N / ln N` for a
    /// chain of `chain_len` ions.
    pub fn thermal_factor_a(&self, chain_len: usize) -> f64 {
        let n = chain_len.max(2) as f64;
        self.thermal_scale * n / n.ln()
    }

    /// Fidelity of a two-qubit gate of duration `tau_us` (µs) executed in a
    /// chain of `chain_len` ions carrying `n_bar` motional quanta, per
    /// Eq. (4). Clamped to `[0, 1]`.
    pub fn two_qubit_fidelity(&self, tau_us: f64, chain_len: usize, n_bar: f64) -> f64 {
        let tau_s = tau_us * 1e-6;
        let f = 1.0
            - self.heating_rate_gamma * tau_s
            - self.thermal_factor_a(chain_len) * (2.0 * n_bar + 1.0);
        f.clamp(0.0, 1.0)
    }

    /// Motional quanta added to the chains involved in one shuttle crossing
    /// `junctions` junctions: the split/merge contribution `k₁` plus `k₂`
    /// per traversed segment (junction crossings count as extra segments).
    pub fn shuttle_heating(&self, junctions: u32) -> f64 {
        self.k1_split_merge + self.k2_shuttle_segment * f64::from(junctions + 1)
    }

    /// Background heating accumulated over `tau_us` microseconds.
    pub fn background_heating(&self, tau_us: f64) -> f64 {
        self.heating_rate_gamma * tau_us * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let m = NoiseModel::default();
        assert_eq!(m.heating_rate_gamma, 1.0);
        assert_eq!(m.k1_split_merge, 0.1);
        assert_eq!(m.k2_shuttle_segment, 0.01);
        assert_eq!(m.single_qubit_fidelity, 0.999_999);
    }

    #[test]
    fn fidelity_decreases_with_time_heat_and_chain_length() {
        let m = NoiseModel::default();
        let base = m.two_qubit_fidelity(100.0, 10, 0.0);
        assert!(base > 0.99 && base < 1.0);
        assert!(m.two_qubit_fidelity(500.0, 10, 0.0) < base);
        assert!(m.two_qubit_fidelity(100.0, 10, 5.0) < base);
        assert!(m.two_qubit_fidelity(100.0, 30, 0.0) < base);
    }

    #[test]
    fn fidelity_is_clamped() {
        let m = NoiseModel { thermal_scale: 10.0, ..NoiseModel::default() };
        assert_eq!(m.two_qubit_fidelity(100.0, 20, 100.0), 0.0);
        let perfect = NoiseModel { heating_rate_gamma: 0.0, thermal_scale: 0.0, ..m };
        assert_eq!(perfect.two_qubit_fidelity(1e9, 20, 100.0), 1.0);
    }

    #[test]
    fn thermal_factor_grows_superlinearly_over_log() {
        let m = NoiseModel::default();
        assert!(m.thermal_factor_a(20) > m.thermal_factor_a(10));
        // N / ln N is increasing for N >= 3.
        assert!(m.thermal_factor_a(50) > m.thermal_factor_a(20));
    }

    #[test]
    fn shuttle_heating_accounts_for_junctions() {
        let m = NoiseModel::default();
        assert!((m.shuttle_heating(0) - 0.11).abs() < 1e-12);
        assert!(m.shuttle_heating(2) > m.shuttle_heating(0));
    }

    #[test]
    fn background_heating_converts_microseconds() {
        let m = NoiseModel::default();
        assert!((m.background_heating(1_000_000.0) - 1.0).abs() < 1e-12);
    }
}
