//! # ssync-sim
//!
//! Timing and fidelity substrate for QCCD devices, replacing the paper's
//! Python noise simulator:
//!
//! * [`GateImplementation`] — the FM / PM / AM1 / AM2 two-qubit gate
//!   duration models of Sec. 4.1,
//! * [`OperationTimes`] — Table 1's split / move / merge / junction times,
//! * [`NoiseModel`] — the motional-heating fidelity model of Eq. (4),
//!   `F = 1 − Γτ − A(2n̄ + 1)` with `A ∝ N / ln N`,
//! * [`ScheduledOp`] / [`CompiledProgram`] — the hardware-compatible
//!   operation stream a QCCD compiler produces,
//! * [`ExecutionTracer`] — walks a compiled program, tracking per-trap
//!   chain lengths, motional quanta and timelines, and reports the total
//!   execution time and end-to-end success rate.
//!
//! ```
//! use ssync_sim::{GateImplementation, NoiseModel, OperationTimes};
//!
//! // FM gate duration grows with the chain length (Sec. 4.1).
//! let fm = GateImplementation::Fm;
//! assert_eq!(fm.two_qubit_duration_us(4, 1), 100.0);      // floor of 100 us
//! assert!(fm.two_qubit_duration_us(20, 1) > 200.0);
//!
//! // Table 1 operation times.
//! let t = OperationTimes::default();
//! assert_eq!(t.junction_crossing_us(2), 80.0);
//!
//! let noise = NoiseModel::default();
//! assert!(noise.two_qubit_fidelity(100.0, 10, 0.0) > 0.99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gate_impl;
mod noise;
mod op_times;
mod ops;
mod tracer;

pub use gate_impl::GateImplementation;
pub use noise::NoiseModel;
pub use op_times::OperationTimes;
pub use ops::{CompiledProgram, OpCounts, ScheduledOp};
pub use tracer::{ExecutionReport, ExecutionTracer};
