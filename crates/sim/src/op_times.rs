//! Shuttling-operation execution times (Table 1 of the paper).

use serde::{Deserialize, Serialize};

/// Execution times of the QCCD transport primitives, in microseconds
/// (Table 1, sourced from Blakestad et al. and Gutiérrez et al.):
///
/// | Operation | Time |
/// |---|---|
/// | Move (per segment) | 5 µs |
/// | Split | 80 µs |
/// | Merge | 80 µs |
/// | Cross n-path junction | 40 + 20·n µs |
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperationTimes {
    /// Linear transport time across one segment, in µs.
    pub move_us: f64,
    /// Time to split an ion off a chain edge, in µs.
    pub split_us: f64,
    /// Time to merge an ion into a chain edge, in µs.
    pub merge_us: f64,
    /// Fixed cost of steering through a junction, in µs.
    pub junction_base_us: f64,
    /// Per-path cost of steering through a junction, in µs.
    pub junction_per_path_us: f64,
    /// Time of a physical intra-trap ion reorder step (shifting a space
    /// node by one position towards a chain end), in µs. Modelled as one
    /// segment move.
    pub reorder_us: f64,
}

impl Default for OperationTimes {
    fn default() -> Self {
        OperationTimes {
            move_us: 5.0,
            split_us: 80.0,
            merge_us: 80.0,
            junction_base_us: 40.0,
            junction_per_path_us: 20.0,
            reorder_us: 5.0,
        }
    }
}

impl OperationTimes {
    /// Time to steer through a junction with `n` connected paths.
    pub fn junction_crossing_us(&self, n_paths: u32) -> f64 {
        self.junction_base_us + self.junction_per_path_us * f64::from(n_paths)
    }

    /// Total time of a shuttle: split + per-segment moves + junction
    /// crossings + merge. `segments` is the number of linear transport
    /// segments traversed and `junction_paths` lists the path count of each
    /// junction crossed.
    pub fn shuttle_us(&self, segments: usize, junction_paths: &[u32]) -> f64 {
        self.split_us
            + self.move_us * segments as f64
            + junction_paths.iter().map(|&n| self.junction_crossing_us(n)).sum::<f64>()
            + self.merge_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let t = OperationTimes::default();
        assert_eq!(t.move_us, 5.0);
        assert_eq!(t.split_us, 80.0);
        assert_eq!(t.merge_us, 80.0);
        assert_eq!(t.junction_crossing_us(1), 60.0);
        assert_eq!(t.junction_crossing_us(3), 100.0);
    }

    #[test]
    fn shuttle_time_composes_primitives() {
        let t = OperationTimes::default();
        // split + 2 moves + one 3-path junction + merge
        let expected = 80.0 + 10.0 + (40.0 + 60.0) + 80.0;
        assert_eq!(t.shuttle_us(2, &[3]), expected);
        // Junction-free shuttle.
        assert_eq!(t.shuttle_us(1, &[]), 165.0);
    }

    #[test]
    fn more_junctions_cost_more() {
        let t = OperationTimes::default();
        assert!(t.shuttle_us(1, &[2, 2]) > t.shuttle_us(1, &[2]));
    }
}
