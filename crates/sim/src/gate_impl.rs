//! Two-qubit gate duration models (Sec. 4.1 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The laser-pulse modulation technique used to implement two-qubit gates,
/// with the duration models quoted in Sec. 4.1:
///
/// * FM (frequency modulation): `τ = max(13.33 N − 54, 100)` µs, where `N`
///   is the number of ions in the chain,
/// * PM (phase modulation): `τ = 5 d + 160` µs, where `d` is the number of
///   ions *between* the two ions being entangled,
/// * AM1 (amplitude modulation, Wu et al.): `τ = 100 d − 22` µs,
/// * AM2 (amplitude modulation, Trout et al.): `τ = 38 d + 10` µs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum GateImplementation {
    /// Frequency-modulated gate; duration scales with total chain length.
    #[default]
    Fm,
    /// Phase-modulated gate; duration scales with ion separation.
    Pm,
    /// Amplitude-modulated gate (variant 1); duration scales with separation.
    Am1,
    /// Amplitude-modulated gate (variant 2); duration scales with separation.
    Am2,
}

impl GateImplementation {
    /// All four implementations, in the order used by Fig. 13.
    pub const ALL: [GateImplementation; 4] = [
        GateImplementation::Fm,
        GateImplementation::Am1,
        GateImplementation::Am2,
        GateImplementation::Pm,
    ];

    /// Duration in microseconds of a two-qubit gate executed in a chain of
    /// `chain_len` ions with `ion_distance` chain positions between the two
    /// ions (so adjacent ions have `ion_distance == 1`, and `d`, the number
    /// of ions strictly between them, is `ion_distance - 1`).
    pub fn two_qubit_duration_us(self, chain_len: usize, ion_distance: usize) -> f64 {
        let n = chain_len.max(2) as f64;
        let d = ion_distance.saturating_sub(1) as f64;
        match self {
            GateImplementation::Fm => (13.33 * n - 54.0).max(100.0),
            GateImplementation::Pm => 5.0 * d + 160.0,
            GateImplementation::Am1 => (100.0 * d - 22.0).max(10.0),
            GateImplementation::Am2 => 38.0 * d + 10.0,
        }
    }

    /// Duration in microseconds of a single-qubit gate. Single-qubit gates
    /// on trapped ions are fast and essentially independent of the chain;
    /// a constant 5 µs is used.
    pub fn single_qubit_duration_us(self) -> f64 {
        5.0
    }

    /// Duration of a SWAP gate, synthesised from three entangling gates.
    pub fn swap_duration_us(self, chain_len: usize, ion_distance: usize) -> f64 {
        3.0 * self.two_qubit_duration_us(chain_len, ion_distance)
    }

    /// Short label used in reports ("FM", "PM", "AM1", "AM2").
    pub fn label(self) -> &'static str {
        match self {
            GateImplementation::Fm => "FM",
            GateImplementation::Pm => "PM",
            GateImplementation::Am1 => "AM1",
            GateImplementation::Am2 => "AM2",
        }
    }
}

impl fmt::Display for GateImplementation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fm_duration_has_floor_and_grows_with_chain() {
        let fm = GateImplementation::Fm;
        assert_eq!(fm.two_qubit_duration_us(2, 1), 100.0);
        assert_eq!(fm.two_qubit_duration_us(12, 1), 13.33 * 12.0 - 54.0);
        assert!(fm.two_qubit_duration_us(20, 1) > fm.two_qubit_duration_us(12, 1));
        // FM does not depend on ion separation.
        assert_eq!(fm.two_qubit_duration_us(15, 1), fm.two_qubit_duration_us(15, 10));
    }

    #[test]
    fn pm_duration_matches_formula() {
        let pm = GateImplementation::Pm;
        assert_eq!(pm.two_qubit_duration_us(10, 1), 160.0); // d = 0
        assert_eq!(pm.two_qubit_duration_us(10, 5), 5.0 * 4.0 + 160.0);
    }

    #[test]
    fn am_durations_match_formulas() {
        assert_eq!(GateImplementation::Am1.two_qubit_duration_us(10, 3), 100.0 * 2.0 - 22.0);
        assert_eq!(GateImplementation::Am2.two_qubit_duration_us(10, 3), 38.0 * 2.0 + 10.0);
        // AM1 at d = 0 is clamped to a small positive duration.
        assert!(GateImplementation::Am1.two_qubit_duration_us(10, 1) > 0.0);
    }

    #[test]
    fn am_gates_beat_fm_for_adjacent_ions_in_long_chains() {
        // The Fig. 13 observation: short-range apps prefer AM2.
        let long_chain = 17;
        let am2 = GateImplementation::Am2.two_qubit_duration_us(long_chain, 1);
        let fm = GateImplementation::Fm.two_qubit_duration_us(long_chain, 1);
        assert!(am2 < fm);
    }

    #[test]
    fn swap_is_three_gates() {
        let g = GateImplementation::Fm;
        assert_eq!(g.swap_duration_us(10, 1), 3.0 * g.two_qubit_duration_us(10, 1));
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(GateImplementation::Fm.to_string(), "FM");
        assert_eq!(GateImplementation::ALL.len(), 4);
        assert_eq!(GateImplementation::default(), GateImplementation::Fm);
    }
}
