//! Execution tracer: walks a compiled program and evaluates the timing and
//! fidelity models to produce the execution time and success rate reported
//! in the paper's figures.

use crate::gate_impl::GateImplementation;
use crate::noise::NoiseModel;
use crate::op_times::OperationTimes;
use crate::ops::{CompiledProgram, OpCounts, ScheduledOp};
use serde::{Deserialize, Serialize};

/// The outcome of tracing a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Estimated makespan in microseconds (per-trap timelines; operations
    /// spanning two traps synchronise both).
    pub total_time_us: f64,
    /// End-to-end success rate: the product of every gate fidelity.
    pub success_rate: f64,
    /// Time spent in entangling gates (µs, summed over traps).
    pub gate_time_us: f64,
    /// Time spent in transport (shuttles and reorders, µs, summed).
    pub transport_time_us: f64,
    /// Operation counts of the traced program.
    pub counts: OpCounts,
    /// The largest motional occupation reached by any chain.
    pub max_motional_quanta: f64,
}

impl ExecutionReport {
    /// `log10` of the success rate (`-inf` if the success rate is zero),
    /// convenient for the log-scale plots of Figs. 10–12.
    pub fn log10_success(&self) -> f64 {
        self.success_rate.log10()
    }
}

/// Walks a [`CompiledProgram`], tracking per-trap chain heat and timelines.
///
/// ```
/// use ssync_sim::{CompiledProgram, ExecutionTracer, ScheduledOp};
/// use ssync_arch::TrapId;
/// use ssync_circuit::Qubit;
///
/// let mut p = CompiledProgram::new(2, 1);
/// p.push(ScheduledOp::TwoQubitGate {
///     a: Qubit(0), b: Qubit(1), trap: TrapId(0), chain_len: 2, ion_distance: 1,
/// });
/// let report = ExecutionTracer::default().evaluate(&p);
/// assert!(report.success_rate > 0.99);
/// assert!(report.total_time_us >= 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ExecutionTracer {
    /// The two-qubit gate implementation (FM by default).
    pub gate_impl: GateImplementation,
    /// Transport-primitive execution times.
    pub op_times: OperationTimes,
    /// The fidelity model.
    pub noise: NoiseModel,
}

impl ExecutionTracer {
    /// Creates a tracer with an explicit gate implementation and default
    /// operation times / noise model.
    pub fn with_gate_impl(gate_impl: GateImplementation) -> Self {
        ExecutionTracer { gate_impl, ..ExecutionTracer::default() }
    }

    /// Traces `program` and reports execution time and success rate.
    pub fn evaluate(&self, program: &CompiledProgram) -> ExecutionReport {
        let num_traps = program.num_traps().max(1);
        let mut trap_clock = vec![0.0f64; num_traps];
        let mut trap_nbar = vec![0.0f64; num_traps];
        let mut success = 1.0f64;
        let mut gate_time = 0.0f64;
        let mut transport_time = 0.0f64;
        let mut max_nbar = 0.0f64;

        for op in program.ops() {
            match *op {
                ScheduledOp::SingleQubitGate { .. } => {
                    // Single-qubit gates are fast, parallel and near-perfect:
                    // they contribute fidelity but negligible serial time.
                    success *= self.noise.single_qubit_fidelity;
                }
                ScheduledOp::TwoQubitGate { trap, chain_len, ion_distance, .. } => {
                    let tau = self.gate_impl.two_qubit_duration_us(chain_len, ion_distance);
                    let f = self.noise.two_qubit_fidelity(tau, chain_len, trap_nbar[trap.index()]);
                    success *= f;
                    trap_clock[trap.index()] += tau;
                    gate_time += tau;
                    self.recool(&mut trap_nbar[trap.index()]);
                }
                ScheduledOp::SwapGate { trap, chain_len, ion_distance, .. } => {
                    // A SWAP is three entangling gates.
                    let tau = self.gate_impl.two_qubit_duration_us(chain_len, ion_distance);
                    for _ in 0..3 {
                        let f =
                            self.noise.two_qubit_fidelity(tau, chain_len, trap_nbar[trap.index()]);
                        success *= f;
                    }
                    trap_clock[trap.index()] += 3.0 * tau;
                    gate_time += 3.0 * tau;
                    self.recool(&mut trap_nbar[trap.index()]);
                }
                ScheduledOp::IonReorder { trap, steps } => {
                    let tau = self.op_times.reorder_us * steps as f64;
                    trap_clock[trap.index()] += tau;
                    transport_time += tau;
                }
                ScheduledOp::Shuttle { from_trap, to_trap, junctions, segments, .. } => {
                    let junction_paths: Vec<u32> = (0..junctions).map(|_| 3).collect();
                    let tau = self.op_times.shuttle_us(segments, &junction_paths);
                    let start = trap_clock[from_trap.index()].max(trap_clock[to_trap.index()]);
                    let end = start + tau;
                    trap_clock[from_trap.index()] = end;
                    trap_clock[to_trap.index()] = end;
                    transport_time += tau;
                    // Splitting heats the source chain; merging plus the
                    // transport itself heat the destination chain.
                    trap_nbar[from_trap.index()] += self.noise.k1_split_merge / 2.0;
                    trap_nbar[to_trap.index()] += self.noise.k1_split_merge / 2.0
                        + self.noise.k2_shuttle_segment * f64::from(junctions + 1);
                }
            }
            for &n in &trap_nbar {
                if n > max_nbar {
                    max_nbar = n;
                }
            }
        }

        let total_time_us = trap_clock.iter().copied().fold(0.0f64, f64::max);
        ExecutionReport {
            total_time_us,
            success_rate: success.clamp(0.0, 1.0),
            gate_time_us: gate_time,
            transport_time_us: transport_time,
            counts: program.counts(),
            max_motional_quanta: max_nbar,
        }
    }

    fn recool(&self, nbar: &mut f64) {
        if self.noise.recooling_factor > 0.0 {
            *nbar *= 1.0 - self.noise.recooling_factor.clamp(0.0, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_arch::TrapId;
    use ssync_circuit::Qubit;

    fn gate(trap: u32, chain_len: usize) -> ScheduledOp {
        ScheduledOp::TwoQubitGate {
            a: Qubit(0),
            b: Qubit(1),
            trap: TrapId(trap),
            chain_len,
            ion_distance: 1,
        }
    }

    fn shuttle(from: u32, to: u32, junctions: u32) -> ScheduledOp {
        ScheduledOp::Shuttle {
            qubit: Qubit(0),
            from_trap: TrapId(from),
            to_trap: TrapId(to),
            junctions,
            segments: 1,
            source_chain_len: 3,
            dest_chain_len: 3,
        }
    }

    #[test]
    fn empty_program_is_instant_and_perfect() {
        let r = ExecutionTracer::default().evaluate(&CompiledProgram::new(2, 2));
        assert_eq!(r.total_time_us, 0.0);
        assert_eq!(r.success_rate, 1.0);
    }

    #[test]
    fn two_qubit_gate_time_and_fidelity() {
        let mut p = CompiledProgram::new(2, 1);
        p.push(gate(0, 2));
        let r = ExecutionTracer::default().evaluate(&p);
        assert_eq!(r.total_time_us, 100.0); // FM floor
        assert!(r.success_rate > 0.99 && r.success_rate < 1.0);
        assert_eq!(r.gate_time_us, 100.0);
        assert_eq!(r.transport_time_us, 0.0);
    }

    #[test]
    fn shuttles_heat_chains_and_lower_later_fidelity() {
        let tracer = ExecutionTracer::default();
        let mut clean = CompiledProgram::new(2, 2);
        clean.push(gate(1, 3));
        let clean_sr = tracer.evaluate(&clean).success_rate;

        let mut heated = CompiledProgram::new(2, 2);
        for _ in 0..20 {
            heated.push(shuttle(0, 1, 1));
        }
        heated.push(gate(1, 3));
        let heated_report = tracer.evaluate(&heated);
        assert!(heated_report.success_rate < clean_sr);
        assert!(heated_report.max_motional_quanta > 0.0);
        assert!(heated_report.transport_time_us > 0.0);
    }

    #[test]
    fn swap_costs_three_gates() {
        let tracer = ExecutionTracer::default();
        let mut with_swap = CompiledProgram::new(2, 1);
        with_swap.push(ScheduledOp::SwapGate {
            a: Qubit(0),
            b: Qubit(1),
            trap: TrapId(0),
            chain_len: 2,
            ion_distance: 1,
        });
        let r = tracer.evaluate(&with_swap);
        assert_eq!(r.total_time_us, 300.0);
        let mut single = CompiledProgram::new(2, 1);
        single.push(gate(0, 2));
        assert!(r.success_rate < tracer.evaluate(&single).success_rate);
    }

    #[test]
    fn parallel_traps_overlap_in_time() {
        let tracer = ExecutionTracer::default();
        let mut parallel = CompiledProgram::new(4, 2);
        parallel.push(gate(0, 2));
        parallel.push(gate(1, 2));
        let r = tracer.evaluate(&parallel);
        // Two gates on different traps proceed concurrently.
        assert_eq!(r.total_time_us, 100.0);
        let mut serial = CompiledProgram::new(4, 1);
        serial.push(gate(0, 2));
        serial.push(gate(0, 2));
        assert_eq!(tracer.evaluate(&serial).total_time_us, 200.0);
    }

    #[test]
    fn shuttle_synchronises_both_traps() {
        let tracer = ExecutionTracer::default();
        let mut p = CompiledProgram::new(2, 2);
        p.push(gate(0, 2)); // trap 0 busy until 100
        p.push(shuttle(0, 1, 0)); // starts at 100
        let r = tracer.evaluate(&p);
        let shuttle_time = OperationTimes::default().shuttle_us(1, &[]);
        assert!((r.total_time_us - (100.0 + shuttle_time)).abs() < 1e-9);
    }

    #[test]
    fn longer_chains_slow_down_fm_gates() {
        let tracer = ExecutionTracer::default();
        let mut short = CompiledProgram::new(2, 1);
        short.push(gate(0, 5));
        let mut long = CompiledProgram::new(2, 1);
        long.push(gate(0, 20));
        assert!(tracer.evaluate(&long).total_time_us > tracer.evaluate(&short).total_time_us);
    }

    #[test]
    fn single_qubit_gates_affect_only_fidelity() {
        let tracer = ExecutionTracer::default();
        let mut p = CompiledProgram::new(1, 1);
        for _ in 0..1000 {
            p.push(ScheduledOp::SingleQubitGate { qubit: Qubit(0) });
        }
        let r = tracer.evaluate(&p);
        assert_eq!(r.total_time_us, 0.0);
        assert!(r.success_rate < 1.0 && r.success_rate > 0.999);
    }

    #[test]
    fn log10_success_matches() {
        let mut p = CompiledProgram::new(2, 1);
        p.push(gate(0, 2));
        let r = ExecutionTracer::default().evaluate(&p);
        assert!((r.log10_success() - r.success_rate.log10()).abs() < 1e-12);
    }

    #[test]
    fn recooling_improves_success() {
        let mut p = CompiledProgram::new(2, 2);
        for _ in 0..10 {
            p.push(shuttle(0, 1, 1));
            p.push(gate(1, 5));
        }
        let hot = ExecutionTracer::default().evaluate(&p).success_rate;
        let mut cooled_tracer = ExecutionTracer::default();
        cooled_tracer.noise.recooling_factor = 0.9;
        let cooled = cooled_tracer.evaluate(&p).success_rate;
        assert!(cooled > hot);
    }
}
