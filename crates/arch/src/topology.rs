//! QCCD device topologies: traps connected by shuttle paths and junctions.

use crate::error::ArchError;
use crate::ids::{SlotId, TrapId};
use crate::trap::Trap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The device family of a topology, following Fig. 7 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// L-series: traps in a line (Quantinuum "H2"-like).
    Linear,
    /// G-series: traps on a rows × columns grid ("SOL"/"APOLLO"-like).
    Grid {
        /// Number of grid rows.
        rows: usize,
        /// Number of grid columns.
        cols: usize,
    },
    /// S-series: every pair of traps connected through a central switchyard
    /// junction ("HELIOS"-like racetrack abstraction).
    FullyConnected,
}

/// Which chain end of a trap a shuttle path attaches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The low-position end of the chain.
    Left,
    /// The high-position end of the chain.
    Right,
}

/// A shuttle connection between two traps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
struct TrapEdge {
    a: TrapId,
    b: TrapId,
    junctions: u32,
}

/// A QCCD device: a set of traps plus the shuttle paths between them.
///
/// Use the named constructors ([`QccdTopology::linear`],
/// [`QccdTopology::grid`], [`QccdTopology::fully_connected`]) or the
/// fallible [`QccdTopology::try_linear`]-style variants when the
/// parameters come from user input.
///
/// ```
/// use ssync_arch::QccdTopology;
/// let l4 = QccdTopology::linear(4, 22);
/// assert_eq!(l4.name(), "L-4");
/// assert_eq!(l4.total_capacity(), 88);
/// let g = QccdTopology::grid(3, 3, 12);
/// assert_eq!(g.num_traps(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QccdTopology {
    name: String,
    kind: TopologyKind,
    traps: Vec<Trap>,
    edges: Vec<TrapEdge>,
}

impl QccdTopology {
    fn build(
        name: String,
        kind: TopologyKind,
        capacities: &[usize],
        edges: Vec<TrapEdge>,
    ) -> Result<Self, ArchError> {
        if capacities.is_empty() {
            return Err(ArchError::EmptyTopology);
        }
        if let Some(&c) = capacities.iter().find(|&&c| c < 2) {
            return Err(ArchError::CapacityTooSmall { requested: c });
        }
        let mut traps = Vec::with_capacity(capacities.len());
        let mut next_slot = 0u32;
        for (i, &cap) in capacities.iter().enumerate() {
            traps.push(Trap::new(TrapId(i as u32), SlotId(next_slot), cap));
            next_slot += cap as u32;
        }
        Ok(QccdTopology { name, kind, traps, edges })
    }

    /// Builds an L-series device: `num_traps` traps in a line, no junctions
    /// on the shuttle paths.
    ///
    /// # Panics
    ///
    /// Panics if `num_traps == 0` or `capacity < 2`.
    pub fn linear(num_traps: usize, capacity: usize) -> Self {
        Self::try_linear(num_traps, capacity).expect("invalid linear topology parameters")
    }

    /// Fallible variant of [`QccdTopology::linear`].
    ///
    /// # Errors
    ///
    /// Returns an error if `num_traps == 0` or `capacity < 2`.
    pub fn try_linear(num_traps: usize, capacity: usize) -> Result<Self, ArchError> {
        let edges = (0..num_traps.saturating_sub(1))
            .map(|i| TrapEdge { a: TrapId(i as u32), b: TrapId(i as u32 + 1), junctions: 0 })
            .collect();
        Self::build(
            format!("L-{num_traps}"),
            TopologyKind::Linear,
            &vec![capacity; num_traps],
            edges,
        )
    }

    /// Builds a G-series device: traps on a `rows × cols` grid; every grid
    /// link passes through one junction.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols == 0` or `capacity < 2`.
    pub fn grid(rows: usize, cols: usize, capacity: usize) -> Self {
        Self::try_grid(rows, cols, capacity).expect("invalid grid topology parameters")
    }

    /// Fallible variant of [`QccdTopology::grid`].
    ///
    /// # Errors
    ///
    /// Returns an error if the grid is empty or `capacity < 2`.
    pub fn try_grid(rows: usize, cols: usize, capacity: usize) -> Result<Self, ArchError> {
        let id = |r: usize, c: usize| TrapId((r * cols + c) as u32);
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push(TrapEdge { a: id(r, c), b: id(r, c + 1), junctions: 1 });
                }
                if r + 1 < rows {
                    edges.push(TrapEdge { a: id(r, c), b: id(r + 1, c), junctions: 1 });
                }
            }
        }
        Self::build(
            format!("G-{rows}x{cols}"),
            TopologyKind::Grid { rows, cols },
            &vec![capacity; rows * cols],
            edges,
        )
    }

    /// Builds an S-series device: `num_traps` traps with a direct shuttle
    /// path between every pair, each path crossing one central junction.
    ///
    /// # Panics
    ///
    /// Panics if `num_traps == 0` or `capacity < 2`.
    pub fn fully_connected(num_traps: usize, capacity: usize) -> Self {
        Self::try_fully_connected(num_traps, capacity)
            .expect("invalid fully-connected topology parameters")
    }

    /// Fallible variant of [`QccdTopology::fully_connected`].
    ///
    /// # Errors
    ///
    /// Returns an error if `num_traps == 0` or `capacity < 2`.
    pub fn try_fully_connected(num_traps: usize, capacity: usize) -> Result<Self, ArchError> {
        let mut edges = Vec::new();
        for a in 0..num_traps {
            for b in (a + 1)..num_traps {
                edges.push(TrapEdge { a: TrapId(a as u32), b: TrapId(b as u32), junctions: 1 });
            }
        }
        Self::build(
            format!("S-{num_traps}"),
            TopologyKind::FullyConnected,
            &vec![capacity; num_traps],
            edges,
        )
    }

    /// Builds one of the named device configurations used throughout the
    /// paper's evaluation (Sec. 4.2): `"S-4"`, `"S-6"`, `"L-2"`, `"L-4"`,
    /// `"L-6"`, `"G-2x2"`, `"G-2x3"`, `"G-3x3"` with their default maximum
    /// trap capacities (22, 17, 22, 22, 17, 22, 17, 12 respectively).
    ///
    /// Returns `None` for an unknown name.
    pub fn named(name: &str) -> Option<Self> {
        let t = match name {
            "S-4" => Self::fully_connected(4, 22),
            "S-6" => Self::fully_connected(6, 17),
            "L-2" => Self::linear(2, 22),
            "L-4" => Self::linear(4, 22),
            "L-6" => Self::linear(6, 17),
            "G-2x2" => Self::grid(2, 2, 22),
            "G-2x3" => Self::grid(2, 3, 17),
            "G-3x3" => Self::grid(3, 3, 12),
            _ => return None,
        };
        Some(t)
    }

    /// Rebuilds this topology with a different uniform per-trap capacity
    /// (used by the capacity sweeps of Fig. 11).
    pub fn with_capacity(&self, capacity: usize) -> Self {
        let capacities = vec![capacity; self.traps.len()];
        Self::build(self.name.clone(), self.kind, &capacities, self.edges.clone())
            .expect("existing topology with new capacity is valid")
    }

    /// The device's display name (e.g. `"G-2x3"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The device family.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of traps.
    pub fn num_traps(&self) -> usize {
        self.traps.len()
    }

    /// All traps, ordered by id.
    pub fn traps(&self) -> &[Trap] {
        &self.traps
    }

    /// The trap with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if the trap does not exist.
    pub fn trap(&self, id: TrapId) -> &Trap {
        &self.traps[id.index()]
    }

    /// Total number of slots across all traps.
    pub fn total_capacity(&self) -> usize {
        self.traps.iter().map(Trap::capacity).sum()
    }

    /// Total number of slots (alias of [`QccdTopology::total_capacity`]).
    pub fn num_slots(&self) -> usize {
        self.total_capacity()
    }

    /// The trap containing `slot`, or `None` if the slot id is out of range.
    pub fn trap_of_slot(&self, slot: SlotId) -> Option<TrapId> {
        self.traps.iter().find(|t| t.contains(slot)).map(Trap::id)
    }

    /// Neighbouring traps of `trap`, with the junction count of each link.
    pub fn neighbors(&self, trap: TrapId) -> Vec<(TrapId, u32)> {
        let mut out = Vec::new();
        for e in &self.edges {
            if e.a == trap {
                out.push((e.b, e.junctions));
            } else if e.b == trap {
                out.push((e.a, e.junctions));
            }
        }
        out.sort_by_key(|&(t, _)| t);
        out
    }

    /// Junction count of the direct link between `a` and `b`, or `None` if
    /// the traps are not directly connected.
    pub fn link_junctions(&self, a: TrapId, b: TrapId) -> Option<u32> {
        self.edges
            .iter()
            .find(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a))
            .map(|e| e.junctions)
    }

    /// `true` if traps `a` and `b` are directly connected by a shuttle path.
    pub fn are_adjacent(&self, a: TrapId, b: TrapId) -> bool {
        self.link_junctions(a, b).is_some()
    }

    /// The chain end of `trap` that faces `neighbor`.
    ///
    /// The assignment is deterministic: links to lower-numbered traps leave
    /// from the left end, links to higher-numbered traps from the right end.
    /// For a linear device this reproduces the physical layout exactly; for
    /// grids and fully-connected devices it is a consistent convention.
    pub fn port_side(&self, trap: TrapId, neighbor: TrapId) -> Side {
        if neighbor.0 < trap.0 {
            Side::Left
        } else {
            Side::Right
        }
    }

    /// The slot of `trap` that an ion must occupy to shuttle towards
    /// `neighbor` (the chain end on the facing side).
    pub fn port_slot(&self, trap: TrapId, neighbor: TrapId) -> SlotId {
        let t = self.trap(trap);
        match self.port_side(trap, neighbor) {
            Side::Left => t.left_end(),
            Side::Right => t.right_end(),
        }
    }

    /// All shuttle links as `(a, b, junctions)` triples.
    pub fn links(&self) -> Vec<(TrapId, TrapId, u32)> {
        self.edges.iter().map(|e| (e.a, e.b, e.junctions)).collect()
    }
}

impl fmt::Display for QccdTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} traps, capacity {}, {} links)",
            self.name,
            self.num_traps(),
            self.traps.first().map(Trap::capacity).unwrap_or(0),
            self.edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_topology_structure() {
        let t = QccdTopology::linear(4, 22);
        assert_eq!(t.num_traps(), 4);
        assert_eq!(t.total_capacity(), 88);
        assert_eq!(t.neighbors(TrapId(0)), vec![(TrapId(1), 0)]);
        assert_eq!(t.neighbors(TrapId(1)), vec![(TrapId(0), 0), (TrapId(2), 0)]);
        assert!(t.are_adjacent(TrapId(2), TrapId(3)));
        assert!(!t.are_adjacent(TrapId(0), TrapId(3)));
        assert_eq!(t.kind(), TopologyKind::Linear);
    }

    #[test]
    fn grid_topology_structure() {
        let t = QccdTopology::grid(2, 3, 17);
        assert_eq!(t.num_traps(), 6);
        assert_eq!(t.name(), "G-2x3");
        // Corner trap has two neighbours, middle trap of the top row has 3.
        assert_eq!(t.neighbors(TrapId(0)).len(), 2);
        assert_eq!(t.neighbors(TrapId(1)).len(), 3);
        assert_eq!(t.link_junctions(TrapId(0), TrapId(1)), Some(1));
        assert_eq!(t.link_junctions(TrapId(0), TrapId(5)), None);
    }

    #[test]
    fn fully_connected_topology_structure() {
        let t = QccdTopology::fully_connected(4, 22);
        assert_eq!(t.links().len(), 6);
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    assert!(t.are_adjacent(TrapId(a), TrapId(b)));
                }
            }
        }
    }

    #[test]
    fn named_configurations_match_paper_capacities() {
        // Sec. 4.2: S-4, G-2x2, G-2x3, G-3x3 have capacities 22, 22, 17, 12.
        let cases = [("S-4", 4, 22), ("G-2x2", 4, 22), ("G-2x3", 6, 17), ("G-3x3", 9, 12)];
        for (name, traps, cap) in cases {
            let t = QccdTopology::named(name).unwrap();
            assert_eq!(t.num_traps(), traps, "{name}");
            assert_eq!(t.trap(TrapId(0)).capacity(), cap, "{name}");
        }
        assert!(QccdTopology::named("X-9").is_none());
    }

    #[test]
    fn slots_are_globally_contiguous() {
        let t = QccdTopology::linear(3, 4);
        assert_eq!(t.trap(TrapId(0)).slots(), vec![SlotId(0), SlotId(1), SlotId(2), SlotId(3)]);
        assert_eq!(t.trap(TrapId(1)).left_end(), SlotId(4));
        assert_eq!(t.trap_of_slot(SlotId(5)), Some(TrapId(1)));
        assert_eq!(t.trap_of_slot(SlotId(100)), None);
    }

    #[test]
    fn port_slots_face_the_neighbor() {
        let t = QccdTopology::linear(3, 4);
        // Trap 1's port towards trap 0 is its left end, towards trap 2 its right end.
        assert_eq!(t.port_slot(TrapId(1), TrapId(0)), t.trap(TrapId(1)).left_end());
        assert_eq!(t.port_slot(TrapId(1), TrapId(2)), t.trap(TrapId(1)).right_end());
        assert_eq!(t.port_side(TrapId(1), TrapId(0)), Side::Left);
        assert_eq!(t.port_side(TrapId(1), TrapId(2)), Side::Right);
    }

    #[test]
    fn with_capacity_rescales_every_trap() {
        let t = QccdTopology::grid(2, 2, 22).with_capacity(10);
        assert_eq!(t.total_capacity(), 40);
        assert_eq!(t.name(), "G-2x2");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert_eq!(QccdTopology::try_linear(0, 5).unwrap_err(), ArchError::EmptyTopology);
        assert_eq!(
            QccdTopology::try_linear(3, 1).unwrap_err(),
            ArchError::CapacityTooSmall { requested: 1 }
        );
        assert!(QccdTopology::try_grid(0, 3, 5).is_err());
    }

    #[test]
    fn display_mentions_name_and_traps() {
        let t = QccdTopology::grid(2, 3, 17);
        let s = t.to_string();
        assert!(s.contains("G-2x3"));
        assert!(s.contains("6 traps"));
    }
}
