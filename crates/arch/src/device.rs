//! The shared, immutable device artifact.
//!
//! Every compile over a fixed QCCD machine needs the same derived
//! structures: the static [`SlotGraph`], the trap-level [`TrapRouter`],
//! the all-pairs [`DistanceMatrix`] and the trap→edge candidate index the
//! scheduler enumerates generic swaps from. Rebuilding them per compile is
//! pure waste for any sweep — the paper's whole evaluation (Figs. 8–16)
//! compiles many circuits against a handful of fixed devices. A [`Device`]
//! bundles all four, built exactly once via [`Device::build`], and is
//! immutable afterwards: compilers only ever take `&Device`, so one
//! instance can be shared freely across threads for batch compilation.

use crate::distance::DistanceMatrix;
use crate::graph::{SlotGraph, WeightConfig};
use crate::ids::TrapId;
use crate::routing::TrapRouter;
use crate::topology::QccdTopology;

/// A once-built, immutable bundle of every per-device structure the
/// compilers need: topology, static slot graph, trap router, all-pairs
/// slot distances and the per-trap edge index.
///
/// ```
/// use ssync_arch::{Device, QccdTopology, WeightConfig, TrapId};
///
/// let device = Device::build(QccdTopology::grid(2, 3, 17), WeightConfig::default());
/// assert_eq!(device.num_traps(), 6);
/// assert_eq!(device.num_slots(), 102);
/// assert!(device.is_connected());
/// assert!(!device.trap_edges(TrapId(0)).is_empty());
/// ```
#[derive(Debug)]
pub struct Device {
    graph: SlotGraph,
    router: TrapRouter,
    /// The O(slots²) all-pairs matrix is materialised on first use: the
    /// S-SYNC scheduler always needs it, but the greedy baselines (and
    /// capacity-only validation) never do, so a throw-away device for
    /// those paths skips the quadratic work. `OnceLock` keeps the device
    /// shareable across batch workers — whichever thread asks first
    /// builds it, everyone else reads the same instance.
    dist: std::sync::OnceLock<DistanceMatrix>,
    /// Edge indices of the static graph touching each trap (either
    /// endpoint), ascending within each trap.
    trap_edges: Vec<Vec<u32>>,
}

impl Clone for Device {
    fn clone(&self) -> Self {
        let dist = std::sync::OnceLock::new();
        if let Some(d) = self.dist.get() {
            let _ = dist.set(d.clone());
        }
        Device {
            graph: self.graph.clone(),
            router: self.router.clone(),
            dist,
            trap_edges: self.trap_edges.clone(),
        }
    }
}

impl PartialEq for Device {
    fn eq(&self, other: &Self) -> bool {
        // The graph captures topology + weights, from which every other
        // field is deterministically derived.
        self.graph == other.graph
    }
}

impl Device {
    /// Builds every derived structure for `topology` under the given edge
    /// weights. This is the only constructor; everything else is a cheap
    /// accessor.
    pub fn build(topology: QccdTopology, weights: WeightConfig) -> Self {
        let num_traps = topology.num_traps();
        let graph = SlotGraph::new(topology, weights);
        let router = TrapRouter::new(graph.topology(), weights);
        let mut trap_edges: Vec<Vec<u32>> = vec![Vec::new(); num_traps];
        for (i, e) in graph.edges().iter().enumerate() {
            let ta = graph.slot_trap(e.a);
            let tb = graph.slot_trap(e.b);
            trap_edges[ta.index()].push(i as u32);
            if tb != ta {
                trap_edges[tb.index()].push(i as u32);
            }
        }
        Device { graph, router, dist: std::sync::OnceLock::new(), trap_edges }
    }

    /// Builds the device for one of the paper's named topologies
    /// (`"L-6"`, `"G-2x3"`, `"S-4"`, …), or `None` for an unknown name.
    pub fn named(name: &str, weights: WeightConfig) -> Option<Self> {
        QccdTopology::named(name).map(|topo| Device::build(topo, weights))
    }

    /// The underlying machine topology.
    pub fn topology(&self) -> &QccdTopology {
        self.graph.topology()
    }

    /// The edge weights everything was derived under.
    pub fn weights(&self) -> WeightConfig {
        self.graph.weights()
    }

    /// The static weighted slot graph (Sec. 3.1).
    pub fn graph(&self) -> &SlotGraph {
        &self.graph
    }

    /// All-pairs trap shuttle routes.
    pub fn router(&self) -> &TrapRouter {
        &self.router
    }

    /// All-pairs slot routing distances (the Eq. 2 `dis` term), built on
    /// first access and shared by every subsequent caller (thread-safe).
    pub fn distance_matrix(&self) -> &DistanceMatrix {
        self.dist.get_or_init(|| DistanceMatrix::new(&self.graph, &self.router))
    }

    /// Indices into [`SlotGraph::edges`] of every edge touching `trap`
    /// (either endpoint), ascending.
    pub fn trap_edges(&self, trap: TrapId) -> &[u32] {
        &self.trap_edges[trap.index()]
    }

    /// The full trap→edge candidate index, indexed by trap.
    pub fn trap_edge_index(&self) -> &[Vec<u32>] {
        &self.trap_edges
    }

    /// Number of traps.
    pub fn num_traps(&self) -> usize {
        self.topology().num_traps()
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.graph.num_slots()
    }

    /// `true` if every trap can reach every other trap.
    pub fn is_connected(&self) -> bool {
        self.router.is_connected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SlotId;

    #[test]
    fn build_bundles_consistent_structures() {
        let device = Device::build(QccdTopology::grid(2, 2, 5), WeightConfig::default());
        assert_eq!(device.num_traps(), 4);
        assert_eq!(device.num_slots(), 20);
        assert_eq!(device.distance_matrix().num_slots(), device.num_slots());
        assert_eq!(device.router().num_traps(), device.num_traps());
        assert!(device.is_connected());
    }

    #[test]
    fn trap_edge_index_covers_every_edge_exactly_per_endpoint_trap() {
        let device = Device::build(QccdTopology::linear(3, 4), WeightConfig::default());
        let mut seen = 0usize;
        for trap in device.topology().traps() {
            let edges = device.trap_edges(trap.id());
            assert!(edges.windows(2).all(|w| w[0] < w[1]), "ascending within a trap");
            for &e in edges {
                let edge = device.graph().edges()[e as usize];
                let ta = device.graph().slot_trap(edge.a);
                let tb = device.graph().slot_trap(edge.b);
                assert!(ta == trap.id() || tb == trap.id());
                seen += 1;
            }
        }
        // Intra-trap edges appear once, inter-trap edges twice.
        let inter =
            device.graph().edges().iter().filter(|e| !device.graph().same_trap(e.a, e.b)).count();
        assert_eq!(seen, device.graph().edges().len() + inter);
    }

    #[test]
    fn named_devices_resolve_like_topologies() {
        let device = Device::named("G-2x3", WeightConfig::default()).unwrap();
        assert_eq!(device.topology().name(), "G-2x3");
        assert!(Device::named("nope", WeightConfig::default()).is_none());
    }

    #[test]
    fn distance_matrix_is_shared_not_recomputed() {
        let device = Device::build(QccdTopology::linear(2, 3), WeightConfig::default());
        // Spot-check the matrix against the doc-tested values.
        assert_eq!(device.distance_matrix().get(SlotId(0), SlotId(2)), 0.002);
        assert!((device.distance_matrix().get(SlotId(2), SlotId(3)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distance_matrix_is_built_once_and_shared() {
        let device = Device::build(QccdTopology::linear(2, 3), WeightConfig::default());
        let first: *const DistanceMatrix = device.distance_matrix();
        let second: *const DistanceMatrix = device.distance_matrix();
        assert!(std::ptr::eq(first, second), "lazy matrix must be materialised exactly once");
        // A clone of a device with a computed matrix keeps the values.
        let clone = device.clone();
        assert_eq!(clone.distance_matrix().get(SlotId(0), SlotId(2)), 0.002);
        assert_eq!(device, clone);
    }

    #[test]
    fn device_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Device>();
    }
}
