//! All-pairs slot-to-slot routing distances, precomputed at device-build
//! time.
//!
//! The scheduler's heuristic (Eq. 2) needs the routing distance between
//! two slots for every (candidate swap × frontier gate) pair, every
//! iteration. Recomputing it on the fly chains four lookups — next hop,
//! exit port, entry port, intra-trap offsets — so the hot loop instead
//! reads a flat `num_slots × num_slots` matrix filled once per device.
//!
//! The matrix reproduces the on-the-fly formula *bit for bit*: same trap
//! costs `inner_weight × chain distance`; across traps the cost is the
//! inner-weight walk to the exit port, plus the trap router's shuttle
//! distance, plus the inner-weight walk from the entry port.

use crate::graph::SlotGraph;
use crate::ids::SlotId;
use crate::routing::TrapRouter;

/// Precomputed all-pairs slot routing distances (the Eq. 2 `dis` term).
///
/// ```
/// use ssync_arch::{DistanceMatrix, QccdTopology, SlotGraph, SlotId, TrapRouter, WeightConfig};
/// let topo = QccdTopology::linear(2, 3);
/// let graph = SlotGraph::new(topo.clone(), WeightConfig::default());
/// let router = TrapRouter::new(&topo, WeightConfig::default());
/// let dist = DistanceMatrix::new(&graph, &router);
/// assert_eq!(dist.get(SlotId(0), SlotId(2)), 0.002);          // two inner steps
/// assert!((dist.get(SlotId(2), SlotId(3)) - 1.0).abs() < 1e-12); // one shuttle
/// ```
/// The `Default` value is an empty (0-slot) matrix, useful only as a
/// placeholder to move a real matrix out of a struct temporarily.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<f64>,
}

impl DistanceMatrix {
    /// Precomputes the matrix for a device graph and its trap router.
    pub fn new(graph: &SlotGraph, router: &TrapRouter) -> Self {
        let topo = graph.topology();
        let inner = graph.weights().inner_weight;
        let n = graph.num_slots();
        let t = topo.num_traps();

        // Exit port of trap `a` when routing towards trap `b` (also the
        // entry port of `b` when coming from `a`, read transposed).
        let port = |a: usize, b: usize| -> SlotId {
            let (ta, tb) = (crate::ids::TrapId(a as u32), crate::ids::TrapId(b as u32));
            let towards = router.next_hop(ta, tb).unwrap_or(tb);
            topo.port_slot(ta, towards)
        };
        let mut exit = vec![SlotId(0); t * t];
        for a in 0..t {
            for b in 0..t {
                if a != b {
                    exit[a * t + b] = port(a, b);
                }
            }
        }

        let mut dist = vec![0.0f64; n * n];
        for a in 0..n {
            let sa = SlotId(a as u32);
            let ta = graph.slot_trap(sa);
            let pa = graph.slot_position(sa);
            for b in 0..n {
                let sb = SlotId(b as u32);
                let tb = graph.slot_trap(sb);
                let pb = graph.slot_position(sb);
                dist[a * n + b] = if ta == tb {
                    inner * pa.abs_diff(pb) as f64
                } else {
                    let exit_slot = exit[ta.index() * t + tb.index()];
                    let entry_slot = exit[tb.index() * t + ta.index()];
                    inner * pa.abs_diff(graph.slot_position(exit_slot)) as f64
                        + router.distance(ta, tb)
                        + inner * graph.slot_position(entry_slot).abs_diff(pb) as f64
                };
            }
        }
        DistanceMatrix { n, dist }
    }

    /// Number of slots covered by the matrix.
    pub fn num_slots(&self) -> usize {
        self.n
    }

    /// The routing distance from slot `a` to slot `b`.
    ///
    /// # Panics
    ///
    /// Panics if either slot id is out of range.
    #[inline]
    pub fn get(&self, a: SlotId, b: SlotId) -> f64 {
        self.dist[a.index() * self.n + b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WeightConfig;
    use crate::topology::QccdTopology;

    fn matrix(topo: &QccdTopology) -> (SlotGraph, TrapRouter, DistanceMatrix) {
        let w = WeightConfig::default();
        let graph = SlotGraph::new(topo.clone(), w);
        let router = TrapRouter::new(topo, w);
        let dist = DistanceMatrix::new(&graph, &router);
        (graph, router, dist)
    }

    #[test]
    fn same_trap_distances_scale_with_chain_offset() {
        let (_, _, d) = matrix(&QccdTopology::linear(2, 4));
        assert_eq!(d.get(SlotId(0), SlotId(0)), 0.0);
        assert!((d.get(SlotId(0), SlotId(3)) - 0.003).abs() < 1e-15);
        assert_eq!(d.get(SlotId(1), SlotId(2)), d.get(SlotId(2), SlotId(1)));
    }

    #[test]
    fn cross_trap_distances_include_ports_and_shuttles() {
        let (_, _, d) = matrix(&QccdTopology::linear(2, 4));
        // Slot 0 (trap 0 pos 0) -> slot 4 (trap 1 pos 0): 3 inner steps to
        // the right port, 1 shuttle, 0 entry steps.
        assert!((d.get(SlotId(0), SlotId(4)) - (0.003 + 1.0)).abs() < 1e-12);
        // Port to port is a bare shuttle.
        assert!((d.get(SlotId(3), SlotId(4)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grid_distances_cross_junctions() {
        let (_, router, d) = matrix(&QccdTopology::grid(2, 2, 3));
        // Any cross-trap distance is at least the trap router's distance.
        for a in 0..12u32 {
            for b in 0..12u32 {
                let (sa, sb) = (SlotId(a), SlotId(b));
                let ta = crate::ids::TrapId(a / 3);
                let tb = crate::ids::TrapId(b / 3);
                if ta != tb {
                    assert!(d.get(sa, sb) >= router.distance(ta, tb) - 1e-12);
                }
            }
        }
    }

    #[test]
    fn matrix_covers_every_slot_pair() {
        let topo = QccdTopology::fully_connected(3, 5);
        let (graph, _, d) = matrix(&topo);
        assert_eq!(d.num_slots(), graph.num_slots());
        for a in 0..graph.num_slots() {
            for b in 0..graph.num_slots() {
                assert!(d.get(SlotId(a as u32), SlotId(b as u32)).is_finite());
            }
        }
    }
}
