//! A single trap: a bounded linear ion chain.

use crate::ids::{SlotId, TrapId};
use serde::{Deserialize, Serialize};

/// One trap of a QCCD device: a linear chain of `capacity` slots. Ions can
/// only be split off (for shuttling) from the two chain ends, which is why
/// shuttles are so often accompanied by SWAP gates (Observation 2 of the
/// paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Trap {
    id: TrapId,
    first_slot: SlotId,
    capacity: usize,
}

impl Trap {
    /// Creates a trap whose slots are `first_slot .. first_slot + capacity`.
    pub(crate) fn new(id: TrapId, first_slot: SlotId, capacity: usize) -> Self {
        Trap { id, first_slot, capacity }
    }

    /// The trap's identifier.
    #[inline]
    pub fn id(&self) -> TrapId {
        self.id
    }

    /// Number of slots (maximum ions) in this trap.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The globally-numbered slots of this trap, in chain order.
    pub fn slots(&self) -> Vec<SlotId> {
        (0..self.capacity as u32).map(|i| SlotId(self.first_slot.0 + i)).collect()
    }

    /// The first slot (left chain end).
    #[inline]
    pub fn left_end(&self) -> SlotId {
        self.first_slot
    }

    /// The last slot (right chain end).
    #[inline]
    pub fn right_end(&self) -> SlotId {
        SlotId(self.first_slot.0 + self.capacity as u32 - 1)
    }

    /// `true` if `slot` belongs to this trap.
    pub fn contains(&self, slot: SlotId) -> bool {
        slot.0 >= self.first_slot.0 && slot.0 < self.first_slot.0 + self.capacity as u32
    }

    /// Position of `slot` within the chain (0-based from the left end).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not in this trap.
    pub fn position_of(&self, slot: SlotId) -> usize {
        assert!(self.contains(slot), "slot {slot} is not in trap {}", self.id);
        (slot.0 - self.first_slot.0) as usize
    }

    /// The slot at chain position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= capacity`.
    pub fn slot_at(&self, pos: usize) -> SlotId {
        assert!(pos < self.capacity, "position {pos} out of range for capacity {}", self.capacity);
        SlotId(self.first_slot.0 + pos as u32)
    }

    /// Distance (in chain positions) from `slot` to the nearest chain end.
    pub fn distance_to_nearest_end(&self, slot: SlotId) -> usize {
        let pos = self.position_of(slot);
        pos.min(self.capacity - 1 - pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trap() -> Trap {
        Trap::new(TrapId(1), SlotId(10), 5)
    }

    #[test]
    fn slots_are_contiguous() {
        let t = trap();
        assert_eq!(t.slots(), vec![SlotId(10), SlotId(11), SlotId(12), SlotId(13), SlotId(14)]);
        assert_eq!(t.left_end(), SlotId(10));
        assert_eq!(t.right_end(), SlotId(14));
        assert_eq!(t.capacity(), 5);
    }

    #[test]
    fn contains_and_position() {
        let t = trap();
        assert!(t.contains(SlotId(12)));
        assert!(!t.contains(SlotId(15)));
        assert!(!t.contains(SlotId(9)));
        assert_eq!(t.position_of(SlotId(12)), 2);
        assert_eq!(t.slot_at(4), SlotId(14));
    }

    #[test]
    fn distance_to_nearest_end() {
        let t = trap();
        assert_eq!(t.distance_to_nearest_end(SlotId(10)), 0);
        assert_eq!(t.distance_to_nearest_end(SlotId(12)), 2);
        assert_eq!(t.distance_to_nearest_end(SlotId(14)), 0);
        assert_eq!(t.distance_to_nearest_end(SlotId(13)), 1);
    }

    #[test]
    #[should_panic(expected = "not in trap")]
    fn position_of_foreign_slot_panics() {
        trap().position_of(SlotId(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_at_out_of_range_panics() {
        trap().slot_at(5);
    }
}
