//! Trap-level routing: all-pairs shuttle distances, hop counts and next
//! hops over the inter-trap connectivity graph.

use crate::graph::WeightConfig;
use crate::ids::TrapId;
use crate::topology::QccdTopology;

/// Precomputed all-pairs shortest shuttle routes between traps.
///
/// Distances are measured in *shuttle weight* units (`shuttle_weight ×
/// (junctions + 1)` per link), matching the edge weights of the static
/// slot graph, so the scheduler can score a candidate generic swap in O(1).
///
/// ```
/// use ssync_arch::{QccdTopology, TrapRouter, WeightConfig, TrapId};
/// let topo = QccdTopology::linear(4, 5);
/// let router = TrapRouter::new(&topo, WeightConfig::default());
/// assert_eq!(router.hops(TrapId(0), TrapId(3)), 3);
/// assert_eq!(router.next_hop(TrapId(0), TrapId(3)), Some(TrapId(1)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrapRouter {
    n: usize,
    dist: Vec<f64>,
    hops: Vec<usize>,
    junctions: Vec<u32>,
    next: Vec<Option<TrapId>>,
}

impl TrapRouter {
    /// Builds the router for `topology` using the shuttle weights of
    /// `weights` (Floyd–Warshall; the trap count is small).
    pub fn new(topology: &QccdTopology, weights: WeightConfig) -> Self {
        let n = topology.num_traps();
        let idx = |a: usize, b: usize| a * n + b;
        let inf = f64::INFINITY;
        let mut dist = vec![inf; n * n];
        let mut hops = vec![usize::MAX; n * n];
        let mut junctions = vec![u32::MAX; n * n];
        let mut next: Vec<Option<TrapId>> = vec![None; n * n];
        for i in 0..n {
            dist[idx(i, i)] = 0.0;
            hops[idx(i, i)] = 0;
            junctions[idx(i, i)] = 0;
            next[idx(i, i)] = Some(TrapId(i as u32));
        }
        for (a, b, j) in topology.links() {
            let w = weights.shuttle_weight * f64::from(j + 1);
            for (x, y) in [(a.index(), b.index()), (b.index(), a.index())] {
                if w < dist[idx(x, y)] {
                    dist[idx(x, y)] = w;
                    hops[idx(x, y)] = 1;
                    junctions[idx(x, y)] = j;
                    next[idx(x, y)] = Some(TrapId(y as u32));
                }
            }
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = dist[idx(i, k)] + dist[idx(k, j)];
                    if via < dist[idx(i, j)] {
                        dist[idx(i, j)] = via;
                        hops[idx(i, j)] = hops[idx(i, k)] + hops[idx(k, j)];
                        junctions[idx(i, j)] = junctions[idx(i, k)] + junctions[idx(k, j)];
                        next[idx(i, j)] = next[idx(i, k)];
                    }
                }
            }
        }
        TrapRouter { n, dist, hops, junctions, next }
    }

    #[inline]
    fn idx(&self, a: TrapId, b: TrapId) -> usize {
        a.index() * self.n + b.index()
    }

    /// Number of traps covered by this router.
    pub fn num_traps(&self) -> usize {
        self.n
    }

    /// Shuttle-weight distance between two traps (0 for the same trap,
    /// infinite if unreachable).
    pub fn distance(&self, a: TrapId, b: TrapId) -> f64 {
        self.dist[self.idx(a, b)]
    }

    /// Number of inter-trap links on the shortest route.
    pub fn hops(&self, a: TrapId, b: TrapId) -> usize {
        self.hops[self.idx(a, b)]
    }

    /// Total junctions crossed along the shortest route.
    pub fn junctions_on_path(&self, a: TrapId, b: TrapId) -> u32 {
        self.junctions[self.idx(a, b)]
    }

    /// The next trap to move towards when travelling from `a` to `b`, or
    /// `None` if `b` is unreachable.
    pub fn next_hop(&self, a: TrapId, b: TrapId) -> Option<TrapId> {
        if a == b {
            return Some(a);
        }
        self.next[self.idx(a, b)]
    }

    /// The full trap sequence from `a` to `b`, inclusive of both ends.
    /// Empty if `b` is unreachable.
    pub fn path(&self, a: TrapId, b: TrapId) -> Vec<TrapId> {
        let mut path = vec![a];
        let mut cur = a;
        while cur != b {
            match self.next_hop(cur, b) {
                Some(n) if n != cur => {
                    path.push(n);
                    cur = n;
                }
                _ => return Vec::new(),
            }
            if path.len() > self.n + 1 {
                return Vec::new();
            }
        }
        path
    }

    /// `true` if every trap can reach every other trap.
    pub fn is_connected(&self) -> bool {
        self.dist.iter().all(|d| d.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_distances_accumulate() {
        let topo = QccdTopology::linear(4, 5);
        let r = TrapRouter::new(&topo, WeightConfig::default());
        assert_eq!(r.distance(TrapId(0), TrapId(0)), 0.0);
        assert_eq!(r.distance(TrapId(0), TrapId(1)), 1.0);
        assert_eq!(r.distance(TrapId(0), TrapId(3)), 3.0);
        assert_eq!(r.hops(TrapId(0), TrapId(3)), 3);
        assert_eq!(r.junctions_on_path(TrapId(0), TrapId(3)), 0);
        assert!(r.is_connected());
    }

    #[test]
    fn grid_distances_account_for_junctions() {
        let topo = QccdTopology::grid(2, 3, 5);
        let r = TrapRouter::new(&topo, WeightConfig::default());
        // Each grid link crosses one junction: weight 2.
        assert_eq!(r.distance(TrapId(0), TrapId(1)), 2.0);
        // Opposite corners of the 2x3 grid: 3 hops.
        assert_eq!(r.hops(TrapId(0), TrapId(5)), 3);
        assert_eq!(r.distance(TrapId(0), TrapId(5)), 6.0);
        assert_eq!(r.junctions_on_path(TrapId(0), TrapId(5)), 3);
    }

    #[test]
    fn fully_connected_is_always_one_hop() {
        let topo = QccdTopology::fully_connected(5, 4);
        let r = TrapRouter::new(&topo, WeightConfig::default());
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a != b {
                    assert_eq!(r.hops(TrapId(a), TrapId(b)), 1);
                }
            }
        }
    }

    #[test]
    fn path_reconstruction_follows_next_hops() {
        let topo = QccdTopology::linear(5, 3);
        let r = TrapRouter::new(&topo, WeightConfig::default());
        assert_eq!(r.path(TrapId(0), TrapId(3)), vec![TrapId(0), TrapId(1), TrapId(2), TrapId(3)]);
        assert_eq!(r.path(TrapId(2), TrapId(2)), vec![TrapId(2)]);
        assert_eq!(r.next_hop(TrapId(4), TrapId(0)), Some(TrapId(3)));
    }

    #[test]
    fn shortest_path_prefers_fewer_junction_weight() {
        // On a 3x3 grid the two corner-to-corner routes have equal weight;
        // distances must still be symmetric and consistent with hop counts.
        let topo = QccdTopology::grid(3, 3, 4);
        let r = TrapRouter::new(&topo, WeightConfig::default());
        assert_eq!(r.distance(TrapId(0), TrapId(8)), r.distance(TrapId(8), TrapId(0)));
        assert_eq!(r.hops(TrapId(0), TrapId(8)), 4);
    }
}
