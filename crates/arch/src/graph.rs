//! The static weighted connectivity graph of Sec. 3.1.
//!
//! Nodes are physical slots; a slot holds either a qubit (a "red node" in
//! Fig. 5) or nothing (a "space node"). Because space nodes are first-class,
//! exchanging two nodes never changes the graph — shuttling is just a swap
//! of a qubit node with a space node across an inter-trap edge. Edge
//! weights encode the relative cost of the exchange:
//!
//! * adjacent slots inside a trap: the tiny *inner weight* (ion reordering
//!   or a SWAP gate),
//! * slots in the same trap at distance `d`: `d ×` inner weight,
//! * port slots of adjacent traps: the *shuttle weight* scaled by
//!   `junctions + 1`.

use crate::ids::{SlotId, TrapId};
use crate::topology::QccdTopology;
use serde::{Deserialize, Serialize};

/// Edge-weight configuration of the static graph (Sec. 4.2 defaults:
/// inner weight 0.001, shuttle weight 1, threshold between them).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightConfig {
    /// Weight of exchanging two adjacent nodes inside a trap.
    pub inner_weight: f64,
    /// Weight of shuttling across a junction-free inter-trap segment. A
    /// path through `j` junctions costs `shuttle_weight * (j + 1)`.
    pub shuttle_weight: f64,
    /// Threshold separating "within trap" from "across traps" costs; a
    /// two-qubit gate is applicable iff the connecting weight is below it.
    pub threshold: f64,
}

impl Default for WeightConfig {
    fn default() -> Self {
        WeightConfig { inner_weight: 0.001, shuttle_weight: 1.0, threshold: 0.5 }
    }
}

impl WeightConfig {
    /// Creates a configuration from an explicit shuttle-to-inner weight
    /// ratio `r` (used by the Fig. 14 sensitivity sweep): the inner weight
    /// stays at 0.001 and the shuttle weight becomes `0.001 * r`.
    pub fn with_ratio(ratio: f64) -> Self {
        let inner_weight = 0.001;
        WeightConfig {
            inner_weight,
            shuttle_weight: inner_weight * ratio,
            threshold: inner_weight * ratio * 0.5,
        }
    }
}

/// The kind of a slot-graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Two adjacent slots inside the same trap.
    IntraTrap,
    /// The facing port slots of two adjacent traps, crossing `junctions`
    /// junctions.
    InterTrap {
        /// Number of junctions on the shuttle path.
        junctions: u32,
    },
}

/// An edge of the static slot graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotEdge {
    /// First endpoint.
    pub a: SlotId,
    /// Second endpoint.
    pub b: SlotId,
    /// Exchange cost.
    pub weight: f64,
    /// Whether the edge stays inside a trap or crosses traps.
    pub kind: EdgeKind,
}

/// The static weighted slot graph of a QCCD device.
///
/// ```
/// use ssync_arch::{QccdTopology, SlotGraph, WeightConfig, TrapId};
/// let graph = SlotGraph::new(QccdTopology::linear(2, 3), WeightConfig::default());
/// assert_eq!(graph.num_slots(), 6);
/// // 2 intra-trap adjacencies per trap + 1 inter-trap port edge.
/// assert_eq!(graph.edges().len(), 5);
/// assert_eq!(graph.slot_trap(ssync_arch::SlotId(4)), TrapId(1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotGraph {
    topology: QccdTopology,
    weights: WeightConfig,
    slot_trap: Vec<TrapId>,
    slot_pos: Vec<usize>,
    edges: Vec<SlotEdge>,
}

impl SlotGraph {
    /// Builds the static graph for `topology` with the given edge weights.
    pub fn new(topology: QccdTopology, weights: WeightConfig) -> Self {
        let num_slots = topology.num_slots();
        let mut slot_trap = vec![TrapId(0); num_slots];
        let mut slot_pos = vec![0usize; num_slots];
        let mut edges = Vec::new();
        for trap in topology.traps() {
            let slots = trap.slots();
            for (pos, &s) in slots.iter().enumerate() {
                slot_trap[s.index()] = trap.id();
                slot_pos[s.index()] = pos;
                if pos + 1 < slots.len() {
                    edges.push(SlotEdge {
                        a: s,
                        b: slots[pos + 1],
                        weight: weights.inner_weight,
                        kind: EdgeKind::IntraTrap,
                    });
                }
            }
        }
        for (a, b, junctions) in topology.links() {
            let sa = topology.port_slot(a, b);
            let sb = topology.port_slot(b, a);
            edges.push(SlotEdge {
                a: sa,
                b: sb,
                weight: weights.shuttle_weight * f64::from(junctions + 1),
                kind: EdgeKind::InterTrap { junctions },
            });
        }
        SlotGraph { topology, weights, slot_trap, slot_pos, edges }
    }

    /// The underlying device topology.
    pub fn topology(&self) -> &QccdTopology {
        &self.topology
    }

    /// The edge-weight configuration.
    pub fn weights(&self) -> WeightConfig {
        self.weights
    }

    /// Total number of slots.
    pub fn num_slots(&self) -> usize {
        self.slot_trap.len()
    }

    /// All edges of the graph.
    pub fn edges(&self) -> &[SlotEdge] {
        &self.edges
    }

    /// The trap containing `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot id is out of range.
    #[inline]
    pub fn slot_trap(&self, slot: SlotId) -> TrapId {
        self.slot_trap[slot.index()]
    }

    /// Chain position of `slot` within its trap (0-based from the left end).
    ///
    /// # Panics
    ///
    /// Panics if the slot id is out of range.
    #[inline]
    pub fn slot_position(&self, slot: SlotId) -> usize {
        self.slot_pos[slot.index()]
    }

    /// The slots of `trap`, in chain order.
    pub fn trap_slots(&self, trap: TrapId) -> Vec<SlotId> {
        self.topology.trap(trap).slots()
    }

    /// `true` if both slots are inside the same trap.
    pub fn same_trap(&self, a: SlotId, b: SlotId) -> bool {
        self.slot_trap(a) == self.slot_trap(b)
    }

    /// Number of chain positions between two slots of the same trap.
    ///
    /// # Panics
    ///
    /// Panics if the slots belong to different traps.
    pub fn intra_trap_distance(&self, a: SlotId, b: SlotId) -> usize {
        assert!(self.same_trap(a, b), "slots {a} and {b} are in different traps");
        self.slot_position(a).abs_diff(self.slot_position(b))
    }

    /// Weight of exchanging two slots of the same trap (inner weight scaled
    /// by their chain distance, as in Fig. 5 where `w2 = 0.002` for a
    /// distance of two ions).
    pub fn intra_exchange_weight(&self, a: SlotId, b: SlotId) -> f64 {
        self.weights.inner_weight * self.intra_trap_distance(a, b) as f64
    }

    /// Weight of the shuttle edge between two adjacent traps, or `None` if
    /// they are not directly linked.
    pub fn shuttle_weight_between(&self, a: TrapId, b: TrapId) -> Option<f64> {
        self.topology.link_junctions(a, b).map(|j| self.weights.shuttle_weight * f64::from(j + 1))
    }

    /// `true` if a two-qubit gate may be applied between ions sitting at
    /// `a` and `b` (rule 1 of Sec. 3.1): they must share a trap, i.e. the
    /// connecting weight is below the threshold.
    pub fn gate_applicable(&self, a: SlotId, b: SlotId) -> bool {
        self.same_trap(a, b)
    }

    /// The edges incident to `slot`.
    pub fn edges_of(&self, slot: SlotId) -> Vec<SlotEdge> {
        self.edges.iter().copied().filter(|e| e.a == slot || e.b == slot).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2() -> SlotGraph {
        SlotGraph::new(QccdTopology::linear(2, 4), WeightConfig::default())
    }

    #[test]
    fn default_weights_match_paper() {
        let w = WeightConfig::default();
        assert_eq!(w.inner_weight, 0.001);
        assert_eq!(w.shuttle_weight, 1.0);
        assert!(w.threshold > w.inner_weight && w.threshold < w.shuttle_weight);
    }

    #[test]
    fn ratio_configuration_scales_shuttle_weight() {
        let w = WeightConfig::with_ratio(100.0);
        assert!((w.shuttle_weight / w.inner_weight - 100.0).abs() < 1e-9);
    }

    #[test]
    fn edge_counts_for_linear_device() {
        let g = l2();
        let intra = g.edges().iter().filter(|e| e.kind == EdgeKind::IntraTrap).count();
        let inter =
            g.edges().iter().filter(|e| matches!(e.kind, EdgeKind::InterTrap { .. })).count();
        assert_eq!(intra, 6); // 3 adjacencies per 4-slot trap × 2 traps
        assert_eq!(inter, 1);
    }

    #[test]
    fn inter_trap_edge_connects_facing_ports() {
        let g = l2();
        let e = g
            .edges()
            .iter()
            .find(|e| matches!(e.kind, EdgeKind::InterTrap { .. }))
            .copied()
            .unwrap();
        // Trap 0's right end (slot 3) faces trap 1's left end (slot 4).
        assert_eq!((e.a, e.b), (SlotId(3), SlotId(4)));
        assert_eq!(e.weight, 1.0); // zero junctions on a linear link
    }

    #[test]
    fn grid_links_cost_more_due_to_junctions() {
        let g = SlotGraph::new(QccdTopology::grid(2, 2, 3), WeightConfig::default());
        let shuttle_weights: Vec<f64> = g
            .edges()
            .iter()
            .filter(|e| matches!(e.kind, EdgeKind::InterTrap { .. }))
            .map(|e| e.weight)
            .collect();
        assert!(!shuttle_weights.is_empty());
        assert!(shuttle_weights.iter().all(|&w| (w - 2.0).abs() < 1e-12));
        assert_eq!(g.shuttle_weight_between(TrapId(0), TrapId(1)), Some(2.0));
        assert_eq!(g.shuttle_weight_between(TrapId(0), TrapId(3)), None);
    }

    #[test]
    fn intra_trap_distances_and_weights() {
        let g = l2();
        assert_eq!(g.intra_trap_distance(SlotId(0), SlotId(3)), 3);
        assert!((g.intra_exchange_weight(SlotId(0), SlotId(2)) - 0.002).abs() < 1e-12);
        assert!(g.gate_applicable(SlotId(0), SlotId(3)));
        assert!(!g.gate_applicable(SlotId(3), SlotId(4)));
    }

    #[test]
    #[should_panic(expected = "different traps")]
    fn intra_distance_across_traps_panics() {
        l2().intra_trap_distance(SlotId(0), SlotId(5));
    }

    #[test]
    fn edges_of_returns_incident_edges() {
        let g = l2();
        // Slot 3 is trap 0's right end: one intra edge (2-3) + the shuttle edge (3-4).
        let edges = g.edges_of(SlotId(3));
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn slot_metadata_is_consistent_with_topology() {
        let g = SlotGraph::new(QccdTopology::grid(2, 3, 5), WeightConfig::default());
        for trap in g.topology().traps() {
            for (pos, slot) in trap.slots().into_iter().enumerate() {
                assert_eq!(g.slot_trap(slot), trap.id());
                assert_eq!(g.slot_position(slot), pos);
            }
        }
    }
}
