//! # ssync-arch
//!
//! The QCCD (Quantum Charge-Coupled Device) machine model used by the
//! S-SYNC compiler reproduction:
//!
//! * [`Trap`] — a linear ion chain with a bounded capacity and two shuttle
//!   ports (its chain ends),
//! * [`QccdTopology`] — a set of traps connected by shuttle paths, possibly
//!   through junctions; builders for the paper's L-series (linear),
//!   G-series (grid) and S-series (fully-connected) device families
//!   (Fig. 7),
//! * [`SlotGraph`] — the paper's *static* weighted connectivity graph
//!   (Sec. 3.1): every physical slot (a loaded qubit or an empty space) is
//!   a node, intra-trap edges carry a small *inner* weight and inter-trap
//!   edges carry a *shuttle* weight scaled by junction count,
//! * [`Placement`] — the mutable assignment of program qubits to slots,
//! * [`TrapRouter`] — all-pairs shuttle distances / next hops between traps,
//! * [`DistanceMatrix`] — all-pairs slot-to-slot routing distances (the
//!   Eq. 2 `dis` term) precomputed at device-build time for the
//!   scheduler's O(1) inner loop,
//! * [`Device`] — the once-built, immutable bundle of topology + slot
//!   graph + trap router + distance matrix + trap→edge candidate index
//!   that every compile entry point shares (and batch compilation shares
//!   across worker threads).
//!
//! ```
//! use ssync_arch::{QccdTopology, SlotGraph, WeightConfig, Placement, TrapId};
//! use ssync_circuit::Qubit;
//!
//! let topo = QccdTopology::grid(2, 3, 17);         // G-2x3, capacity 17
//! assert_eq!(topo.num_traps(), 6);
//! assert_eq!(topo.total_capacity(), 102);
//!
//! let graph = SlotGraph::new(topo.clone(), WeightConfig::default());
//! let mut placement = Placement::new(&topo, 12);
//! placement.place(Qubit(0), graph.trap_slots(TrapId(0))[0]);
//! assert_eq!(placement.num_placed(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod distance;
mod error;
mod graph;
mod ids;
mod placement;
mod routing;
mod topology;
mod trap;

pub use device::Device;
pub use distance::DistanceMatrix;
pub use error::ArchError;
pub use graph::{EdgeKind, SlotEdge, SlotGraph, WeightConfig};
pub use ids::{SlotId, TrapId};
pub use placement::{Placement, RawPlacement};
pub use routing::TrapRouter;
pub use topology::{QccdTopology, Side, TopologyKind};
pub use trap::Trap;
