//! The mutable assignment of program qubits to physical slots.

use crate::error::ArchError;
use crate::ids::{SlotId, TrapId};
use crate::topology::QccdTopology;
use serde::{Deserialize, Serialize};
use ssync_circuit::Qubit;

/// A placement (the paper's mapping `π` plus the space recorder): which
/// slot each program qubit occupies, and which qubit — if any — sits in
/// each slot. Unoccupied slots are the *space nodes* of the static graph.
///
/// The placement also tracks per-trap occupancy so that the scheduler's
/// penalty term ("number of traps without internal space nodes", Eq. 2)
/// is O(1) to evaluate.
///
/// ```
/// use ssync_arch::{Placement, QccdTopology, SlotId, TrapId};
/// use ssync_circuit::Qubit;
/// let topo = QccdTopology::linear(2, 3);
/// let mut p = Placement::new(&topo, 2);
/// p.place(Qubit(0), SlotId(0));
/// p.place(Qubit(1), SlotId(4));
/// assert_eq!(p.trap_of(Qubit(1)), Some(TrapId(1)));
/// p.swap_slots(SlotId(0), SlotId(1));
/// assert_eq!(p.slot_of(Qubit(0)), Some(SlotId(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    slot_of: Vec<Option<SlotId>>,
    occupant: Vec<Option<Qubit>>,
    slot_trap: Vec<TrapId>,
    trap_capacity: Vec<usize>,
    trap_occupancy: Vec<usize>,
}

/// The raw column vectors of a [`Placement`], exposed for codecs
/// (persistent result caches, wire formats) that must round-trip a
/// placement bit-identically without rebuilding it from a topology.
/// Produced by [`Placement::to_raw`], consumed by [`Placement::from_raw`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawPlacement {
    /// Per program qubit: the slot it occupies, if placed.
    pub slot_of: Vec<Option<SlotId>>,
    /// Per physical slot: the qubit occupying it, `None` for space nodes.
    pub occupant: Vec<Option<Qubit>>,
    /// Per physical slot: the trap containing it.
    pub slot_trap: Vec<TrapId>,
    /// Per trap: its slot capacity.
    pub trap_capacity: Vec<usize>,
    /// Per trap: the number of ions currently held.
    pub trap_occupancy: Vec<usize>,
}

impl Placement {
    /// Creates an empty placement for `num_qubits` program qubits on the
    /// given device.
    pub fn new(topology: &QccdTopology, num_qubits: usize) -> Self {
        let num_slots = topology.num_slots();
        let mut slot_trap = vec![TrapId(0); num_slots];
        for trap in topology.traps() {
            for s in trap.slots() {
                slot_trap[s.index()] = trap.id();
            }
        }
        Placement {
            slot_of: vec![None; num_qubits],
            occupant: vec![None; num_slots],
            slot_trap,
            trap_capacity: topology.traps().iter().map(|t| t.capacity()).collect(),
            trap_occupancy: vec![0; topology.num_traps()],
        }
    }

    /// Number of program qubits this placement covers.
    pub fn num_qubits(&self) -> usize {
        self.slot_of.len()
    }

    /// Number of physical slots on the device.
    pub fn num_slots(&self) -> usize {
        self.occupant.len()
    }

    /// Number of qubits currently placed.
    pub fn num_placed(&self) -> usize {
        self.slot_of.iter().filter(|s| s.is_some()).count()
    }

    /// `true` once every program qubit has a slot.
    pub fn is_complete(&self) -> bool {
        self.slot_of.iter().all(Option::is_some)
    }

    /// The slot currently holding `qubit`, if placed.
    #[inline]
    pub fn slot_of(&self, qubit: Qubit) -> Option<SlotId> {
        self.slot_of.get(qubit.index()).copied().flatten()
    }

    /// The trap currently holding `qubit`, if placed.
    pub fn trap_of(&self, qubit: Qubit) -> Option<TrapId> {
        self.slot_of(qubit).map(|s| self.slot_trap[s.index()])
    }

    /// The qubit occupying `slot`, or `None` for a space node.
    #[inline]
    pub fn occupant(&self, slot: SlotId) -> Option<Qubit> {
        self.occupant.get(slot.index()).copied().flatten()
    }

    /// `true` if `slot` is an empty space node.
    #[inline]
    pub fn is_space(&self, slot: SlotId) -> bool {
        self.occupant(slot).is_none()
    }

    /// Places `qubit` into the empty `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied, the qubit is already placed, or
    /// either id is out of range. Use [`Placement::try_place`] for the
    /// fallible variant.
    pub fn place(&mut self, qubit: Qubit, slot: SlotId) {
        self.try_place(qubit, slot).expect("invalid placement");
    }

    /// Fallible variant of [`Placement::place`].
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::UnknownSlot`] or [`ArchError::SlotOccupied`]
    /// when the target is invalid.
    pub fn try_place(&mut self, qubit: Qubit, slot: SlotId) -> Result<(), ArchError> {
        if slot.index() >= self.occupant.len() {
            return Err(ArchError::UnknownSlot { slot });
        }
        if self.occupant[slot.index()].is_some() {
            return Err(ArchError::SlotOccupied { slot });
        }
        assert!(qubit.index() < self.slot_of.len(), "qubit {qubit} out of range");
        assert!(self.slot_of[qubit.index()].is_none(), "qubit {qubit} is already placed");
        self.occupant[slot.index()] = Some(qubit);
        self.slot_of[qubit.index()] = Some(slot);
        self.trap_occupancy[self.slot_trap[slot.index()].index()] += 1;
        Ok(())
    }

    /// Exchanges the contents of two slots (either may be a space node).
    /// This is the primitive behind every *generic swap*.
    ///
    /// # Panics
    ///
    /// Panics if either slot id is out of range.
    pub fn swap_slots(&mut self, a: SlotId, b: SlotId) {
        assert!(a.index() < self.occupant.len(), "slot {a} out of range");
        assert!(b.index() < self.occupant.len(), "slot {b} out of range");
        if a == b {
            return;
        }
        let qa = self.occupant[a.index()];
        let qb = self.occupant[b.index()];
        self.occupant[a.index()] = qb;
        self.occupant[b.index()] = qa;
        if let Some(q) = qa {
            self.slot_of[q.index()] = Some(b);
        }
        if let Some(q) = qb {
            self.slot_of[q.index()] = Some(a);
        }
        let ta = self.slot_trap[a.index()];
        let tb = self.slot_trap[b.index()];
        if ta != tb {
            // Occupancy only changes when the exchange crosses traps.
            if qa.is_some() {
                self.trap_occupancy[ta.index()] -= 1;
                self.trap_occupancy[tb.index()] += 1;
            }
            if qb.is_some() {
                self.trap_occupancy[tb.index()] -= 1;
                self.trap_occupancy[ta.index()] += 1;
            }
        }
    }

    /// Number of ions currently in `trap`.
    #[inline]
    pub fn trap_occupancy(&self, trap: TrapId) -> usize {
        self.trap_occupancy[trap.index()]
    }

    /// Number of free slots in `trap`.
    #[inline]
    pub fn trap_free_slots(&self, trap: TrapId) -> usize {
        self.trap_capacity[trap.index()] - self.trap_occupancy[trap.index()]
    }

    /// `true` if the trap has no space node left.
    #[inline]
    pub fn trap_is_full(&self, trap: TrapId) -> bool {
        self.trap_free_slots(trap) == 0
    }

    /// The number of traps without any internal space node — the penalty
    /// term `Pen` of Eq. 2.
    pub fn full_trap_count(&self) -> usize {
        self.trap_occupancy.iter().zip(&self.trap_capacity).filter(|(occ, cap)| occ >= cap).count()
    }

    /// The qubits currently inside `trap`, ordered by chain position.
    pub fn qubits_in_trap(&self, topology: &QccdTopology, trap: TrapId) -> Vec<Qubit> {
        topology.trap(trap).slots().into_iter().filter_map(|s| self.occupant(s)).collect()
    }

    /// The empty slots of `trap`, ordered by chain position.
    pub fn spaces_in_trap(&self, topology: &QccdTopology, trap: TrapId) -> Vec<SlotId> {
        topology.trap(trap).slots().into_iter().filter(|&s| self.is_space(s)).collect()
    }

    /// The trap of each placed qubit, as `(qubit, trap)` pairs.
    pub fn assignments(&self) -> Vec<(Qubit, TrapId)> {
        self.slot_of
            .iter()
            .enumerate()
            .filter_map(|(q, slot)| slot.map(|s| (Qubit(q as u32), self.slot_trap[s.index()])))
            .collect()
    }

    /// Exports the placement's raw column vectors, for codecs that persist
    /// or transmit a placement without access to the topology it was built
    /// from. [`Placement::from_raw`] reconstructs a bit-identical value.
    pub fn to_raw(&self) -> RawPlacement {
        RawPlacement {
            slot_of: self.slot_of.clone(),
            occupant: self.occupant.clone(),
            slot_trap: self.slot_trap.clone(),
            trap_capacity: self.trap_capacity.clone(),
            trap_occupancy: self.trap_occupancy.clone(),
        }
    }

    /// Rebuilds a placement from [`Placement::to_raw`] output. Returns
    /// `None` when the vectors are dimensionally inconsistent (truncated or
    /// corrupted input) or fail the internal consistency check — callers
    /// deserializing untrusted bytes treat that as a decode failure rather
    /// than a panic.
    pub fn from_raw(raw: RawPlacement) -> Option<Placement> {
        if raw.occupant.len() != raw.slot_trap.len()
            || raw.trap_capacity.len() != raw.trap_occupancy.len()
        {
            return None;
        }
        if raw.slot_trap.iter().any(|t| t.index() >= raw.trap_capacity.len()) {
            return None;
        }
        if raw.slot_of.iter().any(|s| s.is_some_and(|slot| slot.index() >= raw.occupant.len())) {
            return None;
        }
        if raw.occupant.iter().any(|q| q.is_some_and(|qubit| qubit.index() >= raw.slot_of.len())) {
            return None;
        }
        let placement = Placement {
            slot_of: raw.slot_of,
            occupant: raw.occupant,
            slot_trap: raw.slot_trap,
            trap_capacity: raw.trap_capacity,
            trap_occupancy: raw.trap_occupancy,
        };
        placement.validate().ok()?;
        Some(placement)
    }

    /// Validates internal consistency (every placed qubit's slot points
    /// back at it and occupancy counters match). Used by property tests.
    pub fn validate(&self) -> Result<(), String> {
        for (qi, slot) in self.slot_of.iter().enumerate() {
            if let Some(s) = slot {
                if self.occupant[s.index()] != Some(Qubit(qi as u32)) {
                    return Err(format!("qubit q{qi} points at slot {s} which does not hold it"));
                }
            }
        }
        for (si, occ) in self.occupant.iter().enumerate() {
            if let Some(q) = occ {
                if self.slot_of[q.index()] != Some(SlotId(si as u32)) {
                    return Err(format!("slot s{si} holds {q} which does not point back"));
                }
            }
        }
        let mut counts = vec![0usize; self.trap_occupancy.len()];
        for (si, occ) in self.occupant.iter().enumerate() {
            if occ.is_some() {
                counts[self.slot_trap[si].index()] += 1;
            }
        }
        if counts != self.trap_occupancy {
            return Err("trap occupancy counters out of sync".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (QccdTopology, Placement) {
        let topo = QccdTopology::linear(2, 3);
        let p = Placement::new(&topo, 4);
        (topo, p)
    }

    #[test]
    fn raw_round_trip_and_corrupt_rejection() {
        let (_, mut p) = setup();
        p.place(Qubit(0), SlotId(1));
        p.place(Qubit(1), SlotId(4));
        let rebuilt = Placement::from_raw(p.to_raw()).expect("consistent raw parts");
        assert_eq!(p, rebuilt);

        // Out-of-range slot reference in slot_of.
        let mut bad = p.to_raw();
        bad.slot_of[0] = Some(SlotId(999));
        assert!(Placement::from_raw(bad).is_none());
        // Out-of-range qubit reference in occupant (must not panic).
        let mut bad = p.to_raw();
        bad.occupant[1] = Some(Qubit(999));
        assert!(Placement::from_raw(bad).is_none());
        // Mismatched column lengths.
        let mut bad = p.to_raw();
        bad.slot_trap.pop();
        assert!(Placement::from_raw(bad).is_none());
        // Dimensionally fine but semantically inconsistent (occupancy
        // counter off by one).
        let mut bad = p.to_raw();
        bad.trap_occupancy[0] += 1;
        assert!(Placement::from_raw(bad).is_none());
    }

    #[test]
    fn place_and_lookup() {
        let (_, mut p) = setup();
        p.place(Qubit(0), SlotId(1));
        p.place(Qubit(1), SlotId(4));
        assert_eq!(p.slot_of(Qubit(0)), Some(SlotId(1)));
        assert_eq!(p.occupant(SlotId(4)), Some(Qubit(1)));
        assert_eq!(p.trap_of(Qubit(1)), Some(TrapId(1)));
        assert_eq!(p.num_placed(), 2);
        assert!(!p.is_complete());
        assert!(p.is_space(SlotId(0)));
        p.validate().unwrap();
    }

    #[test]
    fn try_place_rejects_occupied_and_unknown_slots() {
        let (_, mut p) = setup();
        p.place(Qubit(0), SlotId(1));
        assert_eq!(
            p.try_place(Qubit(1), SlotId(1)).unwrap_err(),
            ArchError::SlotOccupied { slot: SlotId(1) }
        );
        assert_eq!(
            p.try_place(Qubit(1), SlotId(99)).unwrap_err(),
            ArchError::UnknownSlot { slot: SlotId(99) }
        );
    }

    #[test]
    fn swap_within_trap_keeps_occupancy() {
        let (_, mut p) = setup();
        p.place(Qubit(0), SlotId(0));
        p.place(Qubit(1), SlotId(2));
        p.swap_slots(SlotId(0), SlotId(2));
        assert_eq!(p.slot_of(Qubit(0)), Some(SlotId(2)));
        assert_eq!(p.slot_of(Qubit(1)), Some(SlotId(0)));
        assert_eq!(p.trap_occupancy(TrapId(0)), 2);
        p.validate().unwrap();
    }

    #[test]
    fn swap_with_space_across_traps_moves_occupancy() {
        let (_, mut p) = setup();
        p.place(Qubit(0), SlotId(2)); // right end of trap 0
        assert_eq!(p.trap_occupancy(TrapId(0)), 1);
        p.swap_slots(SlotId(2), SlotId(3)); // shuttle into trap 1's left end
        assert_eq!(p.trap_occupancy(TrapId(0)), 0);
        assert_eq!(p.trap_occupancy(TrapId(1)), 1);
        assert_eq!(p.trap_of(Qubit(0)), Some(TrapId(1)));
        p.validate().unwrap();
    }

    #[test]
    fn full_trap_count_tracks_space_nodes() {
        let topo = QccdTopology::linear(2, 2);
        let mut p = Placement::new(&topo, 3);
        assert_eq!(p.full_trap_count(), 0);
        p.place(Qubit(0), SlotId(0));
        p.place(Qubit(1), SlotId(1));
        assert_eq!(p.full_trap_count(), 1);
        assert!(p.trap_is_full(TrapId(0)));
        p.place(Qubit(2), SlotId(2));
        assert_eq!(p.full_trap_count(), 1);
        assert_eq!(p.trap_free_slots(TrapId(1)), 1);
    }

    #[test]
    fn qubits_and_spaces_in_trap_follow_chain_order() {
        let (topo, mut p) = setup();
        p.place(Qubit(2), SlotId(2));
        p.place(Qubit(1), SlotId(0));
        assert_eq!(p.qubits_in_trap(&topo, TrapId(0)), vec![Qubit(1), Qubit(2)]);
        assert_eq!(p.spaces_in_trap(&topo, TrapId(0)), vec![SlotId(1)]);
    }

    #[test]
    fn swap_same_slot_is_noop() {
        let (_, mut p) = setup();
        p.place(Qubit(0), SlotId(0));
        p.swap_slots(SlotId(0), SlotId(0));
        assert_eq!(p.slot_of(Qubit(0)), Some(SlotId(0)));
        p.validate().unwrap();
    }

    #[test]
    fn assignments_lists_placed_qubits() {
        let (_, mut p) = setup();
        p.place(Qubit(0), SlotId(0));
        p.place(Qubit(3), SlotId(5));
        let mut a = p.assignments();
        a.sort();
        assert_eq!(a, vec![(Qubit(0), TrapId(0)), (Qubit(3), TrapId(1))]);
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn double_place_panics() {
        let (_, mut p) = setup();
        p.place(Qubit(0), SlotId(0));
        p.place(Qubit(0), SlotId(1));
    }
}
