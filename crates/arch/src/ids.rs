//! Identifier newtypes for the machine model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a trap (an ion chain / interaction zone) on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TrapId(pub u32);

impl TrapId {
    /// The raw index as a `usize`, convenient for indexing vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TrapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a physical slot: one unit of space inside a trap that can
/// hold exactly one ion (or be empty — a *space node* in the paper's
/// formulation). Slots are numbered globally and contiguously per trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SlotId(pub u32);

impl SlotId {
    /// The raw index as a `usize`, convenient for indexing vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(TrapId(3).to_string(), "T3");
        assert_eq!(SlotId(12).to_string(), "s12");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(TrapId(1) < TrapId(2));
        assert!(SlotId(0) < SlotId(10));
        assert_eq!(TrapId(4).index(), 4);
        assert_eq!(SlotId(9).index(), 9);
    }
}
