//! Error type for machine-model construction and placement operations.

use crate::ids::{SlotId, TrapId};
use std::error::Error;
use std::fmt;

/// Errors produced by topology construction or placement manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// A topology was requested with no traps.
    EmptyTopology,
    /// A trap capacity below the minimum of 2 slots was requested (a trap
    /// needs at least one qubit slot plus the room to receive an ion).
    CapacityTooSmall {
        /// The requested per-trap capacity.
        requested: usize,
    },
    /// The device does not have enough slots for the requested qubits.
    InsufficientCapacity {
        /// Number of program qubits to place.
        qubits: usize,
        /// Total number of slots on the device.
        slots: usize,
    },
    /// A slot id outside the device was referenced.
    UnknownSlot {
        /// The offending slot.
        slot: SlotId,
    },
    /// A trap id outside the device was referenced.
    UnknownTrap {
        /// The offending trap.
        trap: TrapId,
    },
    /// An attempt was made to place a qubit into an occupied slot.
    SlotOccupied {
        /// The occupied slot.
        slot: SlotId,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::EmptyTopology => write!(f, "topology must contain at least one trap"),
            ArchError::CapacityTooSmall { requested } => {
                write!(f, "trap capacity must be at least 2, got {requested}")
            }
            ArchError::InsufficientCapacity { qubits, slots } => {
                write!(f, "cannot place {qubits} qubits into {slots} slots")
            }
            ArchError::UnknownSlot { slot } => write!(f, "slot {slot} does not exist"),
            ArchError::UnknownTrap { trap } => write!(f, "trap {trap} does not exist"),
            ArchError::SlotOccupied { slot } => write!(f, "slot {slot} is already occupied"),
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(ArchError::EmptyTopology.to_string().contains("at least one trap"));
        assert!(ArchError::CapacityTooSmall { requested: 1 }.to_string().contains("at least 2"));
        assert!(ArchError::InsufficientCapacity { qubits: 10, slots: 4 }
            .to_string()
            .contains("10 qubits"));
        assert!(ArchError::UnknownSlot { slot: SlotId(7) }.to_string().contains("s7"));
        assert!(ArchError::SlotOccupied { slot: SlotId(2) }.to_string().contains("s2"));
        assert!(ArchError::UnknownTrap { trap: TrapId(9) }.to_string().contains("T9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchError>();
    }
}
