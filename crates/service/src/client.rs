//! A minimal client for the `ssync-serviced` IPC front-end.
//!
//! Mirrors the in-process request/handle API over [`wire`](crate::wire)
//! frames: `submit` returns a job id (the remote analogue of a
//! [`JobHandle`](crate::JobHandle)), `wait`/`poll` resolve it, `metrics`
//! snapshots the remote [`ServiceMetrics`](crate::ServiceMetrics). The
//! client is deliberately synchronous and single-connection — one
//! outstanding request at a time — because the concurrency lives
//! server-side in the pool; spin up more connections for parallel
//! waiting.
//!
//! ## TCP, auth and the backoff contract
//!
//! [`ServiceClient::connect_tcp`] dials a hardened TCP listener (see
//! [`front::serve_tcp`](crate::front::serve_tcp)) and performs the
//! `Hello`/`Welcome` handshake, presenting the shared token if the
//! deployment requires one. A TCP client remembers its endpoint, so
//! transient transport failures can be healed by a **transparent
//! reconnect** during [`ServiceClient::submit_with_backoff`].
//!
//! When the server sheds a submit with
//! [`ssync_core::CompileError::Overloaded`],
//! the client surfaces it as [`ClientError::Overloaded`] carrying the
//! server's `retry_after_ms` hint. [`ServiceClient::submit_with_backoff`]
//! implements the retry contract a well-behaved client owes the service:
//! bounded exponential backoff (doubling from
//! [`BackoffPolicy::initial_ms`] up to [`BackoffPolicy::max_ms`]) with
//! deterministic jitter, never sleeping less than the server's hint, and
//! giving up — with the last underlying error attached — once the next
//! sleep would cross [`BackoffPolicy::deadline`].
//!
//! ```no_run
//! use ssync_baselines::CompilerKind;
//! use ssync_circuit::generators::qft;
//! use ssync_core::CompilerConfig;
//! use ssync_service::client::ServiceClient;
//! use ssync_service::wire::RemoteRequest;
//!
//! let mut client = ServiceClient::connect_unix("/tmp/ssync-serviced.sock").unwrap();
//! let job = client
//!     .submit(&RemoteRequest::new("G-2x2", qft(10), CompilerKind::SSync,
//!                                 CompilerConfig::default()))
//!     .unwrap();
//! let outcome = client.wait(job).unwrap().unwrap();
//! println!("{} shuttles", outcome.counts().shuttles);
//! ```

use crate::codec::CodecError;
use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, RemoteQasmRequest, RemoteRequest,
    Request, Response,
};
use ssync_core::{CompileError, CompileOutcome};
use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// What can go wrong talking to a remote service.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(std::io::Error),
    /// A response payload did not decode.
    Codec(CodecError),
    /// The server rejected the request (unknown device or job id).
    Rejected(
        /// The server's reason.
        String,
    ),
    /// The server answered with a variant the request doesn't expect.
    UnexpectedResponse(
        /// A description of what arrived.
        &'static str,
    ),
    /// The connection closed before a response arrived.
    Disconnected,
    /// The server shed the submission at admission
    /// ([`CompileError::Overloaded`]); retry after the hinted delay, or
    /// let [`ServiceClient::submit_with_backoff`] do it.
    Overloaded {
        /// The server's advisory back-off, in milliseconds.
        retry_after_ms: u64,
    },
    /// [`ServiceClient::submit_with_backoff`] ran out of deadline while
    /// the failure stayed transient.
    RetriesExhausted {
        /// Submit attempts made before giving up.
        attempts: u32,
        /// The transient error the final attempt observed.
        last: Box<ClientError>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Codec(e) => write!(f, "undecodable response: {e}"),
            ClientError::Rejected(reason) => write!(f, "request rejected: {reason}"),
            ClientError::UnexpectedResponse(what) => {
                write!(f, "unexpected response variant: {what}")
            }
            ClientError::Disconnected => write!(f, "server disconnected"),
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "service overloaded; retry after ~{retry_after_ms} ms")
            }
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> Self {
        ClientError::Codec(e)
    }
}

/// Identifier of a job submitted through a [`ServiceClient`] — the remote
/// analogue of a [`JobHandle`](crate::JobHandle), scoped to its
/// connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteJob(pub u64);

/// The retry schedule [`ServiceClient::submit_with_backoff`] follows on
/// transient failures (`Overloaded`, transport errors): exponential
/// backoff doubling from [`initial_ms`](BackoffPolicy::initial_ms) and
/// capped at [`max_ms`](BackoffPolicy::max_ms), plus deterministic
/// jitter of up to half the current backoff (seeded xorshift — the
/// workspace vendors no RNG crate, and a seeded sequence keeps tests
/// reproducible). A sleep never undercuts the server's `retry_after_ms`
/// hint, and the whole loop gives up once the next sleep would cross
/// [`deadline`](BackoffPolicy::deadline).
#[derive(Debug, Clone)]
pub struct BackoffPolicy {
    /// First retry delay, in milliseconds.
    pub initial_ms: u64,
    /// Ceiling on the exponential backoff, in milliseconds.
    pub max_ms: u64,
    /// Overall budget across all attempts (measured from the first
    /// attempt; the first attempt itself always runs).
    pub deadline: Duration,
    /// Seed for the deterministic jitter sequence.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            initial_ms: 10,
            max_ms: 2_000,
            deadline: Duration::from_secs(30),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl BackoffPolicy {
    /// Returns a copy with a different overall deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Returns a copy with a different jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One xorshift64 step: fast, seedable, plenty for decorrelating retry
/// storms (this is jitter, not cryptography).
fn xorshift64(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// The next sleep, in milliseconds: `backoff_ms` plus jitter of up to
/// half of it, floored at the server's `retry_after_ms` hint so a client
/// never comes back earlier than the service asked.
fn next_wait_ms(backoff_ms: u64, hint_ms: Option<u64>, rng: &mut u64) -> u64 {
    let jitter = xorshift64(rng) % (backoff_ms / 2 + 1);
    (backoff_ms + jitter).max(hint_ms.unwrap_or(0))
}

/// How to re-establish a TCP session: the resolved address and the token
/// to present in the `Hello` handshake.
#[derive(Debug, Clone)]
struct TcpEndpoint {
    addr: std::net::SocketAddr,
    token: Option<String>,
}

/// A synchronous connection to an `ssync-serviced` daemon over any byte
/// stream pair (a Unix socket, a TCP connection, or a child process's
/// stdio).
pub struct ServiceClient {
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
    /// `Some` for TCP clients: lets transient transport failures heal by
    /// dialling the endpoint again (job ids do not survive a reconnect —
    /// they are per-connection server state).
    endpoint: Option<TcpEndpoint>,
}

impl std::fmt::Debug for ServiceClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceClient").finish_non_exhaustive()
    }
}

impl ServiceClient {
    /// A client over an explicit reader/writer pair — e.g. a spawned
    /// daemon's stdout/stdin (see `examples/remote_compile.rs`).
    pub fn over(reader: impl Read + Send + 'static, writer: impl Write + Send + 'static) -> Self {
        ServiceClient { reader: Box::new(reader), writer: Box::new(writer), endpoint: None }
    }

    /// Connects to a daemon listening on a Unix domain socket.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        let reader = stream.try_clone()?;
        Ok(Self::over(reader, stream))
    }

    /// Connects to a daemon's TCP listener and performs the
    /// `Hello`/`Welcome` handshake, presenting `token` if the deployment
    /// requires one (an empty token is sent otherwise — harmless against
    /// an open listener, and it doubles as a protocol-version probe).
    /// The endpoint is remembered so
    /// [`submit_with_backoff`](ServiceClient::submit_with_backoff) can
    /// transparently reconnect after transport failures.
    ///
    /// # Errors
    ///
    /// Connect/transport failures, [`ClientError::Rejected`] when the
    /// server refuses the token, or
    /// [`ClientError::UnexpectedResponse`] if the peer is not an
    /// `ssync-serviced` TCP front-end.
    pub fn connect_tcp(
        addr: impl std::net::ToSocketAddrs,
        token: Option<&str>,
    ) -> Result<Self, ClientError> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ))
        })?;
        let endpoint = TcpEndpoint { addr, token: token.map(String::from) };
        let mut client = Self::dial(&endpoint)?;
        client.endpoint = Some(endpoint);
        Ok(client)
    }

    /// Opens a fresh TCP session to `endpoint` and runs the handshake.
    fn dial(endpoint: &TcpEndpoint) -> Result<Self, ClientError> {
        let stream = std::net::TcpStream::connect(endpoint.addr)?;
        let _ = stream.set_nodelay(true); // request/response protocol
        let reader = stream.try_clone()?;
        let mut client = Self::over(reader, stream);
        let hello = Request::Hello { token: endpoint.token.clone().unwrap_or_default() };
        match client.round_trip(&hello)? {
            Response::Welcome { .. } => Ok(client),
            _ => Err(ClientError::UnexpectedResponse("hello expected Welcome")),
        }
    }

    /// Replaces a (presumed dead) TCP session with a fresh one to the
    /// remembered endpoint. `false` when this client has no endpoint
    /// (stdio/Unix transports) or the dial itself failed — the caller's
    /// backoff loop treats that as one more transient failure.
    fn reconnect(&mut self) -> bool {
        let Some(endpoint) = self.endpoint.clone() else {
            return false;
        };
        match Self::dial(&endpoint) {
            Ok(fresh) => {
                self.reader = fresh.reader;
                self.writer = fresh.writer;
                true
            }
            Err(_) => false,
        }
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &encode_request(request))?;
        let payload = read_frame(&mut self.reader)?.ok_or(ClientError::Disconnected)?;
        let response = decode_response(&payload)?;
        if let Response::Rejected { reason } = response {
            return Err(ClientError::Rejected(reason));
        }
        Ok(response)
    }

    /// Submits a compile request; the returned [`RemoteJob`] feeds
    /// [`ServiceClient::wait`] / [`ServiceClient::poll`].
    ///
    /// # Errors
    ///
    /// Transport/codec failures, or [`ClientError::Rejected`] for an
    /// unknown device name.
    pub fn submit(&mut self, request: &RemoteRequest) -> Result<RemoteJob, ClientError> {
        self.submit_traced(request).map(|(job, _trace_id)| job)
    }

    /// [`submit`](ServiceClient::submit), additionally returning the
    /// server-assigned **trace id** (wire v5) identifying this request's
    /// end-to-end trace in the daemon's journal and slow-request log.
    /// Zero when the daemon predates tracing.
    ///
    /// # Errors
    ///
    /// As [`submit`](ServiceClient::submit).
    pub fn submit_traced(
        &mut self,
        request: &RemoteRequest,
    ) -> Result<(RemoteJob, u64), ClientError> {
        match self.round_trip(&Request::Submit(Box::new(request.clone())))? {
            Response::Submitted { job, trace_id } => Ok((RemoteJob(job), trace_id)),
            Response::CompileFailed(CompileError::Overloaded { retry_after_ms }) => {
                Err(ClientError::Overloaded { retry_after_ms })
            }
            _ => Err(ClientError::UnexpectedResponse("submit expected Submitted")),
        }
    }

    /// [`submit`](ServiceClient::submit) with the retry contract: on
    /// `Overloaded` or a transport failure, sleep per `policy` (bounded
    /// exponential backoff, deterministic jitter, never undercutting the
    /// server's `retry_after_ms` hint), transparently reconnect TCP
    /// sessions, and try again — until acceptance, a permanent error, or
    /// the policy's deadline.
    ///
    /// A retried submit is **at-least-once**: if the transport died after
    /// the server accepted but before the `Submitted` frame arrived, the
    /// retry compiles the request again — the result cache and in-flight
    /// coalescing make the duplicate cheap, and job ids from before a
    /// reconnect are invalid anyway (they are per-connection state).
    ///
    /// # Errors
    ///
    /// Permanent errors ([`ClientError::Rejected`], codec failures)
    /// propagate immediately; exhausting the deadline returns
    /// [`ClientError::RetriesExhausted`] wrapping the last transient
    /// error.
    pub fn submit_with_backoff(
        &mut self,
        request: &RemoteRequest,
        policy: &BackoffPolicy,
    ) -> Result<RemoteJob, ClientError> {
        self.retry_with_backoff(policy, |client| client.submit(request))
    }

    /// [`submit_qasm`](ServiceClient::submit_qasm) under the same retry
    /// contract as [`submit_with_backoff`](ServiceClient::submit_with_backoff).
    ///
    /// # Errors
    ///
    /// As [`submit_with_backoff`](ServiceClient::submit_with_backoff);
    /// parse rejections are permanent and propagate immediately.
    pub fn submit_qasm_with_backoff(
        &mut self,
        request: &RemoteQasmRequest,
        policy: &BackoffPolicy,
    ) -> Result<(RemoteJob, ssync_qasm::ParseReport), ClientError> {
        self.retry_with_backoff(policy, |client| client.submit_qasm(request))
    }

    /// The shared retry loop: classifies each failure as transient
    /// (retry) or permanent (propagate), heals transport failures with a
    /// reconnect when an endpoint is known, and enforces the deadline.
    fn retry_with_backoff<T>(
        &mut self,
        policy: &BackoffPolicy,
        mut attempt: impl FnMut(&mut Self) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let started = Instant::now();
        let mut backoff_ms = policy.initial_ms.max(1);
        let mut rng = policy.seed | 1; // xorshift must not start at 0
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let error = match attempt(self) {
                Ok(value) => return Ok(value),
                Err(e) => e,
            };
            let hint_ms = match &error {
                ClientError::Overloaded { retry_after_ms } => Some(*retry_after_ms),
                ClientError::Io(_) | ClientError::Disconnected => {
                    // A dead connection stays dead for stdio/Unix
                    // clients; only an endpoint-aware client can retry.
                    if self.endpoint.is_none() {
                        return Err(error);
                    }
                    None
                }
                _ => return Err(error),
            };
            let wait = Duration::from_millis(next_wait_ms(backoff_ms, hint_ms, &mut rng));
            if started.elapsed() + wait > policy.deadline {
                return Err(ClientError::RetriesExhausted { attempts, last: Box::new(error) });
            }
            std::thread::sleep(wait);
            if matches!(error, ClientError::Io(_) | ClientError::Disconnected) {
                // Failure here is fine: the next attempt surfaces it and
                // the loop keeps backing off until the deadline.
                self.reconnect();
            }
            backoff_ms = (backoff_ms * 2).min(policy.max_ms);
        }
    }

    /// Submits raw OpenQASM 2.0 source (wire v2): the daemon parses,
    /// lowers and compiles it server-side, bit-identically to parsing
    /// locally and calling [`ServiceClient::submit`] with the circuit.
    /// Alongside the job id, the returned
    /// [`ParseReport`](ssync_qasm::ParseReport) tells the caller what
    /// the server-side lowering stripped (measurements, resets,
    /// conditionals) — check
    /// [`stripped_anything`](ssync_qasm::ParseReport::stripped_anything)
    /// to warn users that the compiled circuit is not the full program
    /// they sent.
    ///
    /// # Errors
    ///
    /// Transport/codec failures, or [`ClientError::Rejected`] carrying
    /// the parse diagnostic (`line:col: ...`) or an unknown device name.
    pub fn submit_qasm(
        &mut self,
        request: &RemoteQasmRequest,
    ) -> Result<(RemoteJob, ssync_qasm::ParseReport), ClientError> {
        self.submit_qasm_traced(request).map(|(job, report, _trace_id)| (job, report))
    }

    /// [`submit_qasm`](ServiceClient::submit_qasm), additionally
    /// returning the server-assigned trace id (wire v5; zero when the
    /// daemon predates tracing).
    ///
    /// # Errors
    ///
    /// As [`submit_qasm`](ServiceClient::submit_qasm).
    pub fn submit_qasm_traced(
        &mut self,
        request: &RemoteQasmRequest,
    ) -> Result<(RemoteJob, ssync_qasm::ParseReport, u64), ClientError> {
        match self.round_trip(&Request::SubmitQasm(Box::new(request.clone())))? {
            Response::QasmSubmitted { job, report, trace_id } => {
                Ok((RemoteJob(job), report, trace_id))
            }
            Response::CompileFailed(CompileError::Overloaded { retry_after_ms }) => {
                Err(ClientError::Overloaded { retry_after_ms })
            }
            _ => Err(ClientError::UnexpectedResponse("submit_qasm expected QasmSubmitted")),
        }
    }

    /// Blocks until `job` finishes; the inner result is the compile's own
    /// success or failure, exactly as [`crate::JobHandle::wait`] returns
    /// it in-process.
    ///
    /// # Errors
    ///
    /// Transport/codec failures, or [`ClientError::Rejected`] for an
    /// unknown job id.
    pub fn wait(
        &mut self,
        job: RemoteJob,
    ) -> Result<Result<CompileOutcome, CompileError>, ClientError> {
        match self.round_trip(&Request::Wait { job: job.0 })? {
            Response::Outcome(outcome) => Ok(Ok(outcome)),
            Response::CompileFailed(error) => Ok(Err(error)),
            _ => Err(ClientError::UnexpectedResponse("wait expected a result")),
        }
    }

    /// Non-blocking check of `job`: `None` while it is still running.
    ///
    /// # Errors
    ///
    /// Transport/codec failures, or [`ClientError::Rejected`] for an
    /// unknown job id.
    pub fn poll(
        &mut self,
        job: RemoteJob,
    ) -> Result<Option<Result<CompileOutcome, CompileError>>, ClientError> {
        match self.round_trip(&Request::Poll { job: job.0 })? {
            Response::Pending => Ok(None),
            Response::Outcome(outcome) => Ok(Some(Ok(outcome))),
            Response::CompileFailed(error) => Ok(Some(Err(error))),
            _ => Err(ClientError::UnexpectedResponse("poll expected a status")),
        }
    }

    /// Fetches a metrics snapshot from the daemon.
    ///
    /// # Errors
    ///
    /// Transport/codec failures.
    pub fn metrics(&mut self) -> Result<crate::ServiceMetrics, ClientError> {
        match self.round_trip(&Request::Metrics)? {
            Response::Metrics(metrics) => Ok(metrics),
            _ => Err(ClientError::UnexpectedResponse("metrics expected Metrics")),
        }
    }

    /// Fetches the daemon's metrics and latency histograms rendered as
    /// Prometheus-style text exposition (wire v5) — the same bytes the
    /// daemon's `--metrics-text` flag writes to disk.
    ///
    /// # Errors
    ///
    /// Transport/codec failures; a pre-v5 daemon answers the unknown tag
    /// with a codec error, which surfaces here.
    pub fn stats_text(&mut self) -> Result<String, ClientError> {
        match self.round_trip(&Request::GetStats)? {
            Response::StatsText { text } => Ok(text),
            _ => Err(ClientError::UnexpectedResponse("stats expected StatsText")),
        }
    }

    /// Fetches one trace from the daemon's journal by the id
    /// [`submit_traced`](ServiceClient::submit_traced) returned (wire
    /// v6). The first string is the trace's span + stages + attributes
    /// in the slow-request-log JSONL schema; the second is the flight-
    /// recorder event stream (header line plus one JSON object per
    /// event), empty when the daemon compiled with the recorder off.
    ///
    /// # Errors
    ///
    /// Transport/codec failures, [`ClientError::Rejected`] when the
    /// journal no longer holds the id; a pre-v6 daemon answers the
    /// unknown tag with a codec error, which surfaces here.
    pub fn get_trace(&mut self, trace_id: u64) -> Result<(String, String), ClientError> {
        match self.round_trip(&Request::GetTrace { trace_id })? {
            Response::TraceDetail { span_jsonl, recorder_jsonl, .. } => {
                Ok((span_jsonl, recorder_jsonl))
            }
            _ => Err(ClientError::UnexpectedResponse("get_trace expected TraceDetail")),
        }
    }

    /// Asks the daemon to exit (acknowledged before it does).
    ///
    /// # Errors
    ///
    /// Transport/codec failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("shutdown expected ShuttingDown")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_bounded_and_honors_the_hint() {
        let mut a = 42u64 | 1;
        let mut b = 42u64 | 1;
        let schedule_a: Vec<u64> = (0..16).map(|_| next_wait_ms(100, None, &mut a)).collect();
        let schedule_b: Vec<u64> = (0..16).map(|_| next_wait_ms(100, None, &mut b)).collect();
        assert_eq!(schedule_a, schedule_b, "same seed, same schedule");
        for wait in &schedule_a {
            assert!((100..=150).contains(wait), "backoff + at most half jitter, got {wait}");
        }
        assert!(schedule_a.windows(2).any(|w| w[0] != w[1]), "jitter actually varies");
        let mut rng = 7u64;
        assert!(next_wait_ms(10, Some(500), &mut rng) >= 500, "server hint floors the sleep");
    }
}
