//! A minimal client for the `ssync-serviced` IPC front-end.
//!
//! Mirrors the in-process request/handle API over [`wire`](crate::wire)
//! frames: `submit` returns a job id (the remote analogue of a
//! [`JobHandle`](crate::JobHandle)), `wait`/`poll` resolve it, `metrics`
//! snapshots the remote [`ServiceMetrics`](crate::ServiceMetrics). The
//! client is deliberately synchronous and single-connection — one
//! outstanding request at a time — because the concurrency lives
//! server-side in the pool; spin up more connections for parallel
//! waiting.
//!
//! ```no_run
//! use ssync_baselines::CompilerKind;
//! use ssync_circuit::generators::qft;
//! use ssync_core::CompilerConfig;
//! use ssync_service::client::ServiceClient;
//! use ssync_service::wire::RemoteRequest;
//!
//! let mut client = ServiceClient::connect_unix("/tmp/ssync-serviced.sock").unwrap();
//! let job = client
//!     .submit(&RemoteRequest::new("G-2x2", qft(10), CompilerKind::SSync,
//!                                 CompilerConfig::default()))
//!     .unwrap();
//! let outcome = client.wait(job).unwrap().unwrap();
//! println!("{} shuttles", outcome.counts().shuttles);
//! ```

use crate::codec::CodecError;
use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, RemoteQasmRequest, RemoteRequest,
    Request, Response,
};
use ssync_core::{CompileError, CompileOutcome};
use std::io::{Read, Write};

/// What can go wrong talking to a remote service.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(std::io::Error),
    /// A response payload did not decode.
    Codec(CodecError),
    /// The server rejected the request (unknown device or job id).
    Rejected(
        /// The server's reason.
        String,
    ),
    /// The server answered with a variant the request doesn't expect.
    UnexpectedResponse(
        /// A description of what arrived.
        &'static str,
    ),
    /// The connection closed before a response arrived.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Codec(e) => write!(f, "undecodable response: {e}"),
            ClientError::Rejected(reason) => write!(f, "request rejected: {reason}"),
            ClientError::UnexpectedResponse(what) => {
                write!(f, "unexpected response variant: {what}")
            }
            ClientError::Disconnected => write!(f, "server disconnected"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> Self {
        ClientError::Codec(e)
    }
}

/// Identifier of a job submitted through a [`ServiceClient`] — the remote
/// analogue of a [`JobHandle`](crate::JobHandle), scoped to its
/// connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteJob(pub u64);

/// A synchronous connection to an `ssync-serviced` daemon over any byte
/// stream pair (a Unix socket, or a child process's stdio).
pub struct ServiceClient {
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
}

impl std::fmt::Debug for ServiceClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceClient").finish_non_exhaustive()
    }
}

impl ServiceClient {
    /// A client over an explicit reader/writer pair — e.g. a spawned
    /// daemon's stdout/stdin (see `examples/remote_compile.rs`).
    pub fn over(reader: impl Read + Send + 'static, writer: impl Write + Send + 'static) -> Self {
        ServiceClient { reader: Box::new(reader), writer: Box::new(writer) }
    }

    /// Connects to a daemon listening on a Unix domain socket.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        let reader = stream.try_clone()?;
        Ok(Self::over(reader, stream))
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &encode_request(request))?;
        let payload = read_frame(&mut self.reader)?.ok_or(ClientError::Disconnected)?;
        let response = decode_response(&payload)?;
        if let Response::Rejected { reason } = response {
            return Err(ClientError::Rejected(reason));
        }
        Ok(response)
    }

    /// Submits a compile request; the returned [`RemoteJob`] feeds
    /// [`ServiceClient::wait`] / [`ServiceClient::poll`].
    ///
    /// # Errors
    ///
    /// Transport/codec failures, or [`ClientError::Rejected`] for an
    /// unknown device name.
    pub fn submit(&mut self, request: &RemoteRequest) -> Result<RemoteJob, ClientError> {
        match self.round_trip(&Request::Submit(Box::new(request.clone())))? {
            Response::Submitted { job } => Ok(RemoteJob(job)),
            _ => Err(ClientError::UnexpectedResponse("submit expected Submitted")),
        }
    }

    /// Submits raw OpenQASM 2.0 source (wire v2): the daemon parses,
    /// lowers and compiles it server-side, bit-identically to parsing
    /// locally and calling [`ServiceClient::submit`] with the circuit.
    /// Alongside the job id, the returned
    /// [`ParseReport`](ssync_qasm::ParseReport) tells the caller what
    /// the server-side lowering stripped (measurements, resets,
    /// conditionals) — check
    /// [`stripped_anything`](ssync_qasm::ParseReport::stripped_anything)
    /// to warn users that the compiled circuit is not the full program
    /// they sent.
    ///
    /// # Errors
    ///
    /// Transport/codec failures, or [`ClientError::Rejected`] carrying
    /// the parse diagnostic (`line:col: ...`) or an unknown device name.
    pub fn submit_qasm(
        &mut self,
        request: &RemoteQasmRequest,
    ) -> Result<(RemoteJob, ssync_qasm::ParseReport), ClientError> {
        match self.round_trip(&Request::SubmitQasm(Box::new(request.clone())))? {
            Response::QasmSubmitted { job, report } => Ok((RemoteJob(job), report)),
            _ => Err(ClientError::UnexpectedResponse("submit_qasm expected QasmSubmitted")),
        }
    }

    /// Blocks until `job` finishes; the inner result is the compile's own
    /// success or failure, exactly as [`crate::JobHandle::wait`] returns
    /// it in-process.
    ///
    /// # Errors
    ///
    /// Transport/codec failures, or [`ClientError::Rejected`] for an
    /// unknown job id.
    pub fn wait(
        &mut self,
        job: RemoteJob,
    ) -> Result<Result<CompileOutcome, CompileError>, ClientError> {
        match self.round_trip(&Request::Wait { job: job.0 })? {
            Response::Outcome(outcome) => Ok(Ok(outcome)),
            Response::CompileFailed(error) => Ok(Err(error)),
            _ => Err(ClientError::UnexpectedResponse("wait expected a result")),
        }
    }

    /// Non-blocking check of `job`: `None` while it is still running.
    ///
    /// # Errors
    ///
    /// Transport/codec failures, or [`ClientError::Rejected`] for an
    /// unknown job id.
    pub fn poll(
        &mut self,
        job: RemoteJob,
    ) -> Result<Option<Result<CompileOutcome, CompileError>>, ClientError> {
        match self.round_trip(&Request::Poll { job: job.0 })? {
            Response::Pending => Ok(None),
            Response::Outcome(outcome) => Ok(Some(Ok(outcome))),
            Response::CompileFailed(error) => Ok(Some(Err(error))),
            _ => Err(ClientError::UnexpectedResponse("poll expected a status")),
        }
    }

    /// Fetches a metrics snapshot from the daemon.
    ///
    /// # Errors
    ///
    /// Transport/codec failures.
    pub fn metrics(&mut self) -> Result<crate::ServiceMetrics, ClientError> {
        match self.round_trip(&Request::Metrics)? {
            Response::Metrics(metrics) => Ok(metrics),
            _ => Err(ClientError::UnexpectedResponse("metrics expected Metrics")),
        }
    }

    /// Asks the daemon to exit (acknowledged before it does).
    ///
    /// # Errors
    ///
    /// Transport/codec failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("shutdown expected ShuttingDown")),
        }
    }
}
