//! The compile service: a work-stealing worker pool with priority classes
//! and per-tenant fairness over the unified compiler entry point.
//!
//! ## Scheduling structure
//!
//! Hand-rolled on `std::sync` (no external runtime):
//!
//! * **Priority injector** — the shared queue single [`submit`]s land in.
//!   It is not one deque but a small set of [`Priority`] levels (High,
//!   Normal, Batch), each holding **per-tenant deques** drained with
//!   *weighted deficit round-robin*: every queued tenant accumulates
//!   deficit at its configured weight (default 1.0,
//!   [`set_tenant_weight`]) and pays 1.0 per job served, so one tenant's
//!   10k-job sweep interleaves with — instead of starving — everyone
//!   else's work at the same level. Levels are strict: any queued High job
//!   is claimed before any Normal one, and Normal before Batch.
//! * **Per-worker deques** — [`submit_batch`] deals *Normal-priority*
//!   jobs round-robin across the workers' own deques, giving each worker
//!   an affine run of work it pops LIFO-front from its own end. High and
//!   Batch submissions always go through the injector (High so the next
//!   free worker grabs them, Batch so they cannot bypass the fairness
//!   queue).
//! * **Stealing** — a worker whose deque and the injector are both empty
//!   scans the other workers' deques and steals from the *back*, so
//!   skewed batches (one giant circuit next to many small ones) rebalance
//!   without any coordination from the submitter.
//!
//! A worker claims work in the order: High injector jobs → its own deque
//! → Normal then Batch injector jobs → stealing.
//!
//! Sleeping is coordinated through one `Mutex<…>/Condvar` pair guarding a
//! `queued` count: producers increment it under the lock *before* pushing
//! a job (so a claim can never outrun its announcement and underflow the
//! counter), workers decrement it when they claim one and only sleep
//! while it is zero — so a wakeup can never be lost between "scanned
//! empty" and "went to sleep".
//!
//! ## Deduplication, and its deliberate limit
//!
//! Identical requests are deduplicated twice over: completed outcomes are
//! served from the [`ResultCache`], and a request identical to a job still
//! *in flight* coalesces onto it — the submission gets a handle to the
//! same pending state instead of queuing a second compile.
//!
//! **Near-duplicates are not coalesced.** Two requests for the same
//! device and circuit under *different* configs (or compilers) run as two
//! independent compiles, even though a planner could conceivably batch
//! them onto one warm worker sharing the device artifact and circuit
//! prep. That planner does not exist yet; to keep the gap measurable the
//! service counts such submissions in
//! [`ServiceMetrics::jobs_near_duplicate`] — compare it against
//! `jobs_coalesced` to see what exact-duplicate coalescing misses.
//!
//! ## Determinism
//!
//! Workers race for *jobs*, never for *results*: each job's outcome is a
//! pure function of its request, and every result lands in its own
//! [`JobHandle`]. Output is therefore bit-identical to a sequential
//! [`CompilerKind::compile_on`] loop at any worker count, any priority
//! mix and any tenant labelling — priorities and fairness reorder *when*
//! a job runs, never *what* it computes. The `service_equivalence`
//! integration tests enforce exactly that.
//!
//! ## Example
//!
//! ```
//! use ssync_baselines::CompilerKind;
//! use ssync_circuit::generators::qft;
//! use ssync_core::{CacheBounds, CompilerConfig};
//! use ssync_service::{CompileRequest, CompileService, Priority, TenantId};
//! use std::sync::Arc;
//!
//! let service = CompileService::builder()
//!     .workers(2)
//!     .cache_bounds(CacheBounds::with_max_entries(256))
//!     .build();
//! let config = CompilerConfig::default();
//! let device = service.registry().get_or_build_named("G-2x2", config.weights).unwrap();
//! // A bulk sweep runs at Batch priority under its own tenant ...
//! let sweep = service.submit_batch((8..=10).map(|n| {
//!     CompileRequest::new(Arc::clone(&device), Arc::new(qft(n)), CompilerKind::SSync, config)
//!         .with_priority(Priority::Batch)
//!         .with_tenant(TenantId::from_name("sweep"))
//! }));
//! // ... while an interactive request jumps every Batch job.
//! let urgent = service.submit(
//!     CompileRequest::new(Arc::clone(&device), Arc::new(qft(12)), CompilerKind::SSync, config)
//!         .with_priority(Priority::High),
//! );
//! assert!(urgent.wait().is_ok());
//! assert!(sweep.iter().all(|h| h.wait().is_ok()));
//! assert_eq!(service.metrics().jobs_completed, 4);
//! ```
//!
//! [`submit`]: CompileService::submit
//! [`submit_batch`]: CompileService::submit_batch
//! [`set_tenant_weight`]: CompileService::set_tenant_weight
//! [`CompilerKind::compile_on`]: ssync_baselines::CompilerKind::compile_on

use crate::cache::{CacheConfig, CacheKey, ResultCache};
use crate::hash::config_hash;
use crate::job::{CompileRequest, JobHandle, JobResult, JobState, Priority, TenantId};
use crate::metrics::{ServiceMetrics, WorkerMetrics};
use crate::registry::DeviceRegistry;
use crate::telemetry::{kind_slug, ServiceTelemetry, Stage, TRACE_JOURNAL_CAPACITY};
use ssync_circuit::{Circuit, Qubit};
use ssync_core::{
    batch, budget_scoring_threads, resolve_scoring_threads, CacheBounds, CompileError,
    CompileScratch,
};
use ssync_telemetry::Span;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Per-circuit preparation shared by every job over the same circuit
/// content: the stable hash (computed at submission) and the greedy
/// baselines' first-use qubit order, computed lazily by the first worker
/// that needs it and reused across every topology cell and compiler kind
/// afterwards.
#[derive(Debug)]
struct CircuitPrep {
    hash: u64,
    first_use: OnceLock<Vec<Qubit>>,
}

/// One queued unit of work. `attached` counts the submissions sharing this
/// job's `state` (1 plus any identical requests coalesced onto it while it
/// was in flight). `registered` records whether the job holds a pending
/// (coalescing) entry that must be retired on completion —
/// deadline-carrying jobs never register (their expiry must not leak to a
/// coalesced waiter). `submitted` anchors the deadline clock.
struct Job {
    request: CompileRequest,
    prep: Arc<CircuitPrep>,
    key: CacheKey,
    state: Arc<JobState>,
    attached: Arc<AtomicU64>,
    registered: bool,
    submitted: Instant,
    /// The request's trace span; the worker records queue-wait, compile
    /// and cache-write stages on it and finishes it at fulfilment.
    span: Span,
}

/// A not-yet-completed job identical submissions coalesce onto.
struct PendingEntry {
    state: Arc<JobState>,
    attached: Arc<AtomicU64>,
}

/// In-flight bookkeeping: the coalescing map plus a (device, circuit)
/// pair count that detects near-duplicate submissions (same pair, new
/// key) for the metrics.
#[derive(Default)]
struct PendingState {
    jobs: HashMap<CacheKey, PendingEntry>,
    pairs: HashMap<(u64, u64), u32>,
}

/// Minimum effective tenant weight: bounds how many DRR rotations a pop
/// may need before some deficit reaches 1.0.
const MIN_TENANT_WEIGHT: f64 = 1.0 / 16.0;

/// One tenant's deque plus its deficit counter at one priority level.
struct TenantQueue<T> {
    deficit: f64,
    jobs: VecDeque<T>,
}

/// One priority level: per-tenant queues and the round-robin ring of
/// tenants that currently have work. Invariant: a tenant is in `ring`
/// exactly once iff it is in `tenants`.
struct Level<T> {
    tenants: HashMap<TenantId, TenantQueue<T>>,
    ring: VecDeque<TenantId>,
}

impl<T> Default for Level<T> {
    fn default() -> Self {
        Level { tenants: HashMap::new(), ring: VecDeque::new() }
    }
}

impl<T> Level<T> {
    fn push(&mut self, tenant: TenantId, item: T) {
        match self.tenants.entry(tenant) {
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                slot.get_mut().jobs.push_back(item);
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                let mut jobs = VecDeque::new();
                jobs.push_back(item);
                slot.insert(TenantQueue { deficit: 0.0, jobs });
                self.ring.push_back(tenant);
            }
        }
    }

    /// Weighted deficit round-robin: the front-of-ring tenant accumulates
    /// `weight` per visit and pays 1.0 per job; when its deficit drops
    /// below 1.0 (or its queue empties) the ring rotates. Deficit is not
    /// banked across idle periods — a drained tenant re-enters at zero.
    fn pop(&mut self, weights: &HashMap<TenantId, f64>) -> Option<T> {
        while let Some(&tenant) = self.ring.front() {
            let Some(queue) = self.tenants.get_mut(&tenant) else {
                self.ring.pop_front();
                continue;
            };
            if queue.jobs.is_empty() {
                self.tenants.remove(&tenant);
                self.ring.pop_front();
                continue;
            }
            if queue.deficit < 1.0 {
                let weight = weights.get(&tenant).copied().unwrap_or(1.0).max(MIN_TENANT_WEIGHT);
                queue.deficit += weight;
                if queue.deficit < 1.0 {
                    self.ring.rotate_left(1);
                    continue;
                }
            }
            queue.deficit -= 1.0;
            let item = queue.jobs.pop_front().expect("checked non-empty");
            if queue.jobs.is_empty() {
                self.tenants.remove(&tenant);
                self.ring.pop_front();
            } else if queue.deficit < 1.0 {
                self.ring.rotate_left(1);
            }
            return Some(item);
        }
        None
    }
}

/// The shared injector: one [`Level`] per [`Priority`], plus the tenant
/// weight table. Levels are strict; fairness lives inside each level.
struct Injector<T> {
    levels: [Level<T>; 3],
    weights: HashMap<TenantId, f64>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector { levels: Default::default(), weights: HashMap::new() }
    }
}

impl<T> Injector<T> {
    fn push(&mut self, priority: Priority, tenant: TenantId, item: T) {
        self.levels[priority.index()].push(tenant, item);
    }

    fn pop(&mut self, priority: Priority) -> Option<T> {
        // Split borrow: the level is mutated, the weight table only read.
        let Injector { levels, weights } = self;
        levels[priority.index()].pop(weights)
    }
}

/// Producer/worker sleep coordination; see the module docs.
#[derive(Debug, Default)]
struct SleepState {
    /// Jobs published to some queue and not yet claimed by a worker.
    queued: usize,
    /// Set once by `Drop`; workers drain every queue, then exit.
    shutdown: bool,
}

struct Shared {
    injector: Mutex<Injector<Job>>,
    /// Effective intra-compile scoring-thread count every worker pins into
    /// the config it executes (see [`CompileService::scoring_threads`]).
    /// Computed once at start: the requested count (builder →
    /// `SSYNC_SCORE_THREADS` → 1) budgeted against the pool size so
    /// `workers × scoring_threads` never oversubscribes the host.
    scoring_threads: usize,
    /// Whether executed compiles carry a flight recorder. Pinned into the
    /// job's config at execution time — after the cache key is computed —
    /// exactly like `scoring_threads`, because the recorder observes
    /// without changing compiled output.
    flight_recorder: bool,
    /// High-priority jobs currently in the injector. Incremented *before*
    /// the push (same never-ahead rule as `SleepState::queued`),
    /// decremented on a successful High pop. Lets workers with affine
    /// deque work skip the shared injector lock entirely while no High
    /// job exists — the common case in a dealt batch.
    high_pending: AtomicUsize,
    deques: Vec<Mutex<VecDeque<Job>>>,
    sleep: Mutex<SleepState>,
    wake: Condvar,
    cache: ResultCache,
    preps: Mutex<HashMap<u64, Arc<CircuitPrep>>>,
    pending: Mutex<PendingState>,
    submitted: AtomicU64,
    submitted_by_priority: [AtomicU64; 3],
    completed: AtomicU64,
    coalesced: AtomicU64,
    near_duplicate: AtomicU64,
    deadline_expired: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_unauthorized: AtomicU64,
    conns_timed_out: AtomicU64,
    janitor_gc_runs: AtomicU64,
    candidates_scored: AtomicU64,
    score_shards_spawned: AtomicU64,
    score_cache_shard_hits: AtomicU64,
    executed: Vec<AtomicU64>,
    stolen: Vec<AtomicU64>,
    telemetry: ServiceTelemetry,
}

impl Shared {
    /// Claims the next job for worker `me` in the priority-aware order:
    /// High injector jobs, then the worker's own deque, then Normal and
    /// Batch injector jobs, then the back of every other worker's deque.
    /// Returns the job and whether it was stolen.
    fn find_job(&self, me: usize) -> Option<(Job, bool)> {
        // Fast path: only touch the shared injector for the High check
        // when the counter says a High job may exist. A racing submit
        // that lands after this load is caught by the locked re-check
        // below (when the own deque is empty) or by the next claim.
        if self.high_pending.load(Ordering::Acquire) > 0 {
            if let Some(job) = self.pop_injector(Priority::High) {
                self.claim();
                return Some((job, false));
            }
        }
        if let Some(job) = self.deques[me].lock().expect("deque lock poisoned").pop_front() {
            self.claim();
            return Some((job, false));
        }
        for priority in Priority::ALL {
            if let Some(job) = self.pop_injector(priority) {
                self.claim();
                return Some((job, false));
            }
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            if let Some(job) = self.deques[victim].lock().expect("deque lock poisoned").pop_back() {
                self.claim();
                return Some((job, true));
            }
        }
        None
    }

    fn pop_injector(&self, priority: Priority) -> Option<Job> {
        let job = self.injector.lock().expect("injector lock poisoned").pop(priority)?;
        if priority == Priority::High {
            self.high_pending.fetch_sub(1, Ordering::Release);
        }
        Some(job)
    }

    fn claim(&self) {
        self.sleep.lock().expect("sleep lock poisoned").queued -= 1;
    }

    /// Raises the published-job count. MUST run *before* the job is pushed
    /// into any queue: `claim()` pairs each decrement with a successful
    /// pop, so as long as every push is preceded by its increment the
    /// counter can never underflow — whereas increment-after-push would
    /// let a racing worker pop and decrement first. A worker that sees
    /// `queued > 0` but finds the queues momentarily empty just rescans.
    fn announce(&self) {
        self.sleep.lock().expect("sleep lock poisoned").queued += 1;
    }
}

/// Configures and starts a [`CompileService`]; obtained from
/// [`CompileService::builder`].
///
/// ```
/// use ssync_core::CacheBounds;
/// use ssync_service::CompileService;
///
/// let service = CompileService::builder()
///     .workers(2)
///     .cache_bounds(CacheBounds::with_max_entries(1024))
///     .build();
/// assert_eq!(service.workers(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CompileServiceBuilder {
    workers: usize,
    /// Requested intra-compile scoring threads; `0` = auto
    /// (`SSYNC_SCORE_THREADS`, then serial). Budgeted against the worker
    /// count at build time — see [`CompileService::scoring_threads`].
    scoring_threads: usize,
    /// `None` = never configured → fall back to the environment at build
    /// time. An explicit [`CacheBounds::UNBOUNDED`] is honoured as-is.
    bounds: Option<CacheBounds>,
    persist_dir: Option<std::path::PathBuf>,
    persist_max_bytes: Option<u64>,
    persist_max_age: Option<std::time::Duration>,
    /// `None` = never configured → `SSYNC_TRACE_JOURNAL_CAP`, then
    /// [`TRACE_JOURNAL_CAPACITY`].
    trace_journal_cap: Option<usize>,
    /// `None` = never configured → `SSYNC_FLIGHT_RECORDER`, then off.
    flight_recorder: Option<bool>,
}

impl CompileServiceBuilder {
    /// Sets the worker-thread count; `0` (the default) resolves through
    /// [`batch::resolve_workers`] (the `SSYNC_BATCH_WORKERS` environment
    /// variable, then the machine's available parallelism).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Requests `threads` intra-compile scoring threads per worker; `0`
    /// (the default) resolves through the `SSYNC_SCORE_THREADS`
    /// environment variable and falls back to 1 (serial). The request is
    /// *budgeted*, not obeyed verbatim: at build time it is capped at
    /// `available_parallelism / workers` so a saturated pool never
    /// oversubscribes the host — an 8-worker daemon on an 8-core box runs
    /// every compile serially no matter what was asked for. Scoring
    /// threads never change compiled output (or cache keys).
    pub fn scoring_threads(mut self, threads: usize) -> Self {
        self.scoring_threads = threads;
        self
    }

    /// Sets the result cache's entry/byte bounds — including an explicit
    /// [`CacheBounds::UNBOUNDED`], which is honoured verbatim. Only when
    /// this method (and [`CompileServiceBuilder::cache_config`]) was never
    /// called does [`CompileServiceBuilder::build`] fall back to
    /// [`CacheBounds::from_env`], i.e. the `SSYNC_CACHE_MAX_ENTRIES` /
    /// `SSYNC_CACHE_MAX_BYTES` environment variables.
    pub fn cache_bounds(mut self, bounds: CacheBounds) -> Self {
        self.bounds = Some(bounds);
        self
    }

    /// Enables the write-through persistent cache tier rooted at `dir`.
    pub fn persist_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.persist_dir = Some(dir.into());
        self
    }

    /// Byte budget for the persistent cache directory, enforced at
    /// startup by deleting `.outcome` files oldest-mtime-first (see
    /// [`CacheConfig`]). When never set, [`CompileServiceBuilder::build`]
    /// falls back to the `SSYNC_CACHE_DIR_MAX_BYTES` environment
    /// variable.
    pub fn persist_max_bytes(mut self, bytes: u64) -> Self {
        self.persist_max_bytes = Some(bytes);
        self
    }

    /// Age budget for the persistent cache directory (startup GC). The
    /// environment fallback is `SSYNC_CACHE_DIR_MAX_AGE_SECS`.
    pub fn persist_max_age(mut self, age: std::time::Duration) -> Self {
        self.persist_max_age = Some(age);
        self
    }

    /// Sets how many recent traces the in-memory journal retains; `0` is
    /// clamped to 1. When never called, [`CompileServiceBuilder::build`]
    /// falls back to the `SSYNC_TRACE_JOURNAL_CAP` environment variable,
    /// then [`TRACE_JOURNAL_CAPACITY`]. The cap bounds how far back
    /// `GetTrace` can reach — and, because each journal slot keeps its
    /// compile's flight recording alive, how much recorder memory a busy
    /// daemon retains.
    pub fn trace_journal_cap(mut self, cap: usize) -> Self {
        self.trace_journal_cap = Some(cap);
        self
    }

    /// Enables (or explicitly disables) the compile flight recorder:
    /// every executed compile fills a bounded in-memory event ring that is
    /// retained alongside the trace and served by `GetTrace`. When never
    /// called, [`CompileServiceBuilder::build`] falls back to the
    /// `SSYNC_FLIGHT_RECORDER` environment variable (`1`/`true` = on),
    /// then off. The recorder is observation-only: compiled output is
    /// bit-identical either way and the knob never splits the cache.
    pub fn flight_recorder(mut self, enabled: bool) -> Self {
        self.flight_recorder = Some(enabled);
        self
    }

    /// Replaces the whole cache configuration (bounds count as explicitly
    /// configured, so the environment fallback is disabled).
    pub fn cache_config(mut self, config: CacheConfig) -> Self {
        self.bounds = Some(config.bounds);
        self.persist_dir = config.persist_dir;
        self.persist_max_bytes = config.persist_max_bytes;
        self.persist_max_age = config.persist_max_age;
        self
    }

    /// Starts the service.
    pub fn build(self) -> CompileService {
        let CompileServiceBuilder {
            workers,
            scoring_threads,
            bounds,
            persist_dir,
            persist_max_bytes,
            persist_max_age,
            trace_journal_cap,
            flight_recorder,
        } = self;
        let cache = CacheConfig {
            bounds: bounds.unwrap_or_else(CacheBounds::from_env),
            persist_dir,
            persist_max_bytes,
            persist_max_age,
        }
        .persist_gc_from_env();
        let journal_cap = trace_journal_cap
            .or_else(|| std::env::var("SSYNC_TRACE_JOURNAL_CAP").ok()?.parse().ok())
            .unwrap_or(TRACE_JOURNAL_CAPACITY);
        let flight_recorder = flight_recorder
            .or_else(|| {
                let v = std::env::var("SSYNC_FLIGHT_RECORDER").ok()?;
                Some(v == "1" || v.eq_ignore_ascii_case("true"))
            })
            .unwrap_or(false);
        CompileService::start(
            batch::resolve_workers(workers),
            cache,
            scoring_threads,
            journal_cap,
            flight_recorder,
        )
    }
}

/// A long-lived, multi-tenant compile service; see the module docs for the
/// scheduling structure. Owns a [`DeviceRegistry`], a [`ResultCache`] and
/// a fixed pool of worker threads, each carrying one reusable
/// [`CompileScratch`] across every job it executes. Dropping the service
/// finishes all outstanding jobs, then joins the workers.
pub struct CompileService {
    shared: Arc<Shared>,
    registry: DeviceRegistry,
    workers: Vec<std::thread::JoinHandle<()>>,
    round_robin: AtomicUsize,
    started: Instant,
}

impl std::fmt::Debug for CompileService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileService").field("workers", &self.workers.len()).finish()
    }
}

impl Default for CompileService {
    fn default() -> Self {
        Self::new()
    }
}

impl CompileService {
    /// Starts a service with the resolved default worker count (the
    /// `SSYNC_BATCH_WORKERS` environment variable when set, otherwise the
    /// machine's available parallelism — the same resolution chain batch
    /// compilation uses, [`batch::resolve_workers`]) and cache bounds from
    /// [`CacheBounds::from_env`].
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// A builder for explicit worker counts, cache bounds and the
    /// persistent cache tier.
    pub fn builder() -> CompileServiceBuilder {
        CompileServiceBuilder::default()
    }

    /// Starts a service with exactly `workers` worker threads (clamped to
    /// at least 1), ignoring the environment — the constructor for tests
    /// pinning worker-count independence. The cache is unbounded.
    pub fn with_workers(workers: usize) -> Self {
        Self::start(workers, CacheConfig::default(), 0, TRACE_JOURNAL_CAPACITY, false)
    }

    fn start(
        workers: usize,
        cache: CacheConfig,
        scoring_threads: usize,
        journal_cap: usize,
        flight_recorder: bool,
    ) -> Self {
        let workers = workers.max(1);
        let scoring_threads =
            budget_scoring_threads(resolve_scoring_threads(scoring_threads), workers);
        let shared = Arc::new(Shared {
            injector: Mutex::new(Injector::default()),
            scoring_threads,
            flight_recorder,
            high_pending: AtomicUsize::new(0),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(SleepState::default()),
            wake: Condvar::new(),
            cache: ResultCache::with_config(cache),
            preps: Mutex::new(HashMap::new()),
            pending: Mutex::new(PendingState::default()),
            submitted: AtomicU64::new(0),
            submitted_by_priority: Default::default(),
            completed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            near_duplicate: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            rejected_overloaded: AtomicU64::new(0),
            rejected_unauthorized: AtomicU64::new(0),
            conns_timed_out: AtomicU64::new(0),
            janitor_gc_runs: AtomicU64::new(0),
            candidates_scored: AtomicU64::new(0),
            score_shards_spawned: AtomicU64::new(0),
            score_cache_shard_hits: AtomicU64::new(0),
            executed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            stolen: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            telemetry: ServiceTelemetry::with_journal_cap(journal_cap),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ssync-service-worker-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawn service worker")
            })
            .collect();
        CompileService {
            shared,
            registry: DeviceRegistry::new(),
            workers: handles,
            round_robin: AtomicUsize::new(0),
            started: Instant::now(),
        }
    }

    /// The service's device registry; register machines here and hand the
    /// returned `Arc` to [`CompileRequest`]s.
    pub fn registry(&self) -> &DeviceRegistry {
        &self.registry
    }

    /// The result cache (for stats and tests).
    pub fn cache(&self) -> &ResultCache {
        &self.shared.cache
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Effective intra-compile scoring-thread count pinned into every
    /// executed job's config: the builder's request (or
    /// `SSYNC_SCORE_THREADS` when left at 0) capped at
    /// `available_parallelism / workers`, never below 1. Pinning happens
    /// at execution time, after the cache key is computed, so the budget
    /// is invisible to caching and to compiled output.
    pub fn scoring_threads(&self) -> usize {
        self.shared.scoring_threads
    }

    /// Whether executed compiles carry a flight recorder (see
    /// [`CompileServiceBuilder::flight_recorder`]).
    pub fn flight_recorder_enabled(&self) -> bool {
        self.shared.flight_recorder
    }

    /// Jobs currently published to some queue and not yet claimed by a
    /// worker — the instantaneous backlog the front-end's admission
    /// control compares against its watermark. Cheap enough to call per
    /// request (one short mutex hold).
    pub fn queue_depth(&self) -> usize {
        self.shared.sleep.lock().expect("sleep lock poisoned").queued
    }

    /// Counts one request shed at admission with
    /// [`CompileError::Overloaded`]; called by front-ends enforcing the
    /// queue-depth watermark / in-flight caps so the rejection shows up
    /// in [`ServiceMetrics::rejected_overloaded`].
    pub fn note_rejected_overloaded(&self) {
        self.shared.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection rejected by the shared-token auth check
    /// ([`ServiceMetrics::rejected_unauthorized`]).
    pub fn note_rejected_unauthorized(&self) {
        self.shared.rejected_unauthorized.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection closed on a read timeout — idle, half-open
    /// or slow-loris peers ([`ServiceMetrics::conns_timed_out`]).
    pub fn note_conn_timed_out(&self) {
        self.shared.conns_timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Runs the result cache's persistent-tier garbage collection now
    /// (see [`ResultCache::run_persist_gc`]) and counts the run in
    /// [`ServiceMetrics::janitor_gc_runs`]. The janitor thread calls
    /// this periodically so a long-lived daemon's cache directory stays
    /// within its byte/age budgets instead of only being trimmed at
    /// startup. Returns how many `.outcome` files were deleted.
    pub fn run_persist_gc(&self) -> u64 {
        let deleted = self.shared.cache.run_persist_gc();
        self.shared.janitor_gc_runs.fetch_add(1, Ordering::Relaxed);
        deleted
    }

    /// Spawns the cache **janitor**: a background thread that calls
    /// [`CompileService::run_persist_gc`] every `interval` until the
    /// returned [`Janitor`] is dropped (the drop joins the thread, so it
    /// cannot outlive the `Arc<CompileService>` it holds). One run
    /// happens immediately at spawn, making short-interval tests
    /// deterministic about "at least one run".
    pub fn spawn_janitor(self: &Arc<Self>, interval: std::time::Duration) -> Janitor {
        let service = Arc::clone(self);
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let signal = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ssync-service-janitor".into())
            .spawn(move || {
                service.run_persist_gc();
                let (flag, wake) = &*signal;
                let mut stopped = flag.lock().expect("janitor lock poisoned");
                loop {
                    let (guard, timeout) =
                        wake.wait_timeout(stopped, interval).expect("janitor lock poisoned");
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    if timeout.timed_out() {
                        service.run_persist_gc();
                    }
                }
            })
            .expect("spawn janitor thread");
        Janitor { stop, handle: Some(handle) }
    }

    /// Sets `tenant`'s fair-share weight (default 1.0): a tenant with
    /// weight 2.0 receives twice the share of its priority level while
    /// both are backlogged. Weights below 1/16 are clamped up at drain
    /// time. Affects only scheduling order, never outputs.
    pub fn set_tenant_weight(&self, tenant: TenantId, weight: f64) {
        self.shared.injector.lock().expect("injector lock poisoned").weights.insert(tenant, weight);
    }

    /// Submits one request and returns its handle. The request carries its
    /// [`Priority`] and [`TenantId`] (see [`CompileRequest::with_priority`]
    /// / [`CompileRequest::with_tenant`]). If an identical request (same
    /// device fingerprint, circuit content, output-affecting config and
    /// compiler) completed before, the handle is fulfilled immediately
    /// from the [`ResultCache`] and no job is queued.
    pub fn submit(&self, request: CompileRequest) -> JobHandle {
        self.submit_to(request, None)
    }

    /// [`CompileService::submit`], additionally returning the request's
    /// trace [`Span`] so the caller can read the server-assigned trace id,
    /// attach its own events (the wire front-end records response
    /// delivery) and inspect the timeline afterwards.
    pub fn submit_traced(&self, request: CompileRequest) -> (JobHandle, Span) {
        let span = self.shared.telemetry.begin_trace();
        let handle = self.submit_with_span(request, span.clone(), None);
        (handle, span)
    }

    /// The telemetry hub: per-stage latency histograms, the recent-trace
    /// journal and the slow-request threshold.
    pub fn telemetry(&self) -> &ServiceTelemetry {
        &self.shared.telemetry
    }

    /// Submits a batch. Normal-priority cache-missing jobs are dealt
    /// round-robin across the per-worker deques (stealing rebalances skew
    /// later); High and Batch jobs go through the shared priority
    /// injector. Handles come back in request order; results are
    /// independent of the worker count and of how the deal landed.
    pub fn submit_batch(
        &self,
        requests: impl IntoIterator<Item = CompileRequest>,
    ) -> Vec<JobHandle> {
        let workers = self.workers.len();
        requests
            .into_iter()
            .map(|request| {
                let target = (request.priority == Priority::Normal)
                    .then(|| self.round_robin.fetch_add(1, Ordering::Relaxed) % workers);
                self.submit_to(request, target)
            })
            .collect()
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> ServiceMetrics {
        ServiceMetrics {
            jobs_submitted: self.shared.submitted.load(Ordering::Relaxed),
            jobs_completed: self.shared.completed.load(Ordering::Relaxed),
            jobs_coalesced: self.shared.coalesced.load(Ordering::Relaxed),
            jobs_near_duplicate: self.shared.near_duplicate.load(Ordering::Relaxed),
            jobs_deadline_expired: self.shared.deadline_expired.load(Ordering::Relaxed),
            submitted_by_priority: [
                self.shared.submitted_by_priority[0].load(Ordering::Relaxed),
                self.shared.submitted_by_priority[1].load(Ordering::Relaxed),
                self.shared.submitted_by_priority[2].load(Ordering::Relaxed),
            ],
            queue_depth: self.shared.sleep.lock().expect("sleep lock poisoned").queued,
            rejected_overloaded: self.shared.rejected_overloaded.load(Ordering::Relaxed),
            rejected_unauthorized: self.shared.rejected_unauthorized.load(Ordering::Relaxed),
            conns_timed_out: self.shared.conns_timed_out.load(Ordering::Relaxed),
            janitor_gc_runs: self.shared.janitor_gc_runs.load(Ordering::Relaxed),
            candidates_scored: self.shared.candidates_scored.load(Ordering::Relaxed),
            score_shards_spawned: self.shared.score_shards_spawned.load(Ordering::Relaxed),
            score_cache_shard_hits: self.shared.score_cache_shard_hits.load(Ordering::Relaxed),
            traces_recorded: self.shared.telemetry.traces_recorded(),
            slow_requests: self.shared.telemetry.slow_requests(),
            cache: self.shared.cache.stats(),
            workers: self
                .shared
                .executed
                .iter()
                .zip(&self.shared.stolen)
                .map(|(e, s)| WorkerMetrics {
                    executed: e.load(Ordering::Relaxed),
                    stolen: s.load(Ordering::Relaxed),
                })
                .collect(),
            uptime: self.started.elapsed(),
        }
    }

    fn submit_to(&self, request: CompileRequest, target: Option<usize>) -> JobHandle {
        let span = self.shared.telemetry.begin_trace();
        self.submit_with_span(request, span, target)
    }

    /// Submission under a caller-created span (the front-end starts the
    /// span *before* parsing QASM so the parse stage lands on the same
    /// trace). Requests resolved at submission — cache hits and coalesced
    /// attachments — finish their trace immediately with an `outcome`
    /// attribute saying so; queued requests hand the span to the worker.
    pub(crate) fn submit_with_span(
        &self,
        request: CompileRequest,
        span: Span,
        target: Option<usize>,
    ) -> JobHandle {
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.submitted_by_priority[request.priority.index()].fetch_add(1, Ordering::Relaxed);
        let telemetry = &self.shared.telemetry;
        let priority = request.priority;
        let kind = request.compiler;
        telemetry.span_attr(&span, "priority", priority.label());
        telemetry.span_attr(&span, "compiler", kind_slug(kind));
        let prep = self.prep_for(&request.circuit);
        let key = CacheKey {
            device_fingerprint: request.device.fingerprint(),
            circuit_hash: prep.hash,
            config_hash: config_hash(&request.config),
            compiler: request.compiler,
        };
        let lookup_started = Instant::now();
        let cached = self.shared.cache.get(&key);
        let lookup = lookup_started.elapsed();
        telemetry.span_record(&span, "cache_lookup", lookup);
        telemetry.record(Stage::CacheLookup, priority, kind, lookup);
        if let Some(cached) = cached {
            let (handle, state) = JobHandle::new();
            state.fulfil(Ok(cached));
            self.shared.completed.fetch_add(1, Ordering::Relaxed);
            telemetry.span_attr(&span, "outcome", "cache_hit");
            telemetry.finish_request(&span, priority, kind);
            return handle;
        }
        // Deadline-carrying requests bypass coalescing in both directions:
        // they never attach to an in-flight twin (whose completion may
        // come after the deadline, which the attached handle could not
        // express) and never register as attachable (their expiry must
        // not surface on a deadline-free waiter). Cache hits above still
        // apply — a finished outcome costs nothing to hand out.
        if request.deadline_us.is_some() {
            let (handle, state) = JobHandle::new();
            let attached = Arc::new(AtomicU64::new(1));
            let job = Job {
                prep,
                key,
                state,
                attached,
                registered: false,
                submitted: Instant::now(),
                request,
                span,
            };
            self.enqueue(job, target);
            return handle;
        }
        // Coalesce onto an identical in-flight job, or register a new one.
        // Registration happens under the pending lock so two racing
        // identical submissions cannot both enqueue.
        let pair = (key.device_fingerprint, key.circuit_hash);
        let (handle, state, attached) = {
            let mut pending = self.shared.pending.lock().expect("pending lock poisoned");
            if let Some(entry) = pending.jobs.get(&key) {
                entry.attached.fetch_add(1, Ordering::Relaxed);
                self.shared.coalesced.fetch_add(1, Ordering::Relaxed);
                // The attached submission's own trace ends here; the
                // in-flight twin's span keeps the compile timeline.
                telemetry.span_attr(&span, "outcome", "coalesced");
                telemetry.finish_request(&span, priority, kind);
                return JobHandle { state: Arc::clone(&entry.state) };
            }
            // Re-check the cache under the pending lock: a worker retires
            // its pending entry only *after* inserting the outcome, so an
            // identical job that vanished from `pending` between our two
            // lookups is guaranteed to be visible here (lock order is
            // always pending → cache; workers never hold both).
            if let Some(cached) = self.shared.cache.get(&key) {
                let (handle, state) = JobHandle::new();
                state.fulfil(Ok(cached));
                self.shared.completed.fetch_add(1, Ordering::Relaxed);
                telemetry.span_attr(&span, "outcome", "cache_hit");
                telemetry.finish_request(&span, priority, kind);
                return handle;
            }
            // Same (device, circuit) already in flight under a different
            // config/compiler: the near-duplicate coalescing deliberately
            // skips — count it so the gap stays measurable.
            if pending.pairs.get(&pair).copied().unwrap_or(0) > 0 {
                self.shared.near_duplicate.fetch_add(1, Ordering::Relaxed);
            }
            let (handle, state) = JobHandle::new();
            let attached = Arc::new(AtomicU64::new(1));
            pending.jobs.insert(
                key,
                PendingEntry { state: Arc::clone(&state), attached: Arc::clone(&attached) },
            );
            *pending.pairs.entry(pair).or_insert(0) += 1;
            (handle, state, attached)
        };
        let job = Job {
            request,
            prep,
            key,
            state,
            attached,
            registered: true,
            submitted: Instant::now(),
            span,
        };
        self.enqueue(job, target);
        handle
    }

    /// Publishes a built job to a worker deque or the priority injector.
    fn enqueue(&self, job: Job, target: Option<usize>) {
        let priority = job.request.priority;
        let tenant = job.request.tenant;
        // Announce strictly before the push makes the job claimable; see
        // `Shared::announce` for why this ordering is load-bearing. The
        // High counter follows the same increment-before-push rule so a
        // racing pop can never drive it negative.
        self.shared.announce();
        match target {
            Some(worker) => {
                self.shared.deques[worker].lock().expect("deque lock poisoned").push_back(job)
            }
            None => {
                if priority == Priority::High {
                    self.shared.high_pending.fetch_add(1, Ordering::Release);
                }
                self.shared
                    .injector
                    .lock()
                    .expect("injector lock poisoned")
                    .push(priority, tenant, job)
            }
        }
        self.shared.wake.notify_one();
    }

    /// The shared per-circuit preparation, deduplicated by content hash so
    /// one circuit submitted across many devices/compilers shares a single
    /// lazily-computed first-use order.
    fn prep_for(&self, circuit: &Circuit) -> Arc<CircuitPrep> {
        let hash = circuit.content_hash();
        let mut preps = self.shared.preps.lock().expect("prep lock poisoned");
        Arc::clone(
            preps
                .entry(hash)
                .or_insert_with(|| Arc::new(CircuitPrep { hash, first_use: OnceLock::new() })),
        )
    }
}

/// Handle to the janitor thread spawned by
/// [`CompileService::spawn_janitor`]; dropping it stops and joins the
/// thread.
pub struct Janitor {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Janitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Janitor").finish_non_exhaustive()
    }
}

impl Drop for Janitor {
    fn drop(&mut self) {
        let (flag, wake) = &*self.stop;
        *flag.lock().expect("janitor lock poisoned") = true;
        wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for CompileService {
    fn drop(&mut self) {
        {
            let mut sleep = self.shared.sleep.lock().expect("sleep lock poisoned");
            sleep.shutdown = true;
        }
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    let mut scratch = CompileScratch::default();
    loop {
        match shared.find_job(me) {
            Some((job, was_stolen)) => {
                if was_stolen {
                    shared.stolen[me].fetch_add(1, Ordering::Relaxed);
                }
                execute(shared, me, job, &mut scratch);
            }
            None => {
                let sleep = shared.sleep.lock().expect("sleep lock poisoned");
                if sleep.queued > 0 {
                    continue; // published between our scan and the lock
                }
                if sleep.shutdown {
                    return;
                }
                // Queue empty, no shutdown: sleep until a publish. The
                // re-scan after waking handles spurious wakeups.
                drop(shared.wake.wait(sleep).expect("sleep lock poisoned"));
            }
        }
    }
}

fn execute(shared: &Shared, me: usize, job: Job, scratch: &mut CompileScratch) {
    let Job { request, prep, key, state, attached, registered, submitted, span } = job;
    let priority = request.priority;
    let kind = request.compiler;
    let queue_wait = submitted.elapsed();
    shared.telemetry.span_record(&span, "queue_wait", queue_wait);
    shared.telemetry.record(Stage::QueueWait, priority, kind, queue_wait);
    // An expired deadline settles the job without a compile: the claim
    // itself is the only worker time spent. `deadline_us == 0` always
    // expires, which the tests use for determinism.
    let expired =
        request.deadline_us.filter(|&d| submitted.elapsed() >= std::time::Duration::from_micros(d));
    let ran_compile = expired.is_none();
    let result = match expired {
        Some(deadline_us) => {
            shared.deadline_expired.fetch_add(1, Ordering::Relaxed);
            Err(CompileError::DeadlineExceeded { deadline_us })
        }
        None => {
            let compile_started = Instant::now();
            let result =
                run_compile(&request, &prep, shared, scratch).unwrap_or_else(|panic_message| {
                    // A panicking compile must not take the worker (and
                    // every queued tenant behind it) down; surface it on
                    // the one affected handle and drop the
                    // possibly-inconsistent scratch.
                    *scratch = CompileScratch::default();
                    Err(CompileError::Internal { message: panic_message })
                });
            let compile_time = compile_started.elapsed();
            shared.telemetry.span_record(&span, "compile", compile_time);
            shared.telemetry.record(Stage::Compile, priority, kind, compile_time);
            result
        }
    };
    if let Ok(outcome) = &result {
        // Scoring-work telemetry counts compiles actually run here: cache
        // hits and codec-rebuilt outcomes report zeros by design.
        let scoring = outcome.scoring_telemetry();
        shared.candidates_scored.fetch_add(scoring.candidates_scored, Ordering::Relaxed);
        shared.score_shards_spawned.fetch_add(scoring.score_shards_spawned, Ordering::Relaxed);
        shared.score_cache_shard_hits.fetch_add(scoring.score_cache_shard_hits, Ordering::Relaxed);
        shared.telemetry.note_scheduler_phases(&scoring);
        // Per-request scoring work as span attributes, so the slow-request
        // JSONL and GetTrace show what this compile cost — not just the
        // pool-wide aggregates.
        let t = &shared.telemetry;
        t.span_attr(&span, "candidates_scored", scoring.candidates_scored.to_string());
        t.span_attr(&span, "score_shards_spawned", scoring.score_shards_spawned.to_string());
        t.span_attr(&span, "score_cache_shard_hits", scoring.score_cache_shard_hits.to_string());
        t.span_attr(&span, "frontier_rebuilds", scoring.frontier_rebuilds.to_string());
        t.span_attr(&span, "stall_fallback_entries", scoring.stall_fallback_entries.to_string());
        // Insert into the cache *before* retiring the pending entry:
        // identical submissions racing this completion find the job in at
        // least one of the two, so nothing recompiles.
        let write_started = Instant::now();
        shared.cache.insert(key, Arc::clone(outcome));
        shared.telemetry.span_record(&span, "cache_write", write_started.elapsed());
    }
    if registered {
        let mut pending = shared.pending.lock().expect("pending lock poisoned");
        pending.jobs.remove(&key);
        let pair = (key.device_fingerprint, key.circuit_hash);
        if let Some(count) = pending.pairs.get_mut(&pair) {
            *count -= 1;
            if *count == 0 {
                pending.pairs.remove(&pair);
            }
        }
    }
    // No further submissions can attach past this point; settle every
    // request sharing this job. Counters move before the fulfilment wakes
    // any waiter, so a caller that observed `wait()` returning sees its
    // own job in the metrics. Expired jobs never ran a compile, so the
    // per-worker executed counter (the "compiles run" metric) skips them.
    if ran_compile {
        shared.executed[me].fetch_add(1, Ordering::Relaxed);
    }
    let outcome_label = match (&result, ran_compile) {
        (_, false) => "deadline_expired",
        (Ok(_), true) => "compiled",
        (Err(_), true) => "compile_failed",
    };
    shared.telemetry.span_attr(&span, "outcome", outcome_label);
    let recording = result.as_ref().ok().and_then(|outcome| outcome.flight_recording().cloned());
    shared.telemetry.finish_request_with(&span, priority, kind, recording);
    shared.completed.fetch_add(attached.load(Ordering::Relaxed), Ordering::Relaxed);
    state.fulfil(result);
}

/// Runs one compile, catching panics; `Err` carries the panic message.
/// The pool's budgeted `scoring_threads` and its `flight_recorder` switch
/// are pinned into the config here — *after* the cache key was computed
/// from the request's own config — so neither server-side decision leaks
/// into cache identity, and a remote client's config can dictate neither
/// server thread usage nor recorder memory.
fn run_compile(
    request: &CompileRequest,
    prep: &CircuitPrep,
    shared: &Shared,
    scratch: &mut CompileScratch,
) -> Result<JobResult, String> {
    let first_use = request
        .compiler
        .uses_first_use_order()
        .then(|| prep.first_use.get_or_init(|| request.circuit.first_use_order()).as_slice());
    let config = request
        .config
        .with_scoring_threads(shared.scoring_threads)
        .with_flight_recorder(shared.flight_recorder);
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        request
            .compiler
            .compile_on_with(request.device.device(), &request.circuit, &config, first_use, scratch)
            .map(Arc::new)
    }))
    .map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "compile worker panicked".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_arch::QccdTopology;
    use ssync_baselines::CompilerKind;
    use ssync_circuit::generators::qft;
    use ssync_core::CompilerConfig;

    fn request(
        service: &CompileService,
        circuit: &Arc<Circuit>,
        kind: CompilerKind,
        config: &CompilerConfig,
    ) -> CompileRequest {
        let device = service.registry().get_or_build_named("G-2x2", config.weights).unwrap();
        CompileRequest::new(device, Arc::clone(circuit), kind, *config)
    }

    #[test]
    fn submit_and_wait_round_trips() {
        let service = CompileService::with_workers(2);
        let config = CompilerConfig::default();
        let circuit = Arc::new(qft(10));
        let handle = service.submit(request(&service, &circuit, CompilerKind::SSync, &config));
        let outcome = handle.wait().expect("compiles");
        assert_eq!(outcome.counts().two_qubit_gates, circuit.two_qubit_gate_count());
        // try_poll after completion sees the same shared outcome.
        let polled = handle.try_poll().expect("done").expect("ok");
        assert!(Arc::ptr_eq(&outcome, &polled));
    }

    #[test]
    fn identical_resubmission_is_served_from_cache() {
        let service = CompileService::with_workers(2);
        let config = CompilerConfig::default();
        let circuit = Arc::new(qft(10));
        let first = service
            .submit(request(&service, &circuit, CompilerKind::SSync, &config))
            .wait()
            .expect("compiles");
        let second = service
            .submit(request(&service, &circuit, CompilerKind::SSync, &config))
            .wait()
            .expect("compiles");
        assert!(Arc::ptr_eq(&first, &second), "hit shares the cached outcome");
        let metrics = service.metrics();
        assert_eq!(metrics.cache.hits, 1);
        assert_eq!(metrics.jobs_executed(), 1, "second request must not recompile");
        assert_eq!(metrics.jobs_submitted, 2);
        assert_eq!(metrics.jobs_completed, 2);
    }

    #[test]
    fn flight_recordings_ride_the_trace_journal() {
        let service = CompileService::builder()
            .workers(1)
            .flight_recorder(true)
            .trace_journal_cap(8)
            .cache_bounds(CacheBounds::with_max_entries(16))
            .build();
        assert!(service.flight_recorder_enabled());
        let config = CompilerConfig::default();
        let circuit = Arc::new(qft(10));
        let (handle, span) =
            service.submit_traced(request(&service, &circuit, CompilerKind::SSync, &config));
        let outcome = handle.wait().expect("compiles");
        assert!(outcome.flight_recording().is_some(), "executed compile carries its recording");
        let (record, recording) =
            service.telemetry().trace_detail(span.trace_id()).expect("trace journaled");
        assert_eq!(record.trace_id, span.trace_id());
        let recording = recording.expect("recorder on retains the event stream");
        assert!(!recording.events.is_empty());
        // The request's scoring work rides the span as attributes.
        assert!(record.attrs.iter().any(|(k, _)| *k == "candidates_scored"));

        // Recorder off (the default): same compile, no recording anywhere.
        let plain = CompileService::with_workers(1);
        assert!(!plain.flight_recorder_enabled());
        let (handle, span) =
            plain.submit_traced(request(&plain, &circuit, CompilerKind::SSync, &config));
        let bare = handle.wait().expect("compiles");
        assert!(bare.flight_recording().is_none());
        assert_eq!(outcome.program().ops(), bare.program().ops(), "recorder never steers");
        let (_, recording) = plain.telemetry().trace_detail(span.trace_id()).expect("journaled");
        assert!(recording.is_none());
    }

    #[test]
    fn config_changes_bypass_the_cache() {
        let service = CompileService::with_workers(1);
        let circuit = Arc::new(qft(10));
        let base = CompilerConfig::default();
        service.submit(request(&service, &circuit, CompilerKind::SSync, &base)).wait().unwrap();
        let changed = base.with_decay(0.01);
        service.submit(request(&service, &circuit, CompilerKind::SSync, &changed)).wait().unwrap();
        let metrics = service.metrics();
        assert_eq!(metrics.cache.hits, 0);
        assert_eq!(metrics.jobs_executed(), 2);
        assert_eq!(service.cache().len(), 2);
    }

    #[test]
    fn errors_propagate_and_are_not_cached() {
        let service = CompileService::with_workers(2);
        let config = CompilerConfig::default();
        // 8 slots cannot hold 12 qubits + 1 space.
        let device =
            service.registry().get_or_build("tiny", config.weights, || QccdTopology::linear(2, 4));
        let circuit = Arc::new(qft(12));
        let handle = service.submit(CompileRequest::new(
            device,
            Arc::clone(&circuit),
            CompilerKind::SSync,
            config,
        ));
        assert!(matches!(
            handle.wait(),
            Err(CompileError::DeviceTooSmall { qubits: 12, slots: 8 })
        ));
        assert!(service.cache().is_empty(), "errors are not cached");
    }

    #[test]
    fn batch_handles_come_back_in_request_order() {
        let service = CompileService::with_workers(3);
        let config = CompilerConfig::default();
        let circuits: Vec<Arc<Circuit>> = (6..=12).map(|n| Arc::new(qft(n))).collect();
        let handles = service.submit_batch(
            circuits.iter().map(|c| request(&service, c, CompilerKind::SSync, &config)),
        );
        assert_eq!(handles.len(), circuits.len());
        for (circuit, handle) in circuits.iter().zip(&handles) {
            let outcome = handle.wait().expect("compiles");
            assert_eq!(outcome.counts().two_qubit_gates, circuit.two_qubit_gate_count());
        }
        let metrics = service.metrics();
        assert_eq!(metrics.jobs_completed, circuits.len() as u64);
        assert_eq!(metrics.queue_depth, 0);
        assert_eq!(metrics.workers.len(), 3);
    }

    #[test]
    fn identical_submissions_never_compile_twice() {
        let service = CompileService::with_workers(1);
        let config = CompilerConfig::default();
        let circuit = Arc::new(qft(14));
        // Ten identical requests in rapid succession: whichever way each
        // one resolves (queued, coalesced onto the in-flight job, or a
        // cache hit after completion), exactly one compile runs.
        let handles: Vec<_> = (0..10)
            .map(|_| service.submit(request(&service, &circuit, CompilerKind::SSync, &config)))
            .collect();
        let outcomes: Vec<_> = handles.iter().map(|h| h.wait().expect("compiles")).collect();
        for outcome in &outcomes {
            assert!(Arc::ptr_eq(outcome, &outcomes[0]), "all handles share one outcome");
        }
        let metrics = service.metrics();
        assert_eq!(metrics.jobs_executed(), 1, "one compile serves all ten");
        assert_eq!(metrics.jobs_submitted, 10);
        assert_eq!(metrics.jobs_completed, 10);
        assert_eq!(metrics.cache.hits + metrics.jobs_coalesced, 9);
    }

    #[test]
    fn a_panicking_job_reports_internal_error_and_spares_the_pool() {
        let service = CompileService::with_workers(1);
        let config = CompilerConfig::default();
        let circuit = Arc::new(qft(8));
        // A device registered under different weights than the request's
        // config trips the compile-entry assertion inside the worker.
        let mismatched = service.registry().get_or_build(
            "mismatched",
            ssync_arch::WeightConfig::with_ratio(100.0),
            || QccdTopology::grid(2, 2, 6),
        );
        let bad = service.submit(CompileRequest::new(
            mismatched,
            Arc::clone(&circuit),
            CompilerKind::SSync,
            config,
        ));
        assert!(matches!(bad.wait(), Err(CompileError::Internal { .. })));
        // The (sole) worker survives and keeps serving.
        let good = service.submit(request(&service, &circuit, CompilerKind::SSync, &config));
        assert!(good.wait().is_ok());
    }

    #[test]
    fn drop_drains_outstanding_jobs() {
        let config = CompilerConfig::default();
        let circuit = Arc::new(qft(12));
        let handles = {
            let service = CompileService::with_workers(2);
            service.submit_batch(
                (0..6).map(|_| request(&service, &circuit, CompilerKind::SSync, &config)),
            )
            // service dropped here with jobs possibly still queued
        };
        for handle in handles {
            assert!(handle.wait().is_ok(), "drop must finish outstanding work");
        }
    }

    #[test]
    fn priorities_and_tenants_never_change_results() {
        let config = CompilerConfig::default();
        let circuit = Arc::new(qft(10));
        let plain = CompileService::with_workers(2);
        let expected = plain
            .submit(request(&plain, &circuit, CompilerKind::SSync, &config))
            .wait()
            .expect("compiles");
        let service = CompileService::with_workers(2);
        service.set_tenant_weight(TenantId::from_name("sweeper"), 2.0);
        for (priority, tenant) in [
            (Priority::High, TenantId::from_name("interactive")),
            (Priority::Batch, TenantId::from_name("sweeper")),
            (Priority::Normal, TenantId::ANON),
        ] {
            // Later shapes are cache hits — which must themselves be the
            // bit-identical outcome, so the assertions still bite.
            let got = service
                .submit(
                    request(&service, &circuit, CompilerKind::SSync, &config)
                        .with_priority(priority)
                        .with_tenant(tenant),
                )
                .wait()
                .expect("compiles");
            assert_eq!(expected.program().ops(), got.program().ops(), "{priority:?}");
            assert_eq!(expected.final_placement(), got.final_placement(), "{priority:?}");
        }
        let metrics = service.metrics();
        assert_eq!(metrics.submitted_at(Priority::High), 1);
        assert_eq!(metrics.submitted_at(Priority::Normal), 1);
        assert_eq!(metrics.submitted_at(Priority::Batch), 1);
    }

    #[test]
    fn near_duplicates_are_counted_not_coalesced() {
        let service = CompileService::with_workers(1);
        let base = CompilerConfig::default();
        let circuit = Arc::new(qft(16));
        // Same device+circuit under three different configs, submitted
        // back-to-back: with one worker at least the later ones find an
        // earlier one still pending.
        let handles: Vec<_> = [base, base.with_decay(0.01), base.with_decay(0.02)]
            .iter()
            .map(|cfg| service.submit(request(&service, &circuit, CompilerKind::SSync, cfg)))
            .collect();
        for handle in &handles {
            handle.wait().expect("compiles");
        }
        let metrics = service.metrics();
        assert_eq!(metrics.jobs_coalesced, 0, "different configs never coalesce");
        assert_eq!(metrics.jobs_executed(), 3, "all three compiled independently");
        assert!(
            metrics.jobs_near_duplicate >= 1,
            "the measurable gap: near-duplicates were in flight together"
        );
    }

    /// The DRR injector drains tenants fairly and priorities strictly;
    /// tested on the raw structure so the order is fully deterministic.
    #[test]
    fn injector_is_strict_across_priorities_and_fair_within() {
        let mut injector: Injector<&'static str> = Injector::default();
        let (a, b) = (TenantId::from_name("a"), TenantId::from_name("b"));
        injector.push(Priority::Batch, a, "batch-a1");
        injector.push(Priority::Batch, a, "batch-a2");
        injector.push(Priority::Normal, a, "norm-a1");
        injector.push(Priority::High, b, "high-b1");
        // Strict priority: High, then Normal, then Batch.
        let mut order = Vec::new();
        for priority in Priority::ALL {
            while let Some(item) = injector.pop(priority) {
                order.push(item);
            }
        }
        assert_eq!(order, ["high-b1", "norm-a1", "batch-a1", "batch-a2"]);

        // Fairness: tenant A's long backlog interleaves 1:1 with B's.
        let mut injector: Injector<u32> = Injector::default();
        for i in 0..6 {
            injector.push(Priority::Batch, a, i); // 0..6 from A
        }
        for i in 10..13 {
            injector.push(Priority::Batch, b, i); // 10..13 from B
        }
        let drained: Vec<u32> = std::iter::from_fn(|| injector.pop(Priority::Batch)).collect();
        assert_eq!(drained, [0, 10, 1, 11, 2, 12, 3, 4, 5]);
    }

    /// A weight-2 tenant receives two slots per round while backlogged.
    #[test]
    fn tenant_weights_shift_the_interleave() {
        let mut injector: Injector<u32> = Injector::default();
        let (heavy, light) = (TenantId::from_name("heavy"), TenantId::from_name("light"));
        injector.weights.insert(heavy, 2.0);
        for i in 0..6 {
            injector.push(Priority::Normal, heavy, i);
        }
        for i in 10..13 {
            injector.push(Priority::Normal, light, i);
        }
        let drained: Vec<u32> = std::iter::from_fn(|| injector.pop(Priority::Normal)).collect();
        assert_eq!(drained, [0, 1, 10, 2, 3, 11, 4, 5, 12]);
    }

    #[test]
    fn expired_deadlines_skip_the_compile_and_count() {
        let service = CompileService::with_workers(1);
        let config = CompilerConfig::default();
        let circuit = Arc::new(qft(10));
        // A zero-microsecond deadline has always expired by claim time.
        let handle = service
            .submit(request(&service, &circuit, CompilerKind::SSync, &config).with_deadline_us(0));
        assert!(matches!(handle.wait(), Err(CompileError::DeadlineExceeded { deadline_us: 0 })));
        let metrics = service.metrics();
        assert_eq!(metrics.jobs_deadline_expired, 1);
        assert_eq!(metrics.jobs_executed(), 0, "no worker ran a compile");
        assert_eq!(metrics.jobs_completed, 1, "the job still completed");
        assert!(service.cache().is_empty(), "expired jobs are not cached");
        // The worker survives and serves the next (deadline-free) job.
        let good = service.submit(request(&service, &circuit, CompilerKind::SSync, &config));
        assert!(good.wait().is_ok());
    }

    #[test]
    fn generous_deadlines_compile_bit_identically() {
        let service = CompileService::with_workers(2);
        let config = CompilerConfig::default();
        let circuit = Arc::new(qft(10));
        let plain = service
            .submit(request(&service, &circuit, CompilerKind::SSync, &config))
            .wait()
            .expect("compiles");
        // An hour-long deadline cannot expire; the request is served from
        // the cache (deadlines never bypass completed outcomes).
        let relaxed = service
            .submit(
                request(&service, &circuit, CompilerKind::SSync, &config)
                    .with_deadline_us(3_600_000_000),
            )
            .wait()
            .expect("compiles");
        assert!(Arc::ptr_eq(&plain, &relaxed), "cache serves deadline requests");
        assert_eq!(service.metrics().jobs_deadline_expired, 0);

        // And on a cold cache, the deadline path produces the same bits.
        let cold = CompileService::with_workers(2);
        let fresh = cold
            .submit(
                request(&cold, &circuit, CompilerKind::SSync, &config)
                    .with_deadline_us(3_600_000_000),
            )
            .wait()
            .expect("compiles");
        assert_eq!(plain.program().ops(), fresh.program().ops());
        assert_eq!(plain.final_placement(), fresh.final_placement());
    }

    #[test]
    fn deadline_requests_do_not_poison_coalescing() {
        let service = CompileService::with_workers(1);
        let config = CompilerConfig::default();
        let circuit = Arc::new(qft(14));
        // An expired-deadline request submitted first (cold cache, so it
        // cannot be served as a hit) must not leak its DeadlineExceeded
        // to the identical plain requests behind it: deadline jobs never
        // register as coalescable.
        let doomed = service
            .submit(request(&service, &circuit, CompilerKind::SSync, &config).with_deadline_us(0));
        let first = service.submit(request(&service, &circuit, CompilerKind::SSync, &config));
        let second = service.submit(request(&service, &circuit, CompilerKind::SSync, &config));
        assert!(matches!(doomed.wait(), Err(CompileError::DeadlineExceeded { .. })));
        assert!(first.wait().is_ok());
        assert!(second.wait().is_ok());
        assert_eq!(service.metrics().jobs_deadline_expired, 1);
    }

    #[test]
    fn scoring_threads_are_budgeted_and_counted() {
        // The builder's request is budgeted against the pool size: the
        // effective value is at least 1 and never exceeds the request.
        let service = CompileService::builder().workers(2).scoring_threads(8).build();
        let effective = service.scoring_threads();
        assert!((1..=8).contains(&effective), "budgeted to {effective}");
        let config = CompilerConfig::default();
        // Capacity-8 traps force qft(12) to actually route (the paper
        // topologies' capacity-22 traps would swallow it whole and score
        // nothing).
        let device = service
            .registry()
            .get_or_build("tight", config.weights, || QccdTopology::grid(2, 2, 8));
        let circuit = Arc::new(qft(12));
        let outcome = service
            .submit(CompileRequest::new(
                Arc::clone(&device),
                Arc::clone(&circuit),
                CompilerKind::SSync,
                config,
            ))
            .wait()
            .expect("compiles");
        let metrics = service.metrics();
        assert!(metrics.candidates_scored > 0, "the S-SYNC scheduler scored candidates");
        assert!(metrics.score_shards_spawned > 0);
        assert_eq!(metrics.candidates_scored, outcome.scoring_telemetry().candidates_scored);
        // A cache hit re-serves the outcome without scoring anything.
        service
            .submit(CompileRequest::new(device, circuit, CompilerKind::SSync, config))
            .wait()
            .expect("hits");
        assert_eq!(service.metrics().candidates_scored, metrics.candidates_scored);
    }

    #[test]
    fn pool_scoring_budget_never_changes_results() {
        let config = CompilerConfig::default();
        let circuit = Arc::new(qft(12));
        let compile = |threads: usize| {
            let service = CompileService::builder().workers(1).scoring_threads(threads).build();
            let device = service
                .registry()
                .get_or_build("tight", config.weights, || QccdTopology::grid(2, 2, 8));
            service
                .submit(CompileRequest::new(
                    device,
                    Arc::clone(&circuit),
                    CompilerKind::SSync,
                    config,
                ))
                .wait()
                .expect("compiles")
        };
        let expected = compile(1);
        for threads in [2, 8] {
            let got = compile(threads);
            assert_eq!(expected.program().ops(), got.program().ops(), "threads={threads}");
            assert_eq!(expected.final_placement(), got.final_placement(), "threads={threads}");
        }
    }

    #[test]
    fn builder_configures_workers_and_cache_bounds() {
        let service = CompileService::builder()
            .workers(2)
            .cache_bounds(CacheBounds::with_max_entries(1))
            .build();
        assert_eq!(service.workers(), 2);
        let config = CompilerConfig::default();
        let a = Arc::new(qft(8));
        let b = Arc::new(qft(9));
        service.submit(request(&service, &a, CompilerKind::SSync, &config)).wait().unwrap();
        service.submit(request(&service, &b, CompilerKind::SSync, &config)).wait().unwrap();
        let stats = service.cache().stats();
        assert_eq!(stats.entries, 1, "bounded cache holds one entry");
        assert_eq!(stats.evictions, 1);
    }

    /// Pins the `candidates_scored` documentation contract: the counter
    /// counts scoring work performed by *this* pool, so a pool that
    /// serves a request from the persistent tier — whose outcome is
    /// rebuilt by the codec with zeroed scoring telemetry
    /// (`CompileOutcome::from_saved_parts`) — reports zero even though
    /// the original compile scored thousands of candidates. The request
    /// still finishes a trace (it is a cache hit, observed end to end).
    #[test]
    fn persist_tier_outcomes_report_zero_scoring_counters() {
        let dir = std::env::temp_dir().join(format!("ssync-pool-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = CompilerConfig::default();
        // Capacity-8 traps force qft(12) to actually route and score
        // (as in `scoring_threads_are_budgeted_and_counted`).
        let circuit = Arc::new(qft(12));
        let tight = |service: &CompileService| {
            let device = service
                .registry()
                .get_or_build("tight", config.weights, || QccdTopology::grid(2, 2, 8));
            CompileRequest::new(device, Arc::clone(&circuit), CompilerKind::SSync, config)
        };

        let warm = CompileService::builder().workers(1).persist_dir(&dir).build();
        let original = warm.submit(tight(&warm)).wait().expect("compiles");
        assert!(warm.metrics().candidates_scored > 0, "a real compile scores candidates");

        let cold = CompileService::builder().workers(1).persist_dir(&dir).build();
        let replayed = cold.submit(tight(&cold)).wait().expect("persist-tier hit");
        let metrics = cold.metrics();
        assert_eq!(metrics.cache.persist_hits, 1, "served from the persistent tier");
        assert_eq!(metrics.jobs_executed(), 0, "no compile ran in the cold pool");
        assert_eq!(metrics.candidates_scored, 0, "scoring not performed here is not counted");
        assert_eq!(metrics.score_shards_spawned, 0);
        assert_eq!(metrics.score_cache_shard_hits, 0);
        assert_eq!(metrics.traces_recorded, 1, "the cache hit still traces end to end");
        assert_eq!(original.program().ops(), replayed.program().ops());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
