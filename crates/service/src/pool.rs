//! The compile service: a work-stealing worker pool over the unified
//! compiler entry point.
//!
//! ## Scheduling structure
//!
//! Hand-rolled on `std::sync` (no external runtime):
//!
//! * **Global injector** — an MPMC `VecDeque` that single [`submit`]s land
//!   in; any worker drains it.
//! * **Per-worker deques** — [`submit_batch`] deals jobs round-robin
//!   across the workers' own deques, giving each worker an affine run of
//!   work it pops LIFO-front from its own end.
//! * **Stealing** — a worker whose deque and the injector are both empty
//!   scans the other workers' deques and steals from the *back*, so
//!   skewed batches (one giant circuit next to many small ones) rebalance
//!   without any coordination from the submitter.
//!
//! Sleeping is coordinated through one `Mutex<…>/Condvar` pair guarding a
//! `queued` count: producers increment it under the lock *before* pushing
//! a job (so a claim can never outrun its announcement and underflow the
//! counter), workers decrement it when they claim one and only sleep
//! while it is zero — so a wakeup can never be lost between "scanned
//! empty" and "went to sleep".
//!
//! Identical requests are deduplicated twice over: completed outcomes are
//! served from the [`ResultCache`], and a request identical to a job still
//! *in flight* coalesces onto it — the submission gets a handle to the
//! same pending state instead of queuing a second compile.
//!
//! ## Determinism
//!
//! Workers race for *jobs*, never for *results*: each job's outcome is a
//! pure function of its request, and every result lands in its own
//! [`JobHandle`]. Output is therefore bit-identical to a sequential
//! [`CompilerKind::compile_on`] loop at any worker count — the
//! `service_equivalence` integration tests enforce exactly that at 1, 2
//! and 8 workers.
//!
//! [`submit`]: CompileService::submit
//! [`submit_batch`]: CompileService::submit_batch

use crate::cache::{CacheKey, ResultCache};
use crate::hash::config_hash;
use crate::job::{CompileRequest, JobHandle, JobResult, JobState};
use crate::metrics::{ServiceMetrics, WorkerMetrics};
use crate::registry::DeviceRegistry;
use ssync_circuit::{Circuit, Qubit};
use ssync_core::{batch, CompileError, CompileScratch};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Per-circuit preparation shared by every job over the same circuit
/// content: the stable hash (computed at submission) and the greedy
/// baselines' first-use qubit order, computed lazily by the first worker
/// that needs it and reused across every topology cell and compiler kind
/// afterwards.
#[derive(Debug)]
struct CircuitPrep {
    hash: u64,
    first_use: OnceLock<Vec<Qubit>>,
}

/// One queued unit of work. `attached` counts the submissions sharing this
/// job's `state` (1 plus any identical requests coalesced onto it while it
/// was in flight).
struct Job {
    request: CompileRequest,
    prep: Arc<CircuitPrep>,
    key: CacheKey,
    state: Arc<JobState>,
    attached: Arc<AtomicU64>,
}

/// A not-yet-completed job identical submissions coalesce onto.
struct PendingEntry {
    state: Arc<JobState>,
    attached: Arc<AtomicU64>,
}

/// Producer/worker sleep coordination; see the module docs.
#[derive(Debug, Default)]
struct SleepState {
    /// Jobs published to some queue and not yet claimed by a worker.
    queued: usize,
    /// Set once by `Drop`; workers drain every queue, then exit.
    shutdown: bool,
}

struct Shared {
    injector: Mutex<VecDeque<Job>>,
    deques: Vec<Mutex<VecDeque<Job>>>,
    sleep: Mutex<SleepState>,
    wake: Condvar,
    cache: ResultCache,
    preps: Mutex<HashMap<u64, Arc<CircuitPrep>>>,
    pending: Mutex<HashMap<CacheKey, PendingEntry>>,
    submitted: AtomicU64,
    completed: AtomicU64,
    coalesced: AtomicU64,
    executed: Vec<AtomicU64>,
    stolen: Vec<AtomicU64>,
}

impl Shared {
    /// Claims the next job for worker `me`: own deque front first, then
    /// the injector, then the back of every other worker's deque.
    /// Returns the job and whether it was stolen.
    fn find_job(&self, me: usize) -> Option<(Job, bool)> {
        if let Some(job) = self.deques[me].lock().expect("deque lock poisoned").pop_front() {
            self.claim();
            return Some((job, false));
        }
        if let Some(job) = self.injector.lock().expect("injector lock poisoned").pop_front() {
            self.claim();
            return Some((job, false));
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            if let Some(job) = self.deques[victim].lock().expect("deque lock poisoned").pop_back() {
                self.claim();
                return Some((job, true));
            }
        }
        None
    }

    fn claim(&self) {
        self.sleep.lock().expect("sleep lock poisoned").queued -= 1;
    }

    /// Raises the published-job count. MUST run *before* the job is pushed
    /// into any queue: `claim()` pairs each decrement with a successful
    /// pop, so as long as every push is preceded by its increment the
    /// counter can never underflow — whereas increment-after-push would
    /// let a racing worker pop and decrement first. A worker that sees
    /// `queued > 0` but finds the queues momentarily empty just rescans.
    fn announce(&self) {
        self.sleep.lock().expect("sleep lock poisoned").queued += 1;
    }
}

/// A long-lived, multi-tenant compile service; see the module docs for the
/// scheduling structure. Owns a [`DeviceRegistry`], a [`ResultCache`] and
/// a fixed pool of worker threads, each carrying one reusable
/// [`CompileScratch`] across every job it executes. Dropping the service
/// finishes all outstanding jobs, then joins the workers.
pub struct CompileService {
    shared: Arc<Shared>,
    registry: DeviceRegistry,
    workers: Vec<std::thread::JoinHandle<()>>,
    round_robin: AtomicUsize,
    started: Instant,
}

impl std::fmt::Debug for CompileService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileService").field("workers", &self.workers.len()).finish()
    }
}

impl Default for CompileService {
    fn default() -> Self {
        Self::new()
    }
}

impl CompileService {
    /// Starts a service with the resolved default worker count: the
    /// `SSYNC_BATCH_WORKERS` environment variable when set, otherwise the
    /// machine's available parallelism — the same resolution chain batch
    /// compilation uses ([`batch::resolve_workers`]).
    pub fn new() -> Self {
        Self::with_workers(batch::resolve_workers(0))
    }

    /// Starts a service with exactly `workers` worker threads (clamped to
    /// at least 1), ignoring the environment — the constructor for tests
    /// pinning worker-count independence.
    pub fn with_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(SleepState::default()),
            wake: Condvar::new(),
            cache: ResultCache::new(),
            preps: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            executed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            stolen: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ssync-service-worker-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawn service worker")
            })
            .collect();
        CompileService {
            shared,
            registry: DeviceRegistry::new(),
            workers: handles,
            round_robin: AtomicUsize::new(0),
            started: Instant::now(),
        }
    }

    /// The service's device registry; register machines here and hand the
    /// returned `Arc` to [`CompileRequest`]s.
    pub fn registry(&self) -> &DeviceRegistry {
        &self.registry
    }

    /// The result cache (for stats and tests).
    pub fn cache(&self) -> &ResultCache {
        &self.shared.cache
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submits one request to the global injector and returns its handle.
    /// If an identical request (same device fingerprint, circuit content,
    /// output-affecting config and compiler) completed before, the handle
    /// is fulfilled immediately from the [`ResultCache`] and no job is
    /// queued.
    pub fn submit(&self, request: CompileRequest) -> JobHandle {
        self.submit_to(request, None)
    }

    /// Submits a batch, dealing the cache-missing jobs round-robin across
    /// the per-worker deques (stealing rebalances skew later). Handles
    /// come back in request order; results are independent of the worker
    /// count and of how the deal landed.
    pub fn submit_batch(
        &self,
        requests: impl IntoIterator<Item = CompileRequest>,
    ) -> Vec<JobHandle> {
        let workers = self.workers.len();
        requests
            .into_iter()
            .map(|request| {
                let target = self.round_robin.fetch_add(1, Ordering::Relaxed) % workers;
                self.submit_to(request, Some(target))
            })
            .collect()
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> ServiceMetrics {
        ServiceMetrics {
            jobs_submitted: self.shared.submitted.load(Ordering::Relaxed),
            jobs_completed: self.shared.completed.load(Ordering::Relaxed),
            jobs_coalesced: self.shared.coalesced.load(Ordering::Relaxed),
            queue_depth: self.shared.sleep.lock().expect("sleep lock poisoned").queued,
            cache: self.shared.cache.stats(),
            workers: self
                .shared
                .executed
                .iter()
                .zip(&self.shared.stolen)
                .map(|(e, s)| WorkerMetrics {
                    executed: e.load(Ordering::Relaxed),
                    stolen: s.load(Ordering::Relaxed),
                })
                .collect(),
            uptime: self.started.elapsed(),
        }
    }

    fn submit_to(&self, request: CompileRequest, target: Option<usize>) -> JobHandle {
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        let prep = self.prep_for(&request.circuit);
        let key = CacheKey {
            device_fingerprint: request.device.fingerprint(),
            circuit_hash: prep.hash,
            config_hash: config_hash(&request.config),
            compiler: request.compiler,
        };
        if let Some(cached) = self.shared.cache.get(&key) {
            let (handle, state) = JobHandle::new();
            state.fulfil(Ok(cached));
            self.shared.completed.fetch_add(1, Ordering::Relaxed);
            return handle;
        }
        // Coalesce onto an identical in-flight job, or register a new one.
        // Registration happens under the pending lock so two racing
        // identical submissions cannot both enqueue.
        let (handle, state, attached) = {
            let mut pending = self.shared.pending.lock().expect("pending lock poisoned");
            if let Some(entry) = pending.get(&key) {
                entry.attached.fetch_add(1, Ordering::Relaxed);
                self.shared.coalesced.fetch_add(1, Ordering::Relaxed);
                return JobHandle { state: Arc::clone(&entry.state) };
            }
            // Re-check the cache under the pending lock: a worker retires
            // its pending entry only *after* inserting the outcome, so an
            // identical job that vanished from `pending` between our two
            // lookups is guaranteed to be visible here (lock order is
            // always pending → cache; workers never hold both).
            if let Some(cached) = self.shared.cache.get(&key) {
                let (handle, state) = JobHandle::new();
                state.fulfil(Ok(cached));
                self.shared.completed.fetch_add(1, Ordering::Relaxed);
                return handle;
            }
            let (handle, state) = JobHandle::new();
            let attached = Arc::new(AtomicU64::new(1));
            pending.insert(
                key,
                PendingEntry { state: Arc::clone(&state), attached: Arc::clone(&attached) },
            );
            (handle, state, attached)
        };
        let job = Job { request, prep, key, state, attached };
        // Announce strictly before the push makes the job claimable; see
        // `Shared::announce` for why this ordering is load-bearing.
        self.shared.announce();
        match target {
            Some(worker) => {
                self.shared.deques[worker].lock().expect("deque lock poisoned").push_back(job)
            }
            None => self.shared.injector.lock().expect("injector lock poisoned").push_back(job),
        }
        self.shared.wake.notify_one();
        handle
    }

    /// The shared per-circuit preparation, deduplicated by content hash so
    /// one circuit submitted across many devices/compilers shares a single
    /// lazily-computed first-use order.
    fn prep_for(&self, circuit: &Circuit) -> Arc<CircuitPrep> {
        let hash = circuit.content_hash();
        let mut preps = self.shared.preps.lock().expect("prep lock poisoned");
        Arc::clone(
            preps
                .entry(hash)
                .or_insert_with(|| Arc::new(CircuitPrep { hash, first_use: OnceLock::new() })),
        )
    }
}

impl Drop for CompileService {
    fn drop(&mut self) {
        {
            let mut sleep = self.shared.sleep.lock().expect("sleep lock poisoned");
            sleep.shutdown = true;
        }
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    let mut scratch = CompileScratch::default();
    loop {
        match shared.find_job(me) {
            Some((job, was_stolen)) => {
                if was_stolen {
                    shared.stolen[me].fetch_add(1, Ordering::Relaxed);
                }
                execute(shared, me, job, &mut scratch);
            }
            None => {
                let sleep = shared.sleep.lock().expect("sleep lock poisoned");
                if sleep.queued > 0 {
                    continue; // published between our scan and the lock
                }
                if sleep.shutdown {
                    return;
                }
                // Queue empty, no shutdown: sleep until a publish. The
                // re-scan after waking handles spurious wakeups.
                drop(shared.wake.wait(sleep).expect("sleep lock poisoned"));
            }
        }
    }
}

fn execute(shared: &Shared, me: usize, job: Job, scratch: &mut CompileScratch) {
    let Job { request, prep, key, state, attached } = job;
    let result = run_compile(&request, &prep, scratch).unwrap_or_else(|panic_message| {
        // A panicking compile must not take the worker (and every queued
        // tenant behind it) down; surface it on the one affected handle
        // and drop the possibly-inconsistent scratch.
        *scratch = CompileScratch::default();
        Err(CompileError::Internal { message: panic_message })
    });
    if let Ok(outcome) = &result {
        // Insert into the cache *before* retiring the pending entry:
        // identical submissions racing this completion find the job in at
        // least one of the two, so nothing recompiles.
        shared.cache.insert(key, Arc::clone(outcome));
    }
    shared.pending.lock().expect("pending lock poisoned").remove(&key);
    // No further submissions can attach past this point; settle every
    // request sharing this job. Counters move before the fulfilment wakes
    // any waiter, so a caller that observed `wait()` returning sees its
    // own job in the metrics.
    shared.executed[me].fetch_add(1, Ordering::Relaxed);
    shared.completed.fetch_add(attached.load(Ordering::Relaxed), Ordering::Relaxed);
    state.fulfil(result);
}

/// Runs one compile, catching panics; `Err` carries the panic message.
fn run_compile(
    request: &CompileRequest,
    prep: &CircuitPrep,
    scratch: &mut CompileScratch,
) -> Result<JobResult, String> {
    let first_use = request
        .compiler
        .uses_first_use_order()
        .then(|| prep.first_use.get_or_init(|| request.circuit.first_use_order()).as_slice());
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        request
            .compiler
            .compile_on_with(
                request.device.device(),
                &request.circuit,
                &request.config,
                first_use,
                scratch,
            )
            .map(Arc::new)
    }))
    .map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "compile worker panicked".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_arch::QccdTopology;
    use ssync_baselines::CompilerKind;
    use ssync_circuit::generators::qft;
    use ssync_core::CompilerConfig;

    fn request(
        service: &CompileService,
        circuit: &Arc<Circuit>,
        kind: CompilerKind,
        config: &CompilerConfig,
    ) -> CompileRequest {
        let device = service.registry().get_or_build_named("G-2x2", config.weights).unwrap();
        CompileRequest::new(device, Arc::clone(circuit), kind, *config)
    }

    #[test]
    fn submit_and_wait_round_trips() {
        let service = CompileService::with_workers(2);
        let config = CompilerConfig::default();
        let circuit = Arc::new(qft(10));
        let handle = service.submit(request(&service, &circuit, CompilerKind::SSync, &config));
        let outcome = handle.wait().expect("compiles");
        assert_eq!(outcome.counts().two_qubit_gates, circuit.two_qubit_gate_count());
        // try_poll after completion sees the same shared outcome.
        let polled = handle.try_poll().expect("done").expect("ok");
        assert!(Arc::ptr_eq(&outcome, &polled));
    }

    #[test]
    fn identical_resubmission_is_served_from_cache() {
        let service = CompileService::with_workers(2);
        let config = CompilerConfig::default();
        let circuit = Arc::new(qft(10));
        let first = service
            .submit(request(&service, &circuit, CompilerKind::SSync, &config))
            .wait()
            .expect("compiles");
        let second = service
            .submit(request(&service, &circuit, CompilerKind::SSync, &config))
            .wait()
            .expect("compiles");
        assert!(Arc::ptr_eq(&first, &second), "hit shares the cached outcome");
        let metrics = service.metrics();
        assert_eq!(metrics.cache.hits, 1);
        assert_eq!(metrics.jobs_executed(), 1, "second request must not recompile");
        assert_eq!(metrics.jobs_submitted, 2);
        assert_eq!(metrics.jobs_completed, 2);
    }

    #[test]
    fn config_changes_bypass_the_cache() {
        let service = CompileService::with_workers(1);
        let circuit = Arc::new(qft(10));
        let base = CompilerConfig::default();
        service.submit(request(&service, &circuit, CompilerKind::SSync, &base)).wait().unwrap();
        let changed = base.with_decay(0.01);
        service.submit(request(&service, &circuit, CompilerKind::SSync, &changed)).wait().unwrap();
        let metrics = service.metrics();
        assert_eq!(metrics.cache.hits, 0);
        assert_eq!(metrics.jobs_executed(), 2);
        assert_eq!(service.cache().len(), 2);
    }

    #[test]
    fn errors_propagate_and_are_not_cached() {
        let service = CompileService::with_workers(2);
        let config = CompilerConfig::default();
        // 8 slots cannot hold 12 qubits + 1 space.
        let device =
            service.registry().get_or_build("tiny", config.weights, || QccdTopology::linear(2, 4));
        let circuit = Arc::new(qft(12));
        let handle = service.submit(CompileRequest::new(
            device,
            Arc::clone(&circuit),
            CompilerKind::SSync,
            config,
        ));
        assert!(matches!(
            handle.wait(),
            Err(CompileError::DeviceTooSmall { qubits: 12, slots: 8 })
        ));
        assert!(service.cache().is_empty(), "errors are not cached");
    }

    #[test]
    fn batch_handles_come_back_in_request_order() {
        let service = CompileService::with_workers(3);
        let config = CompilerConfig::default();
        let circuits: Vec<Arc<Circuit>> = (6..=12).map(|n| Arc::new(qft(n))).collect();
        let handles = service.submit_batch(
            circuits.iter().map(|c| request(&service, c, CompilerKind::SSync, &config)),
        );
        assert_eq!(handles.len(), circuits.len());
        for (circuit, handle) in circuits.iter().zip(&handles) {
            let outcome = handle.wait().expect("compiles");
            assert_eq!(outcome.counts().two_qubit_gates, circuit.two_qubit_gate_count());
        }
        let metrics = service.metrics();
        assert_eq!(metrics.jobs_completed, circuits.len() as u64);
        assert_eq!(metrics.queue_depth, 0);
        assert_eq!(metrics.workers.len(), 3);
    }

    #[test]
    fn identical_submissions_never_compile_twice() {
        let service = CompileService::with_workers(1);
        let config = CompilerConfig::default();
        let circuit = Arc::new(qft(14));
        // Ten identical requests in rapid succession: whichever way each
        // one resolves (queued, coalesced onto the in-flight job, or a
        // cache hit after completion), exactly one compile runs.
        let handles: Vec<_> = (0..10)
            .map(|_| service.submit(request(&service, &circuit, CompilerKind::SSync, &config)))
            .collect();
        let outcomes: Vec<_> = handles.iter().map(|h| h.wait().expect("compiles")).collect();
        for outcome in &outcomes {
            assert!(Arc::ptr_eq(outcome, &outcomes[0]), "all handles share one outcome");
        }
        let metrics = service.metrics();
        assert_eq!(metrics.jobs_executed(), 1, "one compile serves all ten");
        assert_eq!(metrics.jobs_submitted, 10);
        assert_eq!(metrics.jobs_completed, 10);
        assert_eq!(metrics.cache.hits + metrics.jobs_coalesced, 9);
    }

    #[test]
    fn a_panicking_job_reports_internal_error_and_spares_the_pool() {
        let service = CompileService::with_workers(1);
        let config = CompilerConfig::default();
        let circuit = Arc::new(qft(8));
        // A device registered under different weights than the request's
        // config trips the compile-entry assertion inside the worker.
        let mismatched = service.registry().get_or_build(
            "mismatched",
            ssync_arch::WeightConfig::with_ratio(100.0),
            || QccdTopology::grid(2, 2, 6),
        );
        let bad = service.submit(CompileRequest::new(
            mismatched,
            Arc::clone(&circuit),
            CompilerKind::SSync,
            config,
        ));
        assert!(matches!(bad.wait(), Err(CompileError::Internal { .. })));
        // The (sole) worker survives and keeps serving.
        let good = service.submit(request(&service, &circuit, CompilerKind::SSync, &config));
        assert!(good.wait().is_ok());
    }

    #[test]
    fn drop_drains_outstanding_jobs() {
        let config = CompilerConfig::default();
        let circuit = Arc::new(qft(12));
        let handles = {
            let service = CompileService::with_workers(2);
            service.submit_batch(
                (0..6).map(|_| request(&service, &circuit, CompilerKind::SSync, &config)),
            )
            // service dropped here with jobs possibly still queued
        };
        for handle in handles {
            assert!(handle.wait().is_ok(), "drop must finish outstanding work");
        }
    }
}
