//! Service observability: counters a deployment would scrape.

use crate::cache::CacheStats;
use crate::job::Priority;
use std::time::Duration;

/// Per-worker execution counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerMetrics {
    /// Jobs this worker executed (from any queue).
    pub executed: u64,
    /// Of those, jobs stolen from another worker's deque.
    pub stolen: u64,
}

/// A point-in-time snapshot of the service's health, taken via
/// [`crate::CompileService::metrics`]. Counters are monotonic except
/// `queue_depth`, which is the instantaneous backlog.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServiceMetrics {
    /// Requests accepted (whether served from cache, coalesced or queued).
    pub jobs_submitted: u64,
    /// Requests resolved (cache hits, coalesced waiters and executed
    /// compiles). Catches up with `jobs_submitted` at quiescence.
    pub jobs_completed: u64,
    /// Requests that attached to an *identical* job already in flight
    /// instead of queuing their own compile. Distinct from `cache.hits`:
    /// a coalesced request found its twin still running, a cache hit found
    /// it already finished.
    pub jobs_coalesced: u64,
    /// Requests that, at submission, had an in-flight job for the **same
    /// device and circuit but a different config or compiler** — the
    /// near-duplicates that in-flight coalescing deliberately does *not*
    /// merge today (see the pool module docs). A large value next to a
    /// small `jobs_coalesced` quantifies what a near-duplicate planner
    /// could save.
    pub jobs_near_duplicate: u64,
    /// Requests whose [`deadline_us`](crate::CompileRequest::deadline_us)
    /// expired before a worker claimed them; each completed with
    /// `CompileError::DeadlineExceeded` without running a compile.
    pub jobs_deadline_expired: u64,
    /// Accepted requests per priority level, indexed by
    /// [`Priority::index`] (High, Normal, Batch).
    pub submitted_by_priority: [u64; 3],
    /// Jobs currently queued and not yet claimed by a worker.
    pub queue_depth: usize,
    /// Requests shed at admission with
    /// [`CompileError::Overloaded`](ssync_core::CompileError::Overloaded)
    /// — the queue-depth watermark or an in-flight cap was breached
    /// (front-end admission control; see the `front` module docs).
    pub rejected_overloaded: u64,
    /// Connections rejected by the front-end's shared-token auth check
    /// (wrong or missing token on the hello frame).
    pub rejected_unauthorized: u64,
    /// Connections the front-end closed because a read timed out — idle
    /// peers, half-open sockets, and slow-loris partial frames.
    pub conns_timed_out: u64,
    /// Periodic persistent-tier garbage collections run by the janitor
    /// thread (each run may delete any number of `.outcome` files; the
    /// deletions themselves land in
    /// [`CacheStats::persist_gc_deleted`](crate::CacheStats)).
    pub janitor_gc_runs: u64,
    /// Generic-swap candidates scored by the intra-compile scheduler
    /// across every compile this pool executed. **Deliberately zero for
    /// work not performed here**: cache hits never ran a scheduler, and
    /// outcomes rebuilt from the persistent tier's codec decode with
    /// zeroed scoring telemetry (`CompileOutcome::from_saved_parts`), so
    /// neither contributes. A pool that served everything from cache
    /// reports 0 regardless of how much scoring the original compiles
    /// did — the `persist_tier_outcomes_report_zero_scoring_counters`
    /// test pins this.
    pub candidates_scored: u64,
    /// Scoring shards dispatched by those schedulers; equals the number
    /// of scoring passes when compiles run serially, and grows with the
    /// pool's [`scoring_threads`](crate::CompileService::scoring_threads)
    /// budget when passes are split across a crew.
    pub score_shards_spawned: u64,
    /// Per-shard route-readiness memo hits during candidate scoring — the
    /// intra-pass locality the sharded memo recovers.
    pub score_cache_shard_hits: u64,
    /// Request traces finished by the telemetry layer (wire v5; decodes as
    /// zero from peers that predate it).
    pub traces_recorded: u64,
    /// Traces at or above the daemon's slow-request threshold, each
    /// emitted as a JSONL line on stderr (wire v5; zero when the
    /// threshold is disabled or the peer predates it).
    pub slow_requests: u64,
    /// Result-cache counters (hits, misses, entries, bytes, evictions,
    /// persistent-tier traffic).
    pub cache: CacheStats,
    /// Per-worker executed/stolen counts, indexed by worker.
    pub workers: Vec<WorkerMetrics>,
    /// Wall-clock time since the service started.
    pub uptime: Duration,
}

impl ServiceMetrics {
    /// Jobs executed by workers (excludes cache hits), summed.
    pub fn jobs_executed(&self) -> u64 {
        self.workers.iter().map(|w| w.executed).sum()
    }

    /// Jobs that moved between workers through stealing, summed.
    pub fn jobs_stolen(&self) -> u64 {
        self.workers.iter().map(|w| w.stolen).sum()
    }

    /// Accepted requests at one priority level.
    pub fn submitted_at(&self, priority: Priority) -> u64 {
        self.submitted_by_priority[priority.index()]
    }
}
