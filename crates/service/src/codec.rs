//! A hand-rolled, stable binary codec for the service's persistence and
//! wire layers.
//!
//! The workspace builds hermetically against vendored *stand-in* crates:
//! the `serde` on the dependency list is a marker-trait shim that performs
//! no real (de)serialization. The persistent cache tier and the
//! `ssync-serviced` IPC front-end nevertheless need real bytes, so this
//! module defines them explicitly: little-endian fixed-width integers,
//! IEEE-754 bit patterns for floats (full bit-identity round-trips, no
//! text formatting loss), one tag byte per enum variant and
//! length-prefixed sequences. Every `decode_*` function is total — corrupt
//! or truncated input yields a [`CodecError`], never a panic — because the
//! bytes may come from a shared cache directory or a remote peer.
//!
//! The encoding is versioned at the container level (cache files and wire
//! frames both start with a magic + version header, see
//! [`crate::cache`] and [`crate::wire`]); the field order here is the
//! contract and must only change together with those version numbers.

use ssync_arch::{Placement, RawPlacement, SlotId, TrapId, WeightConfig};
use ssync_baselines::CompilerKind;
use ssync_circuit::{Circuit, Gate, Qubit};
use ssync_core::{CompileError, CompileOutcome, CompilerConfig, InitialMapping, SchedulerStats};
use ssync_sim::{
    CompiledProgram, ExecutionReport, GateImplementation, NoiseModel, OpCounts, OperationTimes,
    ScheduledOp,
};
use std::time::Duration;

/// Why a byte stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    Truncated,
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A length prefix was implausibly large for the remaining input.
    BadLength,
    /// A decoded value failed semantic validation (e.g. an inconsistent
    /// placement or an invalid gate operand).
    Invalid(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::BadTag { what, tag } => write!(f, "invalid {what} tag {tag}"),
            CodecError::BadLength => write!(f, "length prefix exceeds remaining input"),
            CodecError::Invalid(what) => write!(f, "decoded {what} failed validation"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends primitive values to a byte buffer in the codec's format.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a little-endian `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends `Some(v)` as `1` + value bytes, `None` as `0`.
    pub fn put_opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(v) => {
                self.put_u8(1);
                self.put_u32(v);
            }
            None => self.put_u8(0),
        }
    }
}

/// Reads primitive values back out of a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` once every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one raw byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` encoded as a little-endian `u64`.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.get_u64()?).map_err(|_| CodecError::BadLength)
    }

    /// Reads a sequence length prefix, rejecting values that could not
    /// possibly fit in the remaining input (each element needs at least
    /// `min_element_bytes`), so corrupt prefixes fail fast instead of
    /// triggering giant allocations.
    pub fn get_len(&mut self, min_element_bytes: usize) -> Result<usize, CodecError> {
        let len = self.get_usize()?;
        if len.saturating_mul(min_element_bytes.max(1)) > self.remaining() {
            return Err(CodecError::BadLength);
        }
        Ok(len)
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let len = self.get_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("utf-8 string"))
    }

    /// Reads an optional `u32` written by [`ByteWriter::put_opt_u32`].
    pub fn get_opt_u32(&mut self) -> Result<Option<u32>, CodecError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_u32()?)),
            tag => Err(CodecError::BadTag { what: "option", tag }),
        }
    }
}

// ---------------------------------------------------------------------------
// Enums: one stable tag byte per variant.
// ---------------------------------------------------------------------------

/// Stable wire tag of a [`CompilerKind`].
pub fn compiler_kind_tag(kind: CompilerKind) -> u8 {
    match kind {
        CompilerKind::Murali => 0,
        CompilerKind::Dai => 1,
        CompilerKind::SSync => 2,
        CompilerKind::Greedy => 3,
        CompilerKind::PermRoute => 4,
    }
}

/// Inverse of [`compiler_kind_tag`].
pub fn compiler_kind_from_tag(tag: u8) -> Result<CompilerKind, CodecError> {
    Ok(match tag {
        0 => CompilerKind::Murali,
        1 => CompilerKind::Dai,
        2 => CompilerKind::SSync,
        3 => CompilerKind::Greedy,
        4 => CompilerKind::PermRoute,
        tag => return Err(CodecError::BadTag { what: "compiler kind", tag }),
    })
}

fn initial_mapping_tag(m: InitialMapping) -> u8 {
    match m {
        InitialMapping::EvenDivided => 0,
        InitialMapping::Gathering => 1,
        InitialMapping::Sta => 2,
    }
}

fn initial_mapping_from_tag(tag: u8) -> Result<InitialMapping, CodecError> {
    Ok(match tag {
        0 => InitialMapping::EvenDivided,
        1 => InitialMapping::Gathering,
        2 => InitialMapping::Sta,
        tag => return Err(CodecError::BadTag { what: "initial mapping", tag }),
    })
}

fn gate_impl_tag(g: GateImplementation) -> u8 {
    match g {
        GateImplementation::Fm => 0,
        GateImplementation::Pm => 1,
        GateImplementation::Am1 => 2,
        GateImplementation::Am2 => 3,
    }
}

fn gate_impl_from_tag(tag: u8) -> Result<GateImplementation, CodecError> {
    Ok(match tag {
        0 => GateImplementation::Fm,
        1 => GateImplementation::Pm,
        2 => GateImplementation::Am1,
        3 => GateImplementation::Am2,
        tag => return Err(CodecError::BadTag { what: "gate implementation", tag }),
    })
}

// ---------------------------------------------------------------------------
// Circuits.
// ---------------------------------------------------------------------------

/// Encodes a circuit: register width, name, then one (tag, operands,
/// angle-bits) triple per gate — the same field walk
/// [`Circuit::content_hash`] uses, so two circuits encode identically iff
/// they hash identically (plus the name, which the hash excludes).
pub fn encode_circuit(w: &mut ByteWriter, circuit: &Circuit) {
    w.put_usize(circuit.num_qubits());
    w.put_str(circuit.name());
    w.put_usize(circuit.len());
    for gate in circuit.gates() {
        let (tag, a, b, angle): (u8, u32, u32, f64) = match *gate {
            Gate::H(q) => (0, q.0, u32::MAX, 0.0),
            Gate::X(q) => (1, q.0, u32::MAX, 0.0),
            Gate::Rx(q, t) => (2, q.0, u32::MAX, t),
            Gate::Ry(q, t) => (3, q.0, u32::MAX, t),
            Gate::Rz(q, t) => (4, q.0, u32::MAX, t),
            Gate::Cx(x, y) => (5, x.0, y.0, 0.0),
            Gate::Cz(x, y) => (6, x.0, y.0, 0.0),
            Gate::Cp(x, y, t) => (7, x.0, y.0, t),
            Gate::Ms(x, y) => (8, x.0, y.0, 0.0),
            Gate::Rzz(x, y, t) => (9, x.0, y.0, t),
            Gate::Rxx(x, y, t) => (10, x.0, y.0, t),
            Gate::Ryy(x, y, t) => (11, x.0, y.0, t),
            Gate::Swap(x, y) => (12, x.0, y.0, 0.0),
        };
        w.put_u8(tag);
        w.put_u32(a);
        w.put_u32(b);
        w.put_f64(angle);
    }
}

/// Decodes a circuit written by [`encode_circuit`], re-validating every
/// gate's operands against the register width.
pub fn decode_circuit(r: &mut ByteReader<'_>) -> Result<Circuit, CodecError> {
    let num_qubits = r.get_usize()?;
    let name = r.get_str()?;
    let len = r.get_len(17)?;
    let mut circuit = Circuit::with_name(num_qubits, name);
    for _ in 0..len {
        let tag = r.get_u8()?;
        let a = Qubit(r.get_u32()?);
        let b = Qubit(r.get_u32()?);
        let angle = r.get_f64()?;
        let gate = match tag {
            0 => Gate::H(a),
            1 => Gate::X(a),
            2 => Gate::Rx(a, angle),
            3 => Gate::Ry(a, angle),
            4 => Gate::Rz(a, angle),
            5 => Gate::Cx(a, b),
            6 => Gate::Cz(a, b),
            7 => Gate::Cp(a, b, angle),
            8 => Gate::Ms(a, b),
            9 => Gate::Rzz(a, b, angle),
            10 => Gate::Rxx(a, b, angle),
            11 => Gate::Ryy(a, b, angle),
            12 => Gate::Swap(a, b),
            tag => return Err(CodecError::BadTag { what: "gate", tag }),
        };
        circuit.try_push(gate).map_err(|_| CodecError::Invalid("gate operands"))?;
    }
    Ok(circuit)
}

// ---------------------------------------------------------------------------
// Compiler configuration.
// ---------------------------------------------------------------------------

/// Encodes every [`CompilerConfig`] field except `scoring_threads`
/// (including `batch_workers`, which the cache key hash deliberately
/// skips — the wire layer transports the config verbatim; only the cache
/// decides what is output-affecting). `scoring_threads` stays off the
/// wire entirely: it is a server-side resource budget, not part of the
/// request (see [`decode_config`]).
pub fn encode_config(w: &mut ByteWriter, c: &CompilerConfig) {
    w.put_f64(c.weights.inner_weight);
    w.put_f64(c.weights.shuttle_weight);
    w.put_f64(c.weights.threshold);
    w.put_f64(c.decay_delta);
    w.put_usize(c.decay_reset_interval);
    w.put_usize(c.lookahead_layers);
    w.put_usize(c.path_truncation);
    w.put_f64(c.alpha);
    w.put_f64(c.beta);
    w.put_u8(initial_mapping_tag(c.initial_mapping));
    w.put_u8(gate_impl_tag(c.gate_impl));
    w.put_f64(c.op_times.move_us);
    w.put_f64(c.op_times.split_us);
    w.put_f64(c.op_times.merge_us);
    w.put_f64(c.op_times.junction_base_us);
    w.put_f64(c.op_times.junction_per_path_us);
    w.put_f64(c.op_times.reorder_us);
    w.put_f64(c.noise.heating_rate_gamma);
    w.put_f64(c.noise.k1_split_merge);
    w.put_f64(c.noise.k2_shuttle_segment);
    w.put_f64(c.noise.thermal_scale);
    w.put_f64(c.noise.single_qubit_fidelity);
    w.put_f64(c.noise.recooling_factor);
    w.put_usize(c.max_stall_iterations);
    w.put_f64(c.executable_bonus);
    w.put_usize(c.batch_workers);
}

/// Decodes a configuration written by [`encode_config`].
pub fn decode_config(r: &mut ByteReader<'_>) -> Result<CompilerConfig, CodecError> {
    Ok(CompilerConfig {
        weights: WeightConfig {
            inner_weight: r.get_f64()?,
            shuttle_weight: r.get_f64()?,
            threshold: r.get_f64()?,
        },
        decay_delta: r.get_f64()?,
        decay_reset_interval: r.get_usize()?,
        lookahead_layers: r.get_usize()?,
        path_truncation: r.get_usize()?,
        alpha: r.get_f64()?,
        beta: r.get_f64()?,
        initial_mapping: initial_mapping_from_tag(r.get_u8()?)?,
        gate_impl: gate_impl_from_tag(r.get_u8()?)?,
        op_times: OperationTimes {
            move_us: r.get_f64()?,
            split_us: r.get_f64()?,
            merge_us: r.get_f64()?,
            junction_base_us: r.get_f64()?,
            junction_per_path_us: r.get_f64()?,
            reorder_us: r.get_f64()?,
        },
        noise: NoiseModel {
            heating_rate_gamma: r.get_f64()?,
            k1_split_merge: r.get_f64()?,
            k2_shuttle_segment: r.get_f64()?,
            thermal_scale: r.get_f64()?,
            single_qubit_fidelity: r.get_f64()?,
            recooling_factor: r.get_f64()?,
        },
        max_stall_iterations: r.get_usize()?,
        executable_bonus: r.get_f64()?,
        batch_workers: r.get_usize()?,
        // Deliberately not wire-encoded: intra-compile scoring threads
        // are a *server-side* resource decision (the pool budgets them
        // against its worker count), never output-affecting, and a remote
        // client must not be able to dictate server thread usage. Decoded
        // configs land on "auto" and the executing pool pins the budget.
        scoring_threads: 0,
        // Also off the wire, but for a different reason: the bubble-sort
        // oracle exists for local ablation and testing only, so remote
        // submissions always run the production sub-quadratic schedule.
        // Unlike scoring_threads this knob IS output-affecting, which is
        // why `config_hash` includes it while the wire codec does not.
        perm_schedule: ssync_core::SwapScheduleKind::default(),
        // Off the wire like scoring_threads: the flight recorder is a
        // server-side observability decision (it never changes compiled
        // output), so remote submissions cannot switch it on or off.
        // Decoded configs land on "off" and the executing pool pins the
        // operator's choice.
        flight_recorder: false,
    })
}

// ---------------------------------------------------------------------------
// Compiled outcomes.
// ---------------------------------------------------------------------------

fn encode_counts(w: &mut ByteWriter, c: OpCounts) {
    w.put_usize(c.single_qubit_gates);
    w.put_usize(c.two_qubit_gates);
    w.put_usize(c.swap_gates);
    w.put_usize(c.shuttles);
    w.put_usize(c.reorders);
}

fn decode_counts(r: &mut ByteReader<'_>) -> Result<OpCounts, CodecError> {
    Ok(OpCounts {
        single_qubit_gates: r.get_usize()?,
        two_qubit_gates: r.get_usize()?,
        swap_gates: r.get_usize()?,
        shuttles: r.get_usize()?,
        reorders: r.get_usize()?,
    })
}

fn encode_op(w: &mut ByteWriter, op: &ScheduledOp) {
    match *op {
        ScheduledOp::SingleQubitGate { qubit } => {
            w.put_u8(0);
            w.put_u32(qubit.0);
        }
        ScheduledOp::TwoQubitGate { a, b, trap, chain_len, ion_distance } => {
            w.put_u8(1);
            w.put_u32(a.0);
            w.put_u32(b.0);
            w.put_u32(trap.0);
            w.put_usize(chain_len);
            w.put_usize(ion_distance);
        }
        ScheduledOp::SwapGate { a, b, trap, chain_len, ion_distance } => {
            w.put_u8(2);
            w.put_u32(a.0);
            w.put_u32(b.0);
            w.put_u32(trap.0);
            w.put_usize(chain_len);
            w.put_usize(ion_distance);
        }
        ScheduledOp::IonReorder { trap, steps } => {
            w.put_u8(3);
            w.put_u32(trap.0);
            w.put_usize(steps);
        }
        ScheduledOp::Shuttle {
            qubit,
            from_trap,
            to_trap,
            junctions,
            segments,
            source_chain_len,
            dest_chain_len,
        } => {
            w.put_u8(4);
            w.put_u32(qubit.0);
            w.put_u32(from_trap.0);
            w.put_u32(to_trap.0);
            w.put_u32(junctions);
            w.put_usize(segments);
            w.put_usize(source_chain_len);
            w.put_usize(dest_chain_len);
        }
    }
}

fn decode_op(r: &mut ByteReader<'_>) -> Result<ScheduledOp, CodecError> {
    Ok(match r.get_u8()? {
        0 => ScheduledOp::SingleQubitGate { qubit: Qubit(r.get_u32()?) },
        1 => ScheduledOp::TwoQubitGate {
            a: Qubit(r.get_u32()?),
            b: Qubit(r.get_u32()?),
            trap: TrapId(r.get_u32()?),
            chain_len: r.get_usize()?,
            ion_distance: r.get_usize()?,
        },
        2 => ScheduledOp::SwapGate {
            a: Qubit(r.get_u32()?),
            b: Qubit(r.get_u32()?),
            trap: TrapId(r.get_u32()?),
            chain_len: r.get_usize()?,
            ion_distance: r.get_usize()?,
        },
        3 => ScheduledOp::IonReorder { trap: TrapId(r.get_u32()?), steps: r.get_usize()? },
        4 => ScheduledOp::Shuttle {
            qubit: Qubit(r.get_u32()?),
            from_trap: TrapId(r.get_u32()?),
            to_trap: TrapId(r.get_u32()?),
            junctions: r.get_u32()?,
            segments: r.get_usize()?,
            source_chain_len: r.get_usize()?,
            dest_chain_len: r.get_usize()?,
        },
        tag => return Err(CodecError::BadTag { what: "scheduled op", tag }),
    })
}

fn encode_placement(w: &mut ByteWriter, p: &Placement) {
    let raw = p.to_raw();
    w.put_usize(raw.slot_of.len());
    for s in &raw.slot_of {
        w.put_opt_u32(s.map(|s| s.0));
    }
    w.put_usize(raw.occupant.len());
    for q in &raw.occupant {
        w.put_opt_u32(q.map(|q| q.0));
    }
    for t in &raw.slot_trap {
        w.put_u32(t.0);
    }
    w.put_usize(raw.trap_capacity.len());
    for &c in &raw.trap_capacity {
        w.put_usize(c);
    }
    for &o in &raw.trap_occupancy {
        w.put_usize(o);
    }
}

fn decode_placement(r: &mut ByteReader<'_>) -> Result<Placement, CodecError> {
    let num_qubits = r.get_len(1)?;
    let mut slot_of = Vec::with_capacity(num_qubits);
    for _ in 0..num_qubits {
        slot_of.push(r.get_opt_u32()?.map(SlotId));
    }
    let num_slots = r.get_len(1)?;
    let mut occupant = Vec::with_capacity(num_slots);
    for _ in 0..num_slots {
        occupant.push(r.get_opt_u32()?.map(Qubit));
    }
    let mut slot_trap = Vec::with_capacity(num_slots);
    for _ in 0..num_slots {
        slot_trap.push(TrapId(r.get_u32()?));
    }
    let num_traps = r.get_len(8)?;
    let mut trap_capacity = Vec::with_capacity(num_traps);
    for _ in 0..num_traps {
        trap_capacity.push(r.get_usize()?);
    }
    let mut trap_occupancy = Vec::with_capacity(num_traps);
    for _ in 0..num_traps {
        trap_occupancy.push(r.get_usize()?);
    }
    Placement::from_raw(RawPlacement {
        slot_of,
        occupant,
        slot_trap,
        trap_capacity,
        trap_occupancy,
    })
    .ok_or(CodecError::Invalid("placement"))
}

/// Encodes a full [`CompileOutcome`]: program stream, execution report,
/// final placement, scheduler statistics and compile time. The decoded
/// value is bit-identical to the original (float fields round-trip through
/// their bit patterns).
pub fn encode_outcome(w: &mut ByteWriter, outcome: &CompileOutcome) {
    let program = outcome.program();
    w.put_usize(program.num_qubits());
    w.put_usize(program.num_traps());
    w.put_usize(program.len());
    for op in program.ops() {
        encode_op(w, op);
    }
    let report = outcome.report();
    w.put_f64(report.total_time_us);
    w.put_f64(report.success_rate);
    w.put_f64(report.gate_time_us);
    w.put_f64(report.transport_time_us);
    encode_counts(w, report.counts);
    w.put_f64(report.max_motional_quanta);
    encode_placement(w, outcome.final_placement());
    let stats = outcome.scheduler_stats();
    w.put_usize(stats.iterations);
    w.put_usize(stats.heuristic_swaps);
    w.put_usize(stats.fallback_routed_gates);
    w.put_u64(outcome.compile_time().as_nanos() as u64);
}

/// Decodes an outcome written by [`encode_outcome`].
pub fn decode_outcome(r: &mut ByteReader<'_>) -> Result<CompileOutcome, CodecError> {
    let num_qubits = r.get_usize()?;
    let num_traps = r.get_usize()?;
    let len = r.get_len(5)?;
    let mut program = CompiledProgram::new(num_qubits, num_traps);
    for _ in 0..len {
        program.push(decode_op(r)?);
    }
    let report = ExecutionReport {
        total_time_us: r.get_f64()?,
        success_rate: r.get_f64()?,
        gate_time_us: r.get_f64()?,
        transport_time_us: r.get_f64()?,
        counts: decode_counts(r)?,
        max_motional_quanta: r.get_f64()?,
    };
    let placement = decode_placement(r)?;
    let stats = SchedulerStats {
        iterations: r.get_usize()?,
        heuristic_swaps: r.get_usize()?,
        fallback_routed_gates: r.get_usize()?,
    };
    let compile_time = Duration::from_nanos(r.get_u64()?);
    Ok(CompileOutcome::from_saved_parts(program, report, placement, stats, compile_time))
}

/// Encodes a [`CompileError`] (tag + payload).
pub fn encode_compile_error(w: &mut ByteWriter, e: &CompileError) {
    match e {
        CompileError::DeviceTooSmall { qubits, slots } => {
            w.put_u8(0);
            w.put_usize(*qubits);
            w.put_usize(*slots);
        }
        CompileError::DisconnectedTopology => w.put_u8(1),
        CompileError::SchedulingStalled { remaining_gates } => {
            w.put_u8(2);
            w.put_usize(*remaining_gates);
        }
        CompileError::Internal { message } => {
            w.put_u8(3);
            w.put_str(message);
        }
        CompileError::DeadlineExceeded { deadline_us } => {
            w.put_u8(4);
            w.put_u64(*deadline_us);
        }
        CompileError::Overloaded { retry_after_ms } => {
            w.put_u8(5);
            w.put_u64(*retry_after_ms);
        }
    }
}

/// Decodes an error written by [`encode_compile_error`].
pub fn decode_compile_error(r: &mut ByteReader<'_>) -> Result<CompileError, CodecError> {
    Ok(match r.get_u8()? {
        0 => CompileError::DeviceTooSmall { qubits: r.get_usize()?, slots: r.get_usize()? },
        1 => CompileError::DisconnectedTopology,
        2 => CompileError::SchedulingStalled { remaining_gates: r.get_usize()? },
        3 => CompileError::Internal { message: r.get_str()? },
        4 => CompileError::DeadlineExceeded { deadline_us: r.get_u64()? },
        5 => CompileError::Overloaded { retry_after_ms: r.get_u64()? },
        tag => return Err(CodecError::BadTag { what: "compile error", tag }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_arch::QccdTopology;
    use ssync_circuit::generators::{qaoa_nearest_neighbor, qft};
    use ssync_core::SSyncCompiler;

    fn assert_outcome_roundtrip(outcome: &CompileOutcome) {
        let mut w = ByteWriter::new();
        encode_outcome(&mut w, outcome);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let decoded = decode_outcome(&mut r).expect("round-trips");
        assert!(r.is_exhausted(), "no trailing bytes");
        assert_eq!(outcome.program().ops(), decoded.program().ops());
        assert_eq!(outcome.final_placement(), decoded.final_placement());
        assert_eq!(outcome.scheduler_stats(), decoded.scheduler_stats());
        assert_eq!(outcome.compile_time(), decoded.compile_time());
        assert_eq!(
            outcome.report().success_rate.to_bits(),
            decoded.report().success_rate.to_bits()
        );
        assert_eq!(
            outcome.report().total_time_us.to_bits(),
            decoded.report().total_time_us.to_bits()
        );
        assert_eq!(outcome.report().counts, decoded.report().counts);
    }

    #[test]
    fn outcome_round_trips_bit_identically() {
        let outcome = SSyncCompiler::default()
            .compile(&qft(10), &QccdTopology::grid(2, 2, 5))
            .expect("compiles");
        assert_outcome_roundtrip(&outcome);
    }

    #[test]
    fn circuit_round_trips_and_preserves_content_hash() {
        let circuit = qaoa_nearest_neighbor(10, 2);
        let mut w = ByteWriter::new();
        encode_circuit(&mut w, &circuit);
        let bytes = w.into_bytes();
        let decoded = decode_circuit(&mut ByteReader::new(&bytes)).expect("round-trips");
        assert_eq!(circuit, decoded);
        assert_eq!(circuit.content_hash(), decoded.content_hash());
    }

    #[test]
    fn config_round_trips_every_field() {
        let config = CompilerConfig::default()
            .with_decay(0.0123)
            .with_weight_ratio(321.0)
            .with_initial_mapping(InitialMapping::Sta)
            .with_gate_impl(GateImplementation::Am2)
            .with_batch_workers(7);
        let mut w = ByteWriter::new();
        encode_config(&mut w, &config);
        let bytes = w.into_bytes();
        let decoded = decode_config(&mut ByteReader::new(&bytes)).expect("round-trips");
        assert_eq!(config, decoded);
    }

    #[test]
    fn compile_errors_round_trip() {
        for err in [
            CompileError::DeviceTooSmall { qubits: 12, slots: 8 },
            CompileError::DisconnectedTopology,
            CompileError::SchedulingStalled { remaining_gates: 3 },
            CompileError::Internal { message: "worker panicked".into() },
            CompileError::DeadlineExceeded { deadline_us: 1500 },
            CompileError::Overloaded { retry_after_ms: 25 },
        ] {
            let mut w = ByteWriter::new();
            encode_compile_error(&mut w, &err);
            let bytes = w.into_bytes();
            let decoded = decode_compile_error(&mut ByteReader::new(&bytes)).expect("round-trips");
            assert_eq!(format!("{err}"), format!("{decoded}"));
        }
    }

    #[test]
    fn compiler_kind_tags_are_stable_and_round_trip() {
        use ssync_baselines::CompilerKind;
        // Wire tags are append-only: existing values may never change.
        assert_eq!(compiler_kind_tag(CompilerKind::Murali), 0);
        assert_eq!(compiler_kind_tag(CompilerKind::Dai), 1);
        assert_eq!(compiler_kind_tag(CompilerKind::SSync), 2);
        assert_eq!(compiler_kind_tag(CompilerKind::Greedy), 3);
        assert_eq!(compiler_kind_tag(CompilerKind::PermRoute), 4);
        for kind in CompilerKind::ALL {
            assert_eq!(compiler_kind_from_tag(compiler_kind_tag(kind)).unwrap(), kind);
        }
        assert!(matches!(
            compiler_kind_from_tag(CompilerKind::ALL.len() as u8),
            Err(CodecError::BadTag { what: "compiler kind", .. })
        ));
    }

    #[test]
    fn perm_schedule_stays_off_the_wire() {
        // The bubble-sort oracle is a local ablation knob: encoding a
        // config that selects it and decoding lands on the production
        // schedule, with every transported field intact.
        let config = CompilerConfig::default()
            .with_perm_schedule(ssync_core::SwapScheduleKind::BubbleSort)
            .with_decay(0.0123);
        let mut w = ByteWriter::new();
        encode_config(&mut w, &config);
        let bytes = w.into_bytes();
        let decoded = decode_config(&mut ByteReader::new(&bytes)).expect("round-trips");
        assert_eq!(decoded.perm_schedule, ssync_core::SwapScheduleKind::RecursiveSplitTwo);
        assert_eq!(decoded.decay_delta, config.decay_delta);
    }

    #[test]
    fn flight_recorder_stays_off_the_wire() {
        // The recorder is a server-side observability switch: encoding a
        // config with it enabled and decoding lands back on "off", with
        // every transported field intact.
        let config = CompilerConfig::default().with_flight_recorder(true).with_decay(0.0123);
        let mut w = ByteWriter::new();
        encode_config(&mut w, &config);
        let bytes = w.into_bytes();
        let decoded = decode_config(&mut ByteReader::new(&bytes)).expect("round-trips");
        assert!(!decoded.flight_recorder);
        assert_eq!(decoded.decay_delta, config.decay_delta);
    }

    #[test]
    fn truncated_and_corrupt_input_fail_cleanly() {
        let outcome = SSyncCompiler::default()
            .compile(&qft(8), &QccdTopology::linear(2, 5))
            .expect("compiles");
        let mut w = ByteWriter::new();
        encode_outcome(&mut w, &outcome);
        let bytes = w.into_bytes();
        // Every truncation point must error, never panic.
        for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_outcome(&mut ByteReader::new(&bytes[..cut])).is_err(), "cut {cut}");
        }
        // A corrupted op tag errors.
        let mut corrupt = bytes.clone();
        corrupt[24] = 0xEE; // first op's tag byte (after 3 u64 headers)
        assert!(decode_outcome(&mut ByteReader::new(&corrupt)).is_err());
        // A giant length prefix is rejected without allocating.
        let mut huge = ByteWriter::new();
        huge.put_u64(u64::MAX);
        let huge = huge.into_bytes();
        assert!(matches!(ByteReader::new(&huge).get_len(1), Err(CodecError::BadLength)));
    }
}
