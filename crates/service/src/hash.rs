//! Stable, process-independent fingerprints for cache keys.
//!
//! Everything here folds through [`StableHasher`] — the workspace's single
//! FNV-1a implementation, re-exported from `ssync-circuit` so circuit
//! content hashes and device/config fingerprints can never drift apart —
//! over an explicit, documented field walk: floats contribute their exact
//! bit patterns, enum variants contribute their stable labels.

use ssync_arch::{Device, WeightConfig};
use ssync_core::CompilerConfig;

pub use ssync_circuit::StableHasher;

fn write_weights(h: &mut StableHasher, w: WeightConfig) {
    h.write_f64(w.inner_weight);
    h.write_f64(w.shuttle_weight);
    h.write_f64(w.threshold);
}

/// A stable fingerprint of a device's *content*: trap count, per-trap
/// capacities, the inter-trap link list (endpoints + junction counts) and
/// the edge weights everything was derived under. The topology's display
/// name is deliberately excluded — two differently-named but structurally
/// identical devices fingerprint identically, and rebuilding the same
/// machine in another process reproduces the value exactly.
pub fn device_fingerprint(device: &Device) -> u64 {
    let topology = device.topology();
    let mut h = StableHasher::new();
    h.write_usize(topology.num_traps());
    for trap in topology.traps() {
        h.write_usize(trap.capacity());
    }
    let links = topology.links();
    h.write_usize(links.len());
    for (a, b, junctions) in links {
        h.write_u64(u64::from(a.0) | (u64::from(b.0) << 32));
        h.write_u64(u64::from(junctions));
    }
    write_weights(&mut h, device.weights());
    h.finish()
}

/// A stable hash over every [`CompilerConfig`] field that can influence
/// compiled output: heuristic hyper-parameters, mapping choice, gate
/// implementation, operation times and the full noise model.
/// `batch_workers` and `scoring_threads` are deliberately excluded —
/// neither the batch worker count nor the intra-compile scoring-thread
/// count ever changes results (the batch golden tests and the scoring
/// determinism tests enforce that), so two configs differing only in
/// parallelism share cache entries. The exclusion is also what lets the
/// service pool pin its budgeted `scoring_threads` into a job's config
/// *after* the cache key was computed. `flight_recorder` is excluded for
/// the same reason: the recorder observes without steering (compiled
/// output is bit-identical on or off), so enabling it must not cold the
/// cache.
pub fn config_hash(config: &CompilerConfig) -> u64 {
    let mut h = StableHasher::new();
    write_weights(&mut h, config.weights);
    h.write_f64(config.decay_delta);
    h.write_usize(config.decay_reset_interval);
    h.write_usize(config.lookahead_layers);
    h.write_usize(config.path_truncation);
    h.write_f64(config.alpha);
    h.write_f64(config.beta);
    h.write_str(config.initial_mapping.label());
    h.write_str(config.gate_impl.label());
    h.write_f64(config.op_times.move_us);
    h.write_f64(config.op_times.split_us);
    h.write_f64(config.op_times.merge_us);
    h.write_f64(config.op_times.junction_base_us);
    h.write_f64(config.op_times.junction_per_path_us);
    h.write_f64(config.op_times.reorder_us);
    h.write_f64(config.noise.heating_rate_gamma);
    h.write_f64(config.noise.k1_split_merge);
    h.write_f64(config.noise.k2_shuttle_segment);
    h.write_f64(config.noise.thermal_scale);
    h.write_f64(config.noise.single_qubit_fidelity);
    h.write_f64(config.noise.recooling_factor);
    h.write_usize(config.max_stall_iterations);
    h.write_f64(config.executable_bonus);
    // Output-affecting for CompilerKind::PermRoute (it selects the SWAP
    // schedule realising each blocked layer), so it must split the cache
    // even though the wire codec never transports it.
    h.write_str(config.perm_schedule.label());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_arch::QccdTopology;
    use ssync_core::InitialMapping;

    #[test]
    fn device_fingerprint_is_content_derived_and_stable() {
        let weights = CompilerConfig::default().weights;
        let a = Device::build(QccdTopology::grid(2, 3, 17), weights);
        let b = Device::build(QccdTopology::grid(2, 3, 17), weights);
        assert_eq!(device_fingerprint(&a), device_fingerprint(&b));

        let capacity = Device::build(QccdTopology::grid(2, 3, 18), weights);
        assert_ne!(device_fingerprint(&a), device_fingerprint(&capacity));
        let shape = Device::build(QccdTopology::grid(3, 2, 17), weights);
        assert_ne!(device_fingerprint(&a), device_fingerprint(&shape));
        let reweighted =
            Device::build(QccdTopology::grid(2, 3, 17), WeightConfig::with_ratio(100.0));
        assert_ne!(device_fingerprint(&a), device_fingerprint(&reweighted));
    }

    #[test]
    fn config_hash_tracks_output_affecting_fields_only() {
        let base = CompilerConfig::default();
        assert_eq!(config_hash(&base), config_hash(&CompilerConfig::default()));
        assert_ne!(config_hash(&base), config_hash(&base.with_decay(0.01)));
        assert_ne!(
            config_hash(&base),
            config_hash(&base.with_initial_mapping(InitialMapping::Sta))
        );
        assert_ne!(config_hash(&base), config_hash(&base.with_weight_ratio(100.0)));
        // The perm-route schedule changes the emitted SWAP stream, so it
        // must split the cache.
        assert_ne!(
            config_hash(&base),
            config_hash(&base.with_perm_schedule(ssync_core::SwapScheduleKind::BubbleSort))
        );
        // Neither parallelism knob can change compiled output, so
        // neither may split the cache.
        assert_eq!(config_hash(&base), config_hash(&base.with_batch_workers(7)));
        assert_eq!(config_hash(&base), config_hash(&base.with_scoring_threads(7)));
        // The flight recorder observes without steering (compiled output is
        // bit-identical on or off), so it must not split the cache either.
        assert_eq!(config_hash(&base), config_hash(&base.with_flight_recorder(true)));
    }

    #[test]
    fn every_noise_field_splits_the_cache_key() {
        // The evaluation report is part of the cached outcome, so every
        // noise parameter must contribute to the hash.
        let base = CompilerConfig::default();
        let mutations: [fn(&mut CompilerConfig); 6] = [
            |c| c.noise.heating_rate_gamma += 0.5,
            |c| c.noise.k1_split_merge += 0.05,
            |c| c.noise.k2_shuttle_segment += 0.005,
            |c| c.noise.thermal_scale *= 2.0,
            |c| c.noise.single_qubit_fidelity -= 1e-4,
            |c| c.noise.recooling_factor += 0.25,
        ];
        for (i, mutate) in mutations.iter().enumerate() {
            let mut changed = base;
            mutate(&mut changed);
            assert_ne!(config_hash(&base), config_hash(&changed), "noise field {i}");
        }
    }
}
