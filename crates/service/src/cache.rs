//! The compile-result cache.
//!
//! Compilation is deterministic: the outcome is a pure function of
//! (device, circuit, compiler, config). A long-lived service can therefore
//! memoise it — repeated requests (re-runs of a sweep, the same benchmark
//! against the same machine from different tenants) are served from memory
//! without recompiling, and because the service hands out `Arc`s of the
//! original outcome, a cache hit is also allocation-free.

use ssync_baselines::CompilerKind;
use ssync_core::CompileOutcome;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The identity of one compile request, built from stable content hashes
/// (never from process-local pointers or randomly-seeded hashers):
/// the device's [fingerprint](crate::hash::device_fingerprint), the
/// circuit's [content hash](ssync_circuit::Circuit::content_hash), the
/// config's [output-affecting hash](crate::hash::config_hash) and the
/// compiler kind. Any component changing produces a different key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Stable fingerprint of the target device (topology + weights).
    pub device_fingerprint: u64,
    /// Stable content hash of the input circuit.
    pub circuit_hash: u64,
    /// Stable hash of the output-affecting configuration fields.
    pub config_hash: u64,
    /// Which compiler ran.
    pub compiler: CompilerKind,
}

/// Hit/miss counters of a [`ResultCache`], snapshot via
/// [`ResultCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a compile.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups, `0.0` when nothing was looked up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent memo table from [`CacheKey`] to shared compile outcomes.
/// Only successful outcomes are stored: errors are cheap to reproduce
/// (validation fails before any scheduling work) and should not occupy
/// memory. Unbounded by design for now — entries are a few kilobytes and
/// sweeps touch thousands, not millions, of distinct keys; an eviction
/// policy is a documented follow-up for a persistent tier.
#[derive(Debug, Default)]
pub struct ResultCache {
    map: Mutex<HashMap<CacheKey, Arc<CompileOutcome>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks `key` up, counting the outcome as a hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CompileOutcome>> {
        let found = self.map.lock().expect("cache lock poisoned").get(key).cloned();
        match found {
            Some(outcome) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(outcome)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a compiled outcome under `key`. Last write wins; since
    /// compilation is deterministic, concurrent writers store identical
    /// results and the race is benign.
    pub fn insert(&self, key: CacheKey, outcome: Arc<CompileOutcome>) {
        self.map.lock().expect("cache lock poisoned").insert(key, outcome);
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock poisoned").len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent snapshot of the hit/miss counters and entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_arch::QccdTopology;
    use ssync_circuit::generators::qft;
    use ssync_core::{CompilerConfig, SSyncCompiler};

    fn key(config: &CompilerConfig, circuit_hash: u64) -> CacheKey {
        CacheKey {
            device_fingerprint: 7,
            circuit_hash,
            config_hash: crate::hash::config_hash(config),
            compiler: CompilerKind::SSync,
        }
    }

    fn some_outcome() -> Arc<CompileOutcome> {
        let circuit = qft(6);
        let outcome = SSyncCompiler::default()
            .compile(&circuit, &QccdTopology::linear(2, 4))
            .expect("compiles");
        Arc::new(outcome)
    }

    #[test]
    fn identical_resubmit_hits_and_returns_the_same_arc() {
        let cache = ResultCache::new();
        let config = CompilerConfig::default();
        let circuit = qft(6);
        let k = key(&config, circuit.content_hash());
        assert!(cache.get(&k).is_none());
        let outcome = some_outcome();
        cache.insert(k, Arc::clone(&outcome));
        let hit = cache.get(&k).expect("second lookup hits");
        assert!(Arc::ptr_eq(&hit, &outcome), "hits share the stored outcome");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn any_key_component_change_is_a_miss() {
        let cache = ResultCache::new();
        let config = CompilerConfig::default();
        let circuit = qft(6);
        let base = key(&config, circuit.content_hash());
        cache.insert(base, some_outcome());

        let reconfigured = key(&config.with_decay(0.01), circuit.content_hash());
        assert!(cache.get(&reconfigured).is_none(), "config change must miss");
        let other_circuit = key(&config, qft(7).content_hash());
        assert!(cache.get(&other_circuit).is_none(), "circuit change must miss");
        let other_device = CacheKey { device_fingerprint: 8, ..base };
        assert!(cache.get(&other_device).is_none(), "device change must miss");
        let other_compiler = CacheKey { compiler: CompilerKind::Murali, ..base };
        assert!(cache.get(&other_compiler).is_none(), "compiler change must miss");
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn empty_cache_reports_zero_rate() {
        let cache = ResultCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }
}
