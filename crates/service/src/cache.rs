//! The compile-result cache: a bounded, evicting in-memory tier with an
//! optional persistent directory tier.
//!
//! Compilation is deterministic: the outcome is a pure function of
//! (device, circuit, compiler, config). A long-lived service can therefore
//! memoise it — repeated requests (re-runs of a sweep, the same benchmark
//! against the same machine from different tenants) are served from memory
//! without recompiling, and because the service hands out `Arc`s of the
//! original outcome, a cache hit is also allocation-free.
//!
//! ## Bounding and eviction (segmented LRU)
//!
//! Production traffic cannot run an unbounded memo table, so the cache
//! enforces two caps from [`CacheBounds`]: a **maximum entry count** and
//! an **approximate maximum resident byte size**, measured through the
//! [`CompiledWeight`] trait on stored results. Exceeding either cap evicts
//! entries under a *segmented-LRU* policy:
//!
//! * a new entry lands in the **probationary** segment;
//! * a hit promotes it to the **protected** segment (capped at 3/4 of the
//!   entry bound; overflow demotes the protected LRU back to probation);
//! * eviction removes the probationary LRU first and touches the
//!   protected segment only when probation is empty.
//!
//! One-touch entries (a sweep scanning thousands of configurations once)
//! therefore churn through probation without displacing the hot set —
//! the scan-resistance property plain LRU lacks. The policy is fully
//! deterministic: for a given sequence of `get`/`insert` calls the evicted
//! keys are fixed, which the unit tests pin down at capacity 1.
//!
//! ## The persistent tier
//!
//! Cache keys are built from stable content fingerprints (FNV-1a over
//! device/circuit/config content — see [`crate::hash`]), so they are valid
//! *across processes*. With [`CacheConfig::persist_dir`] set, every insert
//! is written through to `<dir>/<key>.outcome` (atomic tmp-file + rename)
//! and an in-memory miss falls back to loading that file, letting separate
//! bench runs share one compile. Files use the [`crate::codec`] binary
//! format behind a magic/version header; corrupt or truncated files are
//! treated as misses, never errors.

use crate::codec::{self, ByteReader, ByteWriter, CodecError};
use ssync_baselines::CompilerKind;
use ssync_core::{CacheBounds, CompileOutcome};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The identity of one compile request, built from stable content hashes
/// (never from process-local pointers or randomly-seeded hashers):
/// the device's [fingerprint](crate::hash::device_fingerprint), the
/// circuit's [content hash](ssync_circuit::Circuit::content_hash), the
/// config's [output-affecting hash](crate::hash::config_hash) and the
/// compiler kind. Any component changing produces a different key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Stable fingerprint of the target device (topology + weights).
    pub device_fingerprint: u64,
    /// Stable content hash of the input circuit.
    pub circuit_hash: u64,
    /// Stable hash of the output-affecting configuration fields.
    pub config_hash: u64,
    /// Which compiler ran.
    pub compiler: CompilerKind,
}

impl CacheKey {
    /// The file name this key persists under: the three fingerprints plus
    /// the compiler tag, all stable across processes.
    pub fn file_name(&self) -> String {
        format!(
            "{:016x}-{:016x}-{:016x}-k{}.outcome",
            self.device_fingerprint,
            self.circuit_hash,
            self.config_hash,
            codec::compiler_kind_tag(self.compiler)
        )
    }
}

/// Approximate resident size of a cached result, used to enforce
/// [`CacheBounds::max_bytes`]. Implementations estimate the heap footprint
/// (they are a cap guide, not an allocator audit).
pub trait CompiledWeight {
    /// Approximate resident bytes of this value.
    fn weight_bytes(&self) -> usize;
}

impl CompiledWeight for CompileOutcome {
    fn weight_bytes(&self) -> usize {
        let program = self.program();
        let placement = self.final_placement();
        std::mem::size_of::<CompileOutcome>()
            + program.len() * std::mem::size_of::<ssync_sim::ScheduledOp>()
            // slot_of + (occupant, slot_trap) + (trap_capacity, trap_occupancy)
            + placement.num_qubits() * 8
            + placement.num_slots() * 12
            + program.num_traps() * 16
    }
}

/// Full configuration of a [`ResultCache`]: capacity bounds for the
/// in-memory tier and the optional persistent directory tier, including
/// the startup garbage collection that keeps the directory bounded on
/// disk.
#[derive(Debug, Clone, Default)]
pub struct CacheConfig {
    /// Entry / byte caps of the in-memory tier ([`CacheBounds::UNBOUNDED`]
    /// by default — the historical behaviour).
    pub bounds: CacheBounds,
    /// Directory for the write-through persistent tier; `None` disables it.
    pub persist_dir: Option<PathBuf>,
    /// Byte budget for `persist_dir`, enforced **at startup** by deleting
    /// `.outcome` files oldest-mtime-first until the directory fits.
    /// `None` (the default) leaves the directory unbounded — the
    /// pre-GC behaviour. The `SSYNC_CACHE_DIR_MAX_BYTES` environment
    /// variable supplies this through
    /// [`CacheConfig::persist_gc_from_env`].
    pub persist_max_bytes: Option<u64>,
    /// Age budget for `persist_dir`: `.outcome` files whose mtime is
    /// older than this are deleted at startup regardless of the byte
    /// budget. `SSYNC_CACHE_DIR_MAX_AGE_SECS` supplies it through
    /// [`CacheConfig::persist_gc_from_env`].
    pub persist_max_age: Option<std::time::Duration>,
}

impl CacheConfig {
    /// An unbounded, memory-only configuration.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Returns a copy with the given capacity bounds.
    pub fn with_bounds(mut self, bounds: CacheBounds) -> Self {
        self.bounds = bounds;
        self
    }

    /// Returns a copy with the persistent tier rooted at `dir`.
    pub fn with_persist_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.persist_dir = Some(dir.into());
        self
    }

    /// Returns a copy with a startup byte budget for the persistent tier.
    pub fn with_persist_max_bytes(mut self, bytes: u64) -> Self {
        self.persist_max_bytes = Some(bytes);
        self
    }

    /// Returns a copy with a startup age budget for the persistent tier.
    pub fn with_persist_max_age(mut self, age: std::time::Duration) -> Self {
        self.persist_max_age = Some(age);
        self
    }

    /// Fills *unset* GC budgets from the environment:
    /// `SSYNC_CACHE_DIR_MAX_BYTES` (bytes) and
    /// `SSYNC_CACHE_DIR_MAX_AGE_SECS` (seconds). Missing, unparsable or
    /// zero values leave the axis unbounded, mirroring
    /// [`CacheBounds::from_env`].
    pub fn persist_gc_from_env(mut self) -> Self {
        fn axis(var: &str) -> Option<u64> {
            std::env::var(var).ok()?.trim().parse::<u64>().ok().filter(|&n| n > 0)
        }
        if self.persist_max_bytes.is_none() {
            self.persist_max_bytes = axis("SSYNC_CACHE_DIR_MAX_BYTES");
        }
        if self.persist_max_age.is_none() {
            self.persist_max_age =
                axis("SSYNC_CACHE_DIR_MAX_AGE_SECS").map(std::time::Duration::from_secs);
        }
        self
    }
}

/// Counters of a [`ResultCache`], snapshot via [`ResultCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache (memory or persistent tier).
    pub hits: u64,
    /// Lookups that fell through to a compile.
    pub misses: u64,
    /// Entries currently stored in memory.
    pub entries: usize,
    /// Approximate resident bytes of the in-memory tier.
    pub bytes: usize,
    /// Entries evicted to stay within the configured bounds.
    pub evictions: u64,
    /// Of `hits`, lookups served by loading a persisted file after an
    /// in-memory miss.
    pub persist_hits: u64,
    /// Entries successfully written through to the persistent tier.
    pub persist_stores: u64,
    /// `.outcome` files deleted by the startup garbage collection of the
    /// persistent tier (byte/age budgets, oldest-mtime-first).
    pub persist_gc_deleted: u64,
}

impl CacheStats {
    /// Hits over total lookups, `0.0` when nothing was looked up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One stored entry plus its bookkeeping.
struct Entry {
    outcome: Arc<CompileOutcome>,
    bytes: usize,
    protected: bool,
    /// Matches the newest queue record for this key; older records with a
    /// different stamp are stale and skipped during eviction (lazy LRU).
    stamp: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    /// `(stamp, key)` records, LRU at the front. Stale records (stamp
    /// mismatch or wrong segment) are dropped when encountered.
    probation: VecDeque<(u64, CacheKey)>,
    protected: VecDeque<(u64, CacheKey)>,
    protected_count: usize,
    tick: u64,
    bytes: usize,
}

/// A concurrent memo table from [`CacheKey`] to shared compile outcomes,
/// bounded and evicting per the module docs. Only successful outcomes are
/// stored: errors are cheap to reproduce (validation fails before any
/// scheduling work) and should not occupy memory.
pub struct ResultCache {
    inner: Mutex<Inner>,
    config: CacheConfig,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    persist_hits: AtomicU64,
    persist_stores: AtomicU64,
    persist_gc_deleted: AtomicU64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache").field("config", &self.config).finish_non_exhaustive()
    }
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::with_config(CacheConfig::default())
    }
}

impl ResultCache {
    /// An empty, unbounded, memory-only cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache with entry/byte bounds (memory-only).
    pub fn bounded(bounds: CacheBounds) -> Self {
        Self::with_config(CacheConfig::default().with_bounds(bounds))
    }

    /// An empty cache with the full configuration, including the optional
    /// persistent tier. When the persistent tier carries a byte or age
    /// budget, the directory is garbage-collected **now** (startup is the
    /// one moment the tier is quiescent): files older than the age budget
    /// go first, then oldest-mtime-first deletion until the byte budget
    /// holds. Deletions are counted in
    /// [`CacheStats::persist_gc_deleted`].
    pub fn with_config(config: CacheConfig) -> Self {
        let cache = ResultCache {
            inner: Mutex::new(Inner::default()),
            config,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            persist_hits: AtomicU64::new(0),
            persist_stores: AtomicU64::new(0),
            persist_gc_deleted: AtomicU64::new(0),
        };
        cache.run_persist_gc();
        cache
    }

    /// The active configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Runs the persistent-tier garbage collection **now** against the
    /// configured byte/age budgets — the same sweep the constructor runs
    /// at startup, callable periodically (the daemon's janitor thread)
    /// so a long-lived process keeps its directory bounded instead of
    /// only trimming it at boot. Deletion is safe while other processes
    /// share the directory: writers publish via tmp + rename (GC skips
    /// the dot-prefixed tmp files), and a reader losing a file mid-race
    /// simply sees a miss. Returns how many files were deleted (also
    /// added to [`CacheStats::persist_gc_deleted`]); a cache with no
    /// persistent tier or no budgets deletes nothing.
    pub fn run_persist_gc(&self) -> u64 {
        let deleted = match &self.config.persist_dir {
            Some(dir)
                if self.config.persist_max_bytes.is_some()
                    || self.config.persist_max_age.is_some() =>
            {
                gc_persist_dir(dir, self.config.persist_max_bytes, self.config.persist_max_age)
            }
            _ => 0,
        };
        if deleted > 0 {
            self.persist_gc_deleted.fetch_add(deleted, Ordering::Relaxed);
        }
        deleted
    }

    /// Looks `key` up, counting the outcome as a hit or miss. An in-memory
    /// miss consults the persistent tier (when configured) before giving
    /// up; a loaded file counts as both a hit and a `persist_hit` and is
    /// promoted into the memory tier.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CompileOutcome>> {
        if let Some(outcome) = self.get_memory(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(outcome);
        }
        if let Some(outcome) = self.load_persisted(key) {
            self.insert_memory(*key, Arc::clone(&outcome));
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.persist_hits.fetch_add(1, Ordering::Relaxed);
            return Some(outcome);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a compiled outcome under `key` (write-through to the
    /// persistent tier when configured). Last write wins; since
    /// compilation is deterministic, concurrent writers store identical
    /// results and the race is benign.
    pub fn insert(&self, key: CacheKey, outcome: Arc<CompileOutcome>) {
        self.insert_memory(key, Arc::clone(&outcome));
        if let Some(dir) = &self.config.persist_dir {
            if self.store_persisted(dir, &key, &outcome).is_ok() {
                self.persist_stores.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn get_memory(&self, key: &CacheKey) -> Option<Arc<CompileOutcome>> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        let inner = &mut *inner;
        let entry = inner.map.get_mut(key)?;
        let outcome = Arc::clone(&entry.outcome);
        // Promote to protected, restamping so older queue records go stale.
        inner.tick += 1;
        entry.stamp = inner.tick;
        if !entry.protected {
            entry.protected = true;
            inner.protected_count += 1;
        }
        let stamp = entry.stamp;
        inner.protected.push_back((stamp, *key));
        // Protected overflow demotes its LRU back to probation, keeping
        // room for newcomers to earn a second touch.
        let cap = protected_cap(&self.config.bounds);
        while inner.protected_count > cap {
            let Some((stamp, victim)) = inner.protected.pop_front() else { break };
            let Some(e) = inner.map.get_mut(&victim) else { continue };
            if !e.protected || e.stamp != stamp {
                continue; // stale record
            }
            inner.tick += 1;
            e.protected = false;
            e.stamp = inner.tick;
            let stamp = e.stamp;
            inner.protected_count -= 1;
            inner.probation.push_back((stamp, victim));
        }
        maybe_compact(inner);
        Some(outcome)
    }

    fn insert_memory(&self, key: CacheKey, outcome: Arc<CompileOutcome>) {
        let bytes = outcome.weight_bytes();
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        let inner = &mut *inner;
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                let entry = slot.get_mut();
                inner.bytes = inner.bytes - entry.bytes + bytes;
                entry.outcome = outcome;
                entry.bytes = bytes;
                entry.stamp = tick;
                if entry.protected {
                    inner.protected.push_back((tick, key));
                } else {
                    inner.probation.push_back((tick, key));
                }
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Entry { outcome, bytes, protected: false, stamp: tick });
                inner.bytes += bytes;
                inner.probation.push_back((tick, key));
            }
        }
        let evicted = enforce_bounds(inner, &self.config.bounds);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        maybe_compact(inner);
    }

    fn load_persisted(&self, key: &CacheKey) -> Option<Arc<CompileOutcome>> {
        let dir = self.config.persist_dir.as_ref()?;
        let bytes = std::fs::read(dir.join(key.file_name())).ok()?;
        decode_persisted(&bytes)
            .ok()
            .filter(|(stored, _)| stored == key)
            .map(|(_, outcome)| Arc::new(outcome))
    }

    fn store_persisted(
        &self,
        dir: &Path,
        key: &CacheKey,
        outcome: &CompileOutcome,
    ) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let bytes = encode_persisted(key, outcome);
        // Atomic publish: readers only ever see complete files.
        let tmp = dir.join(format!(".{}.tmp-{}", key.file_name(), std::process::id()));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, dir.join(key.file_name()))
    }

    /// Writes every in-memory entry through to `dir` (creating it if
    /// needed), regardless of whether the cache was configured with a
    /// persistent tier. Returns the number of entries written.
    ///
    /// # Errors
    ///
    /// Propagates the first I/O failure; earlier files stay written.
    pub fn snapshot_to(&self, dir: impl AsRef<Path>) -> std::io::Result<usize> {
        let dir = dir.as_ref();
        let entries: Vec<(CacheKey, Arc<CompileOutcome>)> = {
            let inner = self.inner.lock().expect("cache lock poisoned");
            inner.map.iter().map(|(k, e)| (*k, Arc::clone(&e.outcome))).collect()
        };
        for (key, outcome) in &entries {
            self.store_persisted(dir, key, outcome)?;
        }
        Ok(entries.len())
    }

    /// Loads every valid `.outcome` file under `dir` into the memory tier
    /// (still subject to the configured bounds). Corrupt files are skipped.
    /// Returns the number of entries loaded. A missing directory loads
    /// nothing.
    pub fn load_from(&self, dir: impl AsRef<Path>) -> usize {
        let Ok(listing) = std::fs::read_dir(dir.as_ref()) else { return 0 };
        let mut paths: Vec<PathBuf> = listing
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "outcome"))
            .collect();
        paths.sort(); // deterministic load (and eviction) order
        let mut loaded = 0usize;
        for path in paths {
            let Ok(bytes) = std::fs::read(&path) else { continue };
            let Ok((key, outcome)) = decode_persisted(&bytes) else { continue };
            self.insert_memory(key, Arc::new(outcome));
            loaded += 1;
        }
        loaded
    }

    /// Number of stored in-memory entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").map.len()
    }

    /// `true` when nothing is stored in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent snapshot of every counter.
    pub fn stats(&self) -> CacheStats {
        let (entries, bytes) = {
            let inner = self.inner.lock().expect("cache lock poisoned");
            (inner.map.len(), inner.bytes)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            bytes,
            evictions: self.evictions.load(Ordering::Relaxed),
            persist_hits: self.persist_hits.load(Ordering::Relaxed),
            persist_stores: self.persist_stores.load(Ordering::Relaxed),
            persist_gc_deleted: self.persist_gc_deleted.load(Ordering::Relaxed),
        }
    }
}

/// Enforces the persistent tier's byte/age budgets on `dir` by deleting
/// `.outcome` files: everything older than `max_age` first, then
/// oldest-mtime-first (ties broken by file name, so the order — and
/// therefore which files survive — is deterministic) until the remaining
/// total is within `max_bytes`. Returns how many files were deleted. A
/// missing or unreadable directory deletes nothing; files that vanish
/// mid-scan are skipped.
fn gc_persist_dir(dir: &Path, max_bytes: Option<u64>, max_age: Option<std::time::Duration>) -> u64 {
    use std::time::SystemTime;

    let Ok(listing) = std::fs::read_dir(dir) else { return 0 };
    let mut files: Vec<(SystemTime, PathBuf, u64)> = listing
        .filter_map(|entry| {
            let entry = entry.ok()?;
            let path = entry.path();
            if path.extension().is_none_or(|ext| ext != "outcome") {
                return None;
            }
            let meta = entry.metadata().ok()?;
            Some((meta.modified().ok()?, path, meta.len()))
        })
        .collect();
    files.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    let now = SystemTime::now();
    let mut deleted = 0u64;
    let mut keep = Vec::with_capacity(files.len());
    for (mtime, path, len) in files {
        let too_old =
            max_age.is_some_and(|budget| now.duration_since(mtime).is_ok_and(|age| age > budget));
        if too_old && std::fs::remove_file(&path).is_ok() {
            deleted += 1;
        } else {
            keep.push((path, len));
        }
    }
    if let Some(budget) = max_bytes {
        let mut total: u64 = keep.iter().map(|(_, len)| len).sum();
        for (path, len) in keep {
            if total <= budget {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                deleted += 1;
                total -= len;
            }
        }
    }
    deleted
}

/// Every hit pushes a fresh queue record and leaves the old one stale, so
/// a hot entry hit many times would grow the queues without bound. When
/// the queues hold more than 4× the live entries, drop every stale record
/// in place (order among live records is preserved, so LRU order — and
/// therefore eviction determinism — is unaffected).
fn maybe_compact(inner: &mut Inner) {
    let live = inner.map.len();
    if inner.probation.len() + inner.protected.len() <= (4 * live).max(32) {
        return;
    }
    let Inner { map, probation, protected, .. } = inner;
    probation
        .retain(|(stamp, key)| map.get(key).is_some_and(|e| !e.protected && e.stamp == *stamp));
    protected.retain(|(stamp, key)| map.get(key).is_some_and(|e| e.protected && e.stamp == *stamp));
}

/// The protected segment holds at most 3/4 of a bounded cache (at least
/// one entry); unbounded caches never demote.
fn protected_cap(bounds: &CacheBounds) -> usize {
    match bounds.max_entries {
        Some(max) => (max.saturating_mul(3) / 4).max(1),
        None => usize::MAX,
    }
}

/// Evicts until both caps hold; returns how many entries were removed.
fn enforce_bounds(inner: &mut Inner, bounds: &CacheBounds) -> u64 {
    let over = |inner: &Inner| {
        bounds.max_entries.is_some_and(|cap| inner.map.len() > cap)
            || bounds.max_bytes.is_some_and(|cap| inner.bytes > cap)
    };
    let mut evicted = 0u64;
    while over(inner) && !inner.map.is_empty() {
        if evict_one(inner, false) || evict_one(inner, true) {
            evicted += 1;
        } else {
            break; // queues exhausted (cannot happen with a non-empty map)
        }
    }
    evicted
}

/// Pops the LRU of one segment (skipping stale records) and removes it
/// from the map. Returns `false` when the segment has no live entry.
fn evict_one(inner: &mut Inner, from_protected: bool) -> bool {
    let queue = if from_protected { &mut inner.protected } else { &mut inner.probation };
    while let Some((stamp, key)) = queue.pop_front() {
        let Some(entry) = inner.map.get(&key) else { continue };
        if entry.protected != from_protected || entry.stamp != stamp {
            continue; // stale record: the entry moved or was restamped
        }
        let entry = inner.map.remove(&key).expect("checked present");
        inner.bytes -= entry.bytes;
        if from_protected {
            inner.protected_count -= 1;
        }
        return true;
    }
    false
}

const PERSIST_MAGIC: u32 = 0x5353_4352; // "SSCR"
const PERSIST_VERSION: u32 = 1;

fn encode_persisted(key: &CacheKey, outcome: &CompileOutcome) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(PERSIST_MAGIC);
    w.put_u32(PERSIST_VERSION);
    w.put_u64(key.device_fingerprint);
    w.put_u64(key.circuit_hash);
    w.put_u64(key.config_hash);
    w.put_u8(codec::compiler_kind_tag(key.compiler));
    codec::encode_outcome(&mut w, outcome);
    w.into_bytes()
}

fn decode_persisted(bytes: &[u8]) -> Result<(CacheKey, CompileOutcome), CodecError> {
    let mut r = ByteReader::new(bytes);
    if r.get_u32()? != PERSIST_MAGIC {
        return Err(CodecError::Invalid("cache file magic"));
    }
    if r.get_u32()? != PERSIST_VERSION {
        return Err(CodecError::Invalid("cache file version"));
    }
    let key = CacheKey {
        device_fingerprint: r.get_u64()?,
        circuit_hash: r.get_u64()?,
        config_hash: r.get_u64()?,
        compiler: codec::compiler_kind_from_tag(r.get_u8()?)?,
    };
    let outcome = codec::decode_outcome(&mut r)?;
    if !r.is_exhausted() {
        return Err(CodecError::Invalid("trailing bytes"));
    }
    Ok((key, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_arch::QccdTopology;
    use ssync_circuit::generators::qft;
    use ssync_core::{CompilerConfig, SSyncCompiler};

    fn key_n(n: u64) -> CacheKey {
        CacheKey {
            device_fingerprint: n,
            circuit_hash: 100 + n,
            config_hash: 200 + n,
            compiler: CompilerKind::SSync,
        }
    }

    fn key(config: &CompilerConfig, circuit_hash: u64) -> CacheKey {
        CacheKey {
            device_fingerprint: 7,
            circuit_hash,
            config_hash: crate::hash::config_hash(config),
            compiler: CompilerKind::SSync,
        }
    }

    fn some_outcome() -> Arc<CompileOutcome> {
        let circuit = qft(6);
        let outcome = SSyncCompiler::default()
            .compile(&circuit, &QccdTopology::linear(2, 4))
            .expect("compiles");
        Arc::new(outcome)
    }

    #[test]
    fn identical_resubmit_hits_and_returns_the_same_arc() {
        let cache = ResultCache::new();
        let config = CompilerConfig::default();
        let circuit = qft(6);
        let k = key(&config, circuit.content_hash());
        assert!(cache.get(&k).is_none());
        let outcome = some_outcome();
        cache.insert(k, Arc::clone(&outcome));
        let hit = cache.get(&k).expect("second lookup hits");
        assert!(Arc::ptr_eq(&hit, &outcome), "hits share the stored outcome");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert!(stats.bytes > 0, "weight accounting tracks resident bytes");
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn any_key_component_change_is_a_miss() {
        let cache = ResultCache::new();
        let config = CompilerConfig::default();
        let circuit = qft(6);
        let base = key(&config, circuit.content_hash());
        cache.insert(base, some_outcome());

        let reconfigured = key(&config.with_decay(0.01), circuit.content_hash());
        assert!(cache.get(&reconfigured).is_none(), "config change must miss");
        let other_circuit = key(&config, qft(7).content_hash());
        assert!(cache.get(&other_circuit).is_none(), "circuit change must miss");
        let other_device = CacheKey { device_fingerprint: 8, ..base };
        assert!(cache.get(&other_device).is_none(), "device change must miss");
        let other_compiler = CacheKey { compiler: CompilerKind::Murali, ..base };
        assert!(cache.get(&other_compiler).is_none(), "compiler change must miss");
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn empty_cache_reports_zero_rate() {
        let cache = ResultCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }

    /// The capacity-1 determinism contract: inserting a second entry
    /// always evicts the probationary LRU, and a protected (hit) entry
    /// outlives a one-touch newcomer.
    #[test]
    fn capacity_one_cache_evicts_deterministically() {
        let cache = ResultCache::bounded(CacheBounds::with_max_entries(1));
        let outcome = some_outcome();
        let (a, b, c) = (key_n(1), key_n(2), key_n(3));

        // Two one-touch inserts: the older entry (A) is evicted.
        cache.insert(a, Arc::clone(&outcome));
        cache.insert(b, Arc::clone(&outcome));
        assert!(cache.get(&a).is_none(), "A was the probationary LRU");
        assert!(cache.get(&b).is_some(), "B survived (and is now protected)");
        assert_eq!(cache.stats().evictions, 1);

        // B is protected by the hit above; a newcomer churns through
        // probation without displacing it (scan resistance).
        cache.insert(c, Arc::clone(&outcome));
        assert!(cache.get(&b).is_some(), "protected entry survives the scan");
        assert!(cache.get(&c).is_none(), "one-touch newcomer was evicted");
        assert_eq!(cache.stats().evictions, 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn entry_cap_keeps_the_hot_set() {
        let cache = ResultCache::bounded(CacheBounds::with_max_entries(4));
        let outcome = some_outcome();
        for n in 0..4 {
            cache.insert(key_n(n), Arc::clone(&outcome));
        }
        // Touch 0 and 1: they are promoted to protected.
        assert!(cache.get(&key_n(0)).is_some());
        assert!(cache.get(&key_n(1)).is_some());
        // Four more one-touch inserts sweep through.
        for n in 4..8 {
            cache.insert(key_n(n), Arc::clone(&outcome));
        }
        assert!(cache.get(&key_n(0)).is_some(), "hot entry survived the sweep");
        assert!(cache.get(&key_n(1)).is_some(), "hot entry survived the sweep");
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().evictions, 4);
    }

    #[test]
    fn byte_cap_evicts_and_a_single_oversized_entry_is_dropped() {
        let outcome = some_outcome();
        let per_entry = outcome.weight_bytes();

        // Room for exactly two entries.
        let cache = ResultCache::bounded(CacheBounds::with_max_bytes(2 * per_entry + 1));
        cache.insert(key_n(1), Arc::clone(&outcome));
        cache.insert(key_n(2), Arc::clone(&outcome));
        assert_eq!(cache.len(), 2);
        cache.insert(key_n(3), Arc::clone(&outcome));
        assert_eq!(cache.len(), 2, "third entry pushed out the LRU");
        assert!(cache.get(&key_n(1)).is_none());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.stats().bytes <= 2 * per_entry + 1);

        // A cap smaller than one entry refuses to retain anything.
        let tiny = ResultCache::bounded(CacheBounds::with_max_bytes(per_entry / 2));
        tiny.insert(key_n(1), Arc::clone(&outcome));
        assert!(tiny.is_empty(), "oversized entries cannot be cached");
        assert_eq!(tiny.stats().evictions, 1);
        assert_eq!(tiny.stats().bytes, 0);
    }

    #[test]
    fn persisted_entries_round_trip_bit_identically() {
        let dir = std::env::temp_dir().join(format!("ssync-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let outcome = some_outcome();
        let k = key_n(42);
        let writer = ResultCache::with_config(CacheConfig::default().with_persist_dir(&dir));
        writer.insert(k, Arc::clone(&outcome));
        assert_eq!(writer.stats().persist_stores, 1);

        // A second cache (standing in for a second process) finds the file.
        let reader = ResultCache::with_config(CacheConfig::default().with_persist_dir(&dir));
        let loaded = reader.get(&k).expect("served from the persistent tier");
        assert_eq!(outcome.program().ops(), loaded.program().ops());
        assert_eq!(outcome.final_placement(), loaded.final_placement());
        assert_eq!(outcome.scheduler_stats(), loaded.scheduler_stats());
        assert_eq!(outcome.compile_time(), loaded.compile_time());
        assert_eq!(outcome.report().success_rate.to_bits(), loaded.report().success_rate.to_bits());
        let stats = reader.stats();
        assert_eq!((stats.hits, stats.persist_hits, stats.misses), (1, 1, 0));
        // The loaded entry was promoted into memory: next hit skips disk.
        assert!(reader.get(&k).is_some());
        assert_eq!(reader.stats().persist_hits, 1);

        // Corrupt files degrade to a miss, never an error.
        std::fs::write(dir.join(k.file_name()), b"garbage").expect("overwrite");
        let fresh = ResultCache::with_config(CacheConfig::default().with_persist_dir(&dir));
        assert!(fresh.get(&k).is_none());
        assert_eq!(fresh.stats().misses, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn startup_gc_enforces_byte_and_age_budgets_oldest_first() {
        let dir = std::env::temp_dir().join(format!("ssync-cache-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Write four entries through a first (unbounded) cache, spacing
        // mtimes so "oldest" is unambiguous.
        let outcome = some_outcome();
        let writer = ResultCache::with_config(CacheConfig::default().with_persist_dir(&dir));
        let keys: Vec<CacheKey> = (0..4).map(key_n).collect();
        for key in &keys {
            writer.insert(*key, Arc::clone(&outcome));
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let file_len = std::fs::metadata(dir.join(keys[0].file_name())).expect("written").len();

        // A byte budget of ~2 files deletes the two oldest at startup.
        let gc = ResultCache::with_config(
            CacheConfig::default()
                .with_persist_dir(&dir)
                .with_persist_max_bytes(2 * file_len + file_len / 2),
        );
        assert_eq!(gc.stats().persist_gc_deleted, 2);
        assert!(!dir.join(keys[0].file_name()).exists(), "oldest deleted first");
        assert!(!dir.join(keys[1].file_name()).exists());
        assert!(dir.join(keys[2].file_name()).exists(), "newest survive");
        assert!(dir.join(keys[3].file_name()).exists());
        // The survivors still serve hits.
        assert!(gc.get(&keys[3]).is_some());
        assert!(gc.get(&keys[0]).is_none());

        // A zero age budget wipes whatever remains.
        let wipe = ResultCache::with_config(
            CacheConfig::default()
                .with_persist_dir(&dir)
                .with_persist_max_age(std::time::Duration::from_secs(0)),
        );
        assert_eq!(wipe.stats().persist_gc_deleted, 2);
        assert!(!dir.join(keys[3].file_name()).exists());

        // No budgets, no GC (the historical behaviour).
        let plain = ResultCache::with_config(CacheConfig::default().with_persist_dir(&dir));
        assert_eq!(plain.stats().persist_gc_deleted, 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_gc_env_fallback_fills_only_unset_axes() {
        // Explicit values are never overwritten by the env helper (the
        // variables are unset in the test environment, so unset axes
        // simply stay None).
        let config = CacheConfig::default().with_persist_max_bytes(123).persist_gc_from_env();
        assert_eq!(config.persist_max_bytes, Some(123));
    }

    #[test]
    fn snapshot_and_load_round_trip_a_whole_cache() {
        let dir = std::env::temp_dir().join(format!("ssync-cache-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let source = ResultCache::new();
        let outcome = some_outcome();
        for n in 0..3 {
            source.insert(key_n(n), Arc::clone(&outcome));
        }
        assert_eq!(source.snapshot_to(&dir).expect("snapshot"), 3);

        let target = ResultCache::new();
        assert_eq!(target.load_from(&dir), 3);
        for n in 0..3 {
            let loaded = target.get(&key_n(n)).expect("loaded entry");
            assert_eq!(outcome.program().ops(), loaded.program().ops());
        }
        assert_eq!(ResultCache::new().load_from(dir.join("missing-subdir")), 0);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
