//! # ssync-service
//!
//! A long-lived, multi-tenant **compile service** over the S-SYNC compiler
//! and its baselines: the front-end the production-traffic north star
//! needs, turning one-shot CLI compilation into a shared system that
//! accepts heterogeneous requests over the full (device × circuit ×
//! compiler × config) product.
//!
//! Three cooperating components (std-only — threads and channels, no
//! async runtime):
//!
//! * [`DeviceRegistry`] — names machines, builds each [`ssync_arch::Device`]
//!   artifact exactly once per `(name, weights)` key, shares it as an
//!   `Arc`, and fingerprints its *content* stably for cache keying.
//! * [`CompileService`] — a work-stealing worker pool (per-worker deques +
//!   global injector, hand-rolled on `std::sync`) executing
//!   [`CompileRequest`]s through the unified
//!   [`CompilerKind`](ssync_baselines::CompilerKind) entry point. Every
//!   worker reuses one [`ssync_core::CompileScratch`] across jobs and the
//!   greedy baselines' first-use qubit order is computed once per circuit
//!   and shared across every device and kind. Submissions return
//!   [`JobHandle`]s with blocking `wait()` and non-blocking `try_poll()`.
//! * [`ResultCache`] — memoises outcomes by (device fingerprint, circuit
//!   content hash, config hash, compiler kind), so repeated requests are
//!   served without recompiling.
//!
//! **Determinism guarantee:** compiled output is bit-identical to a
//! sequential `compile_on` loop at any worker count; the
//! `service_equivalence` integration tests enforce it at 1, 2 and 8
//! workers for all four compiler kinds.
//!
//! ```
//! use ssync_baselines::CompilerKind;
//! use ssync_circuit::generators::qft;
//! use ssync_core::CompilerConfig;
//! use ssync_service::{CompileRequest, CompileService};
//! use std::sync::Arc;
//!
//! let service = CompileService::with_workers(2);
//! let config = CompilerConfig::default();
//! let device = service.registry().get_or_build_named("G-2x2", config.weights).unwrap();
//! let circuit = Arc::new(qft(10));
//! let handle = service.submit(CompileRequest::new(device, circuit, CompilerKind::SSync, config));
//! let outcome = handle.wait().unwrap();
//! assert_eq!(outcome.counts().two_qubit_gates, 90);
//! assert_eq!(service.metrics().jobs_completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod hash;
mod job;
mod metrics;
mod pool;
pub mod registry;

pub use cache::{CacheKey, CacheStats, ResultCache};
pub use job::{CompileRequest, JobHandle, JobResult};
pub use metrics::{ServiceMetrics, WorkerMetrics};
pub use pool::CompileService;
pub use registry::{DeviceRegistry, RegisteredDevice};
