//! # ssync-service
//!
//! A long-lived, multi-tenant **compile service** over the S-SYNC compiler
//! and its baselines: the front-end the production-traffic north star
//! needs, turning one-shot CLI compilation into a shared system that
//! accepts heterogeneous requests over the full (device × circuit ×
//! compiler × config) product.
//!
//! Cooperating components (std-only — threads and channels, no async
//! runtime):
//!
//! * [`DeviceRegistry`] — names machines, builds each [`ssync_arch::Device`]
//!   artifact exactly once per `(name, weights)` key, shares it as an
//!   `Arc`, and fingerprints its *content* stably for cache keying.
//! * [`CompileService`] — a work-stealing worker pool (per-worker deques +
//!   a shared priority injector, hand-rolled on `std::sync`) executing
//!   [`CompileRequest`]s through the unified
//!   [`CompilerKind`](ssync_baselines::CompilerKind) entry point.
//!   Requests carry a [`Priority`] (High / Normal / Batch, strictly
//!   ordered) and an opaque [`TenantId`]; tenants at the same level share
//!   capacity through weighted deficit round-robin, so a bulk sweep can't
//!   starve interactive work. Submissions return [`JobHandle`]s with
//!   blocking `wait()` and non-blocking `try_poll()`.
//! * [`ResultCache`] — memoises outcomes by (device fingerprint, circuit
//!   content hash, config hash, compiler kind) in a **bounded,
//!   segmented-LRU** tier (entry + byte caps, eviction counters) with an
//!   optional **persistent directory tier** whose files are valid across
//!   processes.
//! * [`wire`] / [`front`] / [`client`] — a length-prefixed binary IPC
//!   protocol, the `ssync-serviced` server loop (Unix socket or
//!   stdin/stdout) and the matching in-process client, mapping the
//!   request/handle API onto a remote service.
//!
//! **Determinism guarantee:** compiled output is bit-identical to a
//! sequential `compile_on` loop at any worker count, priority mix and
//! tenant labelling; the `service_equivalence` integration tests enforce
//! it at 1, 2 and 8 workers for all four compiler kinds.
//!
//! ```
//! use ssync_baselines::CompilerKind;
//! use ssync_circuit::generators::qft;
//! use ssync_core::CompilerConfig;
//! use ssync_service::{CompileRequest, CompileService, Priority, TenantId};
//! use std::sync::Arc;
//!
//! let service = CompileService::with_workers(2);
//! let config = CompilerConfig::default();
//! let device = service.registry().get_or_build_named("G-2x2", config.weights).unwrap();
//! let circuit = Arc::new(qft(10));
//! let handle = service.submit(
//!     CompileRequest::new(device, circuit, CompilerKind::SSync, config)
//!         .with_priority(Priority::High)
//!         .with_tenant(TenantId::from_name("docs")),
//! );
//! let outcome = handle.wait().unwrap();
//! assert_eq!(outcome.counts().two_qubit_gates, 90);
//! assert_eq!(service.metrics().jobs_completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod codec;
pub mod front;
pub mod hash;
mod job;
mod metrics;
mod pool;
pub mod registry;
pub mod telemetry;
pub mod wire;

pub use cache::{CacheConfig, CacheKey, CacheStats, CompiledWeight, ResultCache};
pub use client::{BackoffPolicy, ServiceClient};
pub use front::FrontConfig;
pub use job::{CompileRequest, JobHandle, JobResult, Priority, TenantId};
pub use metrics::{ServiceMetrics, WorkerMetrics};
pub use pool::{CompileService, CompileServiceBuilder, Janitor};
pub use registry::{DeviceRegistry, RegisteredDevice};
pub use telemetry::{
    render_text, ServiceTelemetry, Stage, StageSnapshot, TelemetrySnapshot, SLO_TICK_INTERVAL,
    SLO_WINDOWS,
};
