//! Requests and handles: what tenants submit and what they wait on.

use crate::registry::RegisteredDevice;
use ssync_baselines::CompilerKind;
use ssync_circuit::Circuit;
use ssync_core::{CompileError, CompileOutcome, CompilerConfig};
use std::sync::{Arc, Condvar, Mutex};

/// One unit of service work: compile one circuit against one registered
/// device with one compiler under one configuration. Requests are cheap to
/// build in bulk — the device and circuit travel as `Arc`s, so the full
/// (device × circuit × compiler × config) product of a sweep shares every
/// underlying artifact.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// The registered target machine.
    pub device: Arc<RegisteredDevice>,
    /// The shared input circuit.
    pub circuit: Arc<Circuit>,
    /// Which compiler to run.
    pub compiler: CompilerKind,
    /// The evaluation configuration; its `weights` must match the ones the
    /// device was registered under.
    pub config: CompilerConfig,
}

impl CompileRequest {
    /// Bundles a request.
    pub fn new(
        device: Arc<RegisteredDevice>,
        circuit: Arc<Circuit>,
        compiler: CompilerKind,
        config: CompilerConfig,
    ) -> Self {
        CompileRequest { device, circuit, compiler, config }
    }
}

/// What a job resolves to: a shared outcome (possibly served straight from
/// the result cache) or the compiler's error.
pub type JobResult = Result<Arc<CompileOutcome>, CompileError>;

#[derive(Debug, Default)]
pub(crate) struct JobState {
    slot: Mutex<Option<JobResult>>,
    done: Condvar,
}

impl JobState {
    pub(crate) fn fulfil(&self, result: JobResult) {
        let mut slot = self.slot.lock().expect("job lock poisoned");
        debug_assert!(slot.is_none(), "a job is fulfilled exactly once");
        *slot = Some(result);
        self.done.notify_all();
    }
}

/// A handle to one submitted request. Cloning is cheap; every clone
/// observes the same completion.
#[derive(Debug, Clone)]
pub struct JobHandle {
    pub(crate) state: Arc<JobState>,
}

impl JobHandle {
    pub(crate) fn new() -> (Self, Arc<JobState>) {
        let state = Arc::new(JobState::default());
        (JobHandle { state: Arc::clone(&state) }, state)
    }

    /// Blocks until the job completes and returns its result. Safe to call
    /// from multiple threads and multiple times — later calls return the
    /// same (shared) result immediately.
    pub fn wait(&self) -> JobResult {
        let mut slot = self.state.slot.lock().expect("job lock poisoned");
        while slot.is_none() {
            slot = self.state.done.wait(slot).expect("job lock poisoned");
        }
        slot.clone().expect("loop exits only when fulfilled")
    }

    /// Returns the result if the job already completed, `None` otherwise.
    /// Never blocks beyond the internal lock.
    pub fn try_poll(&self) -> Option<JobResult> {
        self.state.slot.lock().expect("job lock poisoned").clone()
    }

    /// `true` once the job has completed (successfully or not).
    pub fn is_done(&self) -> bool {
        self.try_poll().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_observe_fulfilment_from_another_thread() {
        let (handle, state) = JobHandle::new();
        assert!(!handle.is_done());
        assert!(handle.try_poll().is_none());
        let waiter = handle.clone();
        std::thread::scope(|scope| {
            let join = scope.spawn(move || waiter.wait());
            scope.spawn(move || {
                state.fulfil(Err(CompileError::DisconnectedTopology));
            });
            let result = join.join().expect("waiter thread");
            assert!(matches!(result, Err(CompileError::DisconnectedTopology)));
        });
        assert!(handle.is_done());
        assert!(matches!(handle.wait(), Err(CompileError::DisconnectedTopology)));
    }
}
