//! Requests and handles: what tenants submit and what they wait on.

use crate::registry::RegisteredDevice;
use ssync_baselines::CompilerKind;
use ssync_circuit::{Circuit, StableHasher};
use ssync_core::{CompileError, CompileOutcome, CompilerConfig};
use std::sync::{Arc, Condvar, Mutex};

/// Scheduling priority of a request. Levels are *strict*: a worker always
/// drains every queued [`Priority::High`] job before touching
/// [`Priority::Normal`], and `Normal` before [`Priority::Batch`]. Within a
/// level, tenants share capacity through weighted deficit round-robin
/// (see the pool module docs) — priority orders *classes* of work,
/// fairness divides capacity *inside* a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Interactive / latency-sensitive requests; always served first.
    High,
    /// The default for ordinary submissions.
    #[default]
    Normal,
    /// Bulk sweeps that should soak up idle capacity without delaying
    /// anyone else.
    Batch,
}

impl Priority {
    /// All levels, most urgent first (the pool's drain order).
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Batch];

    /// The level's index into per-priority tables (0 = most urgent).
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Batch => 2,
        }
    }

    /// Label used in logs and metrics.
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Batch => "batch",
        }
    }

    /// The queue depth at which the front-end sheds requests of this
    /// priority, given the configured overload `watermark`: `Batch` sheds
    /// at half the watermark, `Normal` at three quarters, `High` only at
    /// the full watermark. Making the shed point a pure function of queue
    /// depth is what guarantees "Batch first, High last" degradation — no
    /// races, no per-class bookkeeping.
    pub fn admission_threshold(self, watermark: usize) -> usize {
        match self {
            Priority::High => watermark,
            Priority::Normal => watermark - watermark / 4,
            Priority::Batch => watermark / 2,
        }
    }
}

/// An opaque tenant identity used for fair scheduling. The service never
/// interprets the value beyond equality — derive it however the deployment
/// identifies callers ([`TenantId::from_name`] hashes a string stably).
/// Requests that don't set one share the [`TenantId::ANON`] bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TenantId(pub u64);

impl TenantId {
    /// The shared bucket for requests that never set a tenant.
    pub const ANON: TenantId = TenantId(0);

    /// A tenant id derived from a name with the workspace's stable FNV-1a
    /// hash — the same name maps to the same id in every process.
    pub fn from_name(name: &str) -> Self {
        let mut h = StableHasher::new();
        h.write_str(name);
        TenantId(h.finish())
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{:016x}", self.0)
    }
}

/// One unit of service work: compile one circuit against one registered
/// device with one compiler under one configuration. Requests are cheap to
/// build in bulk — the device and circuit travel as `Arc`s, so the full
/// (device × circuit × compiler × config) product of a sweep shares every
/// underlying artifact.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// The registered target machine.
    pub device: Arc<RegisteredDevice>,
    /// The shared input circuit.
    pub circuit: Arc<Circuit>,
    /// Which compiler to run.
    pub compiler: CompilerKind,
    /// The evaluation configuration; its `weights` must match the ones the
    /// device was registered under.
    pub config: CompilerConfig,
    /// Scheduling priority ([`Priority::Normal`] unless overridden).
    pub priority: Priority,
    /// The submitting tenant ([`TenantId::ANON`] unless overridden).
    /// Purely a scheduling identity — it never affects compiled output or
    /// cache keys, so tenants share cache entries.
    pub tenant: TenantId,
    /// Optional completion budget in microseconds from submission. When a
    /// worker claims the job *after* this much time has passed, the job
    /// completes with [`CompileError::DeadlineExceeded`] instead of
    /// occupying the worker — queue time already blew the budget, so the
    /// caller has moved on. `None` (the default) never expires. The
    /// deadline affects only *whether* a compile runs, never its output,
    /// and expired jobs are not cached; a deadline-carrying request is
    /// still served from the cache when the outcome already exists.
    pub deadline_us: Option<u64>,
}

impl CompileRequest {
    /// Bundles a request at [`Priority::Normal`] for [`TenantId::ANON`].
    pub fn new(
        device: Arc<RegisteredDevice>,
        circuit: Arc<Circuit>,
        compiler: CompilerKind,
        config: CompilerConfig,
    ) -> Self {
        CompileRequest {
            device,
            circuit,
            compiler,
            config,
            priority: Priority::default(),
            tenant: TenantId::ANON,
            deadline_us: None,
        }
    }

    /// Returns a copy with a different scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Returns a copy attributed to `tenant` for fair scheduling.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Returns a copy that expires `deadline_us` microseconds after
    /// submission (see [`CompileRequest::deadline_us`]).
    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }
}

/// What a job resolves to: a shared outcome (possibly served straight from
/// the result cache) or the compiler's error.
pub type JobResult = Result<Arc<CompileOutcome>, CompileError>;

#[derive(Debug, Default)]
pub(crate) struct JobState {
    slot: Mutex<Option<JobResult>>,
    done: Condvar,
}

impl JobState {
    pub(crate) fn fulfil(&self, result: JobResult) {
        let mut slot = self.slot.lock().expect("job lock poisoned");
        debug_assert!(slot.is_none(), "a job is fulfilled exactly once");
        *slot = Some(result);
        self.done.notify_all();
    }
}

/// A handle to one submitted request. Cloning is cheap; every clone
/// observes the same completion.
#[derive(Debug, Clone)]
pub struct JobHandle {
    pub(crate) state: Arc<JobState>,
}

impl JobHandle {
    pub(crate) fn new() -> (Self, Arc<JobState>) {
        let state = Arc::new(JobState::default());
        (JobHandle { state: Arc::clone(&state) }, state)
    }

    /// Blocks until the job completes and returns its result. Safe to call
    /// from multiple threads and multiple times — later calls return the
    /// same (shared) result immediately.
    pub fn wait(&self) -> JobResult {
        let mut slot = self.state.slot.lock().expect("job lock poisoned");
        while slot.is_none() {
            slot = self.state.done.wait(slot).expect("job lock poisoned");
        }
        slot.clone().expect("loop exits only when fulfilled")
    }

    /// Returns the result if the job already completed, `None` otherwise.
    /// Never blocks beyond the internal lock.
    pub fn try_poll(&self) -> Option<JobResult> {
        self.state.slot.lock().expect("job lock poisoned").clone()
    }

    /// `true` once the job has completed (successfully or not).
    pub fn is_done(&self) -> bool {
        self.try_poll().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_observe_fulfilment_from_another_thread() {
        let (handle, state) = JobHandle::new();
        assert!(!handle.is_done());
        assert!(handle.try_poll().is_none());
        let waiter = handle.clone();
        std::thread::scope(|scope| {
            let join = scope.spawn(move || waiter.wait());
            scope.spawn(move || {
                state.fulfil(Err(CompileError::DisconnectedTopology));
            });
            let result = join.join().expect("waiter thread");
            assert!(matches!(result, Err(CompileError::DisconnectedTopology)));
        });
        assert!(handle.is_done());
        assert!(matches!(handle.wait(), Err(CompileError::DisconnectedTopology)));
    }
}
