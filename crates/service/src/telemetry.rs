//! Service-side observability: per-stage latency histograms, request
//! trace spans, the recent-trace journal, the slow-request log, and the
//! Prometheus-style text exposition.
//!
//! ## What is measured
//!
//! Every request is followed from admission to response delivery by a
//! [`Span`] (see `ssync-telemetry`), and five pipeline stages are
//! additionally aggregated into log2 latency histograms, each keyed twice
//! — once per [`Priority`] and once per [`CompilerKind`]:
//!
//! | stage          | measured where                                      |
//! |----------------|-----------------------------------------------------|
//! | `cache_lookup` | result-cache probe inside `submit`                  |
//! | `parse`        | OpenQASM parse in the front-end's `SubmitQasm` path |
//! | `queue_wait`   | submission → worker claim                           |
//! | `compile`      | the `compile_on` call itself                        |
//! | `end_to_end`   | span creation → terminal fulfilment                 |
//!
//! The front-end also records a `delivery` span event (response write on
//! the wire) on each job's trace; it is span-only, not histogrammed.
//!
//! ## Determinism
//!
//! Everything here is observation-only. Histograms and spans are written
//! with relaxed atomics and per-span mutexes that no scheduling decision
//! ever reads, so enabling telemetry (on by default; see
//! [`ServiceTelemetry::set_enabled`]) cannot change compiled output — the
//! `service_equivalence` golden suites run with telemetry live, and the
//! `telemetry_overhead` bench asserts on-vs-off bit-identity.
//!
//! Scheduler-internal phase counters (frontier rebuilds, stall-fallback
//! entries, scoring wall time) arrive through
//! [`ScoringTelemetry`] — the side channel
//! deliberately kept outside the golden-compared `SchedulerStats` — and
//! are aggregated here per pool.

use crate::job::Priority;
use crate::metrics::ServiceMetrics;
use ssync_baselines::CompilerKind;
use ssync_core::ScoringTelemetry;
use ssync_telemetry::{
    BurnWindow, FlightRecording, HistogramSnapshot, LatencyHistogram, Span, TextExposition,
    TraceJournal, TraceRecord,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of compilers ([`CompilerKind::ALL`]).
const KINDS: usize = CompilerKind::ALL.len();

/// Sentinel for "slow-request logging disabled" (the default).
const SLOW_DISABLED: u64 = u64::MAX;

/// How many recent traces the in-memory journal retains by default; the
/// daemon's `--trace-journal-cap` flag (env `SSYNC_TRACE_JOURNAL_CAP`)
/// overrides it per pool.
pub const TRACE_JOURNAL_CAPACITY: usize = 256;

/// How often the SLO ticker samples the end-to-end histograms into the
/// burn-rate windows. The window capacities below assume this cadence.
pub const SLO_TICK_INTERVAL: Duration = Duration::from_millis(500);

/// Burn-window spans exposed on the scrape surfaces, shortest first.
pub const SLO_WINDOWS: [(&str, Duration); 2] =
    [("1m", Duration::from_secs(60)), ("10m", Duration::from_secs(600))];

/// Default SLO latency targets in milliseconds, indexed by
/// [`Priority::index`] (High, Normal, Batch). The daemon's
/// `--slo-ms-high` / `--slo-ms-normal` / `--slo-ms-batch` flags override
/// them.
pub const DEFAULT_SLO_MS: [u64; 3] = [250, 1_000, 5_000];

/// Readings a burn window must hold to span `window` at the tick cadence:
/// one reading per tick plus the baseline reading at the far edge.
fn window_capacity(window: Duration) -> usize {
    (window.as_millis() / SLO_TICK_INTERVAL.as_millis()) as usize + 1
}

/// The five histogrammed pipeline stages (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Result-cache probe during submission.
    CacheLookup,
    /// OpenQASM source parse (front-end `SubmitQasm` only).
    Parse,
    /// Submission to worker claim.
    QueueWait,
    /// The compile itself.
    Compile,
    /// Span creation to terminal fulfilment.
    EndToEnd,
}

impl Stage {
    /// Every stage, in exposition order.
    pub const ALL: [Stage; 5] =
        [Stage::CacheLookup, Stage::Parse, Stage::QueueWait, Stage::Compile, Stage::EndToEnd];

    /// Stable label used in span events and exposition `stage=` labels.
    pub fn label(self) -> &'static str {
        match self {
            Stage::CacheLookup => "cache_lookup",
            Stage::Parse => "parse",
            Stage::QueueWait => "queue_wait",
            Stage::Compile => "compile",
            Stage::EndToEnd => "end_to_end",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::CacheLookup => 0,
            Stage::Parse => 1,
            Stage::QueueWait => 2,
            Stage::Compile => 3,
            Stage::EndToEnd => 4,
        }
    }
}

/// Metric-label slug for a compiler kind (the display
/// [`CompilerKind::label`] has spaces and dots).
pub fn kind_slug(kind: CompilerKind) -> &'static str {
    match kind {
        CompilerKind::Murali => "murali",
        CompilerKind::Dai => "dai",
        CompilerKind::SSync => "ssync",
        CompilerKind::Greedy => "greedy",
        CompilerKind::PermRoute => "perm_route",
    }
}

fn kind_index(kind: CompilerKind) -> usize {
    CompilerKind::ALL.iter().position(|&k| k == kind).expect("kind in ALL")
}

/// One stage's histograms, keyed per priority and per compiler kind.
struct StageFamily {
    by_priority: [LatencyHistogram; 3],
    by_kind: [LatencyHistogram; KINDS],
}

impl StageFamily {
    fn new() -> Self {
        Self {
            by_priority: std::array::from_fn(|_| LatencyHistogram::new()),
            by_kind: std::array::from_fn(|_| LatencyHistogram::new()),
        }
    }

    fn record_ns(&self, priority: Priority, kind: CompilerKind, ns: u64) {
        self.by_priority[priority.index()].record_ns(ns);
        self.by_kind[kind_index(kind)].record_ns(ns);
    }

    fn record_ns_with_exemplar(&self, priority: Priority, kind: CompilerKind, ns: u64, trace: u64) {
        self.by_priority[priority.index()].record_ns_with_exemplar(ns, trace);
        self.by_kind[kind_index(kind)].record_ns_with_exemplar(ns, trace);
    }

    fn snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            by_priority: std::array::from_fn(|i| self.by_priority[i].snapshot()),
            by_kind: std::array::from_fn(|i| self.by_kind[i].snapshot()),
        }
    }
}

/// Plain-data snapshot of one stage's histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Histograms indexed by [`Priority::index`].
    pub by_priority: [HistogramSnapshot; 3],
    /// Histograms indexed by position in [`CompilerKind::ALL`].
    pub by_kind: [HistogramSnapshot; KINDS],
}

impl StageSnapshot {
    /// All priorities merged into one histogram.
    pub fn overall(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for h in &self.by_priority {
            merged.merge(h);
        }
        merged
    }
}

/// Plain-data snapshot of every histogram and telemetry counter, taken via
/// [`ServiceTelemetry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    stages: [StageSnapshot; 5],
    /// Finished request traces (cache hits, coalesced waiters, expired
    /// deadlines and executed compiles alike).
    pub traces_recorded: u64,
    /// Finished traces at or above the slow-request threshold; each one
    /// emitted a JSONL line on stderr.
    pub slow_requests: u64,
    /// Scheduler frontier rebuilds across every compile this pool ran.
    pub frontier_rebuilds: u64,
    /// Scheduler stall-fallback entries across every compile.
    pub stall_fallback_entries: u64,
    /// Wall time spent in scheduler scoring passes, nanoseconds.
    pub scoring_time_ns: u64,
    /// Per-priority SLO latency targets, nanoseconds
    /// (indexed by [`Priority::index`]).
    pub slo_target_ns: [u64; 3],
    /// Per-priority burn rates over [`SLO_WINDOWS`]: parts-per-million of
    /// traffic over target, `None` while a window lacks readings.
    pub slo_burn_ppm: [[Option<u64>; 2]; 3],
}

impl TelemetrySnapshot {
    /// One stage's histograms.
    pub fn stage(&self, stage: Stage) -> &StageSnapshot {
        &self.stages[stage.index()]
    }
}

/// The pool-owned telemetry hub: trace-id allocator, per-stage histogram
/// families, the recent-trace journal and the slow-request threshold.
pub struct ServiceTelemetry {
    enabled: AtomicBool,
    next_trace_id: AtomicU64,
    stages: [StageFamily; 5],
    journal: TraceJournal,
    slow_threshold_ns: AtomicU64,
    traces_recorded: AtomicU64,
    slow_requests: AtomicU64,
    frontier_rebuilds: AtomicU64,
    stall_fallback_entries: AtomicU64,
    scoring_time_ns: AtomicU64,
    slo_target_ns: [AtomicU64; 3],
    slo_windows: Mutex<[[BurnWindow; 2]; 3]>,
}

impl std::fmt::Debug for ServiceTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceTelemetry")
            .field("traces_recorded", &self.traces_recorded.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ServiceTelemetry {
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        Self::with_journal_cap(TRACE_JOURNAL_CAPACITY)
    }

    pub(crate) fn with_journal_cap(journal_cap: usize) -> Self {
        Self {
            enabled: AtomicBool::new(true),
            next_trace_id: AtomicU64::new(1),
            stages: std::array::from_fn(|_| StageFamily::new()),
            journal: TraceJournal::new(journal_cap.max(1)),
            slow_threshold_ns: AtomicU64::new(SLOW_DISABLED),
            traces_recorded: AtomicU64::new(0),
            slow_requests: AtomicU64::new(0),
            frontier_rebuilds: AtomicU64::new(0),
            stall_fallback_entries: AtomicU64::new(0),
            scoring_time_ns: AtomicU64::new(0),
            slo_target_ns: std::array::from_fn(|i| {
                AtomicU64::new(DEFAULT_SLO_MS[i].saturating_mul(1_000_000))
            }),
            slo_windows: Mutex::new(std::array::from_fn(|_| {
                std::array::from_fn(|w| BurnWindow::new(window_capacity(SLO_WINDOWS[w].1)))
            })),
        }
    }

    /// Turn recording on or off. Tracing is **on by default**; turning it
    /// off makes every record/finish call a no-op (trace ids are still
    /// assigned so the wire contract holds). Exists for the
    /// `telemetry_overhead` bench, which proves compiled output is
    /// bit-identical either way.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Start a new span under a fresh server-assigned trace id (monotonic,
    /// never zero — a zero trace id on the wire means "server predates
    /// tracing").
    pub fn begin_trace(&self) -> Span {
        Span::new(self.next_trace_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Record one stage observation into both keyed histograms.
    pub fn record(&self, stage: Stage, priority: Priority, kind: CompilerKind, dur: Duration) {
        self.record_ns(stage, priority, kind, dur.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub(crate) fn record_ns(&self, stage: Stage, priority: Priority, kind: CompilerKind, ns: u64) {
        if !self.is_enabled() {
            return;
        }
        self.stages[stage.index()].record_ns(priority, kind, ns);
    }

    /// Append a stage event to `span` unless recording is disabled.
    pub(crate) fn span_record(&self, span: &Span, stage: &'static str, dur: Duration) {
        if self.is_enabled() {
            span.record(stage, dur);
        }
    }

    /// Set a span attribute unless recording is disabled.
    pub(crate) fn span_attr(&self, span: &Span, key: &'static str, value: impl Into<String>) {
        if self.is_enabled() {
            span.set_attr(key, value);
        }
    }

    /// Set the slow-request threshold; `None` disables the log (default).
    /// `Some(Duration::ZERO)` logs every request — the smoke tests use it.
    pub fn set_slow_threshold(&self, threshold: Option<Duration>) {
        let ns = match threshold {
            None => SLOW_DISABLED,
            Some(d) => d.as_nanos().min((u64::MAX - 1) as u128) as u64,
        };
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// The active slow-request threshold in nanoseconds, if enabled.
    pub fn slow_threshold(&self) -> Option<u64> {
        match self.slow_threshold_ns.load(Ordering::Relaxed) {
            SLOW_DISABLED => None,
            ns => Some(ns),
        }
    }

    /// Finish a request's span: fixes its total wall time, records the
    /// `end_to_end` histograms, retains the trace in the journal, and
    /// emits a JSONL line on stderr when the request was slow. Idempotent
    /// on the span's total; callers invoke it exactly once per trace.
    pub(crate) fn finish_request(&self, span: &Span, priority: Priority, kind: CompilerKind) {
        self.finish_request_with(span, priority, kind, None);
    }

    /// [`ServiceTelemetry::finish_request`] that additionally retains the
    /// compile's flight recording alongside the trace in the journal, so a
    /// later `GetTrace` can replay the scheduler's decisions. The
    /// end-to-end histograms are stamped with the trace id as a bucket
    /// exemplar either way.
    pub(crate) fn finish_request_with(
        &self,
        span: &Span,
        priority: Priority,
        kind: CompilerKind,
        recording: Option<Arc<FlightRecording>>,
    ) {
        let total_ns = span.finish();
        if !self.is_enabled() {
            return;
        }
        span.record("end_to_end", Duration::from_nanos(total_ns));
        self.stages[Stage::EndToEnd.index()].record_ns_with_exemplar(
            priority,
            kind,
            total_ns,
            span.trace_id(),
        );
        self.journal.push_with_recording(span.clone(), recording);
        self.traces_recorded.fetch_add(1, Ordering::Relaxed);
        if total_ns >= self.slow_threshold_ns.load(Ordering::Relaxed) {
            self.slow_requests.fetch_add(1, Ordering::Relaxed);
            eprintln!("{}", span.to_jsonl());
        }
    }

    /// Fold one compile's scheduler-internal phase counters into the
    /// pool-wide aggregates.
    pub(crate) fn note_scheduler_phases(&self, scoring: &ScoringTelemetry) {
        self.frontier_rebuilds.fetch_add(scoring.frontier_rebuilds, Ordering::Relaxed);
        self.stall_fallback_entries.fetch_add(scoring.stall_fallback_entries, Ordering::Relaxed);
        self.scoring_time_ns.fetch_add(scoring.scoring_time_ns, Ordering::Relaxed);
    }

    /// Finished request traces so far.
    pub fn traces_recorded(&self) -> u64 {
        self.traces_recorded.load(Ordering::Relaxed)
    }

    /// Requests that crossed the slow threshold so far.
    pub fn slow_requests(&self) -> u64 {
        self.slow_requests.load(Ordering::Relaxed)
    }

    /// Recent finished traces, oldest first (bounded ring, default
    /// capacity [`TRACE_JOURNAL_CAPACITY`]).
    pub fn recent_traces(&self) -> Vec<TraceRecord> {
        self.journal.recent()
    }

    /// Look up one journaled trace by id: the span record plus the flight
    /// recording the compile left behind (if the recorder was on and the
    /// trace ran a compile). `None` once the journal ring has evicted it.
    pub fn trace_detail(
        &self,
        trace_id: u64,
    ) -> Option<(TraceRecord, Option<Arc<FlightRecording>>)> {
        self.journal.find(trace_id)
    }

    /// Set one priority's SLO latency target.
    pub fn set_slo_target(&self, priority: Priority, target: Duration) {
        let ns = target.as_nanos().min(u64::MAX as u128) as u64;
        self.slo_target_ns[priority.index()].store(ns, Ordering::Relaxed);
    }

    /// One priority's SLO latency target in nanoseconds.
    pub fn slo_target_ns(&self, priority: Priority) -> u64 {
        self.slo_target_ns[priority.index()].load(Ordering::Relaxed)
    }

    /// Sample the end-to-end histograms into every burn window. The
    /// daemon's SLO ticker calls this each [`SLO_TICK_INTERVAL`]; the
    /// windows then expose "fraction of requests over target" deltas over
    /// [`SLO_WINDOWS`]. Bad counts are bucket-granular
    /// ([`HistogramSnapshot::count_over`]), a deliberate
    /// under-approximation that never cries wolf.
    pub fn slo_tick(&self) {
        let mut windows = self.slo_windows.lock().expect("slo windows poisoned");
        for priority in Priority::ALL {
            let target = self.slo_target_ns[priority.index()].load(Ordering::Relaxed);
            let snap =
                self.stages[Stage::EndToEnd.index()].by_priority[priority.index()].snapshot();
            let total = snap.count();
            let bad = snap.count_over(target);
            for window in &mut windows[priority.index()] {
                window.push(total, bad);
            }
        }
    }

    /// Current burn rates: `[priority][window]` parts-per-million of
    /// traffic over target, `None` until a window holds two readings with
    /// traffic between them.
    pub fn slo_burn_ppm(&self) -> [[Option<u64>; 2]; 3] {
        let windows = self.slo_windows.lock().expect("slo windows poisoned");
        std::array::from_fn(|p| std::array::from_fn(|w| windows[p][w].burn_ppm()))
    }

    /// Snapshot every histogram and counter.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            stages: std::array::from_fn(|i| self.stages[i].snapshot()),
            traces_recorded: self.traces_recorded.load(Ordering::Relaxed),
            slow_requests: self.slow_requests.load(Ordering::Relaxed),
            frontier_rebuilds: self.frontier_rebuilds.load(Ordering::Relaxed),
            stall_fallback_entries: self.stall_fallback_entries.load(Ordering::Relaxed),
            scoring_time_ns: self.scoring_time_ns.load(Ordering::Relaxed),
            slo_target_ns: std::array::from_fn(|i| self.slo_target_ns[i].load(Ordering::Relaxed)),
            slo_burn_ppm: self.slo_burn_ppm(),
        }
    }
}

/// Render the service's counters and latency histograms as one
/// Prometheus-style text-exposition document. The same renderer backs the
/// wire `GetStats` response, the daemon's `--metrics-text` file and its
/// drain-time stderr summary, so all three always agree.
pub fn render_text(metrics: &ServiceMetrics, telemetry: &TelemetrySnapshot) -> String {
    let mut e = TextExposition::new();

    e.header("ssync_jobs_submitted_total", "counter", "Requests accepted by the pool.");
    e.value("ssync_jobs_submitted_total", &[], metrics.jobs_submitted);
    e.header(
        "ssync_jobs_submitted_by_priority_total",
        "counter",
        "Accepted requests per priority level.",
    );
    for priority in Priority::ALL {
        e.value(
            "ssync_jobs_submitted_by_priority_total",
            &[("priority", priority.label())],
            metrics.submitted_by_priority[priority.index()],
        );
    }
    for (name, help, v) in [
        ("ssync_jobs_completed_total", "Requests resolved.", metrics.jobs_completed),
        (
            "ssync_jobs_coalesced_total",
            "Requests attached to an identical in-flight job.",
            metrics.jobs_coalesced,
        ),
        (
            "ssync_jobs_near_duplicate_total",
            "Submissions with an in-flight near-duplicate (same device+circuit, other config).",
            metrics.jobs_near_duplicate,
        ),
        (
            "ssync_jobs_deadline_expired_total",
            "Requests expired before a worker claimed them.",
            metrics.jobs_deadline_expired,
        ),
        (
            "ssync_rejected_overloaded_total",
            "Requests shed by admission control.",
            metrics.rejected_overloaded,
        ),
        (
            "ssync_rejected_unauthorized_total",
            "Connections rejected by the auth check.",
            metrics.rejected_unauthorized,
        ),
        (
            "ssync_conns_timed_out_total",
            "Connections closed on read timeout.",
            metrics.conns_timed_out,
        ),
        ("ssync_janitor_gc_runs_total", "Persistent-tier GC runs.", metrics.janitor_gc_runs),
        (
            "ssync_candidates_scored_total",
            "Scheduler candidates scored across executed compiles.",
            metrics.candidates_scored,
        ),
        (
            "ssync_score_shards_spawned_total",
            "Scoring shards dispatched.",
            metrics.score_shards_spawned,
        ),
        (
            "ssync_score_cache_shard_hits_total",
            "Per-shard readiness-memo hits.",
            metrics.score_cache_shard_hits,
        ),
        ("ssync_cache_hits_total", "Result-cache hits.", metrics.cache.hits),
        ("ssync_cache_misses_total", "Result-cache misses.", metrics.cache.misses),
        ("ssync_cache_evictions_total", "Result-cache evictions.", metrics.cache.evictions),
        (
            "ssync_cache_persist_hits_total",
            "Hits served by rebuilding a persisted outcome.",
            metrics.cache.persist_hits,
        ),
        (
            "ssync_cache_persist_stores_total",
            "Outcomes written through to the persistent tier.",
            metrics.cache.persist_stores,
        ),
        ("ssync_traces_recorded_total", "Finished request traces.", metrics.traces_recorded),
        (
            "ssync_slow_requests_total",
            "Requests at or above the slow-request threshold.",
            metrics.slow_requests,
        ),
        (
            "ssync_sched_frontier_rebuilds_total",
            "Scheduler frontier rebuilds across executed compiles.",
            telemetry.frontier_rebuilds,
        ),
        (
            "ssync_sched_stall_fallback_entries_total",
            "Scheduler stall-fallback entries across executed compiles.",
            telemetry.stall_fallback_entries,
        ),
        (
            "ssync_sched_scoring_time_ns_total",
            "Wall nanoseconds in scheduler scoring passes.",
            telemetry.scoring_time_ns,
        ),
    ] {
        e.header(name, "counter", help);
        e.value(name, &[], v);
    }

    e.header("ssync_queue_depth", "gauge", "Jobs queued and not yet claimed.");
    e.value("ssync_queue_depth", &[], metrics.queue_depth as u64);
    e.header("ssync_cache_entries", "gauge", "In-memory result-cache entries.");
    e.value("ssync_cache_entries", &[], metrics.cache.entries as u64);
    e.header("ssync_cache_bytes", "gauge", "Approximate in-memory result-cache bytes.");
    e.value("ssync_cache_bytes", &[], metrics.cache.bytes as u64);
    e.header("ssync_uptime_seconds", "gauge", "Wall seconds since service start.");
    e.value("ssync_uptime_seconds", &[], metrics.uptime.as_secs());

    e.header("ssync_slo_target_ms", "gauge", "Per-priority SLO latency target, milliseconds.");
    for priority in Priority::ALL {
        e.value(
            "ssync_slo_target_ms",
            &[("priority", priority.label())],
            telemetry.slo_target_ns[priority.index()] / 1_000_000,
        );
    }
    e.header(
        "ssync_slo_burn_ppm",
        "gauge",
        "Fraction of requests over their SLO target across the window, parts per million.",
    );
    for priority in Priority::ALL {
        for (w, (window_label, _)) in SLO_WINDOWS.iter().enumerate() {
            if let Some(ppm) = telemetry.slo_burn_ppm[priority.index()][w] {
                e.value(
                    "ssync_slo_burn_ppm",
                    &[("priority", priority.label()), ("window", window_label)],
                    ppm,
                );
            }
        }
    }

    e.header("ssync_worker_executed_total", "counter", "Compiles executed per worker.");
    e.header("ssync_worker_stolen_total", "counter", "Stolen jobs per worker.");
    for (i, w) in metrics.workers.iter().enumerate() {
        let idx = i.to_string();
        e.value("ssync_worker_executed_total", &[("worker", &idx)], w.executed);
        e.value("ssync_worker_stolen_total", &[("worker", &idx)], w.stolen);
    }

    e.header(
        "ssync_stage_latency_ns",
        "histogram",
        "Per-stage request latency, log2 buckets, nanoseconds.",
    );
    for stage in Stage::ALL {
        let snap = telemetry.stage(stage);
        for priority in Priority::ALL {
            let labels = [("stage", stage.label()), ("priority", priority.label())];
            let h = &snap.by_priority[priority.index()];
            e.histogram("ssync_stage_latency_ns", &labels, h);
            e.quantile_gauges("ssync_stage_latency", &labels, h);
        }
        for (i, kind) in CompilerKind::ALL.into_iter().enumerate() {
            let labels = [("stage", stage.label()), ("compiler", kind_slug(kind))];
            let h = &snap.by_kind[i];
            e.histogram("ssync_stage_latency_ns", &labels, h);
            e.quantile_gauges("ssync_stage_latency", &labels, h);
        }
    }

    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let t = ServiceTelemetry::new();
        let a = t.begin_trace();
        let b = t.begin_trace();
        assert_ne!(a.trace_id(), 0);
        assert_ne!(b.trace_id(), 0);
        assert_ne!(a.trace_id(), b.trace_id());
    }

    #[test]
    fn finish_request_records_journal_and_histograms() {
        let t = ServiceTelemetry::new();
        let span = t.begin_trace();
        t.finish_request(&span, Priority::High, CompilerKind::SSync);
        assert_eq!(t.traces_recorded(), 1);
        assert_eq!(t.slow_requests(), 0, "slow log disabled by default");
        let snap = t.snapshot();
        assert_eq!(snap.stage(Stage::EndToEnd).by_priority[Priority::High.index()].count(), 1);
        assert_eq!(snap.stage(Stage::EndToEnd).overall().count(), 1);
        let traces = t.recent_traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].trace_id, span.trace_id());
        assert!(traces[0].total_ns > 0);
    }

    #[test]
    fn journal_cap_is_configurable_and_trace_detail_resolves() {
        let t = ServiceTelemetry::with_journal_cap(2);
        let spans: Vec<Span> = (0..3).map(|_| t.begin_trace()).collect();
        for s in &spans {
            t.finish_request_with(s, Priority::Normal, CompilerKind::SSync, None);
        }
        assert!(t.trace_detail(spans[0].trace_id()).is_none(), "cap 2 evicts the oldest");
        let (record, recording) = t.trace_detail(spans[2].trace_id()).expect("retained");
        assert_eq!(record.trace_id, spans[2].trace_id());
        assert!(recording.is_none(), "no compile ran, so no flight recording");
        // The end-to-end histograms carry the trace id as a bucket exemplar.
        let snap = t.snapshot();
        let hist = &snap.stage(Stage::EndToEnd).by_priority[Priority::Normal.index()];
        assert!(hist.exemplars.iter().any(|&e| e == spans[2].trace_id()));
    }

    #[test]
    fn slo_burn_windows_track_over_target_traffic() {
        let t = ServiceTelemetry::new();
        t.set_slo_target(Priority::High, Duration::from_nanos(1_000));
        assert_eq!(t.slo_burn_ppm()[Priority::High.index()], [None, None], "no readings yet");
        t.slo_tick(); // baseline reading
        for _ in 0..3 {
            t.record_ns(Stage::EndToEnd, Priority::High, CompilerKind::SSync, 10);
        }
        t.record_ns(Stage::EndToEnd, Priority::High, CompilerKind::SSync, 1 << 20);
        t.slo_tick();
        let burn = t.slo_burn_ppm()[Priority::High.index()];
        assert_eq!(burn[0], Some(250_000), "1 of 4 requests burned budget over the short window");
        assert_eq!(burn[1], Some(250_000), "long window saw the same delta");
        // Other priorities saw no traffic: burn stays undefined, not zero.
        assert_eq!(t.slo_burn_ppm()[Priority::Batch.index()], [None, None]);
    }

    #[test]
    fn zero_threshold_marks_everything_slow() {
        let t = ServiceTelemetry::new();
        t.set_slow_threshold(Some(Duration::ZERO));
        let span = t.begin_trace();
        t.finish_request(&span, Priority::Normal, CompilerKind::Greedy);
        assert_eq!(t.slow_requests(), 1);
        t.set_slow_threshold(None);
        let span = t.begin_trace();
        t.finish_request(&span, Priority::Normal, CompilerKind::Greedy);
        assert_eq!(t.slow_requests(), 1, "disabled threshold logs nothing");
    }

    #[test]
    fn exposition_renders_counters_and_quantiles() {
        let t = ServiceTelemetry::new();
        t.record(Stage::QueueWait, Priority::High, CompilerKind::SSync, Duration::from_micros(5));
        let metrics = ServiceMetrics {
            jobs_submitted: 3,
            jobs_completed: 3,
            jobs_coalesced: 0,
            jobs_near_duplicate: 0,
            jobs_deadline_expired: 0,
            submitted_by_priority: [1, 2, 0],
            queue_depth: 0,
            rejected_overloaded: 0,
            rejected_unauthorized: 0,
            conns_timed_out: 0,
            janitor_gc_runs: 0,
            candidates_scored: 10,
            score_shards_spawned: 2,
            score_cache_shard_hits: 1,
            traces_recorded: 3,
            slow_requests: 1,
            cache: Default::default(),
            workers: vec![Default::default()],
            uptime: Duration::from_secs(2),
        };
        let doc = render_text(&metrics, &t.snapshot());
        assert!(doc.contains("ssync_jobs_submitted_total 3\n"));
        assert!(doc.contains("ssync_jobs_submitted_by_priority_total{priority=\"high\"} 1\n"));
        assert!(doc.contains("ssync_traces_recorded_total 3\n"));
        assert!(doc.contains("ssync_slow_requests_total 1\n"));
        assert!(doc.contains("ssync_worker_executed_total{worker=\"0\"} 0\n"));
        assert!(doc
            .contains("ssync_stage_latency_p50_ns{stage=\"queue_wait\",priority=\"high\"} 5000\n"));
        assert!(doc
            .contains("ssync_stage_latency_ns_count{stage=\"queue_wait\",compiler=\"ssync\"} 1\n"));
        assert!(doc.contains("ssync_uptime_seconds 2\n"));
        assert!(doc.contains("ssync_slo_target_ms{priority=\"high\"} 250\n"));
        assert!(doc.contains("ssync_slo_target_ms{priority=\"batch\"} 5000\n"));
        assert!(!doc.contains("ssync_slo_burn_ppm{"), "no readings yet, so no burn series");
    }

    #[test]
    fn exposition_renders_burn_gauges_once_windows_have_readings() {
        let t = ServiceTelemetry::new();
        t.set_slo_target(Priority::Normal, Duration::from_nanos(1_000));
        t.slo_tick();
        t.record_ns(Stage::EndToEnd, Priority::Normal, CompilerKind::SSync, 1 << 20);
        t.slo_tick();
        let metrics = ServiceMetrics { workers: vec![], ..Default::default() };
        let doc = render_text(&metrics, &t.snapshot());
        assert!(doc.contains("ssync_slo_burn_ppm{priority=\"normal\",window=\"1m\"} 1000000\n"));
        assert!(doc.contains("ssync_slo_burn_ppm{priority=\"normal\",window=\"10m\"} 1000000\n"));
    }
}
