//! `ssync-serviced` — the standalone compile daemon.
//!
//! Wraps a [`ssync_service::CompileService`] in the wire protocol of
//! `ssync_service::wire` over one of two transports:
//!
//! ```text
//! ssync-serviced --stdio                          # frames on stdin/stdout
//! ssync-serviced --socket /tmp/ssync.sock         # Unix domain socket
//! ```
//!
//! Options:
//!
//! * `--workers N` — worker threads (default: `SSYNC_BATCH_WORKERS` or
//!   the machine's parallelism).
//! * `--cache-max-entries N` / `--cache-max-bytes N` — result-cache
//!   bounds (default: the `SSYNC_CACHE_MAX_*` environment variables,
//!   else unbounded).
//! * `--cache-dir DIR` — enable the persistent cache tier: outcomes are
//!   written through to `DIR` and loaded back on a miss, sharing compiles
//!   across daemon restarts and between processes.
//! * `--cache-dir-max-bytes N` / `--cache-dir-max-age-secs N` — garbage-
//!   collect the persistent directory at startup (oldest-mtime-first)
//!   down to a byte/age budget (default: the `SSYNC_CACHE_DIR_MAX_*`
//!   environment variables, else unbounded).
//!
//! The daemon exits on a `Shutdown` request, or on EOF in stdio mode.

use ssync_core::CacheBounds;
use ssync_service::{front, CompileService};
use std::process::ExitCode;
use std::sync::Arc;

struct Options {
    stdio: bool,
    socket: Option<std::path::PathBuf>,
    workers: usize,
    bounds: CacheBounds,
    cache_dir: Option<std::path::PathBuf>,
    cache_dir_max_bytes: Option<u64>,
    cache_dir_max_age_secs: Option<u64>,
}

fn usage() -> &'static str {
    "usage: ssync-serviced (--stdio | --socket PATH) [--workers N] \
     [--cache-max-entries N] [--cache-max-bytes N] [--cache-dir DIR] \
     [--cache-dir-max-bytes N] [--cache-dir-max-age-secs N]"
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        stdio: false,
        socket: None,
        workers: 0,
        bounds: CacheBounds::from_env(),
        cache_dir: None,
        cache_dir_max_bytes: None,
        cache_dir_max_age_secs: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |what: &str| args.next().ok_or_else(|| format!("{what} needs a value\n{}", usage()));
        match arg.as_str() {
            "--stdio" => options.stdio = true,
            "--socket" => options.socket = Some(value("--socket")?.into()),
            "--workers" => {
                options.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects an integer".to_string())?
            }
            // `0` means unbounded, matching the SSYNC_CACHE_MAX_* env vars.
            "--cache-max-entries" => {
                let n: usize = value("--cache-max-entries")?
                    .parse()
                    .map_err(|_| "--cache-max-entries expects an integer".to_string())?;
                options.bounds.max_entries = (n > 0).then_some(n);
            }
            "--cache-max-bytes" => {
                let n: usize = value("--cache-max-bytes")?
                    .parse()
                    .map_err(|_| "--cache-max-bytes expects an integer".to_string())?;
                options.bounds.max_bytes = (n > 0).then_some(n);
            }
            "--cache-dir" => options.cache_dir = Some(value("--cache-dir")?.into()),
            // `0` means unbounded, like the SSYNC_CACHE_DIR_MAX_* env vars.
            "--cache-dir-max-bytes" => {
                let n: u64 = value("--cache-dir-max-bytes")?
                    .parse()
                    .map_err(|_| "--cache-dir-max-bytes expects an integer".to_string())?;
                options.cache_dir_max_bytes = (n > 0).then_some(n);
            }
            "--cache-dir-max-age-secs" => {
                let n: u64 = value("--cache-dir-max-age-secs")?
                    .parse()
                    .map_err(|_| "--cache-dir-max-age-secs expects an integer".to_string())?;
                options.cache_dir_max_age_secs = (n > 0).then_some(n);
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    if options.stdio == options.socket.is_some() {
        return Err(format!("pick exactly one transport\n{}", usage()));
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let mut builder =
        CompileService::builder().workers(options.workers).cache_bounds(options.bounds);
    if let Some(dir) = &options.cache_dir {
        builder = builder.persist_dir(dir);
    }
    if let Some(bytes) = options.cache_dir_max_bytes {
        builder = builder.persist_max_bytes(bytes);
    }
    if let Some(secs) = options.cache_dir_max_age_secs {
        builder = builder.persist_max_age(std::time::Duration::from_secs(secs));
    }
    let service = Arc::new(builder.build());
    eprintln!(
        "[ssync-serviced] serving with {} workers (cache: {:?}, persist: {:?})",
        service.workers(),
        service.cache().config().bounds,
        options.cache_dir,
    );
    let result = if options.stdio {
        front::serve_stdio(&service)
    } else {
        let path = options.socket.as_deref().expect("validated by parse_args");
        front::serve_unix(&service, path)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("[ssync-serviced] transport error: {error}");
            ExitCode::FAILURE
        }
    }
}
