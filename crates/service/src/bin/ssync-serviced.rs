//! `ssync-serviced` — the standalone compile daemon.
//!
//! Wraps a [`ssync_service::CompileService`] in the wire protocol of
//! `ssync_service::wire` over one of three transports:
//!
//! ```text
//! ssync-serviced --stdio                          # frames on stdin/stdout
//! ssync-serviced --socket /tmp/ssync.sock         # Unix domain socket
//! ssync-serviced --tcp 127.0.0.1:7878             # hardened TCP listener
//! ```
//!
//! General options:
//!
//! * `--workers N` — worker threads (default: `SSYNC_BATCH_WORKERS` or
//!   the machine's parallelism).
//! * `--score-threads N` — intra-compile scoring threads per worker
//!   (default: `SSYNC_SCORE_THREADS`, else 1 = serial). The request is
//!   budgeted against the worker count at startup so
//!   `workers × score-threads` never oversubscribes the host; compiled
//!   output is bit-identical at any value.
//! * `--cache-max-entries N` / `--cache-max-bytes N` — result-cache
//!   bounds (default: the `SSYNC_CACHE_MAX_*` environment variables,
//!   else unbounded).
//! * `--cache-dir DIR` — enable the persistent cache tier: outcomes are
//!   written through to `DIR` and loaded back on a miss, sharing compiles
//!   across daemon restarts and between processes.
//! * `--cache-dir-max-bytes N` / `--cache-dir-max-age-secs N` — garbage-
//!   collect the persistent directory at startup (oldest-mtime-first)
//!   down to a byte/age budget (default: the `SSYNC_CACHE_DIR_MAX_*`
//!   environment variables, else unbounded).
//! * `--janitor-interval-secs N` — run the persistent-tier GC
//!   periodically on a background janitor thread, not just at startup
//!   (requires `--cache-dir` and at least one `--cache-dir-max-*`
//!   budget).
//!
//! TCP hardening options (see `ssync_service::front::FrontConfig`):
//!
//! * `--auth-token SECRET` — require the shared token on a `Hello`
//!   handshake before any other request (default: the
//!   `SSYNC_AUTH_TOKEN` environment variable, else open). Prefer the
//!   environment variable: argv is world-readable on most systems.
//! * `--idle-timeout-secs N` — per-read socket timeout; idle/half-open
//!   peers are disconnected (default 300, `0` = never).
//! * `--frame-budget-secs N` — whole-frame time budget, the slow-loris
//!   defence (default 30, `0` = unbounded).
//! * `--max-inflight-per-conn N` / `--max-inflight-per-tenant N` —
//!   admission caps on outstanding jobs (`0` = uncapped, the default).
//! * `--queue-watermark N` — queue-depth ceiling for load shedding;
//!   Batch sheds at half of it, Normal at three quarters, High at the
//!   full mark (`0` = never shed, the default).
//! * `--retry-after-ms N` — the advisory back-off carried in
//!   `Overloaded` rejections (default 50).
//! * `--port-file PATH` — write the bound address to `PATH` after
//!   listening starts; with `--tcp 127.0.0.1:0` this is how peers learn
//!   the OS-assigned port.
//!
//! Observability options (see `docs/OBSERVABILITY.md`):
//!
//! * `--slow-request-ms N` — emit a JSONL trace line on stderr for every
//!   request whose end-to-end time reaches `N` milliseconds (`0` logs
//!   every request; absent = disabled). Each line carries the trace id
//!   the client saw in its `Submitted` response plus per-stage timings.
//! * `--metrics-text PATH` — write the full metrics + latency-histogram
//!   snapshot to `PATH` in Prometheus-style text exposition every
//!   ~500 ms (atomically, via rename), and once more after drain. The
//!   same bytes answer the wire `GetStats` request.
//! * `--flight-recorder` — record every compile's scheduler decision
//!   stream (layer openings, winning candidates, shuttles, SWAP
//!   schedules) into a bounded per-request ring, fetchable over the wire
//!   via `GetTrace` (default: the `SSYNC_FLIGHT_RECORDER` environment
//!   variable, else off). Recording never changes compiled output — the
//!   bit-identity is bench-asserted — and costs one fixed buffer per
//!   in-flight compile plus one per journaled trace.
//! * `--trace-journal-cap N` — how many recent traces (and their flight
//!   recordings) the journal retains for `GetTrace` (default: the
//!   `SSYNC_TRACE_JOURNAL_CAP` environment variable, else 256).
//! * `--slo-ms-high N` / `--slo-ms-normal N` / `--slo-ms-batch N` —
//!   per-priority end-to-end latency SLO targets in milliseconds
//!   (defaults 250 / 1000 / 5000). A background ticker samples the
//!   latency histograms every ~500 ms into rolling 1-minute and
//!   10-minute windows; the scrape surfaces export
//!   `ssync_slo_target_ms` and `ssync_slo_burn_ppm` (the fraction of
//!   requests over target, in parts per million) per priority and
//!   window.
//!
//! The daemon exits on a `Shutdown` request, or on EOF in stdio mode. A
//! `Shutdown` on the TCP transport *drains*: the listener stops
//! accepting, in-flight jobs finish and stay collectable until their
//! peers disconnect, and a final metrics snapshot is flushed to stderr
//! (rendered by the same text-exposition writer) before the process
//! ends.

use ssync_core::CacheBounds;
use ssync_service::{front, render_text, CompileService, FrontConfig, Priority, SLO_TICK_INTERVAL};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Options {
    stdio: bool,
    socket: Option<std::path::PathBuf>,
    tcp: Option<String>,
    workers: usize,
    score_threads: usize,
    bounds: CacheBounds,
    cache_dir: Option<std::path::PathBuf>,
    cache_dir_max_bytes: Option<u64>,
    cache_dir_max_age_secs: Option<u64>,
    janitor_interval_secs: Option<u64>,
    auth_token: Option<String>,
    idle_timeout_secs: u64,
    frame_budget_secs: u64,
    max_inflight_per_conn: Option<usize>,
    max_inflight_per_tenant: Option<usize>,
    queue_watermark: Option<usize>,
    retry_after_ms: u64,
    port_file: Option<std::path::PathBuf>,
    slow_request_ms: Option<u64>,
    metrics_text: Option<std::path::PathBuf>,
    flight_recorder: Option<bool>,
    trace_journal_cap: Option<usize>,
    slo_ms: [Option<u64>; 3],
}

fn usage() -> &'static str {
    "usage: ssync-serviced (--stdio | --socket PATH | --tcp ADDR) [--workers N] \
     [--score-threads N] \
     [--cache-max-entries N] [--cache-max-bytes N] [--cache-dir DIR] \
     [--cache-dir-max-bytes N] [--cache-dir-max-age-secs N] \
     [--janitor-interval-secs N] [--auth-token SECRET] [--idle-timeout-secs N] \
     [--frame-budget-secs N] [--max-inflight-per-conn N] \
     [--max-inflight-per-tenant N] [--queue-watermark N] [--retry-after-ms N] \
     [--port-file PATH] [--slow-request-ms N] [--metrics-text PATH] \
     [--flight-recorder] [--trace-journal-cap N] \
     [--slo-ms-high N] [--slo-ms-normal N] [--slo-ms-batch N]"
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        stdio: false,
        socket: None,
        tcp: None,
        workers: 0,
        score_threads: 0,
        bounds: CacheBounds::from_env(),
        cache_dir: None,
        cache_dir_max_bytes: None,
        cache_dir_max_age_secs: None,
        janitor_interval_secs: None,
        auth_token: std::env::var("SSYNC_AUTH_TOKEN").ok().filter(|t| !t.is_empty()),
        idle_timeout_secs: 300,
        frame_budget_secs: 30,
        max_inflight_per_conn: None,
        max_inflight_per_tenant: None,
        queue_watermark: None,
        retry_after_ms: 50,
        port_file: None,
        slow_request_ms: None,
        metrics_text: None,
        flight_recorder: None,
        trace_journal_cap: None,
        slo_ms: [None; 3],
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |what: &str| args.next().ok_or_else(|| format!("{what} needs a value\n{}", usage()));
        let parse_u64 = |what: &str, raw: String| -> Result<u64, String> {
            raw.parse().map_err(|_| format!("{what} expects an integer"))
        };
        match arg.as_str() {
            "--stdio" => options.stdio = true,
            "--socket" => options.socket = Some(value("--socket")?.into()),
            "--tcp" => options.tcp = Some(value("--tcp")?),
            "--workers" => {
                options.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects an integer".to_string())?
            }
            // `0` means auto (SSYNC_SCORE_THREADS, else serial), like
            // `--workers 0` defers to its environment variable.
            "--score-threads" => {
                options.score_threads = value("--score-threads")?
                    .parse()
                    .map_err(|_| "--score-threads expects an integer".to_string())?
            }
            // `0` means unbounded, matching the SSYNC_CACHE_MAX_* env vars.
            "--cache-max-entries" => {
                let n: usize = value("--cache-max-entries")?
                    .parse()
                    .map_err(|_| "--cache-max-entries expects an integer".to_string())?;
                options.bounds.max_entries = (n > 0).then_some(n);
            }
            "--cache-max-bytes" => {
                let n: usize = value("--cache-max-bytes")?
                    .parse()
                    .map_err(|_| "--cache-max-bytes expects an integer".to_string())?;
                options.bounds.max_bytes = (n > 0).then_some(n);
            }
            "--cache-dir" => options.cache_dir = Some(value("--cache-dir")?.into()),
            // `0` means unbounded, like the SSYNC_CACHE_DIR_MAX_* env vars.
            "--cache-dir-max-bytes" => {
                let n = parse_u64("--cache-dir-max-bytes", value("--cache-dir-max-bytes")?)?;
                options.cache_dir_max_bytes = (n > 0).then_some(n);
            }
            "--cache-dir-max-age-secs" => {
                let n = parse_u64("--cache-dir-max-age-secs", value("--cache-dir-max-age-secs")?)?;
                options.cache_dir_max_age_secs = (n > 0).then_some(n);
            }
            "--janitor-interval-secs" => {
                let n = parse_u64("--janitor-interval-secs", value("--janitor-interval-secs")?)?;
                options.janitor_interval_secs = (n > 0).then_some(n);
            }
            "--auth-token" => options.auth_token = Some(value("--auth-token")?),
            "--idle-timeout-secs" => {
                options.idle_timeout_secs =
                    parse_u64("--idle-timeout-secs", value("--idle-timeout-secs")?)?;
            }
            "--frame-budget-secs" => {
                options.frame_budget_secs =
                    parse_u64("--frame-budget-secs", value("--frame-budget-secs")?)?;
            }
            "--max-inflight-per-conn" => {
                let n = parse_u64("--max-inflight-per-conn", value("--max-inflight-per-conn")?)?;
                options.max_inflight_per_conn = (n > 0).then_some(n as usize);
            }
            "--max-inflight-per-tenant" => {
                let n =
                    parse_u64("--max-inflight-per-tenant", value("--max-inflight-per-tenant")?)?;
                options.max_inflight_per_tenant = (n > 0).then_some(n as usize);
            }
            "--queue-watermark" => {
                let n = parse_u64("--queue-watermark", value("--queue-watermark")?)?;
                options.queue_watermark = (n > 0).then_some(n as usize);
            }
            "--retry-after-ms" => {
                options.retry_after_ms = parse_u64("--retry-after-ms", value("--retry-after-ms")?)?;
            }
            "--port-file" => options.port_file = Some(value("--port-file")?.into()),
            // `0` is meaningful here (log every request), so the flag's
            // mere presence enables slow-request logging.
            "--slow-request-ms" => {
                options.slow_request_ms =
                    Some(parse_u64("--slow-request-ms", value("--slow-request-ms")?)?);
            }
            "--metrics-text" => options.metrics_text = Some(value("--metrics-text")?.into()),
            // Presence enables; absent defers to SSYNC_FLIGHT_RECORDER
            // (the builder reads the environment when the knob is unset).
            "--flight-recorder" => options.flight_recorder = Some(true),
            "--trace-journal-cap" => {
                options.trace_journal_cap =
                    Some(parse_u64("--trace-journal-cap", value("--trace-journal-cap")?)? as usize);
            }
            "--slo-ms-high" => {
                options.slo_ms[Priority::High.index()] =
                    Some(parse_u64("--slo-ms-high", value("--slo-ms-high")?)?);
            }
            "--slo-ms-normal" => {
                options.slo_ms[Priority::Normal.index()] =
                    Some(parse_u64("--slo-ms-normal", value("--slo-ms-normal")?)?);
            }
            "--slo-ms-batch" => {
                options.slo_ms[Priority::Batch.index()] =
                    Some(parse_u64("--slo-ms-batch", value("--slo-ms-batch")?)?);
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    let transports = usize::from(options.stdio)
        + usize::from(options.socket.is_some())
        + usize::from(options.tcp.is_some());
    if transports != 1 {
        return Err(format!("pick exactly one transport\n{}", usage()));
    }
    Ok(options)
}

impl Options {
    fn front_config(&self) -> FrontConfig {
        FrontConfig {
            auth_token: self.auth_token.clone(),
            read_timeout: (self.idle_timeout_secs > 0)
                .then(|| Duration::from_secs(self.idle_timeout_secs)),
            frame_budget: (self.frame_budget_secs > 0)
                .then(|| Duration::from_secs(self.frame_budget_secs)),
            max_inflight_per_conn: self.max_inflight_per_conn,
            max_inflight_per_tenant: self.max_inflight_per_tenant,
            queue_watermark: self.queue_watermark,
            retry_after_ms: self.retry_after_ms,
        }
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let mut builder = CompileService::builder()
        .workers(options.workers)
        .scoring_threads(options.score_threads)
        .cache_bounds(options.bounds);
    if let Some(enabled) = options.flight_recorder {
        builder = builder.flight_recorder(enabled);
    }
    if let Some(cap) = options.trace_journal_cap {
        builder = builder.trace_journal_cap(cap);
    }
    if let Some(dir) = &options.cache_dir {
        builder = builder.persist_dir(dir);
    }
    if let Some(bytes) = options.cache_dir_max_bytes {
        builder = builder.persist_max_bytes(bytes);
    }
    if let Some(secs) = options.cache_dir_max_age_secs {
        builder = builder.persist_max_age(std::time::Duration::from_secs(secs));
    }
    let service = Arc::new(builder.build());
    service.telemetry().set_slow_threshold(options.slow_request_ms.map(Duration::from_millis));
    for priority in Priority::ALL {
        if let Some(ms) = options.slo_ms[priority.index()] {
            service.telemetry().set_slo_target(priority, Duration::from_millis(ms));
        }
    }
    {
        // The SLO ticker: samples the end-to-end histograms into the
        // rolling burn-rate windows. Detached like the metrics flusher —
        // it dies with the process, and a tick on a drained service is a
        // cheap no-op.
        let service = Arc::clone(&service);
        std::thread::spawn(move || loop {
            std::thread::sleep(SLO_TICK_INTERVAL);
            service.telemetry().slo_tick();
        });
    }
    let _janitor =
        options.janitor_interval_secs.map(|secs| service.spawn_janitor(Duration::from_secs(secs)));
    if let Some(path) = &options.metrics_text {
        // Periodic scrape file: a detached flusher rewrites it every
        // ~500 ms for the daemon's lifetime (it dies with the process),
        // and the drain path below writes the final snapshot.
        let service = Arc::clone(&service);
        let path = path.clone();
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(500));
            let _ = write_metrics_text(&service, &path);
        });
    }
    eprintln!(
        "[ssync-serviced] serving with {} workers x {} scoring threads (cache: {:?}, persist: {:?}, janitor: {:?}, auth: {}, flight recorder: {})",
        service.workers(),
        service.scoring_threads(),
        service.cache().config().bounds,
        options.cache_dir,
        options.janitor_interval_secs,
        if options.auth_token.is_some() { "token" } else { "open" },
        if service.flight_recorder_enabled() { "on" } else { "off" },
    );
    let result = if options.stdio {
        front::serve_stdio(&service)
    } else if let Some(addr) = &options.tcp {
        serve_tcp(&service, &options, addr)
    } else {
        let path = options.socket.as_deref().expect("validated by parse_args");
        front::serve_unix(&service, path)
    };
    // Drain is complete: flush a final snapshot so an operator (or a
    // supervisor scraping stderr) sees what the lifetime did — rendered
    // by the same text-exposition writer that answers `GetStats` and
    // fills `--metrics-text`, so every surface agrees.
    eprintln!("[ssync-serviced] final metrics:");
    eprint!("{}", render_text(&service.metrics(), &service.telemetry().snapshot()));
    if let Some(path) = &options.metrics_text {
        if let Err(error) = write_metrics_text(&service, path) {
            eprintln!("[ssync-serviced] final --metrics-text write failed: {error}");
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("[ssync-serviced] transport error: {error}");
            ExitCode::FAILURE
        }
    }
}

/// Renders the current metrics + telemetry snapshot and swaps it into
/// `path` via a tmp-file rename, so a scraper never reads a half-written
/// exposition.
fn write_metrics_text(service: &CompileService, path: &std::path::Path) -> std::io::Result<()> {
    let text = render_text(&service.metrics(), &service.telemetry().snapshot());
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// Binds the TCP listener, publishes the bound address to `--port-file`
/// (written atomically-enough via rename so a polling parent never reads
/// a half-written line), and runs the hardened accept loop.
fn serve_tcp(service: &Arc<CompileService>, options: &Options, addr: &str) -> std::io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    eprintln!("[ssync-serviced] listening on tcp://{local}");
    if let Some(path) = &options.port_file {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, format!("{local}\n"))?;
        std::fs::rename(&tmp, path)?;
    }
    front::serve_tcp(service, listener, options.front_config())
}
