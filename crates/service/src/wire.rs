//! The IPC wire protocol of `ssync-serviced`: framing and message types.
//!
//! ## Framing
//!
//! Every message travels as one frame over a byte stream (a Unix domain
//! socket or a child process's stdin/stdout):
//!
//! ```text
//! +----------+------------+-----------+------------------+
//! | magic u32| version u32| length u32| payload (length) |
//! +----------+------------+-----------+------------------+
//!      "CYSS"     1          LE bytes    codec-encoded body
//! ```
//!
//! All integers are little-endian. A frame whose magic or version doesn't
//! match, or whose length exceeds [`MAX_FRAME_BYTES`], is a protocol
//! error; a clean EOF *between* frames is a normal disconnect. Payloads
//! are encoded with the [`crate::codec`] primitives (exact-bit floats,
//! tag bytes, length-prefixed sequences) — the vendored `serde` is a
//! marker-trait stand-in, so the wire structs here pair each message with
//! explicit `encode`/`decode` functions instead of derives.
//!
//! ## Conversation
//!
//! The client sends [`Request`] frames and reads one [`Response`] frame
//! per request, in order (the protocol is strictly request/response; the
//! concurrency lives server-side in the
//! [`CompileService`](crate::CompileService) pool):
//!
//! | request | response |
//! |---|---|
//! | `Hello { token }` | `Welcome` or `Rejected` (v3; required first on authed TCP) |
//! | `Submit(RemoteRequest)` | `Submitted { job }` or `Rejected` |
//! | `SubmitQasm(RemoteQasmRequest)` | `QasmSubmitted { job, report }` or `Rejected` (v2) |
//! | `Poll { job }` | `Pending`, `Outcome`, `CompileFailed` or `Rejected` |
//! | `Wait { job }` | `Outcome`, `CompileFailed` or `Rejected` (blocks) |
//! | `Metrics` | `Metrics(ServiceMetrics)` |
//! | `GetStats` | `StatsText { text }` (v5; Prometheus-style exposition) |
//! | `GetTrace { trace_id }` | `TraceDetail` or `Rejected` (v6) |
//! | `Shutdown` | `ShuttingDown`, then the daemon exits |
//!
//! ## Version 2
//!
//! v2 adds **wire-level circuit ingestion**: `SubmitQasm` carries raw
//! OpenQASM 2.0 source text (plus device name, compiler, config,
//! priority/tenant and an optional deadline) under a *new, backward-
//! compatible request tag* — every v1 tag and its payload encoding are
//! unchanged, and [`read_frame`] accepts frames stamped with either
//! version, so a v2 daemon understands everything a v1 peer can say.
//! The daemon parses the source with `ssync-qasm` and compiles the
//! lowered circuit exactly as if the client had parsed locally and
//! submitted the [`Circuit`]; parse errors come back as `Rejected` with
//! the `line:col` diagnostic. The only payload that grew is `Metrics`
//! (the deadline/GC counters are appended), which is why outgoing
//! frames are stamped v2.
//!
//! ## Version 3
//!
//! v3 adds the **hardened front-end**: a `Hello { token }` handshake
//! (new request tag, required first on an auth-configured TCP listener,
//! answered by `Welcome`), the `CompileError::Overloaded` tag the
//! admission controller rejects with when queue depth breaches its
//! watermark, and four appended `Metrics` counters
//! (`rejected_overloaded`, `rejected_unauthorized`, `conns_timed_out`,
//! `janitor_gc_runs`). Every v1/v2 tag and payload encoding is
//! unchanged.
//!
//! ## Version 4
//!
//! v4 appends three **intra-compile scoring counters** to the `Metrics`
//! payload (`candidates_scored`, `score_shards_spawned`,
//! `score_cache_shard_hits`), after `uptime` — previously the final
//! field. The decoder reads them only when payload bytes remain, so a
//! v4 client decodes a v1–v3 daemon's shorter payload cleanly (the
//! counters come back zero) and every older tag and encoding is
//! unchanged. The scheduler's `scoring_threads` knob deliberately stays
//! **off the wire**: thread budgeting is a server-side resource
//! decision (`--score-threads` / `SSYNC_SCORE_THREADS`), never
//! something a remote client dictates — and it cannot affect compiled
//! output anyway.
//!
//! ## Version 5
//!
//! v5 adds the **observability surface**. Three append-only payload
//! growths plus one new request/response pair, all following the v4
//! pattern (decoders read appended fields only when payload bytes
//! remain, so every older payload still decodes):
//!
//! * `Submitted` and `QasmSubmitted` each carry the server-assigned
//!   **trace id** after their existing fields. A zero trace id means
//!   the peer predates tracing (server-assigned ids start at 1).
//! * `Metrics` appends `traces_recorded` and `slow_requests` after the
//!   v4 scoring tail.
//! * `GetStats` (new request tag) is answered with `StatsText` (new
//!   response tag): the daemon's full metrics + latency-histogram
//!   snapshot rendered in Prometheus-style text exposition — the same
//!   bytes `--metrics-text` writes to disk, for peers that want to
//!   scrape over the wire instead of through the filesystem.
//!
//! ## Version 6
//!
//! v6 adds **wire-fetchable traces**: `GetTrace { trace_id }` (new
//! request tag) is answered with `TraceDetail` (new response tag)
//! carrying the trace's span rendered to the slow-request-log JSONL
//! schema plus — when the daemon ran with the flight recorder on — the
//! request's flight-recorder event stream, one JSON object per line.
//! An id the daemon's trace journal no longer holds (evicted, or never
//! assigned) comes back as `Rejected`. Both payloads are plain strings,
//! so the trace schema can grow without another wire bump. Every v1–v5
//! tag and payload encoding is unchanged, and the
//! `CompilerConfig::flight_recorder` flag deliberately stays **off the
//! wire** like `scoring_threads`: recording is a server-side
//! observability decision (`--flight-recorder` /
//! `SSYNC_FLIGHT_RECORDER`), never something a remote client dictates —
//! and it cannot affect compiled output anyway.
//!
//! Job ids are per-connection and **single-delivery**: the response that
//! carries a job's terminal result (`Wait`, or a `Poll` that observes
//! completion) consumes the id, so a long-lived connection doesn't pin
//! every outcome it ever received; a later `Poll`/`Wait` on a consumed id
//! is `Rejected`. Devices are named: the server resolves
//! [`RemoteRequest::device`] through its registry's paper-topology table
//! ([`ssync_arch::QccdTopology::named`]), so the (potentially large)
//! device artifact never crosses the wire — only the name does, exactly
//! like the in-process API shares one registered `Arc`.

use crate::codec::{self, ByteReader, ByteWriter, CodecError};
use crate::job::{Priority, TenantId};
use crate::metrics::{ServiceMetrics, WorkerMetrics};
use ssync_baselines::CompilerKind;
use ssync_circuit::Circuit;
use ssync_core::{CompileError, CompileOutcome, CompilerConfig};
use std::io::{Read, Write};
use std::time::Duration;

/// Frame magic: `b"CYSS"` little-endian ("SSYC" on the wire).
pub const WIRE_MAGIC: u32 = u32::from_le_bytes(*b"SSYC");
/// Protocol version written on outgoing frames; bumped whenever the
/// codec field walk changes. v2 added `SubmitQasm` and the extended
/// metrics payload; v3 added the `Hello` auth handshake, the
/// `Overloaded` compile-error tag and the front-end/janitor metrics
/// counters; v4 appended the intra-compile scoring counters to
/// `Metrics`; v5 added request tracing (trace ids on `Submitted` /
/// `QasmSubmitted`, the trace counters on `Metrics`) and the
/// `GetStats`/`StatsText` text-exposition scrape; v6 added the
/// `GetTrace`/`TraceDetail` flight-recorder trace fetch. [`read_frame`]
/// still accepts [`MIN_WIRE_VERSION`]-tagged frames from older peers.
pub const WIRE_VERSION: u32 = 6;
/// Oldest protocol version [`read_frame`] accepts.
pub const MIN_WIRE_VERSION: u32 = 1;
/// Upper bound on a frame payload (a defence against corrupt length
/// prefixes, not a practical limit — outcomes are kilobytes).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// One compile request as it crosses the wire: the device travels by
/// *name* (resolved server-side through the registry), everything else by
/// value.
#[derive(Debug, Clone)]
pub struct RemoteRequest {
    /// Name of a paper topology (`"G-2x3"`, `"L-6"`, `"S-4"`, …) the
    /// server registers on first use.
    pub device: String,
    /// The circuit to compile.
    pub circuit: Circuit,
    /// Which compiler to run.
    pub compiler: CompilerKind,
    /// The evaluation configuration (its `weights` pick the device
    /// artifact variant, exactly as in-process).
    pub config: CompilerConfig,
    /// Scheduling priority.
    pub priority: Priority,
    /// Submitting tenant.
    pub tenant: TenantId,
}

impl RemoteRequest {
    /// A request at [`Priority::Normal`] for [`TenantId::ANON`].
    pub fn new(
        device: impl Into<String>,
        circuit: Circuit,
        compiler: CompilerKind,
        config: CompilerConfig,
    ) -> Self {
        RemoteRequest {
            device: device.into(),
            circuit,
            compiler,
            config,
            priority: Priority::default(),
            tenant: TenantId::ANON,
        }
    }

    /// Returns a copy with a different scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Returns a copy attributed to `tenant`.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }
}

/// A compile request whose circuit travels as **raw OpenQASM 2.0 source
/// text** (wire v2): the daemon parses and lowers it server-side, so any
/// QASM-producing client — with no knowledge of the workspace's circuit
/// IR or its binary encoding — can feed the service.
#[derive(Debug, Clone)]
pub struct RemoteQasmRequest {
    /// Name of a paper topology the server registers on first use.
    pub device: String,
    /// The OpenQASM 2.0 program to parse, lower and compile.
    pub source: String,
    /// Which compiler to run.
    pub compiler: CompilerKind,
    /// The evaluation configuration.
    pub config: CompilerConfig,
    /// Scheduling priority.
    pub priority: Priority,
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Optional deadline in microseconds from submission (see
    /// [`crate::CompileRequest::deadline_us`]).
    pub deadline_us: Option<u64>,
}

impl RemoteQasmRequest {
    /// A request at [`Priority::Normal`] for [`TenantId::ANON`] with no
    /// deadline.
    pub fn new(
        device: impl Into<String>,
        source: impl Into<String>,
        compiler: CompilerKind,
        config: CompilerConfig,
    ) -> Self {
        RemoteQasmRequest {
            device: device.into(),
            source: source.into(),
            compiler,
            config,
            priority: Priority::default(),
            tenant: TenantId::ANON,
            deadline_us: None,
        }
    }

    /// Returns a copy with a different scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Returns a copy attributed to `tenant`.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Returns a copy expiring `deadline_us` microseconds after the
    /// daemon accepts it.
    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }
}

/// A client→server message.
#[derive(Debug, Clone)]
pub enum Request {
    /// The connection handshake (wire v3). On a TCP front-end configured
    /// with a shared auth token this MUST be the first frame and carry
    /// the matching token, or the connection is rejected and closed
    /// (counted in `ServiceMetrics::rejected_unauthorized`). On
    /// un-authed transports a `Hello` is accepted (and answered with
    /// `Welcome`) but never required, so clients can handshake
    /// unconditionally.
    Hello {
        /// The shared secret; compared in full against the server's
        /// configured token. Empty when the client has none.
        token: String,
    },
    /// Queue a compile; answered with `Submitted` or `Rejected`. Boxed:
    /// a request carries a whole circuit + config, dwarfing the other
    /// variants.
    Submit(Box<RemoteRequest>),
    /// Queue a compile of raw QASM source (wire v2); answered with
    /// `Submitted`, or `Rejected` carrying the parse diagnostic.
    SubmitQasm(Box<RemoteQasmRequest>),
    /// Non-blocking status check of a submitted job.
    Poll {
        /// The id from `Submitted`.
        job: u64,
    },
    /// Block until the job finishes.
    Wait {
        /// The id from `Submitted`.
        job: u64,
    },
    /// Fetch a metrics snapshot.
    Metrics,
    /// Fetch the daemon's metrics + latency histograms rendered as
    /// Prometheus-style text exposition (wire v5); answered with
    /// `StatsText`.
    GetStats,
    /// Fetch one trace from the daemon's journal by the id `Submitted` /
    /// `QasmSubmitted` returned (wire v6); answered with `TraceDetail`,
    /// or `Rejected` when the journal no longer holds the id.
    GetTrace {
        /// The server-assigned trace id to look up.
        trace_id: u64,
    },
    /// Ask the daemon to exit after responding.
    Shutdown,
}

/// A server→client message.
#[derive(Debug, Clone)]
pub enum Response {
    /// Accepts a `Hello` (wire v3); carries the server's protocol
    /// version so clients can log what they are talking to.
    Welcome {
        /// The server's [`WIRE_VERSION`].
        version: u32,
    },
    /// The submission was queued under this per-connection job id.
    Submitted {
        /// Identifier to pass to `Poll` / `Wait`.
        job: u64,
        /// Server-assigned trace id for the request's end-to-end trace
        /// (wire v5). Zero when the daemon predates tracing;
        /// server-assigned ids start at 1.
        trace_id: u64,
    },
    /// The polled job has not finished yet.
    Pending,
    /// The job finished successfully.
    Outcome(CompileOutcome),
    /// The job finished with a compile error.
    CompileFailed(CompileError),
    /// The request itself was invalid (unknown device name, unknown job
    /// id, …).
    Rejected {
        /// Human-readable reason.
        reason: String,
    },
    /// A metrics snapshot.
    Metrics(ServiceMetrics),
    /// Acknowledges `Shutdown`; the daemon exits after sending it.
    ShuttingDown,
    /// A QASM submission was parsed and queued (wire v2). Carries the
    /// lowering's [`ParseReport`](ssync_qasm::ParseReport) so the remote
    /// caller learns what was stripped (measurements, resets,
    /// conditionals) exactly as a local `ssync_qasm::parse` would tell
    /// it.
    QasmSubmitted {
        /// Identifier to pass to `Poll` / `Wait`.
        job: u64,
        /// What the server-side lowering stripped or counted.
        report: ssync_qasm::ParseReport,
        /// Server-assigned trace id (wire v5); zero when the daemon
        /// predates tracing.
        trace_id: u64,
    },
    /// The daemon's metrics + latency histograms rendered as
    /// Prometheus-style text exposition (wire v5; answers `GetStats`).
    StatsText {
        /// The rendered exposition — the same bytes the daemon's
        /// `--metrics-text` flag writes to disk.
        text: String,
    },
    /// One trace from the daemon's journal (wire v6; answers
    /// `GetTrace`). Both fields are rendered text so the trace schema
    /// can grow without a wire bump.
    TraceDetail {
        /// The id that was looked up.
        trace_id: u64,
        /// The trace's span + stage timings + attributes in the
        /// slow-request-log JSONL schema (one line).
        span_jsonl: String,
        /// The request's flight-recorder stream — a header line plus one
        /// JSON object per recorded event, newline-separated. Empty when
        /// the daemon compiled the request with the recorder off.
        recorder_jsonl: String,
    },
}

fn priority_tag(p: Priority) -> u8 {
    p.index() as u8
}

fn priority_from_tag(tag: u8) -> Result<Priority, CodecError> {
    Priority::ALL
        .into_iter()
        .find(|p| p.index() as u8 == tag)
        .ok_or(CodecError::BadTag { what: "priority", tag })
}

/// Encodes a [`Request`] payload (no frame header).
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match request {
        Request::Submit(remote) => {
            w.put_u8(0);
            w.put_str(&remote.device);
            codec::encode_circuit(&mut w, &remote.circuit);
            w.put_u8(codec::compiler_kind_tag(remote.compiler));
            codec::encode_config(&mut w, &remote.config);
            w.put_u8(priority_tag(remote.priority));
            w.put_u64(remote.tenant.0);
        }
        Request::Poll { job } => {
            w.put_u8(1);
            w.put_u64(*job);
        }
        Request::Wait { job } => {
            w.put_u8(2);
            w.put_u64(*job);
        }
        Request::Metrics => w.put_u8(3),
        Request::Shutdown => w.put_u8(4),
        Request::GetStats => w.put_u8(7),
        Request::GetTrace { trace_id } => {
            w.put_u8(8);
            w.put_u64(*trace_id);
        }
        Request::Hello { token } => {
            w.put_u8(6);
            w.put_str(token);
        }
        Request::SubmitQasm(remote) => {
            w.put_u8(5);
            w.put_str(&remote.device);
            w.put_str(&remote.source);
            w.put_u8(codec::compiler_kind_tag(remote.compiler));
            codec::encode_config(&mut w, &remote.config);
            w.put_u8(priority_tag(remote.priority));
            w.put_u64(remote.tenant.0);
            match remote.deadline_us {
                Some(deadline) => {
                    w.put_u8(1);
                    w.put_u64(deadline);
                }
                None => w.put_u8(0),
            }
        }
    }
    w.into_bytes()
}

/// Decodes a [`Request`] payload written by [`encode_request`].
pub fn decode_request(payload: &[u8]) -> Result<Request, CodecError> {
    let mut r = ByteReader::new(payload);
    let request = match r.get_u8()? {
        0 => Request::Submit(Box::new(RemoteRequest {
            device: r.get_str()?,
            circuit: codec::decode_circuit(&mut r)?,
            compiler: codec::compiler_kind_from_tag(r.get_u8()?)?,
            config: codec::decode_config(&mut r)?,
            priority: priority_from_tag(r.get_u8()?)?,
            tenant: TenantId(r.get_u64()?),
        })),
        1 => Request::Poll { job: r.get_u64()? },
        2 => Request::Wait { job: r.get_u64()? },
        3 => Request::Metrics,
        4 => Request::Shutdown,
        5 => Request::SubmitQasm(Box::new(RemoteQasmRequest {
            device: r.get_str()?,
            source: r.get_str()?,
            compiler: codec::compiler_kind_from_tag(r.get_u8()?)?,
            config: codec::decode_config(&mut r)?,
            priority: priority_from_tag(r.get_u8()?)?,
            tenant: TenantId(r.get_u64()?),
            deadline_us: match r.get_u8()? {
                0 => None,
                1 => Some(r.get_u64()?),
                tag => return Err(CodecError::BadTag { what: "deadline option", tag }),
            },
        })),
        6 => Request::Hello { token: r.get_str()? },
        7 => Request::GetStats,
        8 => Request::GetTrace { trace_id: r.get_u64()? },
        tag => return Err(CodecError::BadTag { what: "request", tag }),
    };
    if !r.is_exhausted() {
        return Err(CodecError::Invalid("trailing request bytes"));
    }
    Ok(request)
}

fn encode_metrics(w: &mut ByteWriter, m: &ServiceMetrics) {
    w.put_u64(m.jobs_submitted);
    w.put_u64(m.jobs_completed);
    w.put_u64(m.jobs_coalesced);
    w.put_u64(m.jobs_near_duplicate);
    w.put_u64(m.jobs_deadline_expired);
    for v in m.submitted_by_priority {
        w.put_u64(v);
    }
    w.put_usize(m.queue_depth);
    w.put_u64(m.rejected_overloaded);
    w.put_u64(m.rejected_unauthorized);
    w.put_u64(m.conns_timed_out);
    w.put_u64(m.janitor_gc_runs);
    w.put_u64(m.cache.hits);
    w.put_u64(m.cache.misses);
    w.put_usize(m.cache.entries);
    w.put_usize(m.cache.bytes);
    w.put_u64(m.cache.evictions);
    w.put_u64(m.cache.persist_hits);
    w.put_u64(m.cache.persist_stores);
    w.put_u64(m.cache.persist_gc_deleted);
    w.put_usize(m.workers.len());
    for worker in &m.workers {
        w.put_u64(worker.executed);
        w.put_u64(worker.stolen);
    }
    w.put_u64(m.uptime.as_nanos() as u64);
    // v4 tail: appended after what was the final v3 field so v1–v3
    // decoders (which stop at `uptime`) never see them.
    w.put_u64(m.candidates_scored);
    w.put_u64(m.score_shards_spawned);
    w.put_u64(m.score_cache_shard_hits);
    // v5 tail: the request-tracing counters, appended after the v4
    // scoring counters under the same contract.
    w.put_u64(m.traces_recorded);
    w.put_u64(m.slow_requests);
}

fn decode_metrics(r: &mut ByteReader<'_>) -> Result<ServiceMetrics, CodecError> {
    let mut metrics = ServiceMetrics {
        jobs_submitted: r.get_u64()?,
        jobs_completed: r.get_u64()?,
        jobs_coalesced: r.get_u64()?,
        jobs_near_duplicate: r.get_u64()?,
        jobs_deadline_expired: r.get_u64()?,
        submitted_by_priority: [r.get_u64()?, r.get_u64()?, r.get_u64()?],
        queue_depth: r.get_usize()?,
        rejected_overloaded: r.get_u64()?,
        rejected_unauthorized: r.get_u64()?,
        conns_timed_out: r.get_u64()?,
        janitor_gc_runs: r.get_u64()?,
        candidates_scored: 0,
        score_shards_spawned: 0,
        score_cache_shard_hits: 0,
        traces_recorded: 0,
        slow_requests: 0,
        cache: crate::cache::CacheStats {
            hits: r.get_u64()?,
            misses: r.get_u64()?,
            entries: r.get_usize()?,
            bytes: r.get_usize()?,
            evictions: r.get_u64()?,
            persist_hits: r.get_u64()?,
            persist_stores: r.get_u64()?,
            persist_gc_deleted: r.get_u64()?,
        },
        workers: {
            let n = r.get_len(16)?;
            let mut workers = Vec::with_capacity(n);
            for _ in 0..n {
                workers.push(WorkerMetrics { executed: r.get_u64()?, stolen: r.get_u64()? });
            }
            workers
        },
        uptime: Duration::from_nanos(r.get_u64()?),
    };
    // The v4 scoring counters live past the v3 end of the payload; a
    // shorter (v1–v3) payload simply leaves them zero. The v5 tracing
    // counters live past the v4 end under the same contract, so each
    // tail re-checks exhaustion before reading.
    if !r.is_exhausted() {
        metrics.candidates_scored = r.get_u64()?;
        metrics.score_shards_spawned = r.get_u64()?;
        metrics.score_cache_shard_hits = r.get_u64()?;
    }
    if !r.is_exhausted() {
        metrics.traces_recorded = r.get_u64()?;
        metrics.slow_requests = r.get_u64()?;
    }
    Ok(metrics)
}

/// Encodes a [`Response`] payload (no frame header).
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match response {
        Response::Submitted { job, trace_id } => {
            w.put_u8(0);
            w.put_u64(*job);
            // v5 tail: the trace id rides after the v1 payload so a
            // pre-v5 decoder (which stops at `job`) never sees it.
            w.put_u64(*trace_id);
        }
        Response::Pending => w.put_u8(1),
        Response::Outcome(outcome) => {
            w.put_u8(2);
            codec::encode_outcome(&mut w, outcome);
        }
        Response::CompileFailed(error) => {
            w.put_u8(3);
            codec::encode_compile_error(&mut w, error);
        }
        Response::Rejected { reason } => {
            w.put_u8(4);
            w.put_str(reason);
        }
        Response::Metrics(metrics) => {
            w.put_u8(5);
            encode_metrics(&mut w, metrics);
        }
        Response::ShuttingDown => w.put_u8(6),
        Response::Welcome { version } => {
            w.put_u8(8);
            w.put_u32(*version);
        }
        Response::QasmSubmitted { job, report, trace_id } => {
            w.put_u8(7);
            w.put_u64(*job);
            w.put_usize(report.measurements_stripped);
            w.put_usize(report.resets_stripped);
            w.put_usize(report.conditionals_stripped);
            w.put_usize(report.barriers);
            w.put_usize(report.gates_inlined);
            // v5 tail: appended after the v2 report fields.
            w.put_u64(*trace_id);
        }
        Response::StatsText { text } => {
            w.put_u8(9);
            w.put_str(text);
        }
        Response::TraceDetail { trace_id, span_jsonl, recorder_jsonl } => {
            w.put_u8(10);
            w.put_u64(*trace_id);
            w.put_str(span_jsonl);
            w.put_str(recorder_jsonl);
        }
    }
    w.into_bytes()
}

/// Decodes a [`Response`] payload written by [`encode_response`].
pub fn decode_response(payload: &[u8]) -> Result<Response, CodecError> {
    let mut r = ByteReader::new(payload);
    let response = match r.get_u8()? {
        0 => Response::Submitted {
            job: r.get_u64()?,
            // A pre-v5 daemon's payload ends at `job`; zero means "the
            // peer predates tracing" (real ids start at 1).
            trace_id: if r.is_exhausted() { 0 } else { r.get_u64()? },
        },
        1 => Response::Pending,
        2 => Response::Outcome(codec::decode_outcome(&mut r)?),
        3 => Response::CompileFailed(codec::decode_compile_error(&mut r)?),
        4 => Response::Rejected { reason: r.get_str()? },
        5 => Response::Metrics(decode_metrics(&mut r)?),
        6 => Response::ShuttingDown,
        7 => Response::QasmSubmitted {
            job: r.get_u64()?,
            report: ssync_qasm::ParseReport {
                measurements_stripped: r.get_usize()?,
                resets_stripped: r.get_usize()?,
                conditionals_stripped: r.get_usize()?,
                barriers: r.get_usize()?,
                gates_inlined: r.get_usize()?,
            },
            trace_id: if r.is_exhausted() { 0 } else { r.get_u64()? },
        },
        8 => Response::Welcome { version: r.get_u32()? },
        9 => Response::StatsText { text: r.get_str()? },
        10 => Response::TraceDetail {
            trace_id: r.get_u64()?,
            span_jsonl: r.get_str()?,
            recorder_jsonl: r.get_str()?,
        },
        tag => return Err(CodecError::BadTag { what: "response", tag }),
    };
    if !r.is_exhausted() {
        return Err(CodecError::Invalid("trailing response bytes"));
    }
    Ok(response)
}

/// Writes one frame (header + payload) and flushes.
///
/// # Errors
///
/// Propagates the underlying I/O failure; a payload over
/// [`MAX_FRAME_BYTES`] is rejected up front (`InvalidData`) — writing it
/// would produce a frame the peer must reject, and a payload past
/// `u32::MAX` would truncate the length header and desynchronise the
/// stream.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(protocol_error("payload exceeds MAX_FRAME_BYTES"));
    }
    let mut header = [0u8; 12];
    header[0..4].copy_from_slice(&WIRE_MAGIC.to_le_bytes());
    header[4..8].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    header[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    writer.write_all(&header)?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one frame's payload. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer disconnected).
///
/// # Errors
///
/// I/O failures, a truncated header/payload, a bad magic/version, or a
/// length above [`MAX_FRAME_BYTES`] all surface as `std::io::Error`
/// (`InvalidData` for protocol violations).
pub fn read_frame(reader: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    read_frame_deadline(reader, None)
}

/// [`read_frame`] with an optional **whole-frame budget**: once a frame's
/// first byte arrives, the rest must arrive within `frame_budget` or the
/// read fails with `ErrorKind::TimedOut`.
///
/// Per-read socket timeouts alone cannot bound a *slow-loris* peer that
/// trickles one byte per almost-timeout — every byte resets the OS
/// timer, pinning a handler thread forever. The budget check runs after
/// every partial read, so a trickling frame is cut off no matter how the
/// bytes are paced. Callers supply the per-read timeout on the transport
/// (e.g. `TcpStream::set_read_timeout`, which surfaces as
/// `WouldBlock`/`TimedOut` errors here and covers fully idle peers); the
/// budget bounds the sum.
///
/// # Errors
///
/// Everything [`read_frame`] raises, plus `TimedOut` when the budget is
/// exhausted mid-frame. The [`MAX_FRAME_BYTES`] guard is enforced on the
/// decoded length header **before the payload buffer is allocated** — a
/// forged multi-gigabyte length prefix is rejected without reserving a
/// byte (regression-tested in the fault-injection harness).
pub fn read_frame_deadline(
    reader: &mut impl Read,
    frame_budget: Option<Duration>,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut started: Option<std::time::Instant> = None;
    let check_budget = |started: &Option<std::time::Instant>| -> std::io::Result<()> {
        if let (Some(started), Some(budget)) = (started, frame_budget) {
            if started.elapsed() > budget {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "frame read exceeded its time budget",
                ));
            }
        }
        Ok(())
    };
    let mut header = [0u8; 12];
    let mut filled = 0usize;
    while filled < header.len() {
        let n = reader.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None); // clean EOF between frames
            }
            return Err(protocol_error("truncated frame header"));
        }
        if filled == 0 {
            // The budget clock starts at the frame's first byte, so an
            // idle-but-healthy connection is not penalised for waiting.
            started = Some(std::time::Instant::now());
        }
        filled += n;
        check_budget(&started)?;
    }
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    let length = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
    if magic != WIRE_MAGIC {
        return Err(protocol_error("bad frame magic"));
    }
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(protocol_error("unsupported protocol version"));
    }
    // Guard BEFORE the allocation below: the length header is
    // attacker-controlled, and `vec![0u8; 4 GiB]` must never run.
    if length > MAX_FRAME_BYTES {
        return Err(protocol_error("frame exceeds MAX_FRAME_BYTES"));
    }
    let mut payload = vec![0u8; length];
    let mut filled = 0usize;
    while filled < length {
        let n = reader.read(&mut payload[filled..])?;
        if n == 0 {
            return Err(protocol_error("truncated frame payload"));
        }
        filled += n;
        check_budget(&started)?;
    }
    Ok(Some(payload))
}

fn protocol_error(message: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_circuit::generators::qft;

    #[test]
    fn requests_round_trip() {
        let remote = RemoteRequest::new(
            "G-2x3",
            qft(8),
            CompilerKind::Dai,
            CompilerConfig::default().with_decay(0.01),
        )
        .with_priority(Priority::Batch)
        .with_tenant(TenantId::from_name("sweep"));
        let qasm = RemoteQasmRequest::new(
            "L-4",
            "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];\n",
            CompilerKind::SSync,
            CompilerConfig::default(),
        )
        .with_priority(Priority::High)
        .with_tenant(TenantId::from_name("wire-v2"))
        .with_deadline_us(250_000);
        for request in [
            Request::Submit(Box::new(remote)),
            Request::SubmitQasm(Box::new(qasm)),
            Request::Hello { token: "super-secret".into() },
            Request::Poll { job: 7 },
            Request::Wait { job: 9 },
            Request::Metrics,
            Request::GetStats,
            Request::GetTrace { trace_id: 41 },
            Request::Shutdown,
        ] {
            let bytes = encode_request(&request);
            let decoded = decode_request(&bytes).expect("round-trips");
            match (&request, &decoded) {
                (Request::Submit(a), Request::Submit(b)) => {
                    assert_eq!(a.device, b.device);
                    assert_eq!(a.circuit, b.circuit);
                    assert_eq!(a.compiler, b.compiler);
                    assert_eq!(a.config, b.config);
                    assert_eq!(a.priority, b.priority);
                    assert_eq!(a.tenant, b.tenant);
                }
                (Request::SubmitQasm(a), Request::SubmitQasm(b)) => {
                    assert_eq!(a.device, b.device);
                    assert_eq!(a.source, b.source);
                    assert_eq!(a.compiler, b.compiler);
                    assert_eq!(a.config, b.config);
                    assert_eq!(a.priority, b.priority);
                    assert_eq!(a.tenant, b.tenant);
                    assert_eq!(a.deadline_us, b.deadline_us);
                }
                (Request::Hello { token: a }, Request::Hello { token: b }) => assert_eq!(a, b),
                (Request::Poll { job: a }, Request::Poll { job: b })
                | (Request::Wait { job: a }, Request::Wait { job: b })
                | (Request::GetTrace { trace_id: a }, Request::GetTrace { trace_id: b }) => {
                    assert_eq!(a, b)
                }
                (Request::Metrics, Request::Metrics)
                | (Request::GetStats, Request::GetStats)
                | (Request::Shutdown, Request::Shutdown) => {}
                other => panic!("variant changed in transit: {other:?}"),
            }
        }
    }

    /// A frame stamped with the previous protocol version still reads:
    /// v1 request tags are a strict subset of v2's, so a v2 daemon
    /// understands a v1 peer.
    #[test]
    fn v1_stamped_frames_are_accepted() {
        let payload = encode_request(&Request::Poll { job: 3 });
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).expect("write");
        buf[4..8].copy_from_slice(&MIN_WIRE_VERSION.to_le_bytes());
        let read = read_frame(&mut std::io::Cursor::new(&buf)).expect("v1 accepted");
        assert_eq!(read, Some(payload));
        // ... but version 0 and future versions are rejected.
        for bad in [0u32, WIRE_VERSION + 1] {
            let mut corrupt = buf.clone();
            corrupt[4..8].copy_from_slice(&bad.to_le_bytes());
            assert!(read_frame(&mut std::io::Cursor::new(&corrupt)).is_err(), "version {bad}");
        }
    }

    #[test]
    fn frames_round_trip_and_reject_corruption() {
        let payload = encode_request(&Request::Poll { job: 3 });
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).expect("write");
        write_frame(&mut buf, &payload).expect("write");

        let mut cursor = std::io::Cursor::new(&buf);
        assert_eq!(read_frame(&mut cursor).expect("frame 1"), Some(payload.clone()));
        assert_eq!(read_frame(&mut cursor).expect("frame 2"), Some(payload.clone()));
        assert_eq!(read_frame(&mut cursor).expect("clean EOF"), None);

        // Bad magic.
        let mut corrupt = buf.clone();
        corrupt[0] ^= 0xFF;
        assert!(read_frame(&mut std::io::Cursor::new(&corrupt)).is_err());
        // Truncated header.
        assert!(read_frame(&mut std::io::Cursor::new(&buf[..6])).is_err());
        // Oversized length prefix.
        let mut oversized = buf.clone();
        oversized[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_frame(&mut std::io::Cursor::new(&oversized)).is_err());
    }

    #[test]
    fn welcome_responses_round_trip() {
        let bytes = encode_response(&Response::Welcome { version: WIRE_VERSION });
        match decode_response(&bytes).expect("round-trips") {
            Response::Welcome { version } => assert_eq!(version, WIRE_VERSION),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    /// The frame-budget reader cuts off a trickling (slow-loris) peer:
    /// bytes arriving one at a time never finish a frame inside the
    /// budget, and the read fails with `TimedOut` instead of pinning the
    /// caller forever.
    #[test]
    fn frame_budget_cuts_off_a_trickling_reader() {
        struct Trickle {
            bytes: Vec<u8>,
            pos: usize,
            delay: Duration,
        }
        impl std::io::Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.pos >= self.bytes.len() || buf.is_empty() {
                    return Ok(0);
                }
                std::thread::sleep(self.delay);
                buf[0] = self.bytes[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let payload = encode_request(&Request::Poll { job: 1 });
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).expect("write");
        let mut trickle =
            Trickle { bytes: framed.clone(), pos: 0, delay: Duration::from_millis(8) };
        let err = read_frame_deadline(&mut trickle, Some(Duration::from_millis(20)))
            .expect_err("a trickling frame must time out");
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        // The same bytes read fine when they arrive inside the budget.
        let mut quick = Trickle { bytes: framed, pos: 0, delay: Duration::from_millis(0) };
        let read = read_frame_deadline(&mut quick, Some(Duration::from_secs(5)))
            .expect("fast frames pass");
        assert_eq!(read, Some(payload));
    }

    #[test]
    fn qasm_submitted_responses_round_trip() {
        let report = ssync_qasm::ParseReport {
            measurements_stripped: 3,
            resets_stripped: 1,
            conditionals_stripped: 2,
            barriers: 4,
            gates_inlined: 7,
        };
        let bytes = encode_response(&Response::QasmSubmitted { job: 11, report, trace_id: 77 });
        match decode_response(&bytes).expect("round-trips") {
            Response::QasmSubmitted { job, report: decoded, trace_id } => {
                assert_eq!(job, 11);
                assert_eq!(decoded, report);
                assert_eq!(trace_id, 77);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        // A pre-v5 daemon's payload ends at the report fields: dropping
        // the appended trace id must still decode, with the id zeroed.
        let truncated = &bytes[..bytes.len() - 8];
        match decode_response(truncated).expect("v2-length payload decodes") {
            Response::QasmSubmitted { job, trace_id, .. } => {
                assert_eq!(job, 11);
                assert_eq!(trace_id, 0);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    /// `Submitted` grew a trace id in v5; a pre-v5 payload (ending at
    /// `job`) decodes with the id zeroed — the "peer predates tracing"
    /// sentinel.
    #[test]
    fn submitted_responses_round_trip_and_accept_v4_length() {
        let bytes = encode_response(&Response::Submitted { job: 5, trace_id: 42 });
        match decode_response(&bytes).expect("round-trips") {
            Response::Submitted { job, trace_id } => {
                assert_eq!(job, 5);
                assert_eq!(trace_id, 42);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let truncated = &bytes[..bytes.len() - 8];
        match decode_response(truncated).expect("v4-length payload decodes") {
            Response::Submitted { job, trace_id } => {
                assert_eq!(job, 5);
                assert_eq!(trace_id, 0);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn stats_text_round_trips() {
        let text = "# HELP ssync_jobs_submitted …\nssync_jobs_submitted 3\n".to_string();
        let bytes = encode_response(&Response::StatsText { text: text.clone() });
        match decode_response(&bytes).expect("round-trips") {
            Response::StatsText { text: decoded } => assert_eq!(decoded, text),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    /// Frames stamped with every protocol version back to v1 are
    /// accepted: the v6 tag set is a strict superset of each
    /// predecessor's, so a v6 daemon understands every older peer.
    #[test]
    fn all_supported_versions_are_accepted() {
        let payload = encode_request(&Request::GetTrace { trace_id: 12 });
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).expect("write");
        for version in MIN_WIRE_VERSION..=WIRE_VERSION {
            let mut stamped = buf.clone();
            stamped[4..8].copy_from_slice(&version.to_le_bytes());
            let read = read_frame(&mut std::io::Cursor::new(&stamped)).expect("supported version");
            assert_eq!(read, Some(payload.clone()), "version {version}");
        }
    }

    /// `TraceDetail` round-trips, and — the v6 truncation-fuzz contract —
    /// cutting its payload at ANY interior length fails cleanly with a
    /// codec error: the new tag never panics and never decodes garbage.
    #[test]
    fn trace_detail_round_trips_and_rejects_every_truncation() {
        let span_jsonl = r#"{"trace_id":"000000000000002a","total_us":1234}"#.to_string();
        let recorder_jsonl =
            "{\"events\":2}\n{\"event\":\"layer_opened\",\"layer\":0}\n".to_string();
        let response = Response::TraceDetail {
            trace_id: 42,
            span_jsonl: span_jsonl.clone(),
            recorder_jsonl: recorder_jsonl.clone(),
        };
        let bytes = encode_response(&response);
        match decode_response(&bytes).expect("round-trips") {
            Response::TraceDetail { trace_id, span_jsonl: s, recorder_jsonl: r } => {
                assert_eq!(trace_id, 42);
                assert_eq!(s, span_jsonl);
                assert_eq!(r, recorder_jsonl);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // Unlike `Metrics` (which has version-boundary cut points), a
        // `TraceDetail` payload has no valid prefix: every cut must be
        // rejected, never panic.
        for cut in 0..bytes.len() {
            assert!(decode_response(&bytes[..cut]).is_err(), "cut {cut} should be rejected");
        }
        // A recorder-off daemon sends the stream empty, not absent.
        let off = encode_response(&Response::TraceDetail {
            trace_id: 7,
            span_jsonl: span_jsonl.clone(),
            recorder_jsonl: String::new(),
        });
        match decode_response(&off).expect("empty stream decodes") {
            Response::TraceDetail { recorder_jsonl, .. } => assert!(recorder_jsonl.is_empty()),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    /// Same fuzz for the new request tag: `GetTrace` is a tag byte plus
    /// a u64, and every shorter prefix errors cleanly.
    #[test]
    fn get_trace_requests_reject_every_truncation() {
        let bytes = encode_request(&Request::GetTrace { trace_id: u64::MAX });
        for cut in 0..bytes.len() {
            assert!(decode_request(&bytes[..cut]).is_err(), "cut {cut} should be rejected");
        }
        // ... and trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_request(&padded).is_err());
    }

    #[test]
    fn metrics_responses_round_trip() {
        let metrics = ServiceMetrics {
            jobs_submitted: 10,
            jobs_completed: 9,
            jobs_coalesced: 2,
            jobs_near_duplicate: 3,
            jobs_deadline_expired: 1,
            submitted_by_priority: [1, 5, 4],
            queue_depth: 1,
            rejected_overloaded: 7,
            rejected_unauthorized: 2,
            conns_timed_out: 3,
            janitor_gc_runs: 11,
            candidates_scored: 4242,
            score_shards_spawned: 99,
            score_cache_shard_hits: 1717,
            traces_recorded: 88,
            slow_requests: 6,
            cache: crate::cache::CacheStats {
                hits: 4,
                misses: 6,
                entries: 5,
                bytes: 12345,
                evictions: 1,
                persist_hits: 1,
                persist_stores: 5,
                persist_gc_deleted: 2,
            },
            workers: vec![
                WorkerMetrics { executed: 5, stolen: 1 },
                WorkerMetrics { executed: 4, stolen: 0 },
            ],
            uptime: Duration::from_millis(1234),
        };
        let bytes = encode_response(&Response::Metrics(metrics.clone()));
        match decode_response(&bytes).expect("round-trips") {
            Response::Metrics(decoded) => assert_eq!(metrics, decoded),
            other => panic!("wrong variant: {other:?}"),
        }

        // A v4 peer's payload ends at the scoring counters: dropping the
        // v5 tail (two appended u64s) must still decode, with the
        // tracing counters zeroed but the scoring counters intact.
        let v4_length = &bytes[..bytes.len() - 16];
        match decode_response(v4_length).expect("v4-length payload decodes") {
            Response::Metrics(decoded) => {
                assert_eq!(decoded.traces_recorded, 0);
                assert_eq!(decoded.slow_requests, 0);
                assert_eq!(decoded.candidates_scored, metrics.candidates_scored);
                assert_eq!(decoded.score_cache_shard_hits, metrics.score_cache_shard_hits);
                assert_eq!(decoded.uptime, metrics.uptime);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        // A v1–v3 peer's payload ends at `uptime`: dropping both tails
        // (five appended u64s) must still decode, with the scoring AND
        // tracing counters zeroed — the backward-compatibility contract.
        let truncated = &bytes[..bytes.len() - 40];
        match decode_response(truncated).expect("v3-length payload decodes") {
            Response::Metrics(decoded) => {
                assert_eq!(decoded.candidates_scored, 0);
                assert_eq!(decoded.score_shards_spawned, 0);
                assert_eq!(decoded.score_cache_shard_hits, 0);
                assert_eq!(decoded.traces_recorded, 0);
                assert_eq!(decoded.slow_requests, 0);
                assert_eq!(decoded.jobs_submitted, metrics.jobs_submitted);
                assert_eq!(decoded.uptime, metrics.uptime);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        // Truncation fuzz: cutting the payload at ANY length must either
        // decode (at a version boundary) or fail cleanly with a codec
        // error — never panic and never hand back garbage trailing
        // state. The only valid cut points are the v3, v4 and v5 ends.
        let valid = [bytes.len(), bytes.len() - 16, bytes.len() - 40];
        for cut in 0..bytes.len() {
            let result = decode_response(&bytes[..cut]);
            if valid.contains(&cut) {
                assert!(result.is_ok(), "cut {cut} should decode");
            } else {
                assert!(result.is_err(), "cut {cut} should be rejected");
            }
        }
    }
}
