//! The `ssync-serviced` server loop: drives a [`CompileService`] from
//! [`wire`](crate::wire) frames.
//!
//! Three transports, same conversation:
//!
//! * **stdio** ([`serve_stdio`]) — one session over the process's
//!   stdin/stdout, for a supervisor that spawns the daemon as a child
//!   (the `examples/remote_compile.rs` pattern). The daemon exits on EOF
//!   or an explicit `Shutdown`.
//! * **Unix domain socket** ([`serve_unix`]) — a listener accepting any
//!   number of concurrent connections, one handler thread each, all
//!   sharing the one service (and therefore its registry, cache and
//!   worker pool). A `Shutdown` from any connection stops the daemon.
//! * **TCP** ([`serve_tcp`]) — the same thread-per-connection loop over a
//!   [`std::net::TcpListener`], hardened for untrusted networks by a
//!   [`FrontConfig`]: a shared-token `Hello` handshake, per-read and
//!   whole-frame timeouts, and **admission control**.
//!
//! ## Admission control and load shedding
//!
//! A hardened front-end must fail *predictably* under overload instead of
//! queueing unboundedly. [`FrontConfig`] draws three lines, each checked
//! at submission time (never mid-flight):
//!
//! * `max_inflight_per_conn` — outstanding (undelivered) jobs one
//!   connection may hold;
//! * `max_inflight_per_tenant` — the same bound per [`TenantId`], summed
//!   across every connection on the listener;
//! * `queue_watermark` — a global queue-depth ceiling, scaled per
//!   priority by [`Priority::admission_threshold`] so `Batch` work sheds
//!   at half the watermark, `Normal` at three quarters and `High` only at
//!   the full mark: bulk traffic degrades first, interactive traffic
//!   last.
//!
//! A shed request is answered with
//! `CompileFailed(CompileError::Overloaded { retry_after_ms })` — the
//! request never entered a queue, and the hint tells a well-behaved
//! client (see `ServiceClient::submit_with_backoff`) when to retry.
//!
//! ## Drain
//!
//! A `Shutdown` request flips the listener into **drain** mode: the
//! accept loop stops taking connections, every later submission on a
//! surviving connection is `Rejected`, in-flight jobs run to completion
//! and their results remain collectable until each peer disconnects.
//! [`serve_tcp`] returns once the last handler exits, so the daemon can
//! flush a final metrics snapshot before the process ends.
//!
//! The front-end is otherwise a thin adapter: every `Submit` becomes a
//! [`CompileService::submit`] and the returned [`JobHandle`] is parked in
//! a per-connection table keyed by a per-connection job id. `Wait` blocks
//! only the requesting connection's thread — the pool keeps draining
//! other work meanwhile.

use crate::job::{JobHandle, Priority, TenantId};
use crate::pool::CompileService;
use crate::telemetry::{render_text, Stage};
use crate::wire::{
    decode_request, encode_response, read_frame_deadline, write_frame, RemoteQasmRequest,
    RemoteRequest, Request, Response, WIRE_VERSION,
};
use ssync_circuit::Circuit;
use ssync_core::CompileError;
use ssync_telemetry::Span;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Hardening knobs for a network-facing listener. The default
/// configuration is fully permissive (no auth, no timeouts, no caps) —
/// exactly the historical stdio/Unix-socket behaviour, which serves
/// trusted supervisors on the same machine.
#[derive(Debug, Clone)]
pub struct FrontConfig {
    /// Shared secret a TCP peer must present in a `Hello` frame before
    /// any other request. `None` disables the handshake requirement
    /// (a `Hello` is then still answered with `Welcome`, so clients can
    /// probe the protocol version).
    pub auth_token: Option<String>,
    /// Per-read socket timeout ([`TcpStream::set_read_timeout`]): an
    /// idle or half-open peer releases its handler thread after this
    /// long. `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Whole-frame time budget (see
    /// [`read_frame_deadline`]): once a
    /// frame's first byte arrives, the rest must arrive within the
    /// budget. This is the slow-loris defence — a per-read timeout alone
    /// resets on every trickled byte.
    pub frame_budget: Option<Duration>,
    /// Maximum outstanding (submitted, not yet delivered) jobs per
    /// connection.
    pub max_inflight_per_conn: Option<usize>,
    /// Maximum outstanding jobs per tenant, summed across all of the
    /// listener's connections.
    pub max_inflight_per_tenant: Option<usize>,
    /// Queue-depth watermark for load shedding, scaled per priority by
    /// [`Priority::admission_threshold`].
    pub queue_watermark: Option<usize>,
    /// The advisory back-off carried inside
    /// [`CompileError::Overloaded`] rejections, in milliseconds.
    pub retry_after_ms: u64,
}

impl Default for FrontConfig {
    fn default() -> Self {
        FrontConfig {
            auth_token: None,
            read_timeout: None,
            frame_budget: None,
            max_inflight_per_conn: None,
            max_inflight_per_tenant: None,
            queue_watermark: None,
            retry_after_ms: 50,
        }
    }
}

/// Listener-wide admission state shared by every connection: the config,
/// the cross-connection per-tenant in-flight counts, and the drain flag.
struct Gate {
    config: FrontConfig,
    tenant_inflight: Mutex<HashMap<TenantId, usize>>,
    draining: AtomicBool,
}

impl Gate {
    fn new(config: FrontConfig) -> Arc<Self> {
        Arc::new(Gate {
            config,
            tenant_inflight: Mutex::new(HashMap::new()),
            draining: AtomicBool::new(false),
        })
    }

    fn tenant_inflight(&self, tenant: TenantId) -> usize {
        self.tenant_inflight.lock().expect("gate lock").get(&tenant).copied().unwrap_or(0)
    }

    fn acquire_tenant(&self, tenant: TenantId) {
        *self.tenant_inflight.lock().expect("gate lock").entry(tenant).or_insert(0) += 1;
    }

    fn release_tenant(&self, tenant: TenantId) {
        let mut tenants = self.tenant_inflight.lock().expect("gate lock");
        if let Some(count) = tenants.get_mut(&tenant) {
            *count -= 1;
            if *count == 0 {
                tenants.remove(&tenant);
            }
        }
    }
}

/// What the session loop should do after writing a response.
enum Control {
    /// Keep reading frames.
    Continue,
    /// The peer asked the daemon to shut down.
    Shutdown,
    /// Close this connection (auth failure) without stopping the daemon.
    Close,
}

/// Per-connection state: the handles of every job this peer submitted
/// (with the tenant each was attributed to, for gate release, and its
/// trace span, for the delivery event) and whether the peer has
/// authenticated.
struct Session {
    gate: Arc<Gate>,
    jobs: HashMap<u64, (JobHandle, TenantId, Span)>,
    next_id: u64,
    authed: bool,
    /// The span of a job whose terminal result the response being
    /// written delivers; the session loop records the write as a
    /// `delivery` event on it after the frame goes out.
    delivered: Option<Span>,
}

impl Session {
    fn new(gate: Arc<Gate>) -> Self {
        let authed = gate.config.auth_token.is_none();
        Session { gate, jobs: HashMap::new(), next_id: 0, authed, delivered: None }
    }

    fn submit(&mut self, service: &CompileService, remote: RemoteRequest) -> Response {
        let RemoteRequest { device, circuit, compiler, config, priority, tenant } = remote;
        let span = service.telemetry().begin_trace();
        self.submit_circuit(
            service, &device, circuit, compiler, config, priority, tenant, None, span,
        )
    }

    /// The wire-v2 ingestion path: parse the QASM source server-side,
    /// then submit the lowered circuit exactly like `Submit`. Parse and
    /// lowering failures come back as `Rejected` carrying the
    /// `line:col` diagnostic, so the client sees the same message a
    /// local `ssync_qasm::parse` would produce; acceptance answers with
    /// `QasmSubmitted`, which carries the lowering's `ParseReport` so
    /// the caller learns what was stripped.
    fn submit_qasm(&mut self, service: &CompileService, remote: RemoteQasmRequest) -> Response {
        let RemoteQasmRequest { device, source, compiler, config, priority, tenant, deadline_us } =
            remote;
        // The trace starts *before* the parse so the parse stage lands
        // on the same timeline as queueing and compiling.
        let span = service.telemetry().begin_trace();
        let parse_started = Instant::now();
        let parsed = match ssync_qasm::parse(&source) {
            Ok(out) => out,
            Err(e) => return Response::Rejected { reason: format!("qasm parse error: {e}") },
        };
        let parse_time = parse_started.elapsed();
        service.telemetry().span_record(&span, "parse", parse_time);
        service.telemetry().record(Stage::Parse, priority, compiler, parse_time);
        match self.submit_circuit(
            service,
            &device,
            parsed.circuit,
            compiler,
            config,
            priority,
            tenant,
            deadline_us,
            span,
        ) {
            Response::Submitted { job, trace_id } => {
                Response::QasmSubmitted { job, report: parsed.report, trace_id }
            }
            other => other,
        }
    }

    /// Checks the admission gate; `Some(response)` means the request is
    /// refused before touching the pool. Draining refusals are permanent
    /// (`Rejected`), capacity refusals are transient (`Overloaded` with a
    /// retry hint).
    fn admit(
        &self,
        service: &CompileService,
        priority: Priority,
        tenant: TenantId,
    ) -> Option<Response> {
        if self.gate.draining.load(Ordering::SeqCst) {
            return Some(Response::Rejected {
                reason: "service is draining and not accepting new work".into(),
            });
        }
        let config = &self.gate.config;
        let conn_full = config.max_inflight_per_conn.is_some_and(|cap| self.jobs.len() >= cap);
        let tenant_full = config
            .max_inflight_per_tenant
            .is_some_and(|cap| self.gate.tenant_inflight(tenant) >= cap);
        let queue_full = config
            .queue_watermark
            .is_some_and(|mark| service.queue_depth() >= priority.admission_threshold(mark));
        if conn_full || tenant_full || queue_full {
            service.note_rejected_overloaded();
            return Some(Response::CompileFailed(CompileError::Overloaded {
                retry_after_ms: config.retry_after_ms,
            }));
        }
        None
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_circuit(
        &mut self,
        service: &CompileService,
        device: &str,
        circuit: Circuit,
        compiler: ssync_baselines::CompilerKind,
        config: ssync_core::CompilerConfig,
        priority: crate::job::Priority,
        tenant: crate::job::TenantId,
        deadline_us: Option<u64>,
        span: Span,
    ) -> Response {
        if let Some(refusal) = self.admit(service, priority, tenant) {
            return refusal;
        }
        let Some(device) = service.registry().get_or_build_named(device, config.weights) else {
            return Response::Rejected { reason: format!("unknown device '{device}'") };
        };
        let mut request =
            crate::job::CompileRequest::new(device, Arc::new(circuit), compiler, config)
                .with_priority(priority)
                .with_tenant(tenant);
        request.deadline_us = deadline_us;
        let trace_id = span.trace_id();
        let handle = service.submit_with_span(request, span.clone(), None);
        let job = self.next_id;
        self.next_id += 1;
        self.gate.acquire_tenant(tenant);
        self.jobs.insert(job, (handle, tenant, span));
        Response::Submitted { job, trace_id }
    }

    /// Drops a delivered job id, returns its tenant's in-flight slot,
    /// and hands back the job's span so the caller can stamp the
    /// delivery event on it.
    fn finish(&mut self, job: u64) -> Option<Span> {
        let (_, tenant, span) = self.jobs.remove(&job)?;
        self.gate.release_tenant(tenant);
        Some(span)
    }

    fn result_response(result: crate::job::JobResult) -> Response {
        match result {
            Ok(outcome) => Response::Outcome((*outcome).clone()),
            Err(error) => Response::CompileFailed(error),
        }
    }

    /// Handles one request; the control value says whether to keep
    /// serving, shut the daemon down, or close just this connection.
    ///
    /// A job id is *consumed* by the response that delivers its terminal
    /// result (`Wait`, or a `Poll` that observes completion): the handle —
    /// and the `Arc<CompileOutcome>` it pins — is dropped immediately, so
    /// a connection submitting millions of jobs holds memory proportional
    /// to its *outstanding* jobs, not its lifetime total. A later
    /// `Poll`/`Wait` on a consumed id is `Rejected`.
    fn handle(&mut self, service: &CompileService, request: Request) -> (Response, Control) {
        if !self.authed && !matches!(request, Request::Hello { .. }) {
            service.note_rejected_unauthorized();
            return (
                Response::Rejected {
                    reason: "authentication required: send Hello with the auth token first".into(),
                },
                Control::Close,
            );
        }
        match request {
            Request::Hello { token } => match &self.gate.config.auth_token {
                Some(expected) if *expected != token => {
                    service.note_rejected_unauthorized();
                    (Response::Rejected { reason: "bad auth token".into() }, Control::Close)
                }
                _ => {
                    self.authed = true;
                    (Response::Welcome { version: WIRE_VERSION }, Control::Continue)
                }
            },
            Request::Submit(remote) => (self.submit(service, *remote), Control::Continue),
            Request::SubmitQasm(remote) => (self.submit_qasm(service, *remote), Control::Continue),
            Request::Poll { job } => match self.jobs.get(&job) {
                Some((handle, _tenant, _span)) => match handle.try_poll() {
                    Some(result) => {
                        self.delivered = self.finish(job);
                        (Self::result_response(result), Control::Continue)
                    }
                    None => (Response::Pending, Control::Continue),
                },
                None => (
                    Response::Rejected { reason: format!("unknown job id {job}") },
                    Control::Continue,
                ),
            },
            Request::Wait { job } => match self.jobs.remove(&job) {
                Some((handle, tenant, span)) => {
                    self.gate.release_tenant(tenant);
                    self.delivered = Some(span);
                    (Self::result_response(handle.wait()), Control::Continue)
                }
                None => (
                    Response::Rejected { reason: format!("unknown job id {job}") },
                    Control::Continue,
                ),
            },
            Request::Metrics => (Response::Metrics(service.metrics()), Control::Continue),
            Request::GetStats => (
                Response::StatsText {
                    text: render_text(&service.metrics(), &service.telemetry().snapshot()),
                },
                Control::Continue,
            ),
            Request::GetTrace { trace_id } => {
                // The journal is a bounded ring, so "unknown" covers both
                // never-assigned ids and traces old enough to have been
                // evicted — the reason says which bound applies.
                match service.telemetry().trace_detail(trace_id) {
                    Some((record, recording)) => (
                        Response::TraceDetail {
                            trace_id,
                            span_jsonl: record.to_jsonl(),
                            recorder_jsonl: recording
                                .map(|r| r.to_jsonl_lines())
                                .unwrap_or_default(),
                        },
                        Control::Continue,
                    ),
                    None => (
                        Response::Rejected {
                            reason: format!(
                                "trace {trace_id} is not in the journal (never assigned, or \
                                 evicted by the journal cap)"
                            ),
                        },
                        Control::Continue,
                    ),
                }
            }
            Request::Shutdown => {
                // Flip to draining *before* the acknowledgement is
                // written: a peer that has seen `ShuttingDown` must never
                // observe a subsequent submit being admitted.
                self.gate.draining.store(true, Ordering::SeqCst);
                (Response::ShuttingDown, Control::Shutdown)
            }
        }
    }
}

impl Drop for Session {
    /// A connection that vanishes with jobs outstanding must not leak its
    /// tenants' in-flight slots — otherwise a flapping client would
    /// ratchet its tenant towards a permanent `Overloaded`.
    fn drop(&mut self) {
        for (_, (_, tenant, _span)) in self.jobs.drain() {
            self.gate.release_tenant(tenant);
        }
    }
}

/// The session loop every transport funnels into: read a frame, decode,
/// handle, respond — under the gate's frame budget. Returns `Ok(true)` if
/// the peer asked the daemon to shut down.
fn serve_session(
    service: &CompileService,
    gate: &Arc<Gate>,
    reader: &mut impl Read,
    writer: &mut impl Write,
) -> std::io::Result<bool> {
    let mut session = Session::new(Arc::clone(gate));
    while let Some(payload) = read_frame_deadline(reader, gate.config.frame_budget)? {
        let request = decode_request(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let (response, control) = session.handle(service, request);
        let write_started = Instant::now();
        write_frame(writer, &encode_response(&response))?;
        // A terminal result just went out: stamp the serialisation +
        // write as the trace's delivery event. The span is already
        // finished (the end-to-end histogram is unaffected); the journal
        // holds it live, so the event shows up in later trace reads.
        if let Some(span) = session.delivered.take() {
            service.telemetry().span_record(&span, "delivery", write_started.elapsed());
        }
        match control {
            Control::Continue => {}
            Control::Shutdown => return Ok(true),
            Control::Close => return Ok(false),
        }
    }
    Ok(false)
}

/// Runs one session over an arbitrary byte stream pair until EOF, a
/// `Shutdown` request, or an I/O error, with the permissive
/// [`FrontConfig::default`] (no auth, no caps, no timeouts). Returns
/// `true` if the peer asked the daemon to shut down.
///
/// # Errors
///
/// Propagates I/O failures; protocol violations (bad magic, undecodable
/// payloads) surface as `InvalidData`.
pub fn serve_connection(
    service: &CompileService,
    reader: &mut impl Read,
    writer: &mut impl Write,
) -> std::io::Result<bool> {
    serve_session(service, &Gate::new(FrontConfig::default()), reader, writer)
}

/// Serves one session over this process's stdin/stdout (the child-process
/// transport). Returns when the peer disconnects or sends `Shutdown`.
///
/// # Errors
///
/// Propagates I/O and protocol failures from [`serve_connection`].
pub fn serve_stdio(service: &CompileService) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut reader = stdin.lock();
    let mut writer = stdout.lock();
    serve_connection(service, &mut reader, &mut writer)?;
    Ok(())
}

/// Joins every finished handler so a long-lived daemon doesn't retain one
/// `JoinHandle` per connection it ever served. Joining an `is_finished()`
/// thread cannot block.
fn reap(handlers: &mut Vec<std::thread::JoinHandle<()>>) {
    let mut still_running = Vec::new();
    for handler in handlers.drain(..) {
        if handler.is_finished() {
            let _ = handler.join();
        } else {
            still_running.push(handler);
        }
    }
    *handlers = still_running;
}

/// Binds `path` (removing a stale socket file first) and serves
/// connections until some peer sends `Shutdown`. Each connection gets a
/// handler thread; all share `service`.
///
/// # Errors
///
/// Propagates bind/accept failures. Per-connection I/O errors terminate
/// only that connection.
#[cfg(unix)]
pub fn serve_unix(service: &Arc<CompileService>, path: &Path) -> std::io::Result<()> {
    use std::os::unix::net::{UnixListener, UnixStream};

    let _ = std::fs::remove_file(path); // stale socket from a dead daemon
    let listener = UnixListener::bind(path)?;
    let gate = Gate::new(FrontConfig::default());
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        let (stream, _addr) = listener.accept()?;
        if shutdown.load(Ordering::SeqCst) {
            break; // the wake-up connection from a shutting-down handler
        }
        reap(&mut handlers);
        let service = Arc::clone(service);
        let gate = Arc::clone(&gate);
        let shutdown = Arc::clone(&shutdown);
        let wake_path = path.to_path_buf();
        handlers.push(std::thread::spawn(move || {
            let mut reader = match stream.try_clone() {
                Ok(reader) => reader,
                Err(_) => return,
            };
            let mut writer = stream;
            if serve_session(&service, &gate, &mut reader, &mut writer).unwrap_or(false) {
                gate.draining.store(true, Ordering::SeqCst);
                shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it observes the flag.
                let _ = UnixStream::connect(&wake_path);
            }
        }));
    }
    for handler in handlers {
        let _ = handler.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Classifies the I/O errors a per-read socket timeout produces (the
/// kind is platform-dependent) plus the frame-budget cutoff.
fn is_timeout(error: &std::io::Error) -> bool {
    matches!(error.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Serves connections from an already-bound [`TcpListener`] until some
/// authenticated peer sends `Shutdown`, applying `config`'s auth,
/// timeout and admission rules to every connection. Thread-per-connection
/// like [`serve_unix`]; all handlers share `service` and one admission
/// admission gate, so per-tenant caps hold across connections.
///
/// On `Shutdown` the listener **drains**: no new connections are
/// accepted, later submissions on surviving connections are `Rejected`,
/// in-flight jobs finish and stay collectable, and the call returns once
/// every handler (and therefore every peer) is done — the caller then
/// owns the final metrics flush.
///
/// Bind with port `0` to let the OS pick: `listener.local_addr()` (taken
/// before calling, or via the daemon's `--port-file`) is how peers find
/// the port.
///
/// # Errors
///
/// Propagates accept failures. Per-connection I/O errors (including
/// timeouts, which increment the `conns_timed_out` counter) terminate
/// only that connection.
pub fn serve_tcp(
    service: &Arc<CompileService>,
    listener: TcpListener,
    config: FrontConfig,
) -> std::io::Result<()> {
    let local = listener.local_addr()?;
    let gate = Gate::new(config);
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        let (stream, _peer) = listener.accept()?;
        if shutdown.load(Ordering::SeqCst) {
            break; // the wake-up connection from a shutting-down handler
        }
        reap(&mut handlers);
        let service = Arc::clone(service);
        let gate = Arc::clone(&gate);
        let shutdown = Arc::clone(&shutdown);
        handlers.push(std::thread::spawn(move || {
            let _ = stream.set_nodelay(true); // request/response protocol
            if gate.config.read_timeout.is_some() {
                let _ = stream.set_read_timeout(gate.config.read_timeout);
            }
            let mut reader = match stream.try_clone() {
                Ok(reader) => reader,
                Err(_) => return,
            };
            let mut writer = stream;
            match serve_session(&service, &gate, &mut reader, &mut writer) {
                Ok(true) => {
                    // Drain: refuse new work first, then stop accepting.
                    gate.draining.store(true, Ordering::SeqCst);
                    shutdown.store(true, Ordering::SeqCst);
                    let _ = TcpStream::connect(local);
                }
                Ok(false) => {}
                Err(e) if is_timeout(&e) => service.note_conn_timed_out(),
                Err(_) => {} // protocol violation or peer reset: drop the connection
            }
        }));
    }
    for handler in handlers {
        let _ = handler.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_response, encode_request};
    use ssync_baselines::CompilerKind;
    use ssync_circuit::generators::qft;
    use ssync_core::CompilerConfig;

    /// Runs a scripted conversation through `serve_session` with an
    /// explicit gate, using in-memory buffers.
    fn converse(service: &CompileService, gate: &Arc<Gate>, requests: &[Request]) -> Vec<Response> {
        let mut input = Vec::new();
        for request in requests {
            write_frame(&mut input, &encode_request(request)).expect("write");
        }
        let mut output = Vec::new();
        serve_session(service, gate, &mut std::io::Cursor::new(&input), &mut output)
            .expect("session runs");
        let mut cursor = std::io::Cursor::new(&output);
        let mut responses = Vec::new();
        while let Some(payload) = crate::wire::read_frame(&mut cursor).expect("frame") {
            responses.push(decode_response(&payload).expect("decode"));
        }
        responses
    }

    /// Drives a whole conversation through in-memory buffers — the same
    /// code path the daemon runs, without processes or sockets.
    #[test]
    fn a_buffered_session_submits_polls_and_waits() {
        let service = CompileService::with_workers(1);
        let config = CompilerConfig::default();
        let mut input = Vec::new();
        for request in [
            Request::Submit(Box::new(RemoteRequest::new(
                "G-2x2",
                qft(10),
                CompilerKind::SSync,
                config,
            ))),
            Request::Wait { job: 0 },
            Request::Poll { job: 0 },
            Request::Poll { job: 99 },
            Request::Metrics,
            Request::Submit(Box::new(RemoteRequest::new(
                "no-such-device",
                qft(4),
                CompilerKind::SSync,
                config,
            ))),
            Request::Shutdown,
        ] {
            write_frame(&mut input, &encode_request(&request)).expect("write");
        }

        let mut output = Vec::new();
        let asked_shutdown =
            serve_connection(&service, &mut std::io::Cursor::new(&input), &mut output)
                .expect("session runs");
        assert!(asked_shutdown);

        let mut cursor = std::io::Cursor::new(&output);
        let mut responses = Vec::new();
        while let Some(payload) = crate::wire::read_frame(&mut cursor).expect("frame") {
            responses.push(decode_response(&payload).expect("decode"));
        }
        assert_eq!(responses.len(), 7);
        assert!(matches!(responses[0], Response::Submitted { job: 0, .. }));
        let Response::Outcome(outcome) = &responses[1] else {
            panic!("wait must return the outcome, got {:?}", responses[1]);
        };
        assert_eq!(outcome.counts().two_qubit_gates, 90);
        // Wait consumed job id 0, so a later poll is rejected (the daemon
        // must not retain delivered outcomes per-connection forever).
        assert!(matches!(&responses[2], Response::Rejected { .. }), "consumed job id");
        assert!(matches!(&responses[3], Response::Rejected { .. }), "unknown job id");
        let Response::Metrics(metrics) = &responses[4] else {
            panic!("metrics response expected");
        };
        assert_eq!(metrics.jobs_submitted, 1);
        assert!(matches!(&responses[5], Response::Rejected { .. }), "unknown device");
        assert!(matches!(&responses[6], Response::ShuttingDown));
    }

    /// The v2 ingestion path through the same buffered session: QASM
    /// source in, a compiled outcome identical to the local parse +
    /// submit path out, and a parse failure surfacing as `Rejected` with
    /// the line:column diagnostic.
    #[test]
    fn a_buffered_session_ingests_qasm_source() {
        let service = CompileService::with_workers(1);
        let config = CompilerConfig::default();
        let circuit = qft(10);
        let source = ssync_qasm::export(&circuit);
        let mut input = Vec::new();
        for request in [
            Request::SubmitQasm(Box::new(RemoteQasmRequest::new(
                "G-2x2",
                source.clone(),
                CompilerKind::SSync,
                config,
            ))),
            Request::Wait { job: 0 },
            Request::SubmitQasm(Box::new(RemoteQasmRequest::new(
                "G-2x2",
                "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n",
                CompilerKind::SSync,
                config,
            ))),
            Request::Shutdown,
        ] {
            write_frame(&mut input, &encode_request(&request)).expect("write");
        }

        let mut output = Vec::new();
        serve_connection(&service, &mut std::io::Cursor::new(&input), &mut output)
            .expect("session runs");
        let mut cursor = std::io::Cursor::new(&output);
        let mut responses = Vec::new();
        while let Some(payload) = crate::wire::read_frame(&mut cursor).expect("frame") {
            responses.push(decode_response(&payload).expect("decode"));
        }
        let Response::QasmSubmitted { job: 0, report, .. } = &responses[0] else {
            panic!("expected QasmSubmitted, got {:?}", responses[0]);
        };
        assert!(!report.stripped_anything(), "an exported circuit strips nothing");
        let Response::Outcome(remote) = &responses[1] else {
            panic!("wait must return the outcome, got {:?}", responses[1]);
        };
        // Identical to parsing locally and compiling in-process.
        let direct = service
            .submit(crate::CompileRequest::new(
                service.registry().get_or_build_named("G-2x2", config.weights).unwrap(),
                Arc::new(ssync_qasm::parse(&source).unwrap().circuit),
                CompilerKind::SSync,
                config,
            ))
            .wait()
            .expect("compiles");
        assert_eq!(direct.program().ops(), remote.program().ops());
        assert_eq!(direct.final_placement(), remote.final_placement());
        let Response::Rejected { reason } = &responses[2] else {
            panic!("bad qasm must be rejected, got {:?}", responses[2]);
        };
        assert!(reason.contains("qasm parse error"), "{reason}");
        assert!(reason.contains("3:1"), "diagnostic carries line:col: {reason}");
    }

    /// The auth handshake: a correct token is welcomed and unlocks the
    /// session; a wrong token (or skipping `Hello` entirely) is rejected,
    /// closes the connection, and bumps `rejected_unauthorized`.
    #[test]
    fn auth_gates_the_session() {
        let service = CompileService::with_workers(1);
        let config = CompilerConfig::default();
        let authed_gate = || {
            Gate::new(FrontConfig { auth_token: Some("sesame".into()), ..FrontConfig::default() })
        };

        // Wrong token: rejected, and the frames after it are never served.
        let responses = converse(
            &service,
            &authed_gate(),
            &[Request::Hello { token: "guess".into() }, Request::Metrics],
        );
        assert_eq!(responses.len(), 1, "connection closes after a bad token");
        assert!(matches!(&responses[0], Response::Rejected { .. }));

        // No Hello at all: same fate.
        let responses = converse(&service, &authed_gate(), &[Request::Metrics]);
        assert_eq!(responses.len(), 1, "connection closes without a handshake");
        assert!(matches!(&responses[0], Response::Rejected { .. }));
        assert_eq!(service.metrics().rejected_unauthorized, 2);

        // The right token unlocks a normal conversation.
        let responses = converse(
            &service,
            &authed_gate(),
            &[
                Request::Hello { token: "sesame".into() },
                Request::Submit(Box::new(RemoteRequest::new(
                    "G-2x2",
                    qft(8),
                    CompilerKind::SSync,
                    config,
                ))),
                Request::Wait { job: 0 },
            ],
        );
        assert!(matches!(responses[0], Response::Welcome { version: WIRE_VERSION }));
        assert!(matches!(responses[1], Response::Submitted { job: 0, .. }));
        assert!(matches!(&responses[2], Response::Outcome(_)));

        // Without a configured token, Hello still answers Welcome (a
        // version probe) and nothing is gated.
        let responses = converse(
            &service,
            &Gate::new(FrontConfig::default()),
            &[Request::Hello { token: String::new() }, Request::Metrics],
        );
        assert!(matches!(responses[0], Response::Welcome { .. }));
        assert!(matches!(&responses[1], Response::Metrics(_)));
    }

    /// The per-connection in-flight cap: the (cap+1)-th outstanding job
    /// is shed with `Overloaded`, and delivering a result frees the slot.
    #[test]
    fn per_connection_cap_sheds_and_recovers() {
        let service = CompileService::with_workers(1);
        let config = CompilerConfig::default();
        let gate = Gate::new(FrontConfig {
            max_inflight_per_conn: Some(2),
            retry_after_ms: 17,
            ..FrontConfig::default()
        });
        let submit = |n: usize| {
            Request::Submit(Box::new(RemoteRequest::new(
                "G-2x2",
                qft(6 + n),
                CompilerKind::SSync,
                config,
            )))
        };
        let responses = converse(
            &service,
            &gate,
            &[
                submit(0),
                submit(1),
                submit(2), // over the cap of 2
                Request::Wait { job: 0 },
                submit(3), // slot freed by the delivery above
            ],
        );
        assert!(matches!(responses[0], Response::Submitted { job: 0, .. }));
        assert!(matches!(responses[1], Response::Submitted { job: 1, .. }));
        let Response::CompileFailed(CompileError::Overloaded { retry_after_ms }) = &responses[2]
        else {
            panic!("over-cap submit must shed, got {:?}", responses[2]);
        };
        assert_eq!(*retry_after_ms, 17, "the configured hint travels");
        assert!(matches!(&responses[3], Response::Outcome(_)));
        assert!(matches!(responses[4], Response::Submitted { job: 2, .. }));
        assert_eq!(service.metrics().rejected_overloaded, 1);
    }

    /// The per-tenant cap: a saturated tenant is shed while a different
    /// tenant passes, and a session ending (delivered or not) releases
    /// its tenants' slots on the shared gate.
    #[test]
    fn per_tenant_cap_sheds_saturated_tenants_only() {
        let service = CompileService::with_workers(1);
        let config = CompilerConfig::default();
        let gate =
            Gate::new(FrontConfig { max_inflight_per_tenant: Some(1), ..FrontConfig::default() });
        let sweep = TenantId::from_name("sweep");
        let submit = |n: usize, tenant: TenantId| {
            Request::Submit(Box::new(
                RemoteRequest::new("G-2x2", qft(6 + n), CompilerKind::SSync, config)
                    .with_tenant(tenant),
            ))
        };
        // The cap binds within one session: sweep's second undelivered
        // job is shed while a different tenant sails through. (The count
        // is listener-wide state on the gate, so a second concurrent
        // session would see exactly the same refusal.)
        let responses = converse(
            &service,
            &gate,
            &[submit(1, sweep), submit(2, sweep), submit(3, TenantId::from_name("other"))],
        );
        assert!(matches!(responses[0], Response::Submitted { .. }));
        let Response::CompileFailed(CompileError::Overloaded { .. }) = &responses[1] else {
            panic!("saturated tenant must shed, got {:?}", responses[1]);
        };
        assert!(matches!(responses[2], Response::Submitted { .. }), "other tenants unaffected");
        // Both sessions are gone, so every slot is released.
        assert_eq!(gate.tenant_inflight(sweep), 0, "session drop releases slots");
    }

    /// Queue-watermark shedding degrades by priority: with the backlog
    /// between the Batch/Normal thresholds and the High one, Batch and
    /// Normal are shed while High is still admitted.
    #[test]
    fn watermark_sheds_batch_first_high_last() {
        let service = CompileService::with_workers(1);
        let config = CompilerConfig::default();
        // Build a stable backlog: 7 slow-ish jobs on one worker leaves a
        // queue depth of 6 or 7 (the worker may have claimed the first).
        // The largest circuit goes first so the claimed job runs for far
        // longer than the buffered conversation below takes.
        let device = service.registry().get_or_build_named("G-2x3", config.weights).unwrap();
        for n in (22..29).rev() {
            service.submit(crate::CompileRequest::new(
                Arc::clone(&device),
                Arc::new(qft(n)),
                CompilerKind::SSync,
                config,
            ));
        }
        let depth = service.queue_depth();
        assert!((6..=7).contains(&depth), "backlog holds while we converse, got {depth}");
        // Watermark 8: Batch sheds at depth >= 4, Normal at >= 6, High
        // only at >= 8 — so at depth 6..7 only High is admitted.
        let gate = Gate::new(FrontConfig { queue_watermark: Some(8), ..FrontConfig::default() });
        let submit = |priority: Priority| {
            Request::Submit(Box::new(
                RemoteRequest::new("G-2x2", qft(10), CompilerKind::SSync, config)
                    .with_priority(priority),
            ))
        };
        let responses = converse(
            &service,
            &gate,
            &[submit(Priority::Batch), submit(Priority::Normal), submit(Priority::High)],
        );
        assert!(
            matches!(&responses[0], Response::CompileFailed(CompileError::Overloaded { .. })),
            "Batch sheds first, got {:?}",
            responses[0]
        );
        assert!(
            matches!(&responses[1], Response::CompileFailed(CompileError::Overloaded { .. })),
            "Normal sheds next, got {:?}",
            responses[1]
        );
        assert!(
            matches!(responses[2], Response::Submitted { .. }),
            "High degrades last, got {:?}",
            responses[2]
        );
        assert_eq!(service.metrics().rejected_overloaded, 2);
    }

    /// The v6 trace fetch: a session submits, waits, then pulls the
    /// request's trace back over the wire. With the flight recorder on,
    /// the detail carries the recorder's event stream; an unknown id is
    /// `Rejected`.
    #[test]
    fn get_trace_returns_span_and_recorder_stream() {
        let service =
            crate::pool::CompileService::builder().workers(1).flight_recorder(true).build();
        let config = CompilerConfig::default();
        let responses = converse(
            &service,
            &Gate::new(FrontConfig::default()),
            &[
                Request::Submit(Box::new(RemoteRequest::new(
                    "G-2x2",
                    qft(10),
                    CompilerKind::SSync,
                    config,
                ))),
                Request::Wait { job: 0 },
            ],
        );
        let Response::Submitted { job: 0, trace_id } = responses[0] else {
            panic!("expected Submitted, got {:?}", responses[0]);
        };
        assert!(trace_id >= 1, "server-assigned trace ids start at 1");
        assert!(matches!(&responses[1], Response::Outcome(_)));

        // Fetch the trace in a second session: the journal is service
        // state, not connection state.
        let responses = converse(
            &service,
            &Gate::new(FrontConfig::default()),
            &[Request::GetTrace { trace_id }, Request::GetTrace { trace_id: 0 }],
        );
        let Response::TraceDetail { trace_id: got, span_jsonl, recorder_jsonl } = &responses[0]
        else {
            panic!("expected TraceDetail, got {:?}", responses[0]);
        };
        assert_eq!(*got, trace_id);
        assert!(
            span_jsonl.contains(&format!("{trace_id:016x}")),
            "span JSONL names the trace: {span_jsonl}"
        );
        assert!(span_jsonl.contains("end_to_end"), "span carries stage timings: {span_jsonl}");
        assert!(
            span_jsonl.contains("candidates_scored"),
            "span carries the scoring attributes: {span_jsonl}"
        );
        assert!(!recorder_jsonl.is_empty(), "the recorder stream travels");
        assert!(
            recorder_jsonl.lines().count() > 1,
            "header plus at least one event: {recorder_jsonl}"
        );
        let Response::Rejected { reason } = &responses[1] else {
            panic!("unknown trace must be rejected, got {:?}", responses[1]);
        };
        assert!(reason.contains("journal"), "{reason}");
    }

    /// A draining gate refuses new work with a permanent `Rejected` (not
    /// the transient `Overloaded`), while results stay collectable.
    #[test]
    fn draining_rejects_new_work_but_delivers_results() {
        let service = CompileService::with_workers(1);
        let config = CompilerConfig::default();
        let gate = Gate::new(FrontConfig::default());

        // Submit while healthy, then flip to draining mid-conversation
        // isn't expressible in one scripted buffer — use two sessions.
        let responses = converse(
            &service,
            &gate,
            &[Request::Submit(Box::new(RemoteRequest::new(
                "G-2x2",
                qft(9),
                CompilerKind::SSync,
                config,
            )))],
        );
        assert!(matches!(responses[0], Response::Submitted { .. }));

        gate.draining.store(true, Ordering::SeqCst);
        let responses = converse(
            &service,
            &gate,
            &[
                Request::Submit(Box::new(RemoteRequest::new(
                    "G-2x2",
                    qft(9),
                    CompilerKind::SSync,
                    config,
                ))),
                Request::Metrics,
            ],
        );
        let Response::Rejected { reason } = &responses[0] else {
            panic!("draining must reject, got {:?}", responses[0]);
        };
        assert!(reason.contains("draining"), "{reason}");
        assert!(matches!(&responses[1], Response::Metrics(_)), "reads still served");
    }
}
