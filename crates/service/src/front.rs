//! The `ssync-serviced` server loop: drives a [`CompileService`] from
//! [`wire`](crate::wire) frames.
//!
//! Two transports, same conversation:
//!
//! * **stdio** ([`serve_stdio`]) — one session over the process's
//!   stdin/stdout, for a supervisor that spawns the daemon as a child
//!   (the `examples/remote_compile.rs` pattern). The daemon exits on EOF
//!   or an explicit `Shutdown`.
//! * **Unix domain socket** ([`serve_unix`]) — a listener accepting any
//!   number of concurrent connections, one handler thread each, all
//!   sharing the one service (and therefore its registry, cache and
//!   worker pool). A `Shutdown` from any connection stops the daemon.
//!
//! The front-end is a thin adapter: every `Submit` becomes a
//! [`CompileService::submit`] and the returned [`JobHandle`] is parked in
//! a per-connection table keyed by a per-connection job id. `Wait` blocks
//! only the requesting connection's thread — the pool keeps draining
//! other work meanwhile.

use crate::job::JobHandle;
use crate::pool::CompileService;
use crate::wire::{
    decode_request, encode_response, read_frame, write_frame, RemoteQasmRequest, RemoteRequest,
    Request, Response,
};
use ssync_circuit::Circuit;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Per-connection state: the handles of every job this peer submitted.
#[derive(Default)]
struct Session {
    jobs: HashMap<u64, JobHandle>,
    next_id: u64,
}

impl Session {
    fn submit(&mut self, service: &CompileService, remote: RemoteRequest) -> Response {
        let RemoteRequest { device, circuit, compiler, config, priority, tenant } = remote;
        self.submit_circuit(service, &device, circuit, compiler, config, priority, tenant, None)
    }

    /// The wire-v2 ingestion path: parse the QASM source server-side,
    /// then submit the lowered circuit exactly like `Submit`. Parse and
    /// lowering failures come back as `Rejected` carrying the
    /// `line:col` diagnostic, so the client sees the same message a
    /// local `ssync_qasm::parse` would produce; acceptance answers with
    /// `QasmSubmitted`, which carries the lowering's `ParseReport` so
    /// the caller learns what was stripped.
    fn submit_qasm(&mut self, service: &CompileService, remote: RemoteQasmRequest) -> Response {
        let RemoteQasmRequest { device, source, compiler, config, priority, tenant, deadline_us } =
            remote;
        let parsed = match ssync_qasm::parse(&source) {
            Ok(out) => out,
            Err(e) => return Response::Rejected { reason: format!("qasm parse error: {e}") },
        };
        match self.submit_circuit(
            service,
            &device,
            parsed.circuit,
            compiler,
            config,
            priority,
            tenant,
            deadline_us,
        ) {
            Response::Submitted { job } => Response::QasmSubmitted { job, report: parsed.report },
            other => other,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_circuit(
        &mut self,
        service: &CompileService,
        device: &str,
        circuit: Circuit,
        compiler: ssync_baselines::CompilerKind,
        config: ssync_core::CompilerConfig,
        priority: crate::job::Priority,
        tenant: crate::job::TenantId,
        deadline_us: Option<u64>,
    ) -> Response {
        let Some(device) = service.registry().get_or_build_named(device, config.weights) else {
            return Response::Rejected { reason: format!("unknown device '{device}'") };
        };
        let mut request =
            crate::job::CompileRequest::new(device, Arc::new(circuit), compiler, config)
                .with_priority(priority)
                .with_tenant(tenant);
        request.deadline_us = deadline_us;
        let handle = service.submit(request);
        let job = self.next_id;
        self.next_id += 1;
        self.jobs.insert(job, handle);
        Response::Submitted { job }
    }

    fn result_response(result: crate::job::JobResult) -> Response {
        match result {
            Ok(outcome) => Response::Outcome((*outcome).clone()),
            Err(error) => Response::CompileFailed(error),
        }
    }

    /// Handles one request; the second value is `true` when the daemon
    /// should shut down after responding.
    ///
    /// A job id is *consumed* by the response that delivers its terminal
    /// result (`Wait`, or a `Poll` that observes completion): the handle —
    /// and the `Arc<CompileOutcome>` it pins — is dropped immediately, so
    /// a connection submitting millions of jobs holds memory proportional
    /// to its *outstanding* jobs, not its lifetime total. A later
    /// `Poll`/`Wait` on a consumed id is `Rejected`.
    fn handle(&mut self, service: &CompileService, request: Request) -> (Response, bool) {
        match request {
            Request::Submit(remote) => (self.submit(service, *remote), false),
            Request::SubmitQasm(remote) => (self.submit_qasm(service, *remote), false),
            Request::Poll { job } => match self.jobs.get(&job) {
                Some(handle) => match handle.try_poll() {
                    Some(result) => {
                        self.jobs.remove(&job);
                        (Self::result_response(result), false)
                    }
                    None => (Response::Pending, false),
                },
                None => (Response::Rejected { reason: format!("unknown job id {job}") }, false),
            },
            Request::Wait { job } => match self.jobs.remove(&job) {
                Some(handle) => (Self::result_response(handle.wait()), false),
                None => (Response::Rejected { reason: format!("unknown job id {job}") }, false),
            },
            Request::Metrics => (Response::Metrics(service.metrics()), false),
            Request::Shutdown => (Response::ShuttingDown, true),
        }
    }
}

/// Runs one session over an arbitrary byte stream pair until EOF, a
/// `Shutdown` request, or an I/O error. Returns `true` if the peer asked
/// the daemon to shut down.
///
/// # Errors
///
/// Propagates I/O failures; protocol violations (bad magic, undecodable
/// payloads) surface as `InvalidData`.
pub fn serve_connection(
    service: &CompileService,
    reader: &mut impl Read,
    writer: &mut impl Write,
) -> std::io::Result<bool> {
    let mut session = Session::default();
    while let Some(payload) = read_frame(reader)? {
        let request = decode_request(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let (response, shutdown) = session.handle(service, request);
        write_frame(writer, &encode_response(&response))?;
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Serves one session over this process's stdin/stdout (the child-process
/// transport). Returns when the peer disconnects or sends `Shutdown`.
///
/// # Errors
///
/// Propagates I/O and protocol failures from [`serve_connection`].
pub fn serve_stdio(service: &CompileService) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut reader = stdin.lock();
    let mut writer = stdout.lock();
    serve_connection(service, &mut reader, &mut writer)?;
    Ok(())
}

/// Binds `path` (removing a stale socket file first) and serves
/// connections until some peer sends `Shutdown`. Each connection gets a
/// handler thread; all share `service`.
///
/// # Errors
///
/// Propagates bind/accept failures. Per-connection I/O errors terminate
/// only that connection.
#[cfg(unix)]
pub fn serve_unix(service: &Arc<CompileService>, path: &Path) -> std::io::Result<()> {
    use std::os::unix::net::{UnixListener, UnixStream};

    let _ = std::fs::remove_file(path); // stale socket from a dead daemon
    let listener = UnixListener::bind(path)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        let (stream, _addr) = listener.accept()?;
        if shutdown.load(Ordering::SeqCst) {
            break; // the wake-up connection from a shutting-down handler
        }
        // Reap finished handlers so a long-lived daemon doesn't retain
        // one JoinHandle per connection it ever served. Joining an
        // is_finished() thread cannot block.
        let mut still_running = Vec::new();
        for handler in handlers.drain(..) {
            if handler.is_finished() {
                let _ = handler.join();
            } else {
                still_running.push(handler);
            }
        }
        handlers = still_running;
        let service = Arc::clone(service);
        let shutdown = Arc::clone(&shutdown);
        let wake_path = path.to_path_buf();
        handlers.push(std::thread::spawn(move || {
            let mut reader = match stream.try_clone() {
                Ok(reader) => reader,
                Err(_) => return,
            };
            let mut writer = stream;
            if serve_connection(&service, &mut reader, &mut writer).unwrap_or(false) {
                shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it observes the flag.
                let _ = UnixStream::connect(&wake_path);
            }
        }));
    }
    for handler in handlers {
        let _ = handler.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_response, encode_request};
    use ssync_baselines::CompilerKind;
    use ssync_circuit::generators::qft;
    use ssync_core::CompilerConfig;

    /// Drives a whole conversation through in-memory buffers — the same
    /// code path the daemon runs, without processes or sockets.
    #[test]
    fn a_buffered_session_submits_polls_and_waits() {
        let service = CompileService::with_workers(1);
        let config = CompilerConfig::default();
        let mut input = Vec::new();
        for request in [
            Request::Submit(Box::new(RemoteRequest::new(
                "G-2x2",
                qft(10),
                CompilerKind::SSync,
                config,
            ))),
            Request::Wait { job: 0 },
            Request::Poll { job: 0 },
            Request::Poll { job: 99 },
            Request::Metrics,
            Request::Submit(Box::new(RemoteRequest::new(
                "no-such-device",
                qft(4),
                CompilerKind::SSync,
                config,
            ))),
            Request::Shutdown,
        ] {
            write_frame(&mut input, &encode_request(&request)).expect("write");
        }

        let mut output = Vec::new();
        let asked_shutdown =
            serve_connection(&service, &mut std::io::Cursor::new(&input), &mut output)
                .expect("session runs");
        assert!(asked_shutdown);

        let mut cursor = std::io::Cursor::new(&output);
        let mut responses = Vec::new();
        while let Some(payload) = read_frame(&mut cursor).expect("frame") {
            responses.push(decode_response(&payload).expect("decode"));
        }
        assert_eq!(responses.len(), 7);
        assert!(matches!(responses[0], Response::Submitted { job: 0 }));
        let Response::Outcome(outcome) = &responses[1] else {
            panic!("wait must return the outcome, got {:?}", responses[1]);
        };
        assert_eq!(outcome.counts().two_qubit_gates, 90);
        // Wait consumed job id 0, so a later poll is rejected (the daemon
        // must not retain delivered outcomes per-connection forever).
        assert!(matches!(&responses[2], Response::Rejected { .. }), "consumed job id");
        assert!(matches!(&responses[3], Response::Rejected { .. }), "unknown job id");
        let Response::Metrics(metrics) = &responses[4] else {
            panic!("metrics response expected");
        };
        assert_eq!(metrics.jobs_submitted, 1);
        assert!(matches!(&responses[5], Response::Rejected { .. }), "unknown device");
        assert!(matches!(&responses[6], Response::ShuttingDown));
    }

    /// The v2 ingestion path through the same buffered session: QASM
    /// source in, a compiled outcome identical to the local parse +
    /// submit path out, and a parse failure surfacing as `Rejected` with
    /// the line:column diagnostic.
    #[test]
    fn a_buffered_session_ingests_qasm_source() {
        let service = CompileService::with_workers(1);
        let config = CompilerConfig::default();
        let circuit = qft(10);
        let source = ssync_qasm::export(&circuit);
        let mut input = Vec::new();
        for request in [
            Request::SubmitQasm(Box::new(RemoteQasmRequest::new(
                "G-2x2",
                source.clone(),
                CompilerKind::SSync,
                config,
            ))),
            Request::Wait { job: 0 },
            Request::SubmitQasm(Box::new(RemoteQasmRequest::new(
                "G-2x2",
                "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n",
                CompilerKind::SSync,
                config,
            ))),
            Request::Shutdown,
        ] {
            write_frame(&mut input, &encode_request(&request)).expect("write");
        }

        let mut output = Vec::new();
        serve_connection(&service, &mut std::io::Cursor::new(&input), &mut output)
            .expect("session runs");
        let mut cursor = std::io::Cursor::new(&output);
        let mut responses = Vec::new();
        while let Some(payload) = read_frame(&mut cursor).expect("frame") {
            responses.push(decode_response(&payload).expect("decode"));
        }
        let Response::QasmSubmitted { job: 0, report } = &responses[0] else {
            panic!("expected QasmSubmitted, got {:?}", responses[0]);
        };
        assert!(!report.stripped_anything(), "an exported circuit strips nothing");
        let Response::Outcome(remote) = &responses[1] else {
            panic!("wait must return the outcome, got {:?}", responses[1]);
        };
        // Identical to parsing locally and compiling in-process.
        let direct = service
            .submit(crate::CompileRequest::new(
                service.registry().get_or_build_named("G-2x2", config.weights).unwrap(),
                Arc::new(ssync_qasm::parse(&source).unwrap().circuit),
                CompilerKind::SSync,
                config,
            ))
            .wait()
            .expect("compiles");
        assert_eq!(direct.program().ops(), remote.program().ops());
        assert_eq!(direct.final_placement(), remote.final_placement());
        let Response::Rejected { reason } = &responses[2] else {
            panic!("bad qasm must be rejected, got {:?}", responses[2]);
        };
        assert!(reason.contains("qasm parse error"), "{reason}");
        assert!(reason.contains("3:1"), "diagnostic carries line:col: {reason}");
    }
}
