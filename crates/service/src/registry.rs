//! The device registry: named, build-once, shared [`Device`] artifacts.
//!
//! A long-lived service compiles millions of circuits against a handful of
//! machines. The registry gives each machine a durable identity: the first
//! request for a `(name, weights)` pair builds the full [`Device`]
//! artifact (slot graph, trap router, candidate index — the all-pairs
//! distance matrix stays lazy, as in `Device` itself) exactly once, every
//! later request shares the same `Arc`, and each entry carries a stable
//! content [fingerprint](crate::hash::device_fingerprint) that keys the
//! result cache.
//!
//! ```
//! use ssync_arch::WeightConfig;
//! use ssync_service::DeviceRegistry;
//! use std::sync::Arc;
//!
//! let registry = DeviceRegistry::new();
//! let weights = WeightConfig::default();
//! // First request builds the paper's G-2x3 device ...
//! let first = registry.get_or_build_named("G-2x3", weights).unwrap();
//! // ... every later request shares the same artifact.
//! let second = registry.get_or_build_named("G-2x3", weights).unwrap();
//! assert!(Arc::ptr_eq(&first, &second));
//! // Fingerprints depend on content only, so a rebuilt registry (or
//! // another process) reproduces them exactly.
//! assert_eq!(
//!     first.fingerprint(),
//!     DeviceRegistry::new().get_or_build_named("G-2x3", weights).unwrap().fingerprint(),
//! );
//! ```

use crate::hash::device_fingerprint;
use ssync_arch::{Device, QccdTopology, WeightConfig};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A registry entry: one named, immutable device plus its fingerprint.
#[derive(Debug)]
pub struct RegisteredDevice {
    name: String,
    fingerprint: u64,
    device: Arc<Device>,
}

impl RegisteredDevice {
    /// The name the device was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stable content fingerprint (topology structure + edge weights)
    /// used as the device component of cache keys.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The shared device artifact.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// A shareable handle to the device artifact.
    pub fn device_arc(&self) -> Arc<Device> {
        Arc::clone(&self.device)
    }
}

/// Keys are the registered name plus the exact weight bits: the same
/// machine under different edge weights is a different compile target
/// (the Fig. 14 ratio sweep relies on this).
type RegistryKey = (String, [u64; 3]);

fn weight_bits(w: WeightConfig) -> [u64; 3] {
    [w.inner_weight.to_bits(), w.shuttle_weight.to_bits(), w.threshold.to_bits()]
}

/// A concurrent map of named devices with build-once semantics: when many
/// threads request the same key simultaneously, exactly one builds the
/// artifact (outside the map lock) and everyone shares the result.
#[derive(Debug, Default)]
pub struct DeviceRegistry {
    entries: Mutex<HashMap<RegistryKey, Arc<OnceLock<Arc<RegisteredDevice>>>>>,
}

impl DeviceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the device registered under `(name, weights)`, building it
    /// from `topology()` first if this is the first request. The builder
    /// closure runs at most once per key, without holding the registry
    /// lock, so a slow build never blocks lookups of other devices.
    pub fn get_or_build(
        &self,
        name: &str,
        weights: WeightConfig,
        topology: impl FnOnce() -> QccdTopology,
    ) -> Arc<RegisteredDevice> {
        let cell = {
            let mut entries = self.entries.lock().expect("registry lock poisoned");
            Arc::clone(
                entries
                    .entry((name.to_string(), weight_bits(weights)))
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        Arc::clone(cell.get_or_init(|| {
            let device = Arc::new(Device::build(topology(), weights));
            let fingerprint = device_fingerprint(&device);
            Arc::new(RegisteredDevice { name: name.to_string(), fingerprint, device })
        }))
    }

    /// [`DeviceRegistry::get_or_build`] for one of the paper's named
    /// topologies (`"L-6"`, `"G-2x3"`, `"S-4"`, …); `None` for an unknown
    /// name.
    pub fn get_or_build_named(
        &self,
        name: &str,
        weights: WeightConfig,
    ) -> Option<Arc<RegisteredDevice>> {
        let topology = QccdTopology::named(name)?;
        Some(self.get_or_build(name, weights, move || topology))
    }

    /// The already-registered device under `(name, weights)`, if any.
    pub fn get(&self, name: &str, weights: WeightConfig) -> Option<Arc<RegisteredDevice>> {
        let entries = self.entries.lock().expect("registry lock poisoned");
        entries.get(&(name.to_string(), weight_bits(weights)))?.get().cloned()
    }

    /// Number of registered (built or in-flight) devices.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("registry lock poisoned").len()
    }

    /// `true` when nothing has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The registered names, sorted (one entry per `(name, weights)` key).
    pub fn names(&self) -> Vec<String> {
        let entries = self.entries.lock().expect("registry lock poisoned");
        let mut names: Vec<String> = entries.keys().map(|(n, _)| n.clone()).collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_core::CompilerConfig;

    #[test]
    fn same_key_shares_one_built_device() {
        let registry = DeviceRegistry::new();
        let weights = CompilerConfig::default().weights;
        let a = registry.get_or_build_named("G-2x3", weights).unwrap();
        let b = registry.get_or_build_named("G-2x3", weights).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must not rebuild");
        assert_eq!(registry.len(), 1);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.name(), "G-2x3");
    }

    #[test]
    fn different_weights_register_different_devices() {
        let registry = DeviceRegistry::new();
        let base = CompilerConfig::default().weights;
        let a = registry.get_or_build_named("G-2x2", base).unwrap();
        let b = registry.get_or_build_named("G-2x2", WeightConfig::with_ratio(100.0)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.names(), vec!["G-2x2".to_string(), "G-2x2".to_string()]);
    }

    #[test]
    fn fingerprints_are_stable_across_registries() {
        let weights = CompilerConfig::default().weights;
        let first = DeviceRegistry::new().get_or_build_named("S-4", weights).unwrap();
        let second = DeviceRegistry::new().get_or_build_named("S-4", weights).unwrap();
        assert_eq!(first.fingerprint(), second.fingerprint());
    }

    #[test]
    fn unknown_names_are_rejected_and_get_reads_do_not_build() {
        let registry = DeviceRegistry::new();
        let weights = CompilerConfig::default().weights;
        assert!(registry.get_or_build_named("nope", weights).is_none());
        assert!(registry.get("L-6", weights).is_none());
        assert!(registry.is_empty());
        registry.get_or_build("custom", weights, || QccdTopology::linear(3, 6));
        assert!(registry.get("custom", weights).is_some());
    }

    #[test]
    fn concurrent_lookups_build_exactly_once() {
        let registry = Arc::new(DeviceRegistry::new());
        let weights = CompilerConfig::default().weights;
        let built = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let registry = Arc::clone(&registry);
                let built = Arc::clone(&built);
                scope.spawn(move || {
                    registry.get_or_build("G-3x3", weights, || {
                        built.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        QccdTopology::grid(3, 3, 10)
                    });
                });
            }
        });
        assert_eq!(built.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert_eq!(registry.len(), 1);
    }
}
