//! Smoke tests for the `ssync-serviced` IPC front-end: spawn the real
//! daemon binary, push requests through the real client, and require the
//! results to be bit-identical to direct in-process compilation. These
//! are the tests CI's smoke job runs so the front-end cannot silently
//! rot.

use ssync_arch::{Device, QccdTopology};
use ssync_baselines::CompilerKind;
use ssync_circuit::generators::qft;
use ssync_core::{CompileOutcome, CompilerConfig};
use ssync_service::client::ServiceClient;
use ssync_service::wire::{RemoteQasmRequest, RemoteRequest};
use ssync_service::{Priority, TenantId};
use std::process::{Child, Command, Stdio};

const DAEMON: &str = env!("CARGO_BIN_EXE_ssync-serviced");

/// Spawns the daemon in stdio mode and wires a client to its pipes.
fn spawn_stdio_daemon(extra_args: &[&str]) -> (Child, ServiceClient) {
    let mut child = Command::new(DAEMON)
        .arg("--stdio")
        .args(["--workers", "2"])
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ssync-serviced");
    let writer = child.stdin.take().expect("piped stdin");
    let reader = child.stdout.take().expect("piped stdout");
    (child, ServiceClient::over(reader, writer))
}

fn assert_bit_identical(direct: &CompileOutcome, remote: &CompileOutcome, what: &str) {
    assert_eq!(direct.program().ops(), remote.program().ops(), "ops diverge: {what}");
    assert_eq!(direct.final_placement(), remote.final_placement(), "placement diverges: {what}");
    assert_eq!(direct.scheduler_stats(), remote.scheduler_stats(), "stats diverge: {what}");
    assert_eq!(
        direct.report().success_rate.to_bits(),
        remote.report().success_rate.to_bits(),
        "report diverges: {what}"
    );
    assert_eq!(
        direct.report().total_time_us.to_bits(),
        remote.report().total_time_us.to_bits(),
        "timing diverges: {what}"
    );
}

/// One request through the spawned daemon, output bit-identical to
/// `compile_on` — the ISSUE's acceptance path, exercised over real pipes
/// and a real second process.
#[test]
fn stdio_round_trip_is_bit_identical_to_direct_compile() {
    let config = CompilerConfig::default();
    let circuit = qft(10);
    let (mut child, mut client) = spawn_stdio_daemon(&[]);

    let job = client
        .submit(
            &RemoteRequest::new("G-2x2", circuit.clone(), CompilerKind::SSync, config)
                .with_priority(Priority::High)
                .with_tenant(TenantId::from_name("smoke")),
        )
        .expect("submit");
    let remote = client.wait(job).expect("wait").expect("compiles");

    let device = Device::build(QccdTopology::named("G-2x2").unwrap(), config.weights);
    let direct = CompilerKind::SSync.compile_on(&device, &circuit, &config).expect("compiles");
    assert_bit_identical(&direct, &remote, "stdio round trip");

    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.jobs_submitted, 1);
    assert_eq!(metrics.jobs_completed, 1);
    assert_eq!(metrics.submitted_at(Priority::High), 1);

    client.shutdown().expect("shutdown");
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exits cleanly after Shutdown");
}

/// Every compiler kind agrees with its direct counterpart through the
/// daemon, and poll() eventually observes completion.
#[test]
fn all_compiler_kinds_agree_over_stdio() {
    let config = CompilerConfig::default();
    let circuit = qft(8);
    let (mut child, mut client) = spawn_stdio_daemon(&[]);
    let device = Device::build(QccdTopology::named("L-4").unwrap(), config.weights);

    for kind in CompilerKind::ALL {
        let job = client
            .submit(&RemoteRequest::new("L-4", circuit.clone(), kind, config))
            .expect("submit");
        // Drive the non-blocking path at least once, then block.
        let remote = match client.poll(job).expect("poll") {
            Some(result) => result.expect("compiles"),
            None => client.wait(job).expect("wait").expect("compiles"),
        };
        let direct = kind.compile_on(&device, &circuit, &config).expect("compiles");
        assert_bit_identical(&direct, &remote, &format!("{kind:?}"));
    }

    client.shutdown().expect("shutdown");
    assert!(child.wait().expect("daemon exits").success());
}

/// The ISSUE-5 acceptance path: raw QASM source submitted over the wire
/// (v2 `SubmitQasm`) compiles in the daemon bit-identically to parsing
/// the same source locally and calling `compile_on`; a corpus file from
/// `workloads/` rides along; parse failures surface as rejections with
/// the diagnostic; and an expired deadline crosses the wire as
/// `DeadlineExceeded`.
#[test]
fn qasm_submission_is_bit_identical_to_local_parse_and_compile() {
    let config = CompilerConfig::default();
    let (mut child, mut client) = spawn_stdio_daemon(&[]);

    // An exported circuit plus a checked-in corpus file.
    let exported = ssync_qasm::export(&qft(10));
    let corpus = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../workloads/gatedefs.qasm"),
    )
    .expect("corpus file checked in");
    for (what, source) in [("exported qft", &exported), ("workloads/gatedefs.qasm", &corpus)] {
        let (job, report) = client
            .submit_qasm(
                &RemoteQasmRequest::new("G-2x3", source.clone(), CompilerKind::SSync, config)
                    .with_tenant(TenantId::from_name("qasm-smoke")),
            )
            .expect("submit_qasm");
        // The stripping report crosses the wire: the corpus file measures
        // four bits, the exported circuit strips nothing.
        if what == "workloads/gatedefs.qasm" {
            assert_eq!(report.measurements_stripped, 4, "{what}");
            assert!(report.gates_inlined > 0, "{what}");
        } else {
            assert!(!report.stripped_anything(), "{what}");
        }
        let remote = client.wait(job).expect("wait").expect("compiles");

        let circuit = ssync_qasm::parse(source).expect("parses locally").circuit;
        let device = Device::build(QccdTopology::named("G-2x3").unwrap(), config.weights);
        let direct = CompilerKind::SSync.compile_on(&device, &circuit, &config).expect("compiles");
        assert_bit_identical(&direct, &remote, what);
    }

    // A malformed program is rejected with the parser's diagnostic.
    let rejected = client.submit_qasm(&RemoteQasmRequest::new(
        "G-2x3",
        "OPENQASM 2.0;\nqreg q[2];\ncx q[0];\n",
        CompilerKind::SSync,
        config,
    ));
    match rejected {
        Err(ssync_service::client::ClientError::Rejected(reason)) => {
            assert!(reason.contains("qasm parse error"), "{reason}");
            assert!(reason.contains("takes 2 qubit arguments"), "{reason}");
        }
        other => panic!("expected a rejection, got {other:?}"),
    }

    // A pre-expired deadline crosses the wire as the typed error.
    let (job, _report) = client
        .submit_qasm(
            &RemoteQasmRequest::new("G-2x3", exported, CompilerKind::Dai, config)
                .with_deadline_us(0),
        )
        .expect("submit_qasm");
    let result = client.wait(job).expect("wait");
    assert!(
        matches!(result, Err(ssync_core::CompileError::DeadlineExceeded { deadline_us: 0 })),
        "got {result:?}"
    );
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.jobs_deadline_expired, 1);

    client.shutdown().expect("shutdown");
    assert!(child.wait().expect("daemon exits").success());
}

/// Compile errors and rejections cross the wire as themselves.
#[test]
fn errors_and_rejections_survive_the_wire() {
    let config = CompilerConfig::default();
    let (mut child, mut client) = spawn_stdio_daemon(&[]);

    // L-2 (2 traps x 22 slots = 44) cannot hold qft(44) + 1 space.
    let job = client
        .submit(&RemoteRequest::new("L-2", qft(44), CompilerKind::SSync, config))
        .expect("submit");
    let result = client.wait(job).expect("wait");
    assert!(
        matches!(result, Err(ssync_core::CompileError::DeviceTooSmall { qubits: 44, slots: 44 })),
        "got {result:?}"
    );

    let rejected =
        client.submit(&RemoteRequest::new("no-such-device", qft(4), CompilerKind::SSync, config));
    assert!(
        matches!(rejected, Err(ssync_service::client::ClientError::Rejected(_))),
        "unknown devices are rejected"
    );

    client.shutdown().expect("shutdown");
    assert!(child.wait().expect("daemon exits").success());
}

/// The Unix-domain-socket transport serves the same conversation.
#[cfg(unix)]
#[test]
fn unix_socket_transport_round_trips() {
    let socket =
        std::env::temp_dir().join(format!("ssync-serviced-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let mut child = Command::new(DAEMON)
        .args(["--socket", socket.to_str().unwrap(), "--workers", "1"])
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ssync-serviced");

    // The daemon needs a moment to bind.
    let mut client = None;
    for _ in 0..200 {
        match ServiceClient::connect_unix(&socket) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    let mut client = client.expect("daemon bound its socket within 2s");

    let config = CompilerConfig::default();
    let circuit = qft(9);
    let job = client
        .submit(&RemoteRequest::new("G-2x2", circuit.clone(), CompilerKind::SSync, config))
        .expect("submit");
    let remote = client.wait(job).expect("wait").expect("compiles");
    let device = Device::build(QccdTopology::named("G-2x2").unwrap(), config.weights);
    let direct = CompilerKind::SSync.compile_on(&device, &circuit, &config).expect("compiles");
    assert_bit_identical(&direct, &remote, "unix socket round trip");

    client.shutdown().expect("shutdown");
    assert!(child.wait().expect("daemon exits").success());
    let _ = std::fs::remove_file(&socket);
}

/// The persistent cache tier round-trips across two *processes*: a first
/// daemon writes the outcome through to disk, a second daemon (sharing
/// only the directory) serves it from the persistent tier without
/// executing any compile, bit-identically.
#[test]
fn persistent_cache_round_trips_across_two_processes() {
    let dir = std::env::temp_dir().join(format!("ssync-serviced-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_arg = dir.to_str().unwrap();
    let config = CompilerConfig::default();
    let circuit = qft(11);
    let request = RemoteRequest::new("G-2x2", circuit.clone(), CompilerKind::SSync, config);

    // Process 1 compiles and persists.
    let (mut first, mut client) = spawn_stdio_daemon(&["--cache-dir", dir_arg]);
    let job = client.submit(&request).expect("submit");
    let original = client.wait(job).expect("wait").expect("compiles");
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.cache.persist_stores, 1, "outcome written through to disk");
    assert_eq!(metrics.jobs_executed(), 1);
    client.shutdown().expect("shutdown");
    assert!(first.wait().expect("daemon exits").success());

    // Process 2 starts cold and must not recompile.
    let (mut second, mut client) = spawn_stdio_daemon(&["--cache-dir", dir_arg]);
    let job = client.submit(&request).expect("submit");
    let replayed = client.wait(job).expect("wait").expect("compiles");
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.cache.persist_hits, 1, "served from the persistent tier");
    assert_eq!(metrics.jobs_executed(), 0, "no compile ran in the second process");
    client.shutdown().expect("shutdown");
    assert!(second.wait().expect("daemon exits").success());

    assert_bit_identical(&original, &replayed, "cross-process persistence");
    let _ = std::fs::remove_dir_all(&dir);
}
