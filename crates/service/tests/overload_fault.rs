//! Fault-injection and overload tests for the hardened TCP front-end:
//! hostile peers (wrong magic, truncated frames, forged length headers,
//! bad tokens, slow-loris trickles, silent half-open connections), load
//! shedding under a queue watermark, the client's backoff contract, the
//! drain path, and two daemons sharing one persistent cache directory.
//! CI's `overload-smoke` job runs this file.

use ssync_arch::{Device, QccdTopology};
use ssync_baselines::CompilerKind;
use ssync_circuit::generators::qft;
use ssync_core::{CompileOutcome, CompilerConfig};
use ssync_service::client::{BackoffPolicy, ClientError, ServiceClient};
use ssync_service::wire::{RemoteRequest, WIRE_MAGIC, WIRE_VERSION};
use ssync_service::{front, CompileService, FrontConfig, Priority, TenantId};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const DAEMON: &str = env!("CARGO_BIN_EXE_ssync-serviced");

/// Starts an in-process hardened TCP front-end on an OS-assigned port.
/// The returned thread runs until an authenticated peer sends `Shutdown`
/// and every connection drains.
fn start_tcp_front(
    service: &Arc<CompileService>,
    config: FrontConfig,
) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let service = Arc::clone(service);
    let handle = std::thread::spawn(move || front::serve_tcp(&service, listener, config));
    (addr, handle)
}

fn assert_bit_identical(direct: &CompileOutcome, remote: &CompileOutcome, what: &str) {
    assert_eq!(direct.program().ops(), remote.program().ops(), "ops diverge: {what}");
    assert_eq!(direct.final_placement(), remote.final_placement(), "placement diverges: {what}");
    assert_eq!(
        direct.report().success_rate.to_bits(),
        remote.report().success_rate.to_bits(),
        "report diverges: {what}"
    );
}

/// A raw 12-byte frame header: attacker-controlled bytes, no client code.
fn header(magic: u32, version: u32, length: u32) -> [u8; 12] {
    let mut h = [0u8; 12];
    h[0..4].copy_from_slice(&magic.to_le_bytes());
    h[4..8].copy_from_slice(&version.to_le_bytes());
    h[8..12].copy_from_slice(&length.to_le_bytes());
    h
}

/// Reads until EOF/reset with a bounded timeout; panics if the server
/// leaves the connection open past `patience`. Returns the bytes read.
fn read_until_server_closes(stream: &mut TcpStream, patience: Duration) -> Vec<u8> {
    stream.set_read_timeout(Some(patience)).expect("set timeout");
    let mut collected = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return collected, // server closed cleanly
            Ok(n) => collected.extend_from_slice(&buf[..n]),
            // A reset is also a close; a timeout means the server is
            // still holding the connection open — the defect under test.
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => return collected,
            Err(e) => panic!("server kept a hostile connection open: {e}"),
        }
    }
}

/// Every malformed or hostile byte stream is cut off without taking the
/// daemon down, and the counters attribute each class of abuse. The
/// forged-length case is the regression test for the allocate-after-guard
/// ordering in `read_frame`: a 4 GiB length prefix must be refused from
/// the 12-byte header alone.
#[test]
fn hostile_peers_are_cut_off_and_counted() {
    let service = Arc::new(CompileService::with_workers(1));
    let (addr, server) = start_tcp_front(
        &service,
        FrontConfig {
            auth_token: Some("sesame".into()),
            read_timeout: Some(Duration::from_millis(250)),
            frame_budget: Some(Duration::from_millis(400)),
            ..FrontConfig::default()
        },
    );
    let patience = Duration::from_secs(10);

    // Wrong magic: refused at the first header.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&header(0xDEAD_BEEF, WIRE_VERSION, 4)).expect("write");
    read_until_server_closes(&mut stream, patience);

    // Forged huge length: u32::MAX (4 GiB) must be rejected before any
    // payload buffer exists — the guard runs on the decoded header, so
    // the connection dies immediately even though we sent no payload.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&header(WIRE_MAGIC, WIRE_VERSION, u32::MAX)).expect("write");
    read_until_server_closes(&mut stream, patience);

    // Truncated frame: a valid header promising 64 bytes, then EOF after
    // 10. (Shutting down our write half delivers the EOF.)
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&header(WIRE_MAGIC, WIRE_VERSION, 64)).expect("write");
    stream.write_all(&[0u8; 10]).expect("write");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    read_until_server_closes(&mut stream, patience);

    // Bad token: rejected by the handshake, connection closed.
    match ServiceClient::connect_tcp(addr, Some("wrong")) {
        Err(ClientError::Rejected(reason)) => assert!(reason.contains("token"), "{reason}"),
        other => panic!("bad token must be rejected, got {other:?}"),
    }

    // Skipping the handshake entirely: the first real request is refused
    // and the connection closed. (`connect_tcp` always greets, so this
    // peer speaks raw frames.)
    let mut stream = TcpStream::connect(addr).expect("connect");
    let metrics_req = ssync_service::wire::encode_request(&ssync_service::wire::Request::Metrics);
    let mut frame = header(WIRE_MAGIC, WIRE_VERSION, metrics_req.len() as u32).to_vec();
    frame.extend_from_slice(&metrics_req);
    stream.write_all(&frame).expect("write");
    let answer = read_until_server_closes(&mut stream, patience);
    assert!(!answer.is_empty(), "the refusal itself is answered before the close");

    // Slow-loris: one byte of a valid header every 100 ms never finishes
    // a frame inside the 400 ms budget; the server must cut us off
    // rather than pin a handler thread.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let loris = header(WIRE_MAGIC, WIRE_VERSION, 4);
    let mut cut_off = false;
    for byte in loris {
        if stream.write_all(&[byte]).is_err() {
            cut_off = true; // server already closed on us mid-trickle
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    if !cut_off {
        read_until_server_closes(&mut stream, patience);
    }

    // Half-open / silent peer: connect and say nothing; the per-read
    // idle timeout must release the handler.
    let mut stream = TcpStream::connect(addr).expect("connect");
    read_until_server_closes(&mut stream, patience);

    // The daemon survived all of it: a well-behaved authed client gets a
    // bit-identical compile, and the counters saw the abuse.
    let mut client = ServiceClient::connect_tcp(addr, Some("sesame")).expect("good token");
    let config = CompilerConfig::default();
    let circuit = qft(10);
    let job = client
        .submit(&RemoteRequest::new("G-2x2", circuit.clone(), CompilerKind::SSync, config))
        .expect("submit");
    let remote = client.wait(job).expect("wait").expect("compiles");
    let device = Device::build(QccdTopology::named("G-2x2").unwrap(), config.weights);
    let direct = CompilerKind::SSync.compile_on(&device, &circuit, &config).expect("compiles");
    assert_bit_identical(&direct, &remote, "after the abuse");

    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.rejected_unauthorized, 2, "bad token + missing handshake");
    assert!(
        metrics.conns_timed_out >= 2,
        "slow-loris and the silent peer both timed out, got {}",
        metrics.conns_timed_out
    );

    client.shutdown().expect("shutdown");
    drop(client);
    server.join().expect("server thread").expect("serve_tcp exits cleanly");
}

/// Overload shedding degrades by priority — Batch first, High last — and
/// the client's backoff loop turns a shed Batch submit into an eventual
/// success once the backlog drains. Accepted work compiles bit-identically
/// to `compile_on` even while the service is saturated.
#[test]
fn overload_sheds_batch_first_and_backoff_recovers() {
    let service = Arc::new(CompileService::with_workers(1));
    let config = CompilerConfig::default();
    // Saturate the one worker through the in-process API (which bypasses
    // front-end admission): the largest circuit goes first so the worker
    // claims a long-running job and the queue depth stays put while the
    // loopback round trips below happen. 14 submissions, 1 claimed →
    // depth 13.
    let device = service.registry().get_or_build_named("G-2x3", config.weights).unwrap();
    for n in (20..34).rev() {
        service.submit(ssync_service::CompileRequest::new(
            Arc::clone(&device),
            Arc::new(qft(n)),
            CompilerKind::SSync,
            config,
        ));
    }
    // Watermark 16: Batch sheds at depth >= 8, Normal at >= 12, High at
    // >= 16. Depth starts at 13 and decays one completed compile at a
    // time, so Batch/Normal shed and High passes for the whole window.
    let (addr, server) = start_tcp_front(
        &service,
        FrontConfig { queue_watermark: Some(16), retry_after_ms: 25, ..FrontConfig::default() },
    );
    let mut client = ServiceClient::connect_tcp(addr, None).expect("connect");
    let submit_at = |client: &mut ServiceClient, priority: Priority, n: usize| {
        client.submit(
            &RemoteRequest::new("G-2x2", qft(n), CompilerKind::SSync, config)
                .with_priority(priority)
                .with_tenant(TenantId::from_name("overload")),
        )
    };

    match submit_at(&mut client, Priority::Normal, 10) {
        Err(ClientError::Overloaded { retry_after_ms: 25 }) => {}
        other => panic!("Normal must shed under a 13-deep queue, got {other:?}"),
    }
    match submit_at(&mut client, Priority::Batch, 11) {
        Err(ClientError::Overloaded { .. }) => {}
        other => panic!("Batch must shed under a 13-deep queue, got {other:?}"),
    }
    let high = submit_at(&mut client, Priority::High, 12).expect("High degrades last");
    let remote = client.wait(high).expect("wait").expect("compiles");
    let g2x2 = Device::build(QccdTopology::named("G-2x2").unwrap(), config.weights);
    let direct = CompilerKind::SSync.compile_on(&g2x2, &qft(12), &config).expect("compiles");
    assert_bit_identical(&direct, &remote, "High-priority work under overload");

    // The backoff contract: the shed Batch request retries (never earlier
    // than the server's 25 ms hint) until the backlog drains below the
    // Batch threshold, then lands.
    let policy = BackoffPolicy::default().with_deadline(Duration::from_secs(120));
    let batch = client
        .submit_with_backoff(
            &RemoteRequest::new("G-2x2", qft(11), CompilerKind::SSync, config)
                .with_priority(Priority::Batch),
            &policy,
        )
        .expect("backoff eventually lands");
    client.wait(batch).expect("wait").expect("compiles");

    let metrics = client.metrics().expect("metrics");
    assert!(metrics.rejected_overloaded >= 3, "got {}", metrics.rejected_overloaded);

    client.shutdown().expect("shutdown");
    drop(client);
    server.join().expect("server thread").expect("serve_tcp exits cleanly");
}

/// The drain path: a `Shutdown` from one connection stops admission
/// everywhere, but jobs already in flight finish and their results stay
/// collectable until each peer disconnects; `serve_tcp` then returns.
#[test]
fn drain_finishes_inflight_work_and_refuses_new_work() {
    let service = Arc::new(CompileService::with_workers(1));
    let config = CompilerConfig::default();
    let (addr, server) = start_tcp_front(&service, FrontConfig::default());

    let mut worker_client = ServiceClient::connect_tcp(addr, None).expect("connect A");
    let job = worker_client
        .submit(&RemoteRequest::new("G-2x3", qft(18), CompilerKind::SSync, config))
        .expect("submit before drain");

    let mut admin = ServiceClient::connect_tcp(addr, None).expect("connect B");
    admin.shutdown().expect("shutdown");
    drop(admin);

    // New work on the surviving connection is refused...
    match worker_client.submit(&RemoteRequest::new("G-2x3", qft(6), CompilerKind::SSync, config)) {
        Err(ClientError::Rejected(reason)) => assert!(reason.contains("draining"), "{reason}"),
        other => panic!("a draining service must reject, got {other:?}"),
    }
    // ...but the in-flight job still delivers its result.
    let remote = worker_client.wait(job).expect("wait").expect("compiles");
    let device = Device::build(QccdTopology::named("G-2x3").unwrap(), config.weights);
    let direct = CompilerKind::SSync.compile_on(&device, &qft(18), &config).expect("compiles");
    assert_bit_identical(&direct, &remote, "in-flight work across a drain");

    drop(worker_client);
    server.join().expect("server thread").expect("serve_tcp drains cleanly");
}

/// Two live daemons sharing one `--cache-dir` concurrently: every result
/// is bit-identical to direct compilation (no torn files served), and the
/// directory ends with only whole `.outcome` files — the atomic
/// tmp+rename discipline leaves no temporaries behind. A third, cold
/// daemon then serves the whole set from disk without running a single
/// compile, which would be impossible if either writer had corrupted the
/// other's files.
#[test]
fn two_daemons_share_one_cache_dir_without_tearing() {
    let dir = std::env::temp_dir().join(format!("ssync-shared-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let dir_arg = dir.to_str().unwrap().to_string();
    let config = CompilerConfig::default();
    let sizes: Vec<usize> = (8..14).collect();

    let spawn_daemon = |dir_arg: &str| {
        let mut child = std::process::Command::new(DAEMON)
            .args(["--stdio", "--workers", "2", "--cache-dir", dir_arg])
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn ssync-serviced");
        let writer = child.stdin.take().expect("piped stdin");
        let reader = child.stdout.take().expect("piped stdout");
        (child, ServiceClient::over(reader, writer))
    };

    // Both daemons compile the same workload at the same time, racing
    // their write-throughs into the shared directory.
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let dir_arg = dir_arg.clone();
            let sizes = sizes.clone();
            std::thread::spawn(move || {
                let (mut child, mut client) = spawn_daemon(&dir_arg);
                let outcomes: Vec<CompileOutcome> = sizes
                    .iter()
                    .map(|&n| {
                        let job = client
                            .submit(&RemoteRequest::new(
                                "G-2x2",
                                qft(n),
                                CompilerKind::SSync,
                                config,
                            ))
                            .expect("submit");
                        client.wait(job).expect("wait").expect("compiles")
                    })
                    .collect();
                client.shutdown().expect("shutdown");
                assert!(child.wait().expect("daemon exits").success());
                outcomes
            })
        })
        .collect();
    let results: Vec<Vec<CompileOutcome>> =
        workers.into_iter().map(|w| w.join().expect("worker thread")).collect();

    // Bit-identical across daemons and against direct compilation.
    let device = Device::build(QccdTopology::named("G-2x2").unwrap(), config.weights);
    for (i, &n) in sizes.iter().enumerate() {
        let direct = CompilerKind::SSync.compile_on(&device, &qft(n), &config).expect("compiles");
        assert_bit_identical(&direct, &results[0][i], &format!("daemon A, qft({n})"));
        assert_bit_identical(&direct, &results[1][i], &format!("daemon B, qft({n})"));
    }

    // No torn or temporary files survive: only `.outcome` files, one per
    // distinct circuit.
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("read dir")
        .map(|e| e.expect("entry").file_name().into_string().expect("utf8 name"))
        .collect();
    for name in &entries {
        assert!(name.ends_with(".outcome"), "unexpected file in shared cache dir: {name}");
        assert!(!name.starts_with('.'), "leftover temporary in shared cache dir: {name}");
    }
    assert_eq!(entries.len(), sizes.len(), "one whole file per distinct compile: {entries:?}");

    // A cold daemon replays everything from disk — zero compiles — which
    // requires every shared file to be whole and decodable.
    let (mut child, mut client) = spawn_daemon(&dir_arg);
    for &n in &sizes {
        let job = client
            .submit(&RemoteRequest::new("G-2x2", qft(n), CompilerKind::SSync, config))
            .expect("submit");
        let replayed = client.wait(job).expect("wait").expect("compiles");
        let direct = CompilerKind::SSync.compile_on(&device, &qft(n), &config).expect("compiles");
        assert_bit_identical(&direct, &replayed, &format!("cold replay, qft({n})"));
    }
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.jobs_executed(), 0, "cold daemon compiled nothing");
    assert_eq!(metrics.cache.persist_hits as usize, sizes.len());
    client.shutdown().expect("shutdown");
    assert!(child.wait().expect("daemon exits").success());

    let _ = std::fs::remove_dir_all(&dir);
}

/// The daemon binary's TCP leg end-to-end: `--tcp 127.0.0.1:0` with an
/// auth token and `--port-file` discovery, a compile bit-identical to
/// direct, the janitor ticking in the background, and a clean drain on
/// `Shutdown`.
#[test]
fn daemon_tcp_transport_round_trips_with_auth_and_janitor() {
    let dir = std::env::temp_dir().join(format!("ssync-tcp-daemon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let port_file = dir.join("port");
    let cache_dir = dir.join("cache");

    let mut child = std::process::Command::new(DAEMON)
        .args(["--tcp", "127.0.0.1:0", "--workers", "1"])
        .args(["--auth-token", "hunter2"])
        .args(["--port-file", port_file.to_str().unwrap()])
        .args(["--cache-dir", cache_dir.to_str().unwrap()])
        .args(["--cache-dir-max-bytes", "1048576"])
        .args(["--janitor-interval-secs", "1"])
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn ssync-serviced");

    // Discover the OS-assigned port.
    let mut addr = None;
    for _ in 0..500 {
        if let Ok(contents) = std::fs::read_to_string(&port_file) {
            addr = Some(contents.trim().to_string());
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let addr = addr.expect("daemon published its port within 5s");

    // The wrong token is turned away; the right one compiles.
    assert!(
        ServiceClient::connect_tcp(addr.as_str(), Some("wrong")).is_err(),
        "wrong token must not connect"
    );
    let mut client = ServiceClient::connect_tcp(addr.as_str(), Some("hunter2")).expect("connect");
    let config = CompilerConfig::default();
    let circuit = qft(10);
    let job = client
        .submit(&RemoteRequest::new("G-2x2", circuit.clone(), CompilerKind::SSync, config))
        .expect("submit");
    let remote = client.wait(job).expect("wait").expect("compiles");
    let device = Device::build(QccdTopology::named("G-2x2").unwrap(), config.weights);
    let direct = CompilerKind::SSync.compile_on(&device, &circuit, &config).expect("compiles");
    assert_bit_identical(&direct, &remote, "daemon tcp round trip");

    // The janitor has had time to tick at least once (it runs at spawn).
    let metrics = client.metrics().expect("metrics");
    assert!(metrics.janitor_gc_runs >= 1, "janitor ran, got {}", metrics.janitor_gc_runs);
    assert_eq!(metrics.rejected_unauthorized, 1);

    client.shutdown().expect("shutdown");
    drop(client);
    assert!(child.wait().expect("daemon exits").success(), "clean drain");
    let _ = std::fs::remove_dir_all(&dir);
}
