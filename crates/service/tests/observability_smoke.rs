//! End-to-end observability smoke test: spawn the real `ssync-serviced`
//! binary with tracing fully enabled, push a mixed-priority workload
//! through it, and require non-zero latency histograms on **both** export
//! surfaces — the wire `GetStats` request and the `--metrics-text` file —
//! plus a parseable slow-request JSONL stream on stderr. This is the
//! ISSUE-8 acceptance path, exercised over real pipes and a real second
//! process.

use ssync_baselines::CompilerKind;
use ssync_circuit::generators::qft;
use ssync_core::CompilerConfig;
use ssync_service::client::ServiceClient;
use ssync_service::wire::{RemoteQasmRequest, RemoteRequest};
use ssync_service::Priority;
use std::io::Read;
use std::process::{Child, Command, Stdio};

const DAEMON: &str = env!("CARGO_BIN_EXE_ssync-serviced");

/// Spawns the daemon in stdio mode with every observability surface on:
/// `--slow-request-ms 0` logs a JSONL trace for every request, and
/// `--metrics-text` keeps a scrape file fresh. Stderr is drained by a
/// thread from the start — the final exposition flush alone can exceed a
/// pipe buffer, and an undrained pipe would deadlock the daemon's exit.
fn spawn_observable_daemon(
    metrics_path: &std::path::Path,
) -> (Child, ServiceClient, std::thread::JoinHandle<String>) {
    let mut child = Command::new(DAEMON)
        .arg("--stdio")
        .args(["--workers", "2", "--slow-request-ms", "0"])
        .args(["--metrics-text", metrics_path.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ssync-serviced");
    let writer = child.stdin.take().expect("piped stdin");
    let reader = child.stdout.take().expect("piped stdout");
    let mut stderr = child.stderr.take().expect("piped stderr");
    let drain = std::thread::spawn(move || {
        let mut buf = String::new();
        let _ = stderr.read_to_string(&mut buf);
        buf
    });
    (child, ServiceClient::over(reader, writer), drain)
}

/// Reads one sample from a text exposition: the value on the line
/// `name{labels} value`.
fn metric(text: &str, name: &str, labels: &str) -> Option<u64> {
    let needle = format!("{name}{{{labels}}} ");
    text.lines().find_map(|line| line.strip_prefix(&needle)).map(|v| {
        v.trim().parse().unwrap_or_else(|_| panic!("unparseable sample for {needle}: {v}"))
    })
}

/// Asserts the exposition carries non-zero count, p50 and p99 for
/// `stage` at every priority — the ISSUE's acceptance bar.
fn assert_stage_populated(text: &str, stage: &str, surface: &str) {
    for priority in ["high", "normal", "batch"] {
        let labels = format!("stage=\"{stage}\",priority=\"{priority}\"");
        let count = metric(text, "ssync_stage_latency_ns_count", &labels)
            .unwrap_or_else(|| panic!("{surface}: no count for {labels}"));
        assert!(count > 0, "{surface}: empty histogram for {labels}");
        for quantile in ["p50", "p99"] {
            let value = metric(text, &format!("ssync_stage_latency_{quantile}_ns"), &labels)
                .unwrap_or_else(|| panic!("{surface}: no {quantile} for {labels}"));
            assert!(value > 0, "{surface}: zero {quantile} for {labels}");
        }
    }
}

#[test]
fn daemon_reports_latency_histograms_on_both_surfaces() {
    let dir = std::env::temp_dir().join(format!("ssync-obs-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let metrics_path = dir.join("metrics.prom");
    let (mut child, mut client, stderr_drain) = spawn_observable_daemon(&metrics_path);

    // Mixed workload: every (priority × compiler) pair gets a distinct
    // circuit so nothing is served from cache and every priority's
    // queue-wait histogram fills; one QASM submission covers the parse
    // stage. Trace ids must come back non-zero and pairwise distinct.
    let config = CompilerConfig::default();
    let mut trace_ids = Vec::new();
    let mut jobs = Vec::new();
    for (i, priority) in Priority::ALL.into_iter().enumerate() {
        for (j, kind) in CompilerKind::ALL.into_iter().enumerate() {
            let circuit = qft(5 + (i * CompilerKind::ALL.len() + j));
            let request =
                RemoteRequest::new("G-2x2", circuit, kind, config).with_priority(priority);
            let (job, trace_id) = client.submit_traced(&request).expect("submit");
            assert!(trace_id > 0, "a v5 daemon always assigns a trace id");
            trace_ids.push(trace_id);
            jobs.push(job);
        }
    }
    let qasm =
        RemoteQasmRequest::new("G-2x2", ssync_qasm::export(&qft(4)), CompilerKind::SSync, config);
    let (qasm_job, _report, qasm_trace) = client.submit_qasm_traced(&qasm).expect("submit qasm");
    assert!(qasm_trace > 0);
    trace_ids.push(qasm_trace);
    jobs.push(qasm_job);
    let distinct: std::collections::HashSet<u64> = trace_ids.iter().copied().collect();
    assert_eq!(distinct.len(), trace_ids.len(), "trace ids are pairwise distinct");
    for job in jobs {
        client.wait(job).expect("wait").expect("compiles");
    }

    // Surface 1: the wire `GetStats` request on the live daemon.
    let stats = client.stats_text().expect("GetStats");
    assert_stage_populated(&stats, "queue_wait", "GetStats");
    assert_stage_populated(&stats, "end_to_end", "GetStats");
    assert!(
        metric(&stats, "ssync_stage_latency_ns_count", "stage=\"parse\",priority=\"normal\"")
            .is_some_and(|count| count > 0),
        "the QASM parse stage is recorded"
    );
    // The plain wire metrics carry the v5 counters too.
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.traces_recorded, trace_ids.len() as u64);
    assert_eq!(metrics.slow_requests, trace_ids.len() as u64, "threshold 0 flags everything");

    // The periodic flusher has had ample time by now; the scrape file
    // exists and is a well-formed exposition mid-flight.
    std::thread::sleep(std::time::Duration::from_millis(800));
    let live = std::fs::read_to_string(&metrics_path).expect("live --metrics-text file");
    assert!(live.contains("ssync_stage_latency_ns"), "live scrape file renders histograms");

    client.shutdown().expect("shutdown");
    assert!(child.wait().expect("daemon exits").success());
    let stderr = stderr_drain.join().expect("stderr drained");

    // Surface 2: the final `--metrics-text` flush after drain.
    let finale = std::fs::read_to_string(&metrics_path).expect("final --metrics-text file");
    assert_stage_populated(&finale, "queue_wait", "--metrics-text");
    assert_stage_populated(&finale, "end_to_end", "--metrics-text");
    assert!(
        metric(&finale, "ssync_traces_recorded_total", "")
            .or_else(|| {
                // unlabelled samples render as `name value`
                finale.lines().find_map(|line| {
                    line.strip_prefix("ssync_traces_recorded_total ")
                        .map(|v| v.trim().parse().unwrap())
                })
            })
            .is_some_and(|v| v >= trace_ids.len() as u64),
        "the trace counter survives to the final flush"
    );

    // Surface 3: with `--slow-request-ms 0` every request emits one JSONL
    // trace line on stderr, parseable and carrying the stages plus the
    // exact trace ids the client was told.
    let jsonl: Vec<&str> = stderr.lines().filter(|line| line.starts_with('{')).collect();
    assert!(
        jsonl.len() >= trace_ids.len(),
        "one slow-request line per request, got {} of {}:\n{stderr}",
        jsonl.len(),
        trace_ids.len()
    );
    for line in &jsonl {
        assert!(line.starts_with("{\"trace_id\":\""), "line leads with the trace id: {line}");
        assert!(line.ends_with('}'), "line is a complete object: {line}");
        assert!(line.contains("\"stages\":["), "line carries the stage timeline: {line}");
        assert!(line.contains("\"end_to_end\""), "line includes the end-to-end stage: {line}");
    }
    for trace_id in &trace_ids {
        let hex = format!("{trace_id:016x}");
        assert!(
            jsonl.iter().any(|line| line.contains(&hex)),
            "trace {hex} from the Submitted response appears in the slow log"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
