//! End-to-end observability smoke test: spawn the real `ssync-serviced`
//! binary with tracing fully enabled, push a mixed-priority workload
//! through it, and require non-zero latency histograms on **both** export
//! surfaces — the wire `GetStats` request and the `--metrics-text` file —
//! plus a parseable slow-request JSONL stream on stderr. This is the
//! ISSUE-8 acceptance path, exercised over real pipes and a real second
//! process.

use ssync_baselines::CompilerKind;
use ssync_circuit::generators::qft;
use ssync_core::CompilerConfig;
use ssync_service::client::ServiceClient;
use ssync_service::wire::{RemoteQasmRequest, RemoteRequest};
use ssync_service::Priority;
use std::io::Read;
use std::process::{Child, Command, Stdio};

const DAEMON: &str = env!("CARGO_BIN_EXE_ssync-serviced");

/// Spawns the daemon in stdio mode with every observability surface on:
/// `--slow-request-ms 0` logs a JSONL trace for every request, and
/// `--metrics-text` keeps a scrape file fresh. Stderr is drained by a
/// thread from the start — the final exposition flush alone can exceed a
/// pipe buffer, and an undrained pipe would deadlock the daemon's exit.
fn spawn_observable_daemon(
    metrics_path: &std::path::Path,
) -> (Child, ServiceClient, std::thread::JoinHandle<String>) {
    let mut child = Command::new(DAEMON)
        .arg("--stdio")
        .args(["--workers", "2", "--slow-request-ms", "0"])
        .args(["--metrics-text", metrics_path.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ssync-serviced");
    let writer = child.stdin.take().expect("piped stdin");
    let reader = child.stdout.take().expect("piped stdout");
    let mut stderr = child.stderr.take().expect("piped stderr");
    let drain = std::thread::spawn(move || {
        let mut buf = String::new();
        let _ = stderr.read_to_string(&mut buf);
        buf
    });
    (child, ServiceClient::over(reader, writer), drain)
}

/// Reads one sample from a text exposition: the value on the line
/// `name{labels} value`.
fn metric(text: &str, name: &str, labels: &str) -> Option<u64> {
    let needle = format!("{name}{{{labels}}} ");
    text.lines().find_map(|line| line.strip_prefix(&needle)).map(|v| {
        v.trim().parse().unwrap_or_else(|_| panic!("unparseable sample for {needle}: {v}"))
    })
}

/// Asserts the exposition carries non-zero count, p50 and p99 for
/// `stage` at every priority — the ISSUE's acceptance bar.
fn assert_stage_populated(text: &str, stage: &str, surface: &str) {
    for priority in ["high", "normal", "batch"] {
        let labels = format!("stage=\"{stage}\",priority=\"{priority}\"");
        let count = metric(text, "ssync_stage_latency_ns_count", &labels)
            .unwrap_or_else(|| panic!("{surface}: no count for {labels}"));
        assert!(count > 0, "{surface}: empty histogram for {labels}");
        for quantile in ["p50", "p99"] {
            let value = metric(text, &format!("ssync_stage_latency_{quantile}_ns"), &labels)
                .unwrap_or_else(|| panic!("{surface}: no {quantile} for {labels}"));
            assert!(value > 0, "{surface}: zero {quantile} for {labels}");
        }
    }
}

#[test]
fn daemon_reports_latency_histograms_on_both_surfaces() {
    let dir = std::env::temp_dir().join(format!("ssync-obs-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let metrics_path = dir.join("metrics.prom");
    let (mut child, mut client, stderr_drain) = spawn_observable_daemon(&metrics_path);

    // Mixed workload: every (priority × compiler) pair gets a distinct
    // circuit so nothing is served from cache and every priority's
    // queue-wait histogram fills; one QASM submission covers the parse
    // stage. Trace ids must come back non-zero and pairwise distinct.
    let config = CompilerConfig::default();
    let mut trace_ids = Vec::new();
    let mut jobs = Vec::new();
    for (i, priority) in Priority::ALL.into_iter().enumerate() {
        for (j, kind) in CompilerKind::ALL.into_iter().enumerate() {
            let circuit = qft(5 + (i * CompilerKind::ALL.len() + j));
            let request =
                RemoteRequest::new("G-2x2", circuit, kind, config).with_priority(priority);
            let (job, trace_id) = client.submit_traced(&request).expect("submit");
            assert!(trace_id > 0, "a v5 daemon always assigns a trace id");
            trace_ids.push(trace_id);
            jobs.push(job);
        }
    }
    let qasm =
        RemoteQasmRequest::new("G-2x2", ssync_qasm::export(&qft(4)), CompilerKind::SSync, config);
    let (qasm_job, _report, qasm_trace) = client.submit_qasm_traced(&qasm).expect("submit qasm");
    assert!(qasm_trace > 0);
    trace_ids.push(qasm_trace);
    jobs.push(qasm_job);
    let distinct: std::collections::HashSet<u64> = trace_ids.iter().copied().collect();
    assert_eq!(distinct.len(), trace_ids.len(), "trace ids are pairwise distinct");
    for job in jobs {
        client.wait(job).expect("wait").expect("compiles");
    }

    // Surface 1: the wire `GetStats` request on the live daemon.
    let stats = client.stats_text().expect("GetStats");
    assert_stage_populated(&stats, "queue_wait", "GetStats");
    assert_stage_populated(&stats, "end_to_end", "GetStats");
    assert!(
        metric(&stats, "ssync_stage_latency_ns_count", "stage=\"parse\",priority=\"normal\"")
            .is_some_and(|count| count > 0),
        "the QASM parse stage is recorded"
    );
    // The plain wire metrics carry the v5 counters too.
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.traces_recorded, trace_ids.len() as u64);
    assert_eq!(metrics.slow_requests, trace_ids.len() as u64, "threshold 0 flags everything");

    // The periodic flusher has had ample time by now; the scrape file
    // exists and is a well-formed exposition mid-flight.
    std::thread::sleep(std::time::Duration::from_millis(800));
    let live = std::fs::read_to_string(&metrics_path).expect("live --metrics-text file");
    assert!(live.contains("ssync_stage_latency_ns"), "live scrape file renders histograms");

    client.shutdown().expect("shutdown");
    assert!(child.wait().expect("daemon exits").success());
    let stderr = stderr_drain.join().expect("stderr drained");

    // Surface 2: the final `--metrics-text` flush after drain.
    let finale = std::fs::read_to_string(&metrics_path).expect("final --metrics-text file");
    assert_stage_populated(&finale, "queue_wait", "--metrics-text");
    assert_stage_populated(&finale, "end_to_end", "--metrics-text");
    assert!(
        metric(&finale, "ssync_traces_recorded_total", "")
            .or_else(|| {
                // unlabelled samples render as `name value`
                finale.lines().find_map(|line| {
                    line.strip_prefix("ssync_traces_recorded_total ")
                        .map(|v| v.trim().parse().unwrap())
                })
            })
            .is_some_and(|v| v >= trace_ids.len() as u64),
        "the trace counter survives to the final flush"
    );

    // Surface 3: with `--slow-request-ms 0` every request emits one JSONL
    // trace line on stderr, parseable and carrying the stages plus the
    // exact trace ids the client was told.
    let jsonl: Vec<&str> = stderr.lines().filter(|line| line.starts_with('{')).collect();
    assert!(
        jsonl.len() >= trace_ids.len(),
        "one slow-request line per request, got {} of {}:\n{stderr}",
        jsonl.len(),
        trace_ids.len()
    );
    for line in &jsonl {
        assert!(line.starts_with("{\"trace_id\":\""), "line leads with the trace id: {line}");
        assert!(line.ends_with('}'), "line is a complete object: {line}");
        assert!(line.contains("\"stages\":["), "line carries the stage timeline: {line}");
        assert!(line.contains("\"end_to_end\""), "line includes the end-to-end stage: {line}");
    }
    for trace_id in &trace_ids {
        let hex = format!("{trace_id:016x}");
        assert!(
            jsonl.iter().any(|line| line.contains(&hex)),
            "trace {hex} from the Submitted response appears in the slow log"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// The ISSUE-10 acceptance path: a TCP daemon with the flight recorder
/// on serves `GetTrace` for a compiled request (span JSONL + non-empty
/// recorder event stream), the scrape surfaces carry histogram bucket
/// exemplars whose trace ids resolve back through `GetTrace`, the SLO
/// target/burn-rate gauges are exported, and the slow-request JSONL
/// stream carries the scoring attributes.
#[test]
fn tcp_daemon_serves_flight_recorder_traces_exemplars_and_slo_gauges() {
    let dir = std::env::temp_dir().join(format!("ssync-obs-tcp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let metrics_path = dir.join("metrics.prom");
    let port_file = dir.join("port");
    let mut child = Command::new(DAEMON)
        .args(["--tcp", "127.0.0.1:0"])
        .args(["--port-file", port_file.to_str().unwrap()])
        .args(["--workers", "2", "--slow-request-ms", "0"])
        .args(["--metrics-text", metrics_path.to_str().unwrap()])
        .args(["--flight-recorder", "--trace-journal-cap", "64"])
        .args(["--slo-ms-high", "250", "--slo-ms-normal", "1000", "--slo-ms-batch", "5000"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ssync-serviced");
    let mut stderr = child.stderr.take().expect("piped stderr");
    let drain = std::thread::spawn(move || {
        let mut buf = String::new();
        let _ = stderr.read_to_string(&mut buf);
        buf
    });
    // The daemon publishes its OS-assigned port via --port-file.
    let addr = {
        let mut waited = 0u64;
        loop {
            match std::fs::read_to_string(&port_file) {
                Ok(text) if text.ends_with('\n') => break text.trim().to_string(),
                _ => {
                    assert!(waited < 10_000, "daemon never published its port");
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    waited += 50;
                }
            }
        }
    };
    let mut client = ServiceClient::connect_tcp(&addr, None).expect("connect");

    // First traffic burst, then a pause long enough for an SLO tick to
    // land a baseline reading, then a second burst — the burn-rate
    // windows need a non-zero count delta between two ticks before the
    // gauges render.
    let config = CompilerConfig::default();
    let mut trace_ids = Vec::new();
    for (i, priority) in Priority::ALL.into_iter().enumerate() {
        let request = RemoteRequest::new("G-2x2", qft(6 + i), CompilerKind::SSync, config)
            .with_priority(priority);
        let (job, trace_id) = client.submit_traced(&request).expect("submit");
        assert!(trace_id > 0);
        client.wait(job).expect("wait").expect("compiles");
        trace_ids.push(trace_id);
    }
    std::thread::sleep(std::time::Duration::from_millis(700));
    let late = RemoteRequest::new("G-2x2", qft(11), CompilerKind::SSync, config)
        .with_priority(Priority::Normal);
    let (late_job, late_trace) = client.submit_traced(&late).expect("submit");
    client.wait(late_job).expect("wait").expect("compiles");
    trace_ids.push(late_trace);
    std::thread::sleep(std::time::Duration::from_millis(700));

    // GetTrace round-trips a recorded trace over TCP: the span JSONL
    // names the trace and carries the scoring attributes, and the
    // flight-recorder stream is non-empty (header + events).
    for &trace_id in &trace_ids {
        let (span_jsonl, recorder_jsonl) = client.get_trace(trace_id).expect("GetTrace");
        assert!(
            span_jsonl.contains(&format!("{trace_id:016x}")),
            "span names its trace: {span_jsonl}"
        );
        assert!(
            span_jsonl.contains("candidates_scored"),
            "span carries the scoring attributes: {span_jsonl}"
        );
        assert!(!recorder_jsonl.is_empty(), "recorder stream travels for trace {trace_id}");
        assert!(
            recorder_jsonl.lines().count() > 1,
            "header plus at least one event: {recorder_jsonl}"
        );
    }
    // An unknown id is a clean rejection, not a dead connection.
    assert!(matches!(
        client.get_trace(u64::MAX),
        Err(ssync_service::client::ClientError::Rejected(_))
    ));

    // The SLO gauges are on the wire scrape: the configured targets, and
    // (after two ticks bracketed the traffic) the burn-rate gauges.
    let stats = client.stats_text().expect("GetStats");
    for (priority, target) in [("high", 250), ("normal", 1000), ("batch", 5000)] {
        assert_eq!(
            metric(&stats, "ssync_slo_target_ms", &format!("priority=\"{priority}\"")),
            Some(target),
            "SLO target gauge for {priority}"
        );
    }
    assert!(
        stats.contains("ssync_slo_burn_ppm{priority=\"normal\",window=\"1m\"}"),
        "burn-rate gauge renders once windows have readings:\n{stats}"
    );

    // Histogram exemplars: at least one bucket on the wire scrape names
    // a trace id, and that id resolves back through GetTrace. The scrape
    // file (refreshed every ~500 ms) carries the same exemplars.
    let exemplar_ids = |text: &str| -> Vec<u64> {
        text.match_indices("trace_id=\"")
            .filter_map(|(at, needle)| {
                let hex = &text[at + needle.len()..at + needle.len() + 16];
                u64::from_str_radix(hex, 16).ok()
            })
            .collect()
    };
    let on_wire = exemplar_ids(&stats);
    assert!(!on_wire.is_empty(), "GetStats carries bucket exemplars:\n{stats}");
    let file = std::fs::read_to_string(&metrics_path).expect("live --metrics-text file");
    let on_file = exemplar_ids(&file);
    assert!(!on_file.is_empty(), "the scrape file carries bucket exemplars:\n{file}");
    let resolved = on_file
        .iter()
        .filter(|&&id| {
            client
                .get_trace(id)
                .map(|(span, _)| span.contains(&format!("{id:016x}")))
                .unwrap_or(false)
        })
        .count();
    assert!(resolved > 0, "a scrape-file exemplar resolves via GetTrace: {on_file:?}");
    assert!(
        on_file.iter().any(|id| trace_ids.contains(id)),
        "a scrape-file exemplar names one of this session's traces: {on_file:?} vs {trace_ids:?}"
    );

    client.shutdown().expect("shutdown");
    assert!(child.wait().expect("daemon exits").success());
    let stderr = drain.join().expect("stderr drained");

    // The slow-request JSONL stream carries the scoring attributes.
    let jsonl: Vec<&str> = stderr.lines().filter(|line| line.starts_with('{')).collect();
    assert!(jsonl.len() >= trace_ids.len(), "one slow line per request:\n{stderr}");
    assert!(
        jsonl.iter().any(|line| line.contains("\"candidates_scored\":")),
        "slow lines carry the scoring attributes:\n{stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
