//! The inverse direction: [`Circuit`] → OpenQASM 2.0 source text.
//!
//! Exported programs are *exactly* re-importable: every gate in the IR
//! maps to one QASM statement over a single flat register, and rotation
//! angles print with Rust's shortest-round-trip `f64` formatting, so
//! `parse(export(c))` reproduces `c`'s gate list bit for bit — the
//! property the round-trip tests pin down via
//! [`Circuit::content_hash`]. (The sole exception is NaN angles, which
//! decimal text cannot carry payload-exactly; see [`fmt_angle`] — they
//! still export as parseable text that re-imports as a NaN.)
//!
//! The emitted header includes `qelib1.inc` and, only when the circuit
//! uses them, portable `gate` definitions for the two trapped-ion natives
//! the standard library lacks (`ms`, `ryy`). This workspace's importer
//! recognises both natively (the built-in table wins over user
//! definitions), while other OpenQASM 2.0 consumers can inline the
//! provided decompositions.

use ssync_circuit::{Circuit, Gate};
use std::fmt::Write;

/// Renders one rotation angle. Finite values use Rust's shortest
/// round-trip `f64` formatting (exact re-import). The IR does not forbid
/// non-finite angles, so export must still emit *parseable* text for
/// them: ±∞ prints as `±1e999` (the literal overflows to the exact
/// infinity on parse) and NaN as `sqrt(-1)` (re-imports as a NaN; its
/// payload bits — which carry no rotational meaning — are not
/// preserved, so only NaN-angled circuits fall outside the exact
/// `content_hash` round-trip guarantee).
fn fmt_angle(t: f64) -> String {
    if t.is_finite() {
        format!("{t}")
    } else if t.is_nan() {
        "sqrt(-1)".to_string()
    } else if t > 0.0 {
        "1e999".to_string()
    } else {
        "-1e999".to_string()
    }
}

/// Definition of `ms` emitted when the circuit contains one: the
/// Mølmer–Sørensen gate is XX(π/2) up to global phase.
const MS_DEF: &str = "gate ms a, b { rxx(pi/2) a, b; }";
/// Definition of `ryy` emitted when the circuit contains one.
const RYY_DEF: &str = "gate ryy(theta) a, b { rx(pi/2) a; rx(pi/2) b; cx a, b; \
                       rz(theta) b; cx a, b; rx(-pi/2) a; rx(-pi/2) b; }";

/// Renders `circuit` as a self-contained OpenQASM 2.0 program over one
/// flat register `q[num_qubits]`.
pub fn export(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    if !circuit.name().is_empty() {
        // Informational only: the importer ignores comments and the
        // content hash excludes names.
        let _ = writeln!(out, "// circuit: {}", circuit.name());
    }
    let uses = |pred: fn(&Gate) -> bool| circuit.iter().any(pred);
    if uses(|g| matches!(g, Gate::Ms(..))) {
        out.push_str(MS_DEF);
        out.push('\n');
    }
    if uses(|g| matches!(g, Gate::Ryy(..))) {
        out.push_str(RYY_DEF);
        out.push('\n');
    }
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    for gate in circuit {
        match *gate {
            Gate::H(q) => {
                let _ = writeln!(out, "h q[{}];", q.0);
            }
            Gate::X(q) => {
                let _ = writeln!(out, "x q[{}];", q.0);
            }
            Gate::Rx(q, t) => {
                let _ = writeln!(out, "rx({}) q[{}];", fmt_angle(t), q.0);
            }
            Gate::Ry(q, t) => {
                let _ = writeln!(out, "ry({}) q[{}];", fmt_angle(t), q.0);
            }
            Gate::Rz(q, t) => {
                let _ = writeln!(out, "rz({}) q[{}];", fmt_angle(t), q.0);
            }
            Gate::Cx(a, b) => {
                let _ = writeln!(out, "cx q[{}], q[{}];", a.0, b.0);
            }
            Gate::Cz(a, b) => {
                let _ = writeln!(out, "cz q[{}], q[{}];", a.0, b.0);
            }
            Gate::Cp(a, b, t) => {
                let _ = writeln!(out, "cp({}) q[{}], q[{}];", fmt_angle(t), a.0, b.0);
            }
            Gate::Ms(a, b) => {
                let _ = writeln!(out, "ms q[{}], q[{}];", a.0, b.0);
            }
            Gate::Rzz(a, b, t) => {
                let _ = writeln!(out, "rzz({}) q[{}], q[{}];", fmt_angle(t), a.0, b.0);
            }
            Gate::Rxx(a, b, t) => {
                let _ = writeln!(out, "rxx({}) q[{}], q[{}];", fmt_angle(t), a.0, b.0);
            }
            Gate::Ryy(a, b, t) => {
                let _ = writeln!(out, "ryy({}) q[{}], q[{}];", fmt_angle(t), a.0, b.0);
            }
            Gate::Swap(a, b) => {
                let _ = writeln!(out, "swap q[{}], q[{}];", a.0, b.0);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use ssync_circuit::Qubit;

    #[test]
    fn export_emits_a_parseable_header_and_gates() {
        let mut c = Circuit::with_name(3, "demo");
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(1));
        c.rz(Qubit(2), 0.25);
        let text = export(&c);
        assert!(text.starts_with("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"));
        assert!(text.contains("// circuit: demo"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("h q[0];"));
        assert!(text.contains("cx q[0], q[1];"));
        assert!(text.contains("rz(0.25) q[2];"));
        assert!(!text.contains("gate ms"), "no ms used, no ms definition");
    }

    #[test]
    fn nonstandard_gate_definitions_appear_only_when_used() {
        let mut c = Circuit::new(2);
        c.ms(Qubit(0), Qubit(1));
        c.ryy(Qubit(0), Qubit(1), 1.5);
        let text = export(&c);
        assert!(text.contains("gate ms a, b"));
        assert!(text.contains("gate ryy(theta) a, b"));
    }

    #[test]
    fn every_gate_kind_round_trips_exactly() {
        let mut c = Circuit::new(3);
        let (a, b, d) = (Qubit(0), Qubit(1), Qubit(2));
        c.h(a);
        c.x(b);
        c.rx(a, 0.1);
        c.ry(b, -2.5);
        c.rz(d, 1e-9);
        c.cx(a, b);
        c.cz(b, d);
        c.cp(a, d, std::f64::consts::PI / 7.0);
        c.ms(a, b);
        c.rzz(b, d, 0.333_333_333_333_333_3);
        c.rxx(a, d, -0.75);
        c.ryy(a, b, 42.0);
        c.swap(b, d);
        let out = parse(&export(&c)).expect("re-imports");
        assert_eq!(out.circuit.gates(), c.gates());
        assert_eq!(out.circuit.content_hash(), c.content_hash());
    }

    #[test]
    fn awkward_angles_survive_the_text_round_trip() {
        // Angles whose decimal expansions are maximally awkward: the
        // shortest-round-trip printer must reproduce the exact bits.
        let angles = [
            std::f64::consts::PI,
            -std::f64::consts::FRAC_PI_3,
            f64::MIN_POSITIVE,
            1.0 / 3.0,
            0.1 + 0.2,
            6.02214076e23_f64.recip(),
        ];
        let mut c = Circuit::new(1);
        for &t in &angles {
            c.rz(Qubit(0), t);
        }
        let out = parse(&export(&c)).expect("re-imports");
        for (gate, &want) in out.circuit.iter().zip(&angles) {
            let Gate::Rz(_, got) = gate else { panic!("rz expected") };
            assert_eq!(got.to_bits(), want.to_bits(), "angle {want} changed in transit");
        }
    }

    #[test]
    fn non_finite_angles_export_parseable_text() {
        // The IR never rejects non-finite angles, so export must still
        // produce re-importable text: infinities round-trip exactly,
        // NaN re-imports as a NaN (payload bits are not representable
        // in decimal text).
        let mut c = Circuit::new(1);
        c.rz(Qubit(0), f64::INFINITY);
        c.rz(Qubit(0), f64::NEG_INFINITY);
        c.rz(Qubit(0), f64::NAN);
        let text = export(&c);
        assert!(text.contains("rz(1e999)"));
        assert!(text.contains("rz(-1e999)"));
        assert!(text.contains("rz(sqrt(-1))"));
        let out = parse(&text).expect("re-imports");
        let angles: Vec<f64> = out
            .circuit
            .iter()
            .map(|g| match g {
                Gate::Rz(_, t) => *t,
                other => panic!("rz expected, got {other:?}"),
            })
            .collect();
        assert_eq!(angles[0], f64::INFINITY);
        assert_eq!(angles[1], f64::NEG_INFINITY);
        assert!(angles[2].is_nan());
    }
}
