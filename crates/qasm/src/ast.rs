//! The abstract syntax tree the parser produces and the lowering consumes.
//!
//! The AST mirrors the OpenQASM 2.0 grammar closely: declarations, user
//! gate definitions, and a statement list in program order. Parameter
//! expressions are kept symbolic (with `pi` and gate-parameter references)
//! and evaluated during lowering, where the parameter environment is
//! known.

use crate::error::SourcePos;

/// A whole parsed program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Every statement in source order.
    pub statements: Vec<Statement>,
}

/// One top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `qreg name[size];`
    QregDecl(RegDecl),
    /// `creg name[size];`
    CregDecl(RegDecl),
    /// `gate name(params) args { body }`
    GateDef(GateDef),
    /// `opaque name(params) args;`
    OpaqueDef(GateDef),
    /// A gate application, e.g. `cx q[0], q[1];`
    Apply(GateApply),
    /// `barrier args;`
    Barrier {
        /// The qubit arguments the barrier spans.
        args: Vec<Argument>,
        /// Source position of the `barrier` keyword.
        pos: SourcePos,
    },
    /// `measure q -> c;` (stripped during lowering, with a warning count).
    Measure {
        /// The measured qubit argument.
        source: Argument,
        /// Source position of the `measure` keyword.
        pos: SourcePos,
    },
    /// `reset q;` (stripped during lowering, with a warning count).
    Reset {
        /// The reset qubit argument.
        target: Argument,
        /// Source position of the `reset` keyword.
        pos: SourcePos,
    },
    /// `if (creg == n) <qop>;` — the guarded operation (a gate
    /// application, measure or reset, per the OpenQASM 2.0 `qop` rule)
    /// is stripped during lowering (classical control needs measurement
    /// results the static compiler does not have), with a warning count.
    Conditional {
        /// The guarding classical register's name.
        guard: String,
        /// The guarded operation (`Apply`, `Measure` or `Reset`).
        body: Box<Statement>,
        /// Source position of the `if` keyword.
        pos: SourcePos,
    },
}

/// A register declaration: `name[size]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RegDecl {
    /// The register name.
    pub name: String,
    /// The declared number of bits/qubits.
    pub size: usize,
    /// Source position of the declaration.
    pub pos: SourcePos,
}

/// A user `gate` (or `opaque`) definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GateDef {
    /// The gate name.
    pub name: String,
    /// Classical parameter names (may be empty).
    pub params: Vec<String>,
    /// Formal qubit argument names.
    pub qubits: Vec<String>,
    /// Body statements (empty for `opaque`). Only applications and
    /// barriers are legal inside a body.
    pub body: Vec<BodyStatement>,
    /// Source position of the definition.
    pub pos: SourcePos,
}

/// A statement inside a gate body.
#[derive(Debug, Clone, PartialEq)]
pub enum BodyStatement {
    /// A gate application over the formal arguments.
    Apply(GateApply),
    /// A barrier over formal arguments (ignored inside bodies: the
    /// expansion is inlined, so the fence collapses into program order).
    Barrier(SourcePos),
}

/// One gate application: `name(params) arg, arg, ...;`.
#[derive(Debug, Clone, PartialEq)]
pub struct GateApply {
    /// The gate name.
    pub name: String,
    /// Classical parameter expressions (empty when no parentheses).
    pub params: Vec<Expr>,
    /// Qubit arguments.
    pub args: Vec<Argument>,
    /// Source position of the gate name.
    pub pos: SourcePos,
}

/// A qubit argument: a whole register (broadcast) or one element.
#[derive(Debug, Clone, PartialEq)]
pub struct Argument {
    /// The register (or, inside gate bodies, formal argument) name.
    pub register: String,
    /// `Some(i)` for `name[i]`, `None` for the whole register.
    pub index: Option<usize>,
    /// Source position of the argument.
    pub pos: SourcePos,
}

/// A constant parameter expression, evaluated during lowering.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A numeric literal.
    Number(f64),
    /// The constant `pi`.
    Pi,
    /// A reference to an enclosing gate definition's parameter.
    Param(String, SourcePos),
    /// Unary negation.
    Neg(Box<Expr>),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source position of the operator.
        pos: SourcePos,
    },
    /// A unary function call (`sin`, `cos`, `tan`, `exp`, `ln`, `sqrt`).
    Call {
        /// The function.
        func: MathFn,
        /// The argument.
        arg: Box<Expr>,
    },
}

/// A binary operator in a parameter expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `^` (right-associative power)
    Pow,
}

/// The unary math functions OpenQASM 2.0 allows in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MathFn {
    /// `sin`
    Sin,
    /// `cos`
    Cos,
    /// `tan`
    Tan,
    /// `exp`
    Exp,
    /// `ln`
    Ln,
    /// `sqrt`
    Sqrt,
}

impl MathFn {
    /// Looks a function up by its QASM name.
    pub fn from_name(name: &str) -> Option<MathFn> {
        Some(match name {
            "sin" => MathFn::Sin,
            "cos" => MathFn::Cos,
            "tan" => MathFn::Tan,
            "exp" => MathFn::Exp,
            "ln" => MathFn::Ln,
            "sqrt" => MathFn::Sqrt,
            _ => return None,
        })
    }

    /// Applies the function.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            MathFn::Sin => x.sin(),
            MathFn::Cos => x.cos(),
            MathFn::Tan => x.tan(),
            MathFn::Exp => x.exp(),
            MathFn::Ln => x.ln(),
            MathFn::Sqrt => x.sqrt(),
        }
    }
}
