//! `qasm-corpus` — (re)generates the exported half of the `workloads/`
//! corpus: one OpenQASM 2.0 file per circuit generator at small scale,
//! produced by `ssync_qasm::export` and therefore guaranteed to re-import
//! with an identical `content_hash` (verified before each file is
//! written).
//!
//! ```sh
//! cargo run -p ssync-qasm --bin qasm-corpus -- workloads
//! ```
//!
//! Hand-written corpus files (`gatedefs.qasm`, `barriers.qasm`,
//! `stdlib.qasm`) are left untouched: this binary only rewrites the
//! generator exports.

use ssync_circuit::generators;
use ssync_circuit::Circuit;
use std::process::ExitCode;

/// The generator corpus: `(file stem, circuit)` at small scale, one per
/// generator app. Sizes keep each file both quick to compile on every
/// topology and small enough to read in a diff.
fn corpus() -> Vec<(&'static str, Circuit)> {
    vec![
        ("qft_8", generators::qft(8)),
        ("adder_4", generators::cuccaro_adder(4)),
        ("bv_8", generators::bernstein_vazirani(8)),
        ("qaoa_8", generators::qaoa_nearest_neighbor(8, 2)),
        ("alt_8", generators::alt_ansatz(8, 2)),
        ("heisenberg_6", generators::heisenberg_chain(6, 3)),
    ]
}

fn main() -> ExitCode {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "workloads".to_string());
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    for (stem, circuit) in corpus() {
        let text = ssync_qasm::export(&circuit);
        // Refuse to write a file that would not round-trip.
        match ssync_qasm::parse(&text) {
            Ok(out) if out.circuit.content_hash() == circuit.content_hash() => {}
            Ok(_) => {
                eprintln!("{stem}: export does not round-trip its content hash");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("{stem}: exported text fails to parse: {e}");
                return ExitCode::FAILURE;
            }
        }
        let path = dir.join(format!("{stem}.qasm"));
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "{} — {} qubits, {} gates ({} two-qubit)",
            path.display(),
            circuit.num_qubits(),
            circuit.len(),
            circuit.two_qubit_gate_count()
        );
    }
    ExitCode::SUCCESS
}
