//! The hand-rolled OpenQASM 2.0 tokenizer.
//!
//! Produces a flat token stream with a [`SourcePos`] per token. Line
//! (`// ...`) and block (`/* ... */`) comments are skipped; real numbers
//! keep their source *text* alongside the parsed value so diagnostics can
//! quote them verbatim.

use crate::error::{QasmError, QasmErrorKind, SourcePos};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An identifier or keyword (`qreg`, `gate`, `measure`, gate names...).
    Ident(String),
    /// An unsigned integer literal.
    Int(u64),
    /// A real-number literal (kept with its source text for diagnostics).
    Real(f64),
    /// A double-quoted string literal (include file names).
    Str(String),
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `->` (measure target arrow)
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
    /// `==` (inside `if` conditions)
    EqEq,
}

impl Token {
    /// A short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(name) => format!("identifier '{name}'"),
            Token::Int(v) => format!("integer {v}"),
            Token::Real(v) => format!("number {v}"),
            Token::Str(s) => format!("string \"{s}\""),
            Token::Semicolon => "';'".into(),
            Token::Comma => "','".into(),
            Token::LParen => "'('".into(),
            Token::RParen => "')'".into(),
            Token::LBracket => "'['".into(),
            Token::RBracket => "']'".into(),
            Token::LBrace => "'{'".into(),
            Token::RBrace => "'}'".into(),
            Token::Arrow => "'->'".into(),
            Token::Plus => "'+'".into(),
            Token::Minus => "'-'".into(),
            Token::Star => "'*'".into(),
            Token::Slash => "'/'".into(),
            Token::Caret => "'^'".into(),
            Token::EqEq => "'=='".into(),
        }
    }
}

/// A token paired with the position of its first character.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it starts in the source.
    pub pos: SourcePos,
}

/// Tokenizes a whole source string.
///
/// # Errors
///
/// Returns the first lexical error (unexpected character, unterminated
/// comment/string, malformed number) with its position.
pub fn tokenize(source: &str) -> Result<Vec<Spanned>, QasmError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer { chars: source.chars().peekable(), line: 1, col: 1 }
    }

    fn pos(&self) -> SourcePos {
        SourcePos::new(self.line, self.col)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn run(mut self) -> Result<Vec<Spanned>, QasmError> {
        let mut tokens = Vec::new();
        while let Some(c) = self.peek() {
            let pos = self.pos();
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '/' => {
                    self.bump();
                    match self.peek() {
                        Some('/') => {
                            while let Some(c) = self.bump() {
                                if c == '\n' {
                                    break;
                                }
                            }
                        }
                        Some('*') => {
                            self.bump();
                            let mut closed = false;
                            while let Some(c) = self.bump() {
                                if c == '*' && self.peek() == Some('/') {
                                    self.bump();
                                    closed = true;
                                    break;
                                }
                            }
                            if !closed {
                                return Err(QasmError::new(
                                    QasmErrorKind::UnterminatedToken("block comment"),
                                    pos,
                                ));
                            }
                        }
                        _ => tokens.push(Spanned { token: Token::Slash, pos }),
                    }
                }
                '"' => {
                    self.bump();
                    let mut text = String::new();
                    loop {
                        match self.bump() {
                            Some('"') => break,
                            Some(c) if c != '\n' => text.push(c),
                            _ => {
                                return Err(QasmError::new(
                                    QasmErrorKind::UnterminatedToken("string literal"),
                                    pos,
                                ));
                            }
                        }
                    }
                    tokens.push(Spanned { token: Token::Str(text), pos });
                }
                c if c.is_ascii_digit() || c == '.' => {
                    tokens.push(Spanned { token: self.number(pos)?, pos });
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut name = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            name.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    tokens.push(Spanned { token: Token::Ident(name), pos });
                }
                '-' => {
                    self.bump();
                    if self.peek() == Some('>') {
                        self.bump();
                        tokens.push(Spanned { token: Token::Arrow, pos });
                    } else {
                        tokens.push(Spanned { token: Token::Minus, pos });
                    }
                }
                '=' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        tokens.push(Spanned { token: Token::EqEq, pos });
                    } else {
                        return Err(QasmError::new(QasmErrorKind::UnexpectedChar('='), pos));
                    }
                }
                _ => {
                    self.bump();
                    let token = match c {
                        ';' => Token::Semicolon,
                        ',' => Token::Comma,
                        '(' => Token::LParen,
                        ')' => Token::RParen,
                        '[' => Token::LBracket,
                        ']' => Token::RBracket,
                        '{' => Token::LBrace,
                        '}' => Token::RBrace,
                        '+' => Token::Plus,
                        '*' => Token::Star,
                        '^' => Token::Caret,
                        other => {
                            return Err(QasmError::new(QasmErrorKind::UnexpectedChar(other), pos));
                        }
                    };
                    tokens.push(Spanned { token, pos });
                }
            }
        }
        Ok(tokens)
    }

    /// Lexes an integer or real literal: digits, optional fraction,
    /// optional exponent. A literal containing `.` or an exponent is a
    /// real; otherwise it is an integer.
    fn number(&mut self, pos: SourcePos) -> Result<Token, QasmError> {
        let mut text = String::new();
        let mut is_real = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if self.peek() == Some('.') {
            is_real = true;
            text.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if matches!(self.peek(), Some('e') | Some('E')) {
            is_real = true;
            text.push('e');
            self.bump();
            if matches!(self.peek(), Some('+') | Some('-')) {
                text.push(self.peek().expect("peeked"));
                self.bump();
            }
            let mut digits = 0usize;
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    text.push(c);
                    self.bump();
                    digits += 1;
                } else {
                    break;
                }
            }
            if digits == 0 {
                return Err(QasmError::new(QasmErrorKind::MalformedNumber(text), pos));
            }
        }
        if text == "." || text.is_empty() {
            return Err(QasmError::new(QasmErrorKind::MalformedNumber(text), pos));
        }
        if is_real {
            let value: f64 = text
                .parse()
                .map_err(|_| QasmError::new(QasmErrorKind::MalformedNumber(text.clone()), pos))?;
            Ok(Token::Real(value))
        } else {
            let value: u64 = text
                .parse()
                .map_err(|_| QasmError::new(QasmErrorKind::MalformedNumber(text.clone()), pos))?;
            Ok(Token::Int(value))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<Token> {
        tokenize(source).expect("lexes").into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_a_header_and_declaration() {
        assert_eq!(
            kinds("OPENQASM 2.0;\nqreg q[4];"),
            vec![
                Token::Ident("OPENQASM".into()),
                Token::Real(2.0),
                Token::Semicolon,
                Token::Ident("qreg".into()),
                Token::Ident("q".into()),
                Token::LBracket,
                Token::Int(4),
                Token::RBracket,
                Token::Semicolon,
            ]
        );
    }

    #[test]
    fn lexes_numbers_comments_and_operators() {
        let toks = kinds("rz(-1.5e-3) /* block */ q[0]; // line\ncx q[0], q[1];");
        assert!(toks.contains(&Token::Real(1.5e-3)));
        assert!(toks.contains(&Token::Minus));
        assert_eq!(toks.iter().filter(|t| **t == Token::Comma).count(), 1);
    }

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let toks = tokenize("h q[0];\n  cx q[0], q[1];").expect("lexes");
        let cx = toks.iter().find(|s| s.token == Token::Ident("cx".into())).unwrap();
        assert_eq!((cx.pos.line, cx.pos.col), (2, 3));
    }

    #[test]
    fn arrow_and_eqeq_lex_as_single_tokens() {
        assert!(kinds("measure q -> c;").contains(&Token::Arrow));
        assert!(kinds("if (c == 1)").contains(&Token::EqEq));
    }

    #[test]
    fn errors_carry_positions() {
        let err = tokenize("h q[0];\n  @").unwrap_err();
        assert_eq!(err.kind, QasmErrorKind::UnexpectedChar('@'));
        assert_eq!((err.pos.line, err.pos.col), (2, 3));
        assert!(tokenize("/* never closed").is_err());
        assert!(tokenize("\"never closed").is_err());
        assert!(tokenize("1.5e").is_err());
    }
}
