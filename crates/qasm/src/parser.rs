//! The recursive-descent OpenQASM 2.0 parser: token stream → [`Program`].
//!
//! The grammar follows the OpenQASM 2.0 paper (Cross et al. 2017):
//!
//! ```text
//! program    := "OPENQASM" real ";" statement*
//! statement  := include | qreg | creg | gatedef | opaque
//!             | apply | barrier | measure | reset | if
//! gatedef    := "gate" id params? ids "{" bodystmt* "}"
//! apply      := id params? arglist ";"
//! arglist    := argument ("," argument)*
//! argument   := id ("[" int "]")?
//! exp        := additive, with "^" binding tightest (right-assoc),
//!               unary minus, parenthesised subexpressions and the
//!               unary functions sin/cos/tan/exp/ln/sqrt
//! ```
//!
//! `include "qelib1.inc";` is accepted and recorded (the standard library
//! is built into the lowering — nothing is read from disk); any other
//! include is an error, keeping the front-end hermetic.

use crate::ast::{
    Argument, BinOp, BodyStatement, Expr, GateApply, GateDef, MathFn, Program, RegDecl, Statement,
};
use crate::error::{QasmError, QasmErrorKind, SourcePos};
use crate::lexer::{tokenize, Spanned, Token};

/// Parses a full OpenQASM 2.0 source string into an AST.
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its source position.
pub fn parse_program(source: &str) -> Result<Program, QasmError> {
    let tokens = tokenize(source)?;
    Parser { tokens, at: 0 }.program()
}

struct Parser {
    tokens: Vec<Spanned>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.at)
    }

    fn pos(&self) -> SourcePos {
        self.peek().map_or_else(|| self.tokens.last().map(|s| s.pos).unwrap_or_default(), |s| s.pos)
    }

    fn bump(&mut self) -> Option<Spanned> {
        let token = self.tokens.get(self.at).cloned();
        self.at += 1;
        token
    }

    fn found_description(&self) -> String {
        self.peek().map_or_else(|| "end of input".to_string(), |s| s.token.describe())
    }

    fn expected(&self, expected: &'static str) -> QasmError {
        QasmError::new(
            QasmErrorKind::Expected { expected, found: self.found_description() },
            self.pos(),
        )
    }

    fn eat(&mut self, token: &Token, expected: &'static str) -> Result<SourcePos, QasmError> {
        match self.peek() {
            Some(spanned) if spanned.token == *token => {
                let pos = spanned.pos;
                self.at += 1;
                Ok(pos)
            }
            _ => Err(self.expected(expected)),
        }
    }

    fn ident(&mut self, expected: &'static str) -> Result<(String, SourcePos), QasmError> {
        match self.peek() {
            Some(Spanned { token: Token::Ident(name), pos }) => {
                let out = (name.clone(), *pos);
                self.at += 1;
                Ok(out)
            }
            _ => Err(self.expected(expected)),
        }
    }

    fn integer(&mut self, expected: &'static str) -> Result<(u64, SourcePos), QasmError> {
        match self.peek() {
            Some(Spanned { token: Token::Int(v), pos }) => {
                let out = (*v, *pos);
                self.at += 1;
                Ok(out)
            }
            _ => Err(self.expected(expected)),
        }
    }

    fn program(mut self) -> Result<Program, QasmError> {
        self.header()?;
        let mut statements = Vec::new();
        while self.peek().is_some() {
            if let Some(statement) = self.statement()? {
                statements.push(statement);
            }
        }
        Ok(Program { statements })
    }

    /// `OPENQASM 2.0;` — mandatory, and only version 2.0 is supported.
    fn header(&mut self) -> Result<(), QasmError> {
        let pos = self.pos();
        let bad = |found: String| QasmError::new(QasmErrorKind::BadHeader(found), pos);
        match self.bump() {
            Some(Spanned { token: Token::Ident(kw), .. }) if kw == "OPENQASM" => {}
            other => {
                return Err(
                    bad(other.map_or_else(|| "end of input".into(), |s| s.token.describe())),
                )
            }
        }
        match self.bump() {
            Some(Spanned { token: Token::Real(version), .. }) => {
                if version != 2.0 {
                    return Err(bad(format!("version {version}")));
                }
            }
            other => {
                return Err(
                    bad(other.map_or_else(|| "end of input".into(), |s| s.token.describe())),
                )
            }
        }
        self.eat(&Token::Semicolon, "';' after the OPENQASM header")?;
        Ok(())
    }

    /// One top-level statement; `Ok(None)` for includes (recorded as
    /// accepted but producing no AST node).
    fn statement(&mut self) -> Result<Option<Statement>, QasmError> {
        let (keyword, pos) = match self.peek() {
            Some(Spanned { token: Token::Ident(name), pos }) => (name.clone(), *pos),
            _ => return Err(self.expected("a statement")),
        };
        match keyword.as_str() {
            "include" => {
                self.bump();
                let file = match self.bump() {
                    Some(Spanned { token: Token::Str(file), .. }) => file,
                    _ => return Err(self.expected("an include file string")),
                };
                self.eat(&Token::Semicolon, "';' after include")?;
                if file != "qelib1.inc" {
                    return Err(QasmError::new(QasmErrorKind::UnsupportedInclude(file), pos));
                }
                Ok(None)
            }
            "qreg" | "creg" => {
                self.bump();
                let (name, _) = self.ident("a register name")?;
                self.eat(&Token::LBracket, "'[' after the register name")?;
                let (size, _) = self.integer("the register size")?;
                self.eat(&Token::RBracket, "']' after the register size")?;
                self.eat(&Token::Semicolon, "';' after the register declaration")?;
                let decl = RegDecl { name, size: size as usize, pos };
                Ok(Some(if keyword == "qreg" {
                    Statement::QregDecl(decl)
                } else {
                    Statement::CregDecl(decl)
                }))
            }
            "gate" => Ok(Some(Statement::GateDef(self.gate_def(pos)?))),
            "opaque" => {
                self.bump();
                let mut def = self.gate_signature(pos)?;
                self.eat(&Token::Semicolon, "';' after the opaque declaration")?;
                def.body = Vec::new();
                Ok(Some(Statement::OpaqueDef(def)))
            }
            "barrier" => {
                self.bump();
                let args = self.argument_list()?;
                self.eat(&Token::Semicolon, "';' after barrier")?;
                Ok(Some(Statement::Barrier { args, pos }))
            }
            "measure" => {
                self.bump();
                let source = self.argument()?;
                self.eat(&Token::Arrow, "'->' after the measured qubit")?;
                let _target = self.argument()?;
                self.eat(&Token::Semicolon, "';' after measure")?;
                Ok(Some(Statement::Measure { source, pos }))
            }
            "reset" => {
                self.bump();
                let target = self.argument()?;
                self.eat(&Token::Semicolon, "';' after reset")?;
                Ok(Some(Statement::Reset { target, pos }))
            }
            "if" => {
                self.bump();
                self.eat(&Token::LParen, "'(' after if")?;
                let (guard, _) = self.ident("a classical register name")?;
                self.eat(&Token::EqEq, "'==' in the if condition")?;
                self.integer("an integer in the if condition")?;
                self.eat(&Token::RParen, "')' after the if condition")?;
                // The guarded statement is any qop: uop | measure | reset.
                let body = match self.peek() {
                    Some(Spanned { token: Token::Ident(kw), pos }) if kw == "measure" => {
                        let pos = *pos;
                        self.bump();
                        let source = self.argument()?;
                        self.eat(&Token::Arrow, "'->' after the measured qubit")?;
                        let _target = self.argument()?;
                        self.eat(&Token::Semicolon, "';' after measure")?;
                        Statement::Measure { source, pos }
                    }
                    Some(Spanned { token: Token::Ident(kw), pos }) if kw == "reset" => {
                        let pos = *pos;
                        self.bump();
                        let target = self.argument()?;
                        self.eat(&Token::Semicolon, "';' after reset")?;
                        Statement::Reset { target, pos }
                    }
                    _ => Statement::Apply(self.gate_apply()?),
                };
                Ok(Some(Statement::Conditional { guard, body: Box::new(body), pos }))
            }
            _ => Ok(Some(Statement::Apply(self.gate_apply()?))),
        }
    }

    /// `gate name(params)? formals { body }`
    fn gate_def(&mut self, pos: SourcePos) -> Result<GateDef, QasmError> {
        self.bump(); // "gate"
        let mut def = self.gate_signature(pos)?;
        self.eat(&Token::LBrace, "'{' opening the gate body")?;
        let mut body = Vec::new();
        loop {
            match self.peek() {
                Some(Spanned { token: Token::RBrace, .. }) => {
                    self.bump();
                    break;
                }
                Some(Spanned { token: Token::Ident(name), pos }) if name == "barrier" => {
                    let pos = *pos;
                    self.bump();
                    self.argument_list()?;
                    self.eat(&Token::Semicolon, "';' after barrier")?;
                    body.push(BodyStatement::Barrier(pos));
                }
                Some(Spanned { token: Token::Ident(_), .. }) => {
                    body.push(BodyStatement::Apply(self.gate_apply()?));
                }
                _ => return Err(self.expected("a gate application or '}'")),
            }
        }
        def.body = body;
        Ok(def)
    }

    /// `name(params)? formals` — shared by `gate` and `opaque`.
    fn gate_signature(&mut self, pos: SourcePos) -> Result<GateDef, QasmError> {
        let (name, _) = self.ident("a gate name")?;
        let mut params = Vec::new();
        if matches!(self.peek(), Some(Spanned { token: Token::LParen, .. })) {
            self.bump();
            if !matches!(self.peek(), Some(Spanned { token: Token::RParen, .. })) {
                loop {
                    let (param, _) = self.ident("a parameter name")?;
                    params.push(param);
                    if matches!(self.peek(), Some(Spanned { token: Token::Comma, .. })) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.eat(&Token::RParen, "')' closing the parameter list")?;
        }
        let mut qubits = Vec::new();
        loop {
            let (qubit, _) = self.ident("a formal qubit name")?;
            qubits.push(qubit);
            if matches!(self.peek(), Some(Spanned { token: Token::Comma, .. })) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(GateDef { name, params, qubits, body: Vec::new(), pos })
    }

    /// `name(exprs)? args ;`
    fn gate_apply(&mut self) -> Result<GateApply, QasmError> {
        let (name, pos) = self.ident("a gate name")?;
        let mut params = Vec::new();
        if matches!(self.peek(), Some(Spanned { token: Token::LParen, .. })) {
            self.bump();
            if !matches!(self.peek(), Some(Spanned { token: Token::RParen, .. })) {
                loop {
                    params.push(self.expr()?);
                    if matches!(self.peek(), Some(Spanned { token: Token::Comma, .. })) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.eat(&Token::RParen, "')' closing the parameter list")?;
        }
        let args = self.argument_list()?;
        self.eat(&Token::Semicolon, "';' after the gate application")?;
        Ok(GateApply { name, params, args, pos })
    }

    fn argument_list(&mut self) -> Result<Vec<Argument>, QasmError> {
        let mut args = vec![self.argument()?];
        while matches!(self.peek(), Some(Spanned { token: Token::Comma, .. })) {
            self.bump();
            args.push(self.argument()?);
        }
        Ok(args)
    }

    fn argument(&mut self) -> Result<Argument, QasmError> {
        let (register, pos) = self.ident("a register name")?;
        let index = if matches!(self.peek(), Some(Spanned { token: Token::LBracket, .. })) {
            self.bump();
            let (index, _) = self.integer("a register index")?;
            self.eat(&Token::RBracket, "']' after the register index")?;
            Some(index as usize)
        } else {
            None
        };
        Ok(Argument { register, index, pos })
    }

    // ----- expressions -------------------------------------------------

    /// additive := multiplicative (("+"|"-") multiplicative)*
    fn expr(&mut self) -> Result<Expr, QasmError> {
        let mut lhs = self.term()?;
        loop {
            let (op, pos) = match self.peek() {
                Some(Spanned { token: Token::Plus, pos }) => (BinOp::Add, *pos),
                Some(Spanned { token: Token::Minus, pos }) => (BinOp::Sub, *pos),
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), pos };
        }
        Ok(lhs)
    }

    /// multiplicative := power (("*"|"/") power)*
    fn term(&mut self) -> Result<Expr, QasmError> {
        let mut lhs = self.power()?;
        loop {
            let (op, pos) = match self.peek() {
                Some(Spanned { token: Token::Star, pos }) => (BinOp::Mul, *pos),
                Some(Spanned { token: Token::Slash, pos }) => (BinOp::Div, *pos),
                _ => break,
            };
            self.bump();
            let rhs = self.power()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), pos };
        }
        Ok(lhs)
    }

    /// power := unary ("^" power)?   (right-associative)
    fn power(&mut self) -> Result<Expr, QasmError> {
        let lhs = self.unary()?;
        if let Some(Spanned { token: Token::Caret, pos }) = self.peek() {
            let pos = *pos;
            self.bump();
            let rhs = self.power()?;
            return Ok(Expr::Binary {
                op: BinOp::Pow,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            });
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, QasmError> {
        if matches!(self.peek(), Some(Spanned { token: Token::Minus, .. })) {
            self.bump();
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, QasmError> {
        match self.peek().cloned() {
            Some(Spanned { token: Token::Int(v), .. }) => {
                self.bump();
                Ok(Expr::Number(v as f64))
            }
            Some(Spanned { token: Token::Real(v), .. }) => {
                self.bump();
                Ok(Expr::Number(v))
            }
            Some(Spanned { token: Token::LParen, .. }) => {
                self.bump();
                let inner = self.expr()?;
                self.eat(&Token::RParen, "')' closing the expression")?;
                Ok(inner)
            }
            Some(Spanned { token: Token::Ident(name), pos }) => {
                self.bump();
                if name == "pi" {
                    return Ok(Expr::Pi);
                }
                if let Some(func) = MathFn::from_name(&name) {
                    self.eat(&Token::LParen, "'(' after the function name")?;
                    let arg = self.expr()?;
                    self.eat(&Token::RParen, "')' closing the function call")?;
                    return Ok(Expr::Call { func, arg: Box::new(arg) });
                }
                Ok(Expr::Param(name, pos))
            }
            _ => Err(self.expected("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declarations_and_applications() {
        let program = parse_program(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\nh q[0];\ncx q[0], q[1];",
        )
        .expect("parses");
        assert_eq!(program.statements.len(), 4);
        match &program.statements[2] {
            Statement::Apply(apply) => {
                assert_eq!(apply.name, "h");
                assert_eq!(apply.args[0].index, Some(0));
            }
            other => panic!("expected an application, got {other:?}"),
        }
    }

    #[test]
    fn parses_gate_definitions_with_params() {
        let program = parse_program(
            "OPENQASM 2.0;\nqreg q[2];\n\
             gate foo(theta, phi) a, b { rz(theta) a; cx a, b; rz(-phi/2) b; }\n\
             foo(pi/4, 0.5) q[0], q[1];",
        )
        .expect("parses");
        let Statement::GateDef(def) = &program.statements[1] else {
            panic!("expected a gate definition");
        };
        assert_eq!(def.params, vec!["theta", "phi"]);
        assert_eq!(def.qubits, vec!["a", "b"]);
        assert_eq!(def.body.len(), 3);
    }

    #[test]
    fn parses_expressions_with_precedence() {
        let program =
            parse_program("OPENQASM 2.0;\nqreg q[1];\nrz(1 + 2 * 3 ^ 2) q[0];").expect("parses");
        let Statement::Apply(apply) = &program.statements[1] else { panic!("apply") };
        // 1 + (2 * (3^2)): the top node must be the '+'.
        let Expr::Binary { op: BinOp::Add, rhs, .. } = &apply.params[0] else {
            panic!("expected '+' at the top: {:?}", apply.params[0]);
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_measure_reset_barrier_and_if() {
        let program = parse_program(
            "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nbarrier q;\nmeasure q[0] -> c[0];\n\
             reset q[1];\nif (c == 1) x q[1];",
        )
        .expect("parses");
        assert!(matches!(program.statements[2], Statement::Barrier { .. }));
        assert!(matches!(program.statements[3], Statement::Measure { .. }));
        assert!(matches!(program.statements[4], Statement::Reset { .. }));
        assert!(matches!(program.statements[5], Statement::Conditional { .. }));
    }

    #[test]
    fn header_is_mandatory() {
        let err = parse_program("qreg q[1];").unwrap_err();
        assert!(matches!(err.kind, QasmErrorKind::BadHeader(_)));
        let err = parse_program("OPENQASM 3.0;\n").unwrap_err();
        assert!(matches!(err.kind, QasmErrorKind::BadHeader(_)));
    }

    #[test]
    fn non_stdlib_includes_are_rejected() {
        let err = parse_program("OPENQASM 2.0;\ninclude \"other.inc\";").unwrap_err();
        assert!(matches!(err.kind, QasmErrorKind::UnsupportedInclude(_)));
    }

    #[test]
    fn missing_semicolon_reports_position() {
        let err = parse_program("OPENQASM 2.0;\nqreg q[2];\nh q[0]\ncx q[0], q[1];").unwrap_err();
        // The parser notices at the 'cx' on line 4.
        assert_eq!(err.pos.line, 4);
        assert!(matches!(err.kind, QasmErrorKind::Expected { .. }));
    }

    #[test]
    fn opaque_declarations_parse() {
        let program = parse_program("OPENQASM 2.0;\nqreg q[2];\nopaque ms a, b;\nms q[0], q[1];")
            .expect("parses");
        assert!(matches!(&program.statements[1], Statement::OpaqueDef(def) if def.name == "ms"));
    }
}
