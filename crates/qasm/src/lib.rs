//! # ssync-qasm
//!
//! An OpenQASM 2.0 front-end for the S-SYNC reproduction: ingest the
//! standard circuit interchange format the QCCD-compiler literature
//! benchmarks on, and export the workspace's own circuits back out.
//!
//! Hermetic by construction (matching the workspace's vendored-deps
//! policy): a hand-rolled lexer, a recursive-descent parser and a
//! semantic lowering pass, no external crates and no file-system access —
//! `include "qelib1.inc"` resolves to a built-in gate table.
//!
//! * [`parse`] — source text → [`ParseOutput`] (a
//!   [`Circuit`](ssync_circuit::Circuit) + a [`ParseReport`] counting
//!   stripped measurements/resets/conditionals and barriers), with
//!   [`QasmError`] diagnostics carrying 1-based line:column positions.
//! * [`export`] — circuit → QASM text whose re-import reproduces the
//!   gate list bit for bit (`content_hash`-preserving; the round-trip
//!   property tests rely on it).
//!
//! ## Example
//!
//! ```
//! let source = r#"
//! OPENQASM 2.0;
//! include "qelib1.inc";
//! qreg q[3];
//! creg c[3];
//! gate majority a, b, c { cx c, b; cx c, a; ccx a, b, c; }
//! h q[0];
//! majority q[0], q[1], q[2];
//! measure q -> c;
//! "#;
//! let out = ssync_qasm::parse(source).unwrap();
//! assert_eq!(out.circuit.num_qubits(), 3);
//! assert_eq!(out.report.measurements_stripped, 1); // the whole-register measure
//! assert_eq!(out.report.gates_inlined, 1);
//!
//! // The inverse direction preserves circuit content exactly.
//! let text = ssync_qasm::export(&out.circuit);
//! let back = ssync_qasm::parse(&text).unwrap();
//! assert_eq!(back.circuit.content_hash(), out.circuit.content_hash());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod error;
mod export;
pub mod lexer;
mod lower;
mod parser;

pub use error::{QasmError, QasmErrorKind, SourcePos};
pub use export::export;
pub use lower::{lower, ParseOutput, ParseReport};
pub use parser::parse_program;

/// Parses OpenQASM 2.0 source text into a
/// [`Circuit`](ssync_circuit::Circuit) plus a lowering report:
/// tokenize → parse → lower, in one call.
///
/// # Errors
///
/// Returns the first lexical, syntactic or semantic error with its
/// 1-based line:column position.
pub fn parse(source: &str) -> Result<ParseOutput, QasmError> {
    lower(&parse_program(source)?)
}

/// [`parse`], then names the resulting circuit (e.g. after the source
/// file). The name is informational: it never affects
/// [`Circuit::content_hash`](ssync_circuit::Circuit::content_hash).
///
/// # Errors
///
/// Same as [`parse`].
pub fn parse_named(source: &str, name: &str) -> Result<ParseOutput, QasmError> {
    let mut out = parse(source)?;
    out.circuit.set_name(name);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_circuit::generators;

    /// The tentpole guarantee, pinned at the crate root: every generator
    /// app round-trips through text with an identical content hash.
    #[test]
    fn generator_apps_round_trip_content_hashes() {
        let circuits = [
            generators::qft(8),
            generators::cuccaro_adder(4),
            generators::bernstein_vazirani(8),
            generators::qaoa_nearest_neighbor(8, 2),
            generators::alt_ansatz(8, 2),
            generators::heisenberg_chain(6, 3),
        ];
        for circuit in &circuits {
            let text = export(circuit);
            let out = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", circuit.name()));
            assert_eq!(
                out.circuit.content_hash(),
                circuit.content_hash(),
                "{} changed through export→import",
                circuit.name()
            );
            assert_eq!(out.circuit.gates(), circuit.gates(), "{}", circuit.name());
            assert!(!out.report.stripped_anything());
        }
    }

    #[test]
    fn parse_named_sets_the_name_without_touching_the_hash() {
        let source = "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];";
        let anon = parse(source).expect("parses");
        let named = parse_named(source, "my-circuit").expect("parses");
        assert_eq!(named.circuit.name(), "my-circuit");
        assert_eq!(anon.circuit.content_hash(), named.circuit.content_hash());
    }
}
